// Multi-camera quickstart: four simulated intersections served by ONE
// shared inference engine through the StreamServer — ready 32-frame
// windows from all cameras are micro-batched into single (N,1,T,H,W)
// forward passes, verdicts scatter back to per-stream scorecards.
// One camera runs under a fault plan and one has its producer crash
// mid-run (absorbed by supervised restart) to show per-stream isolation.
//
// Act two scales the same idea out: a FleetController places six cameras
// across two StreamServer shards, a planned fault kills one shard
// mid-journal-append, and the controller detects the death by missed
// heartbeats, recovers the durable dir (replay damage and all) and
// re-places the orphaned streams — without changing a single verdict.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/logging.h"
#include "dataset/builder.h"
#include "fleet/controller.h"
#include "serving/stream_server.h"

using namespace safecross;

int main() {
  set_log_level(LogLevel::Warn);

  // Train the daytime basic model once; every camera shares it.
  dataset::BuildRequest req;
  req.weather = dataset::Weather::Daytime;
  req.target_segments = 120;
  req.seed = 5;
  const auto day = dataset::build_dataset(req);
  std::vector<const dataset::VideoSegment*> train;
  for (const auto& s : day.segments) train.push_back(&s);

  core::SafeCrossConfig cfg;
  cfg.basic_train.epochs = 4;
  core::SafeCross sc(cfg);
  std::printf("training on %zu segments...\n", train.size());
  sc.train_basic(train);

  // Four cameras, each its own intersection (fresh seeds), multiplexed
  // onto the one engine.
  serving::StreamServerConfig server_cfg;
  server_cfg.frames = 30 * 120;  // two sim-minutes per camera
  const std::uint64_t seeds[] = {880000, 880001, 880002, 880014};  // live traffic on each
  for (int i = 0; i < 4; ++i) {
    serving::StreamConfig stream;
    stream.name = "cam" + std::to_string(i);
    stream.weather = dataset::Weather::Daytime;
    stream.sim_seed = seeds[i];
    stream.collector_seed = stream.sim_seed + 1;
    server_cfg.streams.push_back(stream);
  }
  // cam2: a flaky feed — the fail-safe gates turn its bad windows into
  // conservative warnings instead of verdicts from garbage.
  server_cfg.streams[2].faults.drop_prob = 0.05;
  server_cfg.streams[2].faults.freeze_prob = 0.02;
  server_cfg.streams[2].fault_seed = 880777;
  // cam3: its producer thread crashes once; the supervisor restarts it
  // and the restarted incarnation replays the frame — zero verdicts lost.
  server_cfg.streams[3].crash_frames = {900};

  serving::StreamServer server(sc, server_cfg);
  std::printf("serving %zu cameras, %zu frames each...\n\n", server.stream_count(),
              server_cfg.frames);
  server.run();

  std::printf("  %-6s %9s %9s %6s %8s %7s %7s\n", "camera", "windows", "decisions", "warns",
              "accuracy", "failsafe", "down");
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    const auto& s = server.stream(i).scorecard();
    std::printf("  %-6s %9zu %9zu %6zu %8.3f %7zu %7s\n",
                server.stream(i).config().name.c_str(), server.stream(i).windows_produced(),
                s.decisions(), s.warnings(), s.accuracy(), s.fail_safe_decisions(),
                server.stream_down(i) ? "DOWN" : "up");
  }

  std::size_t full = 0;
  for (const auto& b : server.batch_log()) {
    if (b.size > 1) ++full;
  }
  std::printf("\n  batches fired      %zu (%zu multi-window) — %zu windows total\n",
              server.batch_log().size(), full, server.windows_batched());
  std::printf("  producer crashes   %zu (restarted %zu times, verdicts unchanged)\n",
              server.crashes_injected(), server.stage_restarts());
  std::printf("  engine switches    %zu\n", server.engine_switches());
  std::printf("\nThe batched verdicts are bit-identical to running each camera alone\n"
              "through the sequential path — see tests/test_stream_server.cpp.\n");

  // --- act two: a two-shard fleet survives a shard kill -----------------
  std::printf("\nfleet failover demo: 6 cameras on 2 shards, one shard killed\n"
              "mid-journal-append...\n\n");
  namespace fs = std::filesystem;
  const fs::path scratch = fs::temp_directory_path() / "safecross_multi_camera_fleet";
  fs::remove_all(scratch);

  fleet::FleetConfig fleet_cfg;
  fleet_cfg.shards = 2;
  fleet_cfg.shard.engine.model.slow_channels = 4;  // tiny untrained engines:
  fleet_cfg.shard.engine.model.fast_channels = 2;  // the demo is the control plane
  fleet_cfg.serving.frames = 30 * 60;
  fleet_cfg.serving.heartbeat_interval_ms = 1.0;
  fleet_cfg.watch_interval_ms = 2.0;
  fleet_cfg.durability_root = scratch;
  fleet_cfg.fault.enabled = true;
  for (int i = 0; i < 6; ++i) {
    serving::StreamConfig stream;
    stream.name = "fleetcam" + std::to_string(i);
    stream.weather = dataset::Weather::Daytime;
    stream.sim_seed = 990000 + 10 * i;
    stream.collector_seed = stream.sim_seed + 1;
    stream.decision_stride = i % 3 == 0 ? 4 : 8;
    stream.priority = static_cast<core::StreamPriority>(i % 3);
    fleet_cfg.streams.push_back(stream);
  }

  fleet::FleetController fleet(fleet_cfg);
  // Kill the first stream-hosting shard on its third journal append; the
  // torn tail this leaves behind is exactly what recover() must absorb.
  fleet.fault().set_plan({{.wave = 0,
                           .victim = 0,
                           .point = runtime::CrashPoint::MidJournalAppend,
                           .nth = 3}});
  fleet.run();
  fleet::print_fleet_report(std::cout, fleet.report());
  std::printf("\nEvery re-placed stream's merged decision sequence is bit-identical\n"
              "to an uninterrupted fleet run — see tests/test_fleet_chaos.cpp.\n");
  fs::remove_all(scratch);
  return 0;
}
