// Quickstart: the SafeCross public API in ~60 lines of user code.
//
//   1. Generate labeled segments from the intersection simulator.
//   2. Train the basic (daytime) SlowFast model.
//   3. Adapt a rain model from it with few samples (FL module).
//   4. Switch models (MS module) and classify windows.
//
// Runs in well under a minute on one core.

#include <cstdio>

#include "common/logging.h"
#include "core/safecross.h"
#include "dataset/builder.h"
#include "fewshot/trainer.h"

using namespace safecross;

int main() {
  set_log_level(LogLevel::Warn);

  // 1) Data: ~150 daytime segments and the paper's scarce 34 rain ones.
  dataset::BuildRequest day_req;
  day_req.weather = dataset::Weather::Daytime;
  day_req.target_segments = 150;
  day_req.seed = 1;
  const auto day = dataset::build_dataset(day_req);

  dataset::BuildRequest rain_req = day_req;
  rain_req.weather = dataset::Weather::Rain;
  rain_req.target_segments = 34;
  rain_req.seed = 2;
  const auto rain = dataset::build_dataset(rain_req);

  std::printf("generated %zu daytime and %zu rain segments\n", day.segments.size(),
              rain.segments.size());

  // 2) + 3) Train the framework.
  core::SafeCrossConfig config;
  config.basic_train.epochs = 5;
  config.fsl_train.epochs = 5;
  core::SafeCross safecross(config);

  std::vector<const dataset::VideoSegment*> day_ptrs;
  for (const auto& s : day.segments) day_ptrs.push_back(&s);
  std::vector<const dataset::VideoSegment*> rain_ptrs;
  for (const auto& s : rain.segments) rain_ptrs.push_back(&s);

  std::printf("training basic model on daytime data...\n");
  safecross.train_basic(day_ptrs);
  std::printf("adapting rain model from the basic weights (few-shot)...\n");
  safecross.adapt_weather(dataset::Weather::Rain, rain_ptrs);

  // 4) Classify a few held-back windows under each weather.
  for (const auto weather : {dataset::Weather::Daytime, dataset::Weather::Rain}) {
    const double delay = safecross.on_scene_change(weather);
    std::printf("\nscene -> %s (model switch: %.2f ms)\n", vision::weather_name(weather), delay);
    const auto& segments = weather == dataset::Weather::Daytime ? day.segments : rain.segments;
    int shown = 0;
    std::size_t correct = 0, total = 0;
    for (const auto& seg : segments) {
      const auto d = safecross.classify(seg.frames);
      ++total;
      if (d.predicted_class == seg.binary_label()) ++correct;
      if (shown < 3) {
        std::printf("  t=%7.1fs  truth=%s  ->  %s (P(danger)=%.2f)%s\n", seg.sim_time,
                    seg.binary_label() == 0 ? "danger" : "safe  ",
                    d.warn ? "WARN: do not turn" : "clear: turn ok   ", d.prob_danger,
                    d.predicted_class == seg.binary_label() ? "" : "   <- misclassified");
        ++shown;
      }
    }
    std::printf("  accuracy over all %zu %s segments: %.3f\n", total,
                vision::weather_name(weather), static_cast<double>(correct) / total);
  }
  return 0;
}
