// Live deployment: SafeCross watching an intersection it has never seen
// (fresh traffic seed), issuing blind-area warnings in real time while
// the simulator's ground truth scores every decision.

#include <cstdio>

#include "common/logging.h"
#include "core/monitor.h"
#include "dataset/builder.h"

using namespace safecross;

int main() {
  set_log_level(LogLevel::Warn);

  // Train the daytime basic model.
  dataset::BuildRequest req;
  req.weather = dataset::Weather::Daytime;
  req.target_segments = 150;
  req.seed = 5;
  const auto day = dataset::build_dataset(req);
  std::vector<const dataset::VideoSegment*> train;
  for (const auto& s : day.segments) train.push_back(&s);

  core::SafeCrossConfig cfg;
  cfg.basic_train.epochs = 5;
  core::SafeCross sc(cfg);
  std::printf("training on %zu segments...\n", train.size());
  sc.train_basic(train);

  // Deploy on fresh traffic.
  sim::TrafficSimulator live(sim::weather_params(dataset::Weather::Daytime), 987654);
  const sim::CameraModel cam(live.intersection().geometry());
  core::RealtimeMonitor monitor(sc, live, cam, core::MonitorConfig{}, 42);

  std::printf("monitoring live traffic (20 sim-minutes)...\n\n");
  int printed = 0;
  while (live.time() < 20 * 60.0) {
    const auto tick = monitor.step();
    if (tick.decision_made && printed < 12) {
      std::printf("  t=%7.1fs  blind=%d  P(danger)=%.2f -> %-18s truth=%s%s\n", tick.sim_time,
                  tick.blind_area ? 1 : 0, tick.decision.prob_danger,
                  tick.decision.warn ? "WARN (hold)" : "clear (turn ok)",
                  tick.danger_truth ? "danger" : "safe",
                  (tick.decision.predicted_class == 0) == tick.danger_truth ? ""
                                                                            : "  <- wrong");
      ++printed;
    }
  }

  std::printf("\nscorecard after %.0f sim-minutes:\n", live.time() / 60.0);
  std::printf("  decisions        %zu\n", monitor.decisions());
  std::printf("  warnings issued  %zu\n", monitor.warnings());
  std::printf("  accuracy         %.3f\n", monitor.accuracy());
  std::printf("  missed threats   %zu (said safe while a threat approached)\n",
              monitor.missed_threats());
  std::printf("                   (these cluster at horizon-entry moments: a fast vehicle\n"
              "                    entering the camera's field of view is ground-truth danger\n"
              "                    a few frames before the occupancy window can show it)\n");
  std::printf("  false warnings   %zu (held a turn that was safe)\n", monitor.false_warnings());
  std::printf("  left turns completed at the junction: %llu\n",
              static_cast<unsigned long long>(live.completed_turns()));
  return 0;
}
