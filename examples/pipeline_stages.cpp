// Fig. 3 walk-through: every stage of the VP pipeline on one live frame.
//
//   (a) raw camera frame (oblique perspective, sensor noise, weather)
//   (b) dynamic-background subtraction + opening morphology
//   (c) homography warp onto the top-down 2-D representation
// plus the weather-scaled danger zone painted onto (c).
//
// All stages print as ASCII so the pipeline is inspectable in a terminal.

#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "sim/camera.h"
#include "sim/traffic.h"
#include "vision/background_subtraction.h"
#include "vision/blobs.h"
#include "vision/danger_zone.h"

using namespace safecross;

int main() {
  set_log_level(LogLevel::Warn);
  const auto weather = vision::Weather::Daytime;
  sim::TrafficSimulator sim(sim::weather_params(weather), 20250707);
  const sim::CameraModel cam(sim.intersection().geometry());
  Rng rng(7);

  // Warm the background model while traffic builds, then wait for a
  // moment with a blind area (the interesting case).
  vision::RunningAverageBackground bg;
  vision::Image frame;
  for (int i = 0; i < 30 * 600; ++i) {
    sim.step();
    frame = cam.render(sim, rng);
    bg.apply(frame);
    if (i > 30 * 20 && sim.blind_area_present() && sim.subject() != nullptr) break;
  }

  std::printf("=== (a) raw camera frame  t=%.1fs  vehicles=%zu  weather=%s ===\n", sim.time(),
              sim.vehicles().size(), vision::weather_name(weather));
  std::printf("%s\n", frame.to_ascii(100).c_str());

  const vision::Image mask = bg.apply(frame);
  const auto blobs = vision::find_blobs(mask, 3);
  std::printf("=== (b) background-subtracted + opening: %zu foreground px, %zu blobs ===\n",
              mask.count_above(0.5f), blobs.size());
  std::printf("%s\n", mask.to_ascii(100).c_str());

  const int gw = 36, gh = 24;
  const vision::Image topdown = cam.image_to_grid(gw, gh).warp(mask, gw, gh).threshold(0.5f);
  std::printf("=== (c) 2-D top-down representation (%dx%d, %zu occupied cells) ===\n", gw, gh,
              topdown.count_above(0.5f));
  std::printf("%s\n", topdown.to_ascii(72).c_str());

  // Danger zone for the current blocker, painted onto the 2-D grid.
  const sim::Vehicle* blocker = sim.blocker();
  if (blocker != nullptr) {
    const auto params = vision::DangerZoneModel::for_weather(weather);
    // Oncoming (westbound) traffic travels -x: the zone extends +x.
    const vision::Rect zone = vision::DangerZoneModel::zone_rect(
        sim.position(*blocker).x, sim.intersection().geometry().wb_through_y(), params,
        /*oncoming_dir=*/-1);
    const float m_per_cell_x =
        static_cast<float>(sim.intersection().geometry().world_width) / gw;
    const float m_per_cell_y =
        static_cast<float>(sim.intersection().geometry().world_height) / gh;
    vision::Image overlay = topdown;
    for (int y = 0; y < gh; ++y) {
      for (int x = 0; x < gw; ++x) {
        if (zone.contains((x + 0.5f) * m_per_cell_x, (y + 0.5f) * m_per_cell_y)) {
          overlay.at(x, y) = std::max(overlay.at(x, y), 0.45f);
        }
      }
    }
    const bool occupied =
        vision::zone_occupied(topdown, zone, m_per_cell_x);  // x-scale (cells are ~square)
    std::printf(
        "=== danger zone (blocker %s at x=%.1f m, reach %.1f m) -> %s ===\n",
        sim::vehicle_type_name(blocker->type), sim.position(*blocker).x,
        vision::danger_zone_reach_m(params), occupied ? "OCCUPIED: warn" : "clear");
    std::printf("%s\n", overlay.to_ascii(72).c_str());
  } else {
    std::printf("(no blocker present at the captured frame)\n");
  }

  std::printf("simulator ground truth: blind_area=%s, dangerous_to_turn=%s, threat gap=%.1fs\n",
              sim.blind_area_present() ? "yes" : "no", sim.dangerous_to_turn() ? "yes" : "no",
              sim.nearest_threat_gap_s());
  return 0;
}
