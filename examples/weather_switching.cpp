// Scene adaptation end to end: the weather turns, the detector notices
// from the camera frames alone, and the MS module swaps in the matching
// model — in milliseconds with PipeSwitch, in seconds with Stop-and-Start
// (during which warnings are unavailable: frames * 30 Hz are lost).

#include <cstdio>

#include "common/logging.h"
#include "core/safecross.h"
#include "core/weather_detect.h"
#include "dataset/builder.h"
#include "sim/camera.h"

using namespace safecross;

namespace {

std::vector<const dataset::VideoSegment*> ptrs(const std::vector<dataset::VideoSegment>& v) {
  std::vector<const dataset::VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

core::SafeCross make_framework(switching::SwitchPolicy policy) {
  core::SafeCrossConfig cfg;
  cfg.policy = policy;
  cfg.basic_train.epochs = 4;
  cfg.fsl_train.epochs = 4;
  core::SafeCross sc(cfg);

  const auto day = dataset::build_dataset({dataset::Weather::Daytime, 120, 24.0, 11, {}});
  sc.train_basic(ptrs(day.segments));
  const auto rain = dataset::build_dataset({dataset::Weather::Rain, 34, 24.0, 12, {}});
  sc.adapt_weather(dataset::Weather::Rain, ptrs(rain.segments));
  const auto snow = dataset::build_dataset({dataset::Weather::Snow, 60, 24.0, 13, {}});
  sc.adapt_weather(dataset::Weather::Snow, ptrs(snow.segments));
  return sc;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  std::printf("training per-weather models (daytime basic + few-shot rain/snow)...\n");

  for (const auto policy :
       {switching::SwitchPolicy::PipeSwitch, switching::SwitchPolicy::StopAndStart}) {
    core::SafeCross sc = make_framework(policy);
    std::printf("\n--- policy: %s ---\n", switching::policy_name(policy));

    double lost_warning_s = 0.0;
    // The day at this intersection: clear morning, rain, then snow.
    const dataset::Weather sequence[] = {dataset::Weather::Daytime, dataset::Weather::Rain,
                                         dataset::Weather::Snow, dataset::Weather::Daytime};
    for (const auto weather : sequence) {
      // The detector watches raw frames of the new scene.
      sim::TrafficSimulator sim(sim::weather_params(weather), 100 + static_cast<int>(weather));
      const sim::CameraModel cam(sim.intersection().geometry());
      Rng rng(3);
      core::WeatherDetector detector;
      int frames = 0;
      core::WeatherEstimate estimate;
      do {
        sim.step();
        detector.observe(cam.render(sim, rng));
        estimate = detector.estimate();
        ++frames;
      } while (!estimate.confident && frames < 300);

      const double delay_ms = sc.on_scene_change(estimate.weather);
      lost_warning_s += delay_ms / 1000.0;
      std::printf(
          "  actual=%-8s detected=%-8s (density %.4f, blob h %.1f px, %d frames)"
          "  switch %8.2f ms\n",
          vision::weather_name(weather), vision::weather_name(estimate.weather),
          estimate.speckle_density, estimate.mean_blob_height, frames, delay_ms);
    }
    std::printf("  total warning downtime across the day: %.3f s (%s)\n", lost_warning_s,
                policy == switching::SwitchPolicy::PipeSwitch
                    ? "imperceptible at 30 Hz"
                    : "seconds of blind-area warnings lost per weather change");
  }
  return 0;
}
