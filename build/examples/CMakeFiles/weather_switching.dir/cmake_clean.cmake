file(REMOVE_RECURSE
  "CMakeFiles/weather_switching.dir/weather_switching.cpp.o"
  "CMakeFiles/weather_switching.dir/weather_switching.cpp.o.d"
  "weather_switching"
  "weather_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
