# Empty dependencies file for weather_switching.
# This may be replaced when dependencies are built.
