# Empty compiler generated dependencies file for safecross_tests.
# This may be replaced when dependencies are built.
