
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_background_subtraction.cpp" "tests/CMakeFiles/safecross_tests.dir/test_background_subtraction.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_background_subtraction.cpp.o.d"
  "/root/repo/tests/test_blobs.cpp" "tests/CMakeFiles/safecross_tests.dir/test_blobs.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_blobs.cpp.o.d"
  "/root/repo/tests/test_camera.cpp" "tests/CMakeFiles/safecross_tests.dir/test_camera.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_camera.cpp.o.d"
  "/root/repo/tests/test_collector.cpp" "tests/CMakeFiles/safecross_tests.dir/test_collector.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_collector.cpp.o.d"
  "/root/repo/tests/test_crossval.cpp" "tests/CMakeFiles/safecross_tests.dir/test_crossval.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_crossval.cpp.o.d"
  "/root/repo/tests/test_danger_zone.cpp" "tests/CMakeFiles/safecross_tests.dir/test_danger_zone.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_danger_zone.cpp.o.d"
  "/root/repo/tests/test_episodes.cpp" "tests/CMakeFiles/safecross_tests.dir/test_episodes.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_episodes.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/safecross_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_extreme_scenes.cpp" "tests/CMakeFiles/safecross_tests.dir/test_extreme_scenes.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_extreme_scenes.cpp.o.d"
  "/root/repo/tests/test_gpu_model.cpp" "tests/CMakeFiles/safecross_tests.dir/test_gpu_model.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_gpu_model.cpp.o.d"
  "/root/repo/tests/test_gradcheck.cpp" "tests/CMakeFiles/safecross_tests.dir/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_gradcheck.cpp.o.d"
  "/root/repo/tests/test_grouping.cpp" "tests/CMakeFiles/safecross_tests.dir/test_grouping.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_grouping.cpp.o.d"
  "/root/repo/tests/test_homography.cpp" "tests/CMakeFiles/safecross_tests.dir/test_homography.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_homography.cpp.o.d"
  "/root/repo/tests/test_image.cpp" "tests/CMakeFiles/safecross_tests.dir/test_image.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_image.cpp.o.d"
  "/root/repo/tests/test_image_models.cpp" "tests/CMakeFiles/safecross_tests.dir/test_image_models.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_image_models.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/safecross_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_intersection.cpp" "tests/CMakeFiles/safecross_tests.dir/test_intersection.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_intersection.cpp.o.d"
  "/root/repo/tests/test_layers.cpp" "tests/CMakeFiles/safecross_tests.dir/test_layers.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_layers.cpp.o.d"
  "/root/repo/tests/test_loss.cpp" "tests/CMakeFiles/safecross_tests.dir/test_loss.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_loss.cpp.o.d"
  "/root/repo/tests/test_maml.cpp" "tests/CMakeFiles/safecross_tests.dir/test_maml.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_maml.cpp.o.d"
  "/root/repo/tests/test_memory_pool.cpp" "tests/CMakeFiles/safecross_tests.dir/test_memory_pool.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_memory_pool.cpp.o.d"
  "/root/repo/tests/test_model_store.cpp" "tests/CMakeFiles/safecross_tests.dir/test_model_store.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_model_store.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/safecross_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_morphology.cpp" "tests/CMakeFiles/safecross_tests.dir/test_morphology.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_morphology.cpp.o.d"
  "/root/repo/tests/test_optical_flow.cpp" "tests/CMakeFiles/safecross_tests.dir/test_optical_flow.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_optical_flow.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/safecross_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_pedestrians.cpp" "tests/CMakeFiles/safecross_tests.dir/test_pedestrians.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_pedestrians.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/safecross_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_property_nn.cpp" "tests/CMakeFiles/safecross_tests.dir/test_property_nn.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_property_nn.cpp.o.d"
  "/root/repo/tests/test_property_sim.cpp" "tests/CMakeFiles/safecross_tests.dir/test_property_sim.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_property_sim.cpp.o.d"
  "/root/repo/tests/test_property_switching.cpp" "tests/CMakeFiles/safecross_tests.dir/test_property_switching.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_property_switching.cpp.o.d"
  "/root/repo/tests/test_property_vision.cpp" "tests/CMakeFiles/safecross_tests.dir/test_property_vision.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_property_vision.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/safecross_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_safecross.cpp" "tests/CMakeFiles/safecross_tests.dir/test_safecross.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_safecross.cpp.o.d"
  "/root/repo/tests/test_segment.cpp" "tests/CMakeFiles/safecross_tests.dir/test_segment.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_segment.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/safecross_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/safecross_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_switcher.cpp" "tests/CMakeFiles/safecross_tests.dir/test_switcher.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_switcher.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/safecross_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_tensor_ops.cpp" "tests/CMakeFiles/safecross_tests.dir/test_tensor_ops.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_tensor_ops.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/safecross_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/safecross_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_trainer.cpp" "tests/CMakeFiles/safecross_tests.dir/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_trainer.cpp.o.d"
  "/root/repo/tests/test_two_direction.cpp" "tests/CMakeFiles/safecross_tests.dir/test_two_direction.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_two_direction.cpp.o.d"
  "/root/repo/tests/test_video_models.cpp" "tests/CMakeFiles/safecross_tests.dir/test_video_models.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_video_models.cpp.o.d"
  "/root/repo/tests/test_weather_detect.cpp" "tests/CMakeFiles/safecross_tests.dir/test_weather_detect.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_weather_detect.cpp.o.d"
  "/root/repo/tests/test_yolo.cpp" "tests/CMakeFiles/safecross_tests.dir/test_yolo.cpp.o" "gcc" "tests/CMakeFiles/safecross_tests.dir/test_yolo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/safecross_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fewshot/CMakeFiles/safecross_fewshot.dir/DependInfo.cmake"
  "/root/repo/build/src/switching/CMakeFiles/safecross_switching.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/safecross_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/safecross_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/safecross_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safecross_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/safecross_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
