# Empty compiler generated dependencies file for bench_ablation_bgsub.
# This may be replaced when dependencies are built.
