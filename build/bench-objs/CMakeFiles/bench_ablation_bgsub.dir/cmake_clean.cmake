file(REMOVE_RECURSE
  "../bench/bench_ablation_bgsub"
  "../bench/bench_ablation_bgsub.pdb"
  "CMakeFiles/bench_ablation_bgsub.dir/bench_ablation_bgsub.cpp.o"
  "CMakeFiles/bench_ablation_bgsub.dir/bench_ablation_bgsub.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bgsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
