
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_accuracy.cpp" "bench-objs/CMakeFiles/bench_table3_accuracy.dir/bench_table3_accuracy.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_table3_accuracy.dir/bench_table3_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/safecross_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fewshot/CMakeFiles/safecross_fewshot.dir/DependInfo.cmake"
  "/root/repo/build/src/switching/CMakeFiles/safecross_switching.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/safecross_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/safecross_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/safecross_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safecross_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/safecross_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
