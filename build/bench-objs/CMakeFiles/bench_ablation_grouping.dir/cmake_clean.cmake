file(REMOVE_RECURSE
  "../bench/bench_ablation_grouping"
  "../bench/bench_ablation_grouping.pdb"
  "CMakeFiles/bench_ablation_grouping.dir/bench_ablation_grouping.cpp.o"
  "CMakeFiles/bench_ablation_grouping.dir/bench_ablation_grouping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
