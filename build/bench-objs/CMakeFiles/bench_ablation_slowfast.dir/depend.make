# Empty dependencies file for bench_ablation_slowfast.
# This may be replaced when dependencies are built.
