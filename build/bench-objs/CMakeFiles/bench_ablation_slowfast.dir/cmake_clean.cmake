file(REMOVE_RECURSE
  "../bench/bench_ablation_slowfast"
  "../bench/bench_ablation_slowfast.pdb"
  "CMakeFiles/bench_ablation_slowfast.dir/bench_ablation_slowfast.cpp.o"
  "CMakeFiles/bench_ablation_slowfast.dir/bench_ablation_slowfast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slowfast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
