# Empty dependencies file for bench_extension_pedestrians.
# This may be replaced when dependencies are built.
