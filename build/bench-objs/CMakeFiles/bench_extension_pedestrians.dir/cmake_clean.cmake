file(REMOVE_RECURSE
  "../bench/bench_extension_pedestrians"
  "../bench/bench_extension_pedestrians.pdb"
  "CMakeFiles/bench_extension_pedestrians.dir/bench_extension_pedestrians.cpp.o"
  "CMakeFiles/bench_extension_pedestrians.dir/bench_extension_pedestrians.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_pedestrians.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
