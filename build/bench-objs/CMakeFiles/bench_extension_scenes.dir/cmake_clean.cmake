file(REMOVE_RECURSE
  "../bench/bench_extension_scenes"
  "../bench/bench_extension_scenes.pdb"
  "CMakeFiles/bench_extension_scenes.dir/bench_extension_scenes.cpp.o"
  "CMakeFiles/bench_extension_scenes.dir/bench_extension_scenes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
