# Empty dependencies file for bench_extension_scenes.
# This may be replaced when dependencies are built.
