# Empty compiler generated dependencies file for bench_micro_vision.
# This may be replaced when dependencies are built.
