file(REMOVE_RECURSE
  "../bench/bench_micro_vision"
  "../bench/bench_micro_vision.pdb"
  "CMakeFiles/bench_micro_vision.dir/bench_micro_vision.cpp.o"
  "CMakeFiles/bench_micro_vision.dir/bench_micro_vision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
