file(REMOVE_RECURSE
  "../bench/bench_table5_fewshot"
  "../bench/bench_table5_fewshot.pdb"
  "CMakeFiles/bench_table5_fewshot.dir/bench_table5_fewshot.cpp.o"
  "CMakeFiles/bench_table5_fewshot.dir/bench_table5_fewshot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fewshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
