# Empty dependencies file for bench_table5_fewshot.
# This may be replaced when dependencies are built.
