# Empty compiler generated dependencies file for bench_ablation_dangerzone.
# This may be replaced when dependencies are built.
