file(REMOVE_RECURSE
  "../bench/bench_ablation_dangerzone"
  "../bench/bench_ablation_dangerzone.pdb"
  "CMakeFiles/bench_ablation_dangerzone.dir/bench_ablation_dangerzone.cpp.o"
  "CMakeFiles/bench_ablation_dangerzone.dir/bench_ablation_dangerzone.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dangerzone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
