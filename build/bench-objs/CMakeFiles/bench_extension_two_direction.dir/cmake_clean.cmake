file(REMOVE_RECURSE
  "../bench/bench_extension_two_direction"
  "../bench/bench_extension_two_direction.pdb"
  "CMakeFiles/bench_extension_two_direction.dir/bench_extension_two_direction.cpp.o"
  "CMakeFiles/bench_extension_two_direction.dir/bench_extension_two_direction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_two_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
