# Empty dependencies file for bench_extension_two_direction.
# This may be replaced when dependencies are built.
