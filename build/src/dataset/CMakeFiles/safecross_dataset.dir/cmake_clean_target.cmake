file(REMOVE_RECURSE
  "libsafecross_dataset.a"
)
