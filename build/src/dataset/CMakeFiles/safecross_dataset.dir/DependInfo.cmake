
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/builder.cpp" "src/dataset/CMakeFiles/safecross_dataset.dir/builder.cpp.o" "gcc" "src/dataset/CMakeFiles/safecross_dataset.dir/builder.cpp.o.d"
  "/root/repo/src/dataset/collector.cpp" "src/dataset/CMakeFiles/safecross_dataset.dir/collector.cpp.o" "gcc" "src/dataset/CMakeFiles/safecross_dataset.dir/collector.cpp.o.d"
  "/root/repo/src/dataset/segment.cpp" "src/dataset/CMakeFiles/safecross_dataset.dir/segment.cpp.o" "gcc" "src/dataset/CMakeFiles/safecross_dataset.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/safecross_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/safecross_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
