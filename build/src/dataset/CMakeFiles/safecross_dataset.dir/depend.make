# Empty dependencies file for safecross_dataset.
# This may be replaced when dependencies are built.
