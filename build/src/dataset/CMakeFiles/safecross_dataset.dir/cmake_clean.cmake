file(REMOVE_RECURSE
  "CMakeFiles/safecross_dataset.dir/builder.cpp.o"
  "CMakeFiles/safecross_dataset.dir/builder.cpp.o.d"
  "CMakeFiles/safecross_dataset.dir/collector.cpp.o"
  "CMakeFiles/safecross_dataset.dir/collector.cpp.o.d"
  "CMakeFiles/safecross_dataset.dir/segment.cpp.o"
  "CMakeFiles/safecross_dataset.dir/segment.cpp.o.d"
  "libsafecross_dataset.a"
  "libsafecross_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
