file(REMOVE_RECURSE
  "CMakeFiles/safecross_fewshot.dir/crossval.cpp.o"
  "CMakeFiles/safecross_fewshot.dir/crossval.cpp.o.d"
  "CMakeFiles/safecross_fewshot.dir/episodes.cpp.o"
  "CMakeFiles/safecross_fewshot.dir/episodes.cpp.o.d"
  "CMakeFiles/safecross_fewshot.dir/maml.cpp.o"
  "CMakeFiles/safecross_fewshot.dir/maml.cpp.o.d"
  "CMakeFiles/safecross_fewshot.dir/trainer.cpp.o"
  "CMakeFiles/safecross_fewshot.dir/trainer.cpp.o.d"
  "libsafecross_fewshot.a"
  "libsafecross_fewshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_fewshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
