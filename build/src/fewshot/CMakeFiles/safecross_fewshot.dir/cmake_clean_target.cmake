file(REMOVE_RECURSE
  "libsafecross_fewshot.a"
)
