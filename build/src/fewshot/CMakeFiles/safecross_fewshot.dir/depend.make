# Empty dependencies file for safecross_fewshot.
# This may be replaced when dependencies are built.
