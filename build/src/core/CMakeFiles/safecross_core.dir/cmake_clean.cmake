file(REMOVE_RECURSE
  "CMakeFiles/safecross_core.dir/model_store.cpp.o"
  "CMakeFiles/safecross_core.dir/model_store.cpp.o.d"
  "CMakeFiles/safecross_core.dir/monitor.cpp.o"
  "CMakeFiles/safecross_core.dir/monitor.cpp.o.d"
  "CMakeFiles/safecross_core.dir/safecross.cpp.o"
  "CMakeFiles/safecross_core.dir/safecross.cpp.o.d"
  "CMakeFiles/safecross_core.dir/throughput.cpp.o"
  "CMakeFiles/safecross_core.dir/throughput.cpp.o.d"
  "CMakeFiles/safecross_core.dir/weather_detect.cpp.o"
  "CMakeFiles/safecross_core.dir/weather_detect.cpp.o.d"
  "libsafecross_core.a"
  "libsafecross_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
