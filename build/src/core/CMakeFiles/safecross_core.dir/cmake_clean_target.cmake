file(REMOVE_RECURSE
  "libsafecross_core.a"
)
