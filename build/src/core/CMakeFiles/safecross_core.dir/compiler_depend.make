# Empty compiler generated dependencies file for safecross_core.
# This may be replaced when dependencies are built.
