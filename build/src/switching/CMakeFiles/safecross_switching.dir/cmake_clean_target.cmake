file(REMOVE_RECURSE
  "libsafecross_switching.a"
)
