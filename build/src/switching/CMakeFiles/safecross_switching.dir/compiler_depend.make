# Empty compiler generated dependencies file for safecross_switching.
# This may be replaced when dependencies are built.
