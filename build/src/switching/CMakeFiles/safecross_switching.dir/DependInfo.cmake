
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switching/executor.cpp" "src/switching/CMakeFiles/safecross_switching.dir/executor.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/executor.cpp.o.d"
  "/root/repo/src/switching/gpu_model.cpp" "src/switching/CMakeFiles/safecross_switching.dir/gpu_model.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/gpu_model.cpp.o.d"
  "/root/repo/src/switching/grouping.cpp" "src/switching/CMakeFiles/safecross_switching.dir/grouping.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/grouping.cpp.o.d"
  "/root/repo/src/switching/memory_pool.cpp" "src/switching/CMakeFiles/safecross_switching.dir/memory_pool.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/memory_pool.cpp.o.d"
  "/root/repo/src/switching/profile.cpp" "src/switching/CMakeFiles/safecross_switching.dir/profile.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/profile.cpp.o.d"
  "/root/repo/src/switching/switcher.cpp" "src/switching/CMakeFiles/safecross_switching.dir/switcher.cpp.o" "gcc" "src/switching/CMakeFiles/safecross_switching.dir/switcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/safecross_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
