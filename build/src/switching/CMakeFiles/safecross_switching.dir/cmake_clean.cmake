file(REMOVE_RECURSE
  "CMakeFiles/safecross_switching.dir/executor.cpp.o"
  "CMakeFiles/safecross_switching.dir/executor.cpp.o.d"
  "CMakeFiles/safecross_switching.dir/gpu_model.cpp.o"
  "CMakeFiles/safecross_switching.dir/gpu_model.cpp.o.d"
  "CMakeFiles/safecross_switching.dir/grouping.cpp.o"
  "CMakeFiles/safecross_switching.dir/grouping.cpp.o.d"
  "CMakeFiles/safecross_switching.dir/memory_pool.cpp.o"
  "CMakeFiles/safecross_switching.dir/memory_pool.cpp.o.d"
  "CMakeFiles/safecross_switching.dir/profile.cpp.o"
  "CMakeFiles/safecross_switching.dir/profile.cpp.o.d"
  "CMakeFiles/safecross_switching.dir/switcher.cpp.o"
  "CMakeFiles/safecross_switching.dir/switcher.cpp.o.d"
  "libsafecross_switching.a"
  "libsafecross_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
