# Empty compiler generated dependencies file for safecross_sim.
# This may be replaced when dependencies are built.
