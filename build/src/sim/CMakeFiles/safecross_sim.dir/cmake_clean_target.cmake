file(REMOVE_RECURSE
  "libsafecross_sim.a"
)
