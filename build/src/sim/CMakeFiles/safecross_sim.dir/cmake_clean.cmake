file(REMOVE_RECURSE
  "CMakeFiles/safecross_sim.dir/camera.cpp.o"
  "CMakeFiles/safecross_sim.dir/camera.cpp.o.d"
  "CMakeFiles/safecross_sim.dir/intersection.cpp.o"
  "CMakeFiles/safecross_sim.dir/intersection.cpp.o.d"
  "CMakeFiles/safecross_sim.dir/traffic.cpp.o"
  "CMakeFiles/safecross_sim.dir/traffic.cpp.o.d"
  "CMakeFiles/safecross_sim.dir/vehicle.cpp.o"
  "CMakeFiles/safecross_sim.dir/vehicle.cpp.o.d"
  "CMakeFiles/safecross_sim.dir/weather.cpp.o"
  "CMakeFiles/safecross_sim.dir/weather.cpp.o.d"
  "libsafecross_sim.a"
  "libsafecross_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
