
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/camera.cpp" "src/sim/CMakeFiles/safecross_sim.dir/camera.cpp.o" "gcc" "src/sim/CMakeFiles/safecross_sim.dir/camera.cpp.o.d"
  "/root/repo/src/sim/intersection.cpp" "src/sim/CMakeFiles/safecross_sim.dir/intersection.cpp.o" "gcc" "src/sim/CMakeFiles/safecross_sim.dir/intersection.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/safecross_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/safecross_sim.dir/traffic.cpp.o.d"
  "/root/repo/src/sim/vehicle.cpp" "src/sim/CMakeFiles/safecross_sim.dir/vehicle.cpp.o" "gcc" "src/sim/CMakeFiles/safecross_sim.dir/vehicle.cpp.o.d"
  "/root/repo/src/sim/weather.cpp" "src/sim/CMakeFiles/safecross_sim.dir/weather.cpp.o" "gcc" "src/sim/CMakeFiles/safecross_sim.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/safecross_vision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
