
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/c3d.cpp" "src/models/CMakeFiles/safecross_models.dir/c3d.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/c3d.cpp.o.d"
  "/root/repo/src/models/inception_lite.cpp" "src/models/CMakeFiles/safecross_models.dir/inception_lite.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/inception_lite.cpp.o.d"
  "/root/repo/src/models/resnet_lite.cpp" "src/models/CMakeFiles/safecross_models.dir/resnet_lite.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/resnet_lite.cpp.o.d"
  "/root/repo/src/models/slowfast.cpp" "src/models/CMakeFiles/safecross_models.dir/slowfast.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/slowfast.cpp.o.d"
  "/root/repo/src/models/tensor_ops.cpp" "src/models/CMakeFiles/safecross_models.dir/tensor_ops.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/tensor_ops.cpp.o.d"
  "/root/repo/src/models/tsn.cpp" "src/models/CMakeFiles/safecross_models.dir/tsn.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/tsn.cpp.o.d"
  "/root/repo/src/models/yolo_lite.cpp" "src/models/CMakeFiles/safecross_models.dir/yolo_lite.cpp.o" "gcc" "src/models/CMakeFiles/safecross_models.dir/yolo_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/safecross_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/safecross_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
