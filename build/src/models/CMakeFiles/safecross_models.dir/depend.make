# Empty dependencies file for safecross_models.
# This may be replaced when dependencies are built.
