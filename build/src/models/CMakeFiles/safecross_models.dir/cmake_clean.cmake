file(REMOVE_RECURSE
  "CMakeFiles/safecross_models.dir/c3d.cpp.o"
  "CMakeFiles/safecross_models.dir/c3d.cpp.o.d"
  "CMakeFiles/safecross_models.dir/inception_lite.cpp.o"
  "CMakeFiles/safecross_models.dir/inception_lite.cpp.o.d"
  "CMakeFiles/safecross_models.dir/resnet_lite.cpp.o"
  "CMakeFiles/safecross_models.dir/resnet_lite.cpp.o.d"
  "CMakeFiles/safecross_models.dir/slowfast.cpp.o"
  "CMakeFiles/safecross_models.dir/slowfast.cpp.o.d"
  "CMakeFiles/safecross_models.dir/tensor_ops.cpp.o"
  "CMakeFiles/safecross_models.dir/tensor_ops.cpp.o.d"
  "CMakeFiles/safecross_models.dir/tsn.cpp.o"
  "CMakeFiles/safecross_models.dir/tsn.cpp.o.d"
  "CMakeFiles/safecross_models.dir/yolo_lite.cpp.o"
  "CMakeFiles/safecross_models.dir/yolo_lite.cpp.o.d"
  "libsafecross_models.a"
  "libsafecross_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
