file(REMOVE_RECURSE
  "libsafecross_models.a"
)
