file(REMOVE_RECURSE
  "libsafecross_nn.a"
)
