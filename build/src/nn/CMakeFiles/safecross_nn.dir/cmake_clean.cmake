file(REMOVE_RECURSE
  "CMakeFiles/safecross_nn.dir/activations.cpp.o"
  "CMakeFiles/safecross_nn.dir/activations.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/safecross_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/conv2d.cpp.o"
  "CMakeFiles/safecross_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/conv3d.cpp.o"
  "CMakeFiles/safecross_nn.dir/conv3d.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/dropout.cpp.o"
  "CMakeFiles/safecross_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/init.cpp.o"
  "CMakeFiles/safecross_nn.dir/init.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/layer.cpp.o"
  "CMakeFiles/safecross_nn.dir/layer.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/linear.cpp.o"
  "CMakeFiles/safecross_nn.dir/linear.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/loss.cpp.o"
  "CMakeFiles/safecross_nn.dir/loss.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/optimizer.cpp.o"
  "CMakeFiles/safecross_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/pooling.cpp.o"
  "CMakeFiles/safecross_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/sequential.cpp.o"
  "CMakeFiles/safecross_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/serialize.cpp.o"
  "CMakeFiles/safecross_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/safecross_nn.dir/tensor.cpp.o"
  "CMakeFiles/safecross_nn.dir/tensor.cpp.o.d"
  "libsafecross_nn.a"
  "libsafecross_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
