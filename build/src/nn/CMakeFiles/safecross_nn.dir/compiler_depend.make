# Empty compiler generated dependencies file for safecross_nn.
# This may be replaced when dependencies are built.
