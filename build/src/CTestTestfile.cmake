# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vision")
subdirs("nn")
subdirs("sim")
subdirs("models")
subdirs("dataset")
subdirs("fewshot")
subdirs("switching")
subdirs("core")
