# Empty dependencies file for safecross_common.
# This may be replaced when dependencies are built.
