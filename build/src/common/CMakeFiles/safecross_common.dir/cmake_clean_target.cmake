file(REMOVE_RECURSE
  "libsafecross_common.a"
)
