file(REMOVE_RECURSE
  "CMakeFiles/safecross_common.dir/logging.cpp.o"
  "CMakeFiles/safecross_common.dir/logging.cpp.o.d"
  "CMakeFiles/safecross_common.dir/stats.cpp.o"
  "CMakeFiles/safecross_common.dir/stats.cpp.o.d"
  "CMakeFiles/safecross_common.dir/thread_pool.cpp.o"
  "CMakeFiles/safecross_common.dir/thread_pool.cpp.o.d"
  "libsafecross_common.a"
  "libsafecross_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
