file(REMOVE_RECURSE
  "CMakeFiles/safecross_vision.dir/background_subtraction.cpp.o"
  "CMakeFiles/safecross_vision.dir/background_subtraction.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/blobs.cpp.o"
  "CMakeFiles/safecross_vision.dir/blobs.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/danger_zone.cpp.o"
  "CMakeFiles/safecross_vision.dir/danger_zone.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/homography.cpp.o"
  "CMakeFiles/safecross_vision.dir/homography.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/image.cpp.o"
  "CMakeFiles/safecross_vision.dir/image.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/morphology.cpp.o"
  "CMakeFiles/safecross_vision.dir/morphology.cpp.o.d"
  "CMakeFiles/safecross_vision.dir/optical_flow.cpp.o"
  "CMakeFiles/safecross_vision.dir/optical_flow.cpp.o.d"
  "libsafecross_vision.a"
  "libsafecross_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safecross_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
