
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/background_subtraction.cpp" "src/vision/CMakeFiles/safecross_vision.dir/background_subtraction.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/background_subtraction.cpp.o.d"
  "/root/repo/src/vision/blobs.cpp" "src/vision/CMakeFiles/safecross_vision.dir/blobs.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/blobs.cpp.o.d"
  "/root/repo/src/vision/danger_zone.cpp" "src/vision/CMakeFiles/safecross_vision.dir/danger_zone.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/danger_zone.cpp.o.d"
  "/root/repo/src/vision/homography.cpp" "src/vision/CMakeFiles/safecross_vision.dir/homography.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/homography.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/safecross_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/morphology.cpp" "src/vision/CMakeFiles/safecross_vision.dir/morphology.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/morphology.cpp.o.d"
  "/root/repo/src/vision/optical_flow.cpp" "src/vision/CMakeFiles/safecross_vision.dir/optical_flow.cpp.o" "gcc" "src/vision/CMakeFiles/safecross_vision.dir/optical_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safecross_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
