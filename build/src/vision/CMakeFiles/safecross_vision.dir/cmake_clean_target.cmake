file(REMOVE_RECURSE
  "libsafecross_vision.a"
)
