# Empty compiler generated dependencies file for safecross_vision.
# This may be replaced when dependencies are built.
