#pragma once
// Unified GPU memory pool — PipeSwitch's second pillar (besides
// pipelining): the worker allocates ALL GPU memory once at startup and
// hands out model weight regions from its own free list, so switching
// never touches cudaMalloc/cudaFree (whose latency and fragmentation are
// part of stop-and-start's cost).
//
// First-fit free-list allocator with immediate coalescing of adjacent
// free blocks. Offsets model device addresses; no real memory is held.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace safecross::switching {

class GpuMemoryPool {
 public:
  explicit GpuMemoryPool(std::size_t capacity_bytes);

  struct Region {
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };

  /// Allocate a region for a named model image. Returns std::nullopt when
  /// no free block fits (the caller must evict first). Re-using a live
  /// tag throws.
  std::optional<Region> allocate(const std::string& tag, std::size_t bytes);

  /// Release a tag's region; adjacent free blocks coalesce. Unknown tags
  /// throw.
  void release(const std::string& tag);

  bool holds(const std::string& tag) const { return live_.count(tag) > 0; }
  std::optional<Region> region_of(const std::string& tag) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t free_bytes() const { return capacity_ - used_; }

  /// Size of the largest contiguous free block.
  std::size_t largest_free_block() const;

  /// External fragmentation in [0, 1]: 1 - largest_free / total_free
  /// (0 when fully compact or fully used).
  double fragmentation() const;

  /// Number of live regions.
  std::size_t live_count() const { return live_.size(); }

 private:
  struct FreeBlock {
    std::size_t offset;
    std::size_t bytes;
  };

  void coalesce();

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<FreeBlock> free_list_;  // kept sorted by offset
  std::map<std::string, Region> live_;
};

}  // namespace safecross::switching
