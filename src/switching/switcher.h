#pragma once
// The MS module's front door: a registry of per-scene models and a
// switch operation that accounts latency with the chosen policy.
//
// The core framework registers one model profile per weather condition.
// When the scene changes, switch_to() simulates the swap (PipeSwitch with
// the optimal grouping, or Stop-and-Start for the ablation) and records
// the delay; the framework uses the returned latency to decide how many
// frames of warnings were unavailable during the swap.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "switching/gpu_model.h"
#include "switching/grouping.h"
#include "switching/memory_pool.h"

namespace safecross::switching {

enum class SwitchPolicy { StopAndStart, PipeSwitch };

const char* policy_name(SwitchPolicy p);

/// Outcome of a non-throwing switch attempt. On failure the previously
/// active model keeps serving and `error` carries the reason.
struct SwitchStatus {
  bool ok = false;
  double delay_ms = 0.0;
  std::string error;
};

class ModelSwitcher {
 public:
  explicit ModelSwitcher(GpuModelConfig gpu = {}, SwitchPolicy policy = SwitchPolicy::PipeSwitch);

  /// Register (or replace) a scene's model. Grouping for PipeSwitch is
  /// computed once here.
  void register_model(const std::string& scene, ModelProfile profile);

  bool has_model(const std::string& scene) const { return entries_.count(scene) > 0; }
  const std::string& active_scene() const { return active_; }

  /// Registered profile / PipeSwitch grouping for a scene; nullptr when the
  /// scene is unregistered. The grouping is empty under StopAndStart. Used
  /// by the serving-path ModelCache to seed its own entries from the same
  /// registry the discrete-event path uses.
  const ModelProfile* profile_for(const std::string& scene) const {
    auto it = entries_.find(scene);
    return it == entries_.end() ? nullptr : &it->second.profile;
  }
  const std::vector<int>* grouping_for(const std::string& scene) const {
    auto it = entries_.find(scene);
    return it == entries_.end() ? nullptr : &it->second.grouping;
  }

  /// Switch to the scene's model; returns the switching delay in ms
  /// (0 when the scene is already active). Throws std::invalid_argument
  /// if unregistered and std::runtime_error on any other failure.
  double switch_to(const std::string& scene);

  /// Non-throwing variant: returns ok=false (with the reason) for an
  /// unregistered scene, an injected transport failure, or a model that
  /// cannot fit the pool. The active model is unchanged on failure, so a
  /// degraded deployment keeps serving with the previous weights.
  SwitchStatus try_switch_to(const std::string& scene);

  /// Fault-injection hook: consulted once per non-trivial switch attempt;
  /// returning true makes the attempt fail as a simulated transfer error.
  /// Pass nullptr to remove. (See runtime::FaultInjector::next_switch_fails.)
  void set_failure_hook(std::function<bool(const std::string&)> hook) {
    failure_hook_ = std::move(hook);
  }

  /// Switch attempts that failed (injected or pool exhaustion).
  std::size_t failed_switches() const { return failed_switches_; }

  /// Full result (timeline included) of the last non-trivial switch.
  const std::optional<SwitchResult>& last_switch() const { return last_; }

  std::size_t switch_count() const { return switch_count_; }
  double total_delay_ms() const { return total_delay_ms_; }

  /// The unified GPU memory pool (PipeSwitch's pre-allocated worker
  /// memory). Created on the first switch, sized to hold the two largest
  /// registered models simultaneously (incoming transfers while the
  /// outgoing still serves). Null before the first switch.
  const GpuMemoryPool* memory_pool() const { return pool_.get(); }

 private:
  void ensure_pool();
  void place_in_pool(const std::string& scene, std::size_t bytes);
  std::size_t required_pool_capacity() const;
  struct Entry {
    ModelProfile profile;
    std::vector<int> grouping;
  };

  GpuModelConfig gpu_;
  SwitchPolicy policy_;
  std::map<std::string, Entry> entries_;
  std::unique_ptr<GpuMemoryPool> pool_;
  std::string active_;
  std::optional<SwitchResult> last_;
  std::function<bool(const std::string&)> failure_hook_;
  std::size_t switch_count_ = 0;
  std::size_t failed_switches_ = 0;
  double total_delay_ms_ = 0.0;
};

}  // namespace safecross::switching
