#pragma once
// Model layer profiles for the MS (model switching) module.
//
// PipeSwitch reasons about a model as an ordered list of layers, each
// with a parameter payload (bytes to move over PCIe) and a compute cost
// (kernel time of that layer during the first inference). Profiles come
// from two sources:
//   * canonical profiles of the paper's Table VI workloads
//     (SlowFast-R50 4x16, ResNet152, Inception v3), built from the
//     published per-stage parameter counts;
//   * profile_from_params — extract a profile from one of our real nn
//     models (used by tests and the real pipelined executor).

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace safecross::switching {

struct LayerDesc {
  std::string name;
  std::size_t param_bytes = 0;
  double compute_ms = 0.0;     // steady-state kernel time of this layer
  double cold_extra_ms = 0.0;  // extra first-run cost (cudnn autotune/JIT)
};

struct ModelProfile {
  std::string name;
  std::vector<LayerDesc> layers;
  double framework_load_ms = 0.0;  // import torch + build the module graph

  std::size_t total_bytes() const;
  double total_compute_ms() const;
  double total_cold_extra_ms() const;
};

/// SlowFast R50 4x16 (the paper's SafeCross backbone): ~34M params across
/// two pathways; heavy cold-start (3-D conv algorithm selection).
ModelProfile slowfast_r50_profile();

/// ResNet152: ~60.2M params, 155 weighted layers.
ModelProfile resnet152_profile();

/// Inception v3: ~23.9M params.
ModelProfile inception_v3_profile();

/// Build a profile from a live parameter list; compute cost is estimated
/// at `ms_per_mparam` per million parameters (crude but monotone).
ModelProfile profile_from_params(const std::string& name, const std::vector<nn::Param*>& params,
                                 double ms_per_mparam = 0.05);

}  // namespace safecross::switching
