#include "switching/profile.h"

#include <numeric>

namespace safecross::switching {

std::size_t ModelProfile::total_bytes() const {
  std::size_t n = 0;
  for (const LayerDesc& l : layers) n += l.param_bytes;
  return n;
}

double ModelProfile::total_compute_ms() const {
  double n = 0.0;
  for (const LayerDesc& l : layers) n += l.compute_ms;
  return n;
}

double ModelProfile::total_cold_extra_ms() const {
  double n = 0.0;
  for (const LayerDesc& l : layers) n += l.cold_extra_ms;
  return n;
}

namespace {

constexpr std::size_t kFloat = 4;

void add_layer(ModelProfile& p, const std::string& name, std::size_t param_count,
               double compute_ms, double cold_extra_ms) {
  p.layers.push_back({name, param_count * kFloat, compute_ms, cold_extra_ms});
}

// Distribute a model-level inference cost over layers proportionally to
// parameter count, with a floor per layer (kernel launch cost).
void assign_compute(ModelProfile& p, double total_inference_ms, double total_cold_ms,
                    double floor_ms = 0.01) {
  const double total_bytes = static_cast<double>(p.total_bytes());
  for (LayerDesc& l : p.layers) {
    const double share = total_bytes > 0 ? static_cast<double>(l.param_bytes) / total_bytes : 0.0;
    l.compute_ms = floor_ms + share * total_inference_ms;
    l.cold_extra_ms = share * total_cold_ms;
  }
}

}  // namespace

ModelProfile resnet152_profile() {
  // Bottleneck ResNet: stages of [3, 8, 36, 3] blocks, widths
  // (64, 128, 256, 512), expansion 4 — ≈ 60.2M parameters.
  ModelProfile p;
  p.name = "ResNet152";
  p.framework_load_ms = 850.0;
  add_layer(p, "conv1", 64u * 3 * 7 * 7, 0, 0);
  add_layer(p, "bn1", 2u * 64, 0, 0);
  const int blocks[4] = {3, 8, 36, 3};
  const std::size_t width[4] = {64, 128, 256, 512};
  std::size_t in_c = 64;
  for (int s = 0; s < 4; ++s) {
    const std::size_t w = width[s];
    const std::size_t out_c = w * 4;
    for (int b = 0; b < blocks[s]; ++b) {
      const std::string base = "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      add_layer(p, base + ".conv1", in_c * w, 0, 0);
      add_layer(p, base + ".conv2", w * w * 9, 0, 0);
      add_layer(p, base + ".conv3", w * out_c, 0, 0);
      add_layer(p, base + ".bn", 2u * (w + w + out_c), 0, 0);
      if (b == 0) add_layer(p, base + ".downsample", in_c * out_c, 0, 0);
      in_c = out_c;
    }
  }
  add_layer(p, "fc", 2048u * 1000 + 1000, 0, 0);
  // Small-batch inference is PCIe-bound territory: ~15 ms of kernels vs
  // ~19 ms to move 60M params — the regime where PipeSwitch's residual
  // delay comes from the unhidden transfer tail.
  assign_compute(p, /*inference=*/13.4, /*cold=*/380.0);
  return p;
}

ModelProfile inception_v3_profile() {
  // Inception v3 ≈ 23.9M parameters across ~94 weighted layers. We model
  // it as its published stem + 11 inception blocks with representative
  // parameter splits.
  ModelProfile p;
  p.name = "InceptionV3";
  p.framework_load_ms = 700.0;
  add_layer(p, "stem.conv1", 32u * 3 * 9, 0, 0);
  add_layer(p, "stem.conv2", 32u * 32 * 9, 0, 0);
  add_layer(p, "stem.conv3", 64u * 32 * 9, 0, 0);
  add_layer(p, "stem.conv4", 80u * 64, 0, 0);
  add_layer(p, "stem.conv5", 192u * 80 * 9, 0, 0);
  const std::size_t block_params[11] = {256u * 1080, 288u * 1190, 288u * 1300, 768u * 1620,
                                        768u * 1730, 768u * 1840, 768u * 1840, 768u * 1940,
                                        1280u * 2050, 2048u * 2590, 2048u * 2810};
  for (int b = 0; b < 11; ++b) {
    const std::string base = "mixed" + std::to_string(b);
    // Each inception block splits across four branches.
    const std::size_t quarter = block_params[b] / 4;
    add_layer(p, base + ".branch1x1", quarter, 0, 0);
    add_layer(p, base + ".branch5x5", quarter, 0, 0);
    add_layer(p, base + ".branch3x3dbl", quarter, 0, 0);
    add_layer(p, base + ".branch_pool", quarter, 0, 0);
  }
  add_layer(p, "fc", 2048u * 1000 + 1000, 0, 0);
  assign_compute(p, /*inference=*/3.5, /*cold=*/300.0);
  return p;
}

ModelProfile slowfast_r50_profile() {
  // SlowFast R50 4x16 ≈ 34M parameters: a ResNet50-shaped slow pathway
  // (3-D convs, [3,4,6,3] bottlenecks), a 1/8-width fast pathway, and
  // time-strided lateral connections. Cold start dominates: 3-D conv
  // algorithm selection in cudnn plus the video-model stack's module
  // construction (the paper reports 5.6 s stop-and-start for this model,
  // its largest, despite ResNet152 carrying more parameters).
  ModelProfile p;
  p.name = "Slowfast 4x16,R50";
  p.framework_load_ms = 1250.0;
  const int blocks[4] = {3, 4, 6, 3};
  const std::size_t width[4] = {64, 128, 256, 512};

  auto add_pathway = [&](const std::string& prefix, double channel_scale, int stem_kt) {
    const auto scale = [&](std::size_t c) {
      return std::max<std::size_t>(1, static_cast<std::size_t>(c * channel_scale));
    };
    add_layer(p, prefix + ".stem", scale(64) * 3 * 49 * stem_kt, 0, 0);
    std::size_t in_c = scale(64);
    for (int s = 0; s < 4; ++s) {
      const std::size_t w = scale(width[s]);
      const std::size_t out_c = w * 4;
      // SlowFast keeps the slow pathway 2-D until res4; temporal kernels
      // (x3 params on conv1) appear in the last two stages. The fast
      // pathway is temporal throughout.
      const std::size_t kt = (stem_kt > 1 || s >= 2) ? 3 : 1;
      for (int b = 0; b < blocks[s]; ++b) {
        const std::string base = prefix + ".res" + std::to_string(s + 2) + "." + std::to_string(b);
        add_layer(p, base + ".conv1", in_c * w * kt, 0, 0);
        add_layer(p, base + ".conv2", w * w * 9, 0, 0);
        add_layer(p, base + ".conv3", w * out_c, 0, 0);
        if (b == 0) add_layer(p, base + ".downsample", in_c * out_c, 0, 0);
        in_c = out_c;
      }
    }
  };
  add_pathway("slow", 1.0, 1);
  add_pathway("fast", 0.125, 3);
  // Lateral connections: fast -> slow after each stage.
  for (int s = 0; s < 4; ++s) {
    const std::size_t fast_c = std::max<std::size_t>(1, width[s] / 2);
    add_layer(p, "lateral" + std::to_string(s + 2), fast_c * fast_c * 2 * 5, 0, 0);
  }
  add_layer(p, "head.fc", (2048u + 256u) * 400, 0, 0);
  // Steady inference on SafeCross's small occupancy grids is quick; the
  // model's pain is the cold start (3-D conv algorithm selection).
  assign_compute(p, /*inference=*/4.5, /*cold=*/1500.0);
  return p;
}

ModelProfile profile_from_params(const std::string& name, const std::vector<nn::Param*>& params,
                                 double ms_per_mparam) {
  ModelProfile p;
  p.name = name;
  int i = 0;
  for (const nn::Param* param : params) {
    LayerDesc l;
    l.name = "param" + std::to_string(i++);
    l.param_bytes = param->value.numel() * kFloat;
    l.compute_ms = ms_per_mparam * static_cast<double>(param->value.numel()) / 1e6;
    p.layers.push_back(l);
  }
  return p;
}

}  // namespace safecross::switching
