#pragma once
// Discrete-event GPU execution model for model switching (Table VI).
//
// Models the costs PipeSwitch (OSDI'20) identifies:
//   * Stop-and-Start: kill the old task's process, then pay CUDA context
//     initialization + framework/library load + module construction, the
//     full weight transfer over PCIe, and first-inference cold kernels
//     (cudnn algorithm selection / JIT) before the first result returns.
//   * PipeSwitch: a warm worker (live CUDA context, pre-imported
//     libraries, pre-allocated GPU memory pool) receives the new model's
//     weights in *groups* pipelined with layer-by-layer computation of
//     the first inference: group i computes as soon as (a) it has been
//     transferred and (b) group i-1 finished computing.
//
// The reported metric matches the paper's: switching delay = time from
// the switch request to first-inference completion, minus the model's
// steady-state inference latency.

#include <vector>

#include "switching/profile.h"

namespace safecross::switching {

struct GpuModelConfig {
  double pcie_gbps = 12.5;            // effective PCIe 3.0 x16 bandwidth
  double cuda_context_init_ms = 2800; // process start + CUDA context
  double transfer_setup_ms = 0.02;    // per DMA call
  double group_sync_ms = 0.05;        // transfer/compute synchronization
  double kernel_cold_factor = 1.0;    // scales cold_extra_ms
};

/// One scheduled interval on an engine.
struct TimelineEntry {
  enum class Engine { Transfer, Compute, Setup };
  Engine engine;
  double start_ms;
  double end_ms;
  std::string label;
};

struct SwitchResult {
  double completion_ms = 0.0;     // request -> first inference done
  double steady_infer_ms = 0.0;   // warm per-inference latency
  double switching_delay_ms() const { return completion_ms - steady_infer_ms; }
  std::vector<TimelineEntry> timeline;
};

/// Transfer time of a byte payload at the configured PCIe bandwidth.
double transfer_ms(std::size_t bytes, const GpuModelConfig& config);

/// Stop-and-Start ("End-start" in the paper's Table VI).
SwitchResult simulate_stop_and_start(const ModelProfile& profile, const GpuModelConfig& config);

/// PipeSwitch with the given grouping: `groups[i]` is the number of
/// consecutive layers in group i (must sum to the layer count).
SwitchResult simulate_pipeswitch(const ModelProfile& profile, const std::vector<int>& groups,
                                 const GpuModelConfig& config);

}  // namespace safecross::switching
