#include "switching/grouping.h"

#include <algorithm>
#include <limits>

namespace safecross::switching {

std::vector<int> per_layer_grouping(const ModelProfile& profile) {
  return std::vector<int>(profile.layers.size(), 1);
}

std::vector<int> whole_model_grouping(const ModelProfile& profile) {
  return {static_cast<int>(profile.layers.size())};
}

std::vector<int> fixed_grouping(const ModelProfile& profile, int layers_per_group) {
  std::vector<int> groups;
  int remaining = static_cast<int>(profile.layers.size());
  while (remaining > 0) {
    const int g = std::min(layers_per_group, remaining);
    groups.push_back(g);
    remaining -= g;
  }
  return groups;
}

double pipelined_makespan(const ModelProfile& profile, const std::vector<int>& groups,
                          const GpuModelConfig& config) {
  double transfer_done = 0.0;
  double compute_done = 0.0;
  std::size_t layer = 0;
  for (const int group_size : groups) {
    std::size_t bytes = 0;
    double compute = 0.0;
    for (int i = 0; i < group_size; ++i, ++layer) {
      bytes += profile.layers[layer].param_bytes;
      compute += profile.layers[layer].compute_ms;
    }
    transfer_done += config.transfer_setup_ms + transfer_ms(bytes, config);
    compute_done = std::max(transfer_done, compute_done) + config.group_sync_ms + compute;
  }
  return compute_done;
}

std::vector<int> optimal_grouping(const ModelProfile& profile, const GpuModelConfig& config,
                                  int max_groups) {
  const int n = static_cast<int>(profile.layers.size());
  if (n == 0) return {};
  const int g_cap = max_groups > 0 ? std::min(max_groups, n) : n;

  // Key structural fact making this an exact DP: after covering the first
  // i layers with g groups, the transfer engine's frontier is
  //   T(i, g) = bytes_prefix[i] / bw + g * setup
  // regardless of WHERE the boundaries fell. Only the compute frontier
  // depends on the partition, and its transition is monotone — so
  // minimizing the compute frontier per (i, g) state is optimal. This
  // realizes the paper's pruned search exactly: every partition a
  // branch-and-bound would visit is dominated by a DP state.
  std::vector<double> bytes_prefix(n + 1, 0.0), comp_prefix(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    bytes_prefix[i + 1] =
        bytes_prefix[i] + static_cast<double>(profile.layers[i].param_bytes);
    comp_prefix[i + 1] = comp_prefix[i] + profile.layers[i].compute_ms;
  }
  const auto xfer_of = [&](double bytes) { return bytes / (config.pcie_gbps * 1e9) * 1e3; };

  constexpr double kInf = std::numeric_limits<double>::max();
  // dp[g][i] = minimal compute frontier covering layers [0, i) in g groups.
  std::vector<std::vector<double>> dp(g_cap + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<int>> parent(g_cap + 1, std::vector<int>(n + 1, -1));
  dp[0][0] = 0.0;

  double best = kInf;
  int best_g = 1;
  for (int g = 1; g <= g_cap; ++g) {
    for (int i = g; i <= n; ++i) {
      const double transfer_done = xfer_of(bytes_prefix[i]) + g * config.transfer_setup_ms;
      double best_state = kInf;
      int best_k = -1;
      for (int k = g - 1; k < i; ++k) {
        if (dp[g - 1][k] == kInf) continue;
        const double start = std::max(transfer_done, dp[g - 1][k]) + config.group_sync_ms;
        const double done = start + (comp_prefix[i] - comp_prefix[k]);
        if (done < best_state) {
          best_state = done;
          best_k = k;
        }
      }
      dp[g][i] = best_state;
      parent[g][i] = best_k;
    }
    if (dp[g][n] < best) {
      best = dp[g][n];
      best_g = g;
    }
  }

  // Reconstruct boundaries.
  std::vector<int> groups;
  int i = n;
  for (int g = best_g; g >= 1; --g) {
    const int k = parent[g][i];
    groups.push_back(i - k);
    i = k;
  }
  std::reverse(groups.begin(), groups.end());
  return groups;
}

}  // namespace safecross::switching
