#include "switching/executor.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/timer.h"

namespace safecross::switching {

namespace {

void wait_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

PipelinedExecutor::PipelinedExecutor(ExecutorConfig config) : config_(config) {}

void PipelinedExecutor::ensure_buffers(std::size_t bytes) {
  if (source_.size() < bytes) {
    source_.assign(bytes, 0xAB);
    staging_.assign(bytes, 0);
  }
}

double PipelinedExecutor::transfer_group(std::size_t offset, std::size_t bytes) {
  safecross::Timer t;
  std::memcpy(staging_.data() + offset, source_.data() + offset, bytes);
  const double target_ms = static_cast<double>(bytes) / (config_.bandwidth_gbps * 1e9) * 1e3;
  const double elapsed = t.elapsed_ms();
  if (elapsed < target_ms) wait_ms(target_ms - elapsed);  // throttle to link speed
  return t.elapsed_ms();
}

ExecutorResult PipelinedExecutor::run_sequential(const ModelProfile& profile,
                                                 const GroupHook& on_unit) {
  ensure_buffers(profile.total_bytes());
  ExecutorResult r;
  safecross::Timer wall;
  std::size_t offset = 0;
  std::size_t index = 0;
  for (const LayerDesc& l : profile.layers) {
    r.transfer_ms += transfer_group(offset, l.param_bytes);
    offset += l.param_bytes;
    if (on_unit) on_unit(index);
    ++index;
  }
  safecross::Timer c;
  for (const LayerDesc& l : profile.layers) wait_ms(l.compute_ms * config_.compute_scale);
  r.compute_ms = c.elapsed_ms();
  r.wall_ms = wall.elapsed_ms();
  return r;
}

ExecutorResult PipelinedExecutor::run_pipelined(const ModelProfile& profile,
                                                const std::vector<int>& groups,
                                                const GroupHook& on_unit) {
  ensure_buffers(profile.total_bytes());

  // Pre-compute each group's byte range and compute cost.
  struct Group {
    std::size_t offset;
    std::size_t bytes;
    double compute_ms;
  };
  std::vector<Group> plan;
  {
    std::size_t layer = 0;
    std::size_t offset = 0;
    for (const int size : groups) {
      Group g{offset, 0, 0.0};
      for (int i = 0; i < size; ++i, ++layer) {
        g.bytes += profile.layers[layer].param_bytes;
        g.compute_ms += profile.layers[layer].compute_ms;
      }
      offset += g.bytes;
      plan.push_back(g);
    }
  }

  ExecutorResult r;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t ready = 0;        // groups fully transferred
  bool aborted = false;         // hook threw; compute must stop waiting
  std::exception_ptr hook_error;

  safecross::Timer wall;
  std::thread transfer([&] {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const Group& g = plan[i];
      r.transfer_ms += transfer_group(g.offset, g.bytes);
      if (on_unit) {
        try {
          on_unit(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            hook_error = std::current_exception();
            aborted = true;
          }
          cv.notify_one();
          return;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++ready;
      }
      cv.notify_one();
    }
  });

  safecross::Timer busy;
  double compute_busy = 0.0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return ready > i || aborted; });
      if (aborted && ready <= i) break;
    }
    safecross::Timer c;
    wait_ms(plan[i].compute_ms * config_.compute_scale);
    compute_busy += c.elapsed_ms();
  }
  transfer.join();
  if (hook_error) std::rethrow_exception(hook_error);
  r.compute_ms = compute_busy;
  r.wall_ms = wall.elapsed_ms();
  return r;
}

}  // namespace safecross::switching
