#pragma once
// Real (threaded) pipelined executor — the mechanism demo behind the
// discrete-event numbers.
//
// Two threads share a bounded group queue:
//   * the TRANSFER thread memcpy's each group's weight bytes into a
//     staging buffer (a real data movement, throttled to the configured
//     bandwidth when memcpy is faster than PCIe would be);
//   * the COMPUTE thread picks up finished groups in order and "runs"
//     them — a wall-clock wait of the group's compute_ms (the GPU works,
//     the host waits, exactly like a synchronous kernel launch).
// A pipelined run's wall time should approach
// max(total_transfer, total_compute) + fill, versus the sequential run's
// total_transfer + total_compute — the PipeSwitch effect, measurable for
// real on any machine.

#include <cstddef>
#include <functional>
#include <vector>

#include "switching/profile.h"

namespace safecross::switching {

/// Called once per transferred unit (layer for run_sequential, group for
/// run_pipelined) with its 0-based index, AFTER the unit's bytes landed in
/// staging. The serving layer uses it for chaos injection (mid-model-load
/// kills); hooks may throw — the run aborts and the exception surfaces on
/// the calling thread even when the hook ran on the transfer thread.
using GroupHook = std::function<void(std::size_t)>;

struct ExecutorConfig {
  double bandwidth_gbps = 6.0;  // simulated link bandwidth for the memcpy
  double compute_scale = 1.0;   // scales compute_ms waits
};

struct ExecutorResult {
  double wall_ms = 0.0;
  double transfer_ms = 0.0;  // busy time of the transfer thread
  double compute_ms = 0.0;   // busy time of the compute thread
};

class PipelinedExecutor {
 public:
  explicit PipelinedExecutor(ExecutorConfig config = {});

  /// Transfer then compute, no overlap (stop-and-start's data path).
  ExecutorResult run_sequential(const ModelProfile& profile,
                                const GroupHook& on_unit = {});

  /// Overlapped transfer/compute with the given grouping. `on_unit` runs
  /// on the transfer thread; if it throws, the compute side unblocks, the
  /// transfer thread is joined, and the exception rethrows here.
  ExecutorResult run_pipelined(const ModelProfile& profile, const std::vector<int>& groups,
                               const GroupHook& on_unit = {});

 private:
  ExecutorConfig config_;
  std::vector<unsigned char> source_;   // fake host-side weights
  std::vector<unsigned char> staging_;  // fake device-side buffer

  void ensure_buffers(std::size_t bytes);
  double transfer_group(std::size_t offset, std::size_t bytes);
};

}  // namespace safecross::switching
