#include "switching/gpu_model.h"

#include <numeric>
#include <stdexcept>

namespace safecross::switching {

double transfer_ms(std::size_t bytes, const GpuModelConfig& config) {
  return static_cast<double>(bytes) / (config.pcie_gbps * 1e9) * 1e3;
}

SwitchResult simulate_stop_and_start(const ModelProfile& profile, const GpuModelConfig& config) {
  SwitchResult r;
  double t = 0.0;
  auto span = [&](TimelineEntry::Engine e, double dur, const std::string& label) {
    r.timeline.push_back({e, t, t + dur, label});
    t += dur;
  };

  // Fresh process: CUDA context + library import + module construction.
  span(TimelineEntry::Engine::Setup, config.cuda_context_init_ms, "cuda-context-init");
  span(TimelineEntry::Engine::Setup, profile.framework_load_ms, "library+module-load");
  // Whole model transferred before inference starts (one DMA per layer,
  // as a naive framework does).
  for (const LayerDesc& l : profile.layers) {
    span(TimelineEntry::Engine::Transfer, config.transfer_setup_ms + transfer_ms(l.param_bytes, config),
         "xfer:" + l.name);
  }
  // First inference: steady kernels + cold-start extras.
  for (const LayerDesc& l : profile.layers) {
    span(TimelineEntry::Engine::Compute,
         l.compute_ms + config.kernel_cold_factor * l.cold_extra_ms, "compute:" + l.name);
  }
  r.completion_ms = t;
  r.steady_infer_ms = profile.total_compute_ms();
  return r;
}

SwitchResult simulate_pipeswitch(const ModelProfile& profile, const std::vector<int>& groups,
                                 const GpuModelConfig& config) {
  const int total_layers =
      std::accumulate(groups.begin(), groups.end(), 0);
  if (total_layers != static_cast<int>(profile.layers.size())) {
    throw std::invalid_argument("simulate_pipeswitch: grouping does not cover all layers");
  }

  SwitchResult r;
  // Warm worker: no context/library costs; memory pool pre-allocated, so
  // no cold kernel selection either (PipeSwitch workers keep the cudnn
  // plans cached for the models they serve).
  double transfer_done = 0.0;
  double compute_done = 0.0;
  std::size_t layer = 0;
  for (const int group_size : groups) {
    std::size_t bytes = 0;
    double compute = 0.0;
    std::string label = profile.layers[layer].name;
    for (int i = 0; i < group_size; ++i, ++layer) {
      bytes += profile.layers[layer].param_bytes;
      compute += profile.layers[layer].compute_ms;
    }
    const double xfer = config.transfer_setup_ms + transfer_ms(bytes, config);
    r.timeline.push_back(
        {TimelineEntry::Engine::Transfer, transfer_done, transfer_done + xfer, "xfer:" + label});
    transfer_done += xfer;
    const double start = std::max(transfer_done, compute_done) + config.group_sync_ms;
    r.timeline.push_back(
        {TimelineEntry::Engine::Compute, start, start + compute, "compute:" + label});
    compute_done = start + compute;
  }
  r.completion_ms = compute_done;
  r.steady_infer_ms = profile.total_compute_ms();
  return r;
}

}  // namespace safecross::switching
