#include "switching/switcher.h"

#include <stdexcept>

namespace safecross::switching {

const char* policy_name(SwitchPolicy p) {
  switch (p) {
    case SwitchPolicy::StopAndStart: return "stop-and-start";
    case SwitchPolicy::PipeSwitch: return "pipeswitch";
  }
  return "?";
}

ModelSwitcher::ModelSwitcher(GpuModelConfig gpu, SwitchPolicy policy)
    : gpu_(gpu), policy_(policy) {}

std::size_t ModelSwitcher::required_pool_capacity() const {
  // The two largest registered models (active + incoming) plus ~10%
  // working headroom — PipeSwitch allocates once, up front.
  std::size_t first = 0, second = 0;
  for (const auto& [name, entry] : entries_) {
    const std::size_t bytes = entry.profile.total_bytes();
    if (bytes >= first) {
      second = first;
      first = bytes;
    } else {
      second = std::max(second, bytes);
    }
  }
  return (first + second) + (first + second) / 10 + 1;
}

void ModelSwitcher::register_model(const std::string& scene, ModelProfile profile) {
  Entry entry{std::move(profile), {}};
  if (policy_ == SwitchPolicy::PipeSwitch) {
    entry.grouping = optimal_grouping(entry.profile, gpu_);
  }
  entries_.insert_or_assign(scene, std::move(entry));
  // A model registered after deployment may not fit the existing pool:
  // re-provision (the real system would restart the worker with a larger
  // reservation) and re-pin the active model.
  if (pool_ != nullptr && required_pool_capacity() > pool_->capacity()) {
    pool_ = std::make_unique<GpuMemoryPool>(required_pool_capacity());
    if (!active_.empty()) {
      pool_->allocate(active_, entries_.at(active_).profile.total_bytes());
    }
  }
}

void ModelSwitcher::ensure_pool() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<GpuMemoryPool>(required_pool_capacity());
}

void ModelSwitcher::place_in_pool(const std::string& scene, std::size_t bytes) {
  if (pool_->holds(scene)) return;
  if (!pool_->allocate(scene, bytes)) {
    // Evict every model that is neither active nor incoming, then retry.
    std::vector<std::string> evict;
    for (const auto& [name, entry] : entries_) {
      if (name != active_ && name != scene && pool_->holds(name)) evict.push_back(name);
    }
    for (const std::string& name : evict) pool_->release(name);
    if (!pool_->allocate(scene, bytes)) {
      throw std::runtime_error("model '" + scene + "' does not fit the GPU memory pool");
    }
  }
}

double ModelSwitcher::switch_to(const std::string& scene) {
  if (entries_.find(scene) == entries_.end()) {
    throw std::invalid_argument("ModelSwitcher: unregistered scene '" + scene + "'");
  }
  const SwitchStatus status = try_switch_to(scene);
  if (!status.ok) throw std::runtime_error("ModelSwitcher: " + status.error);
  return status.delay_ms;
}

SwitchStatus ModelSwitcher::try_switch_to(const std::string& scene) {
  SwitchStatus status;
  const auto it = entries_.find(scene);
  if (it == entries_.end()) {
    ++failed_switches_;
    status.error = "unregistered scene '" + scene + "'";
    return status;
  }
  if (scene == active_) {
    status.ok = true;
    return status;
  }
  if (failure_hook_ && failure_hook_(scene)) {
    ++failed_switches_;
    status.error = "switch to '" + scene + "' failed (injected transfer error)";
    return status;
  }
  ensure_pool();
  try {
    place_in_pool(scene, it->second.profile.total_bytes());
  } catch (const std::exception& e) {
    ++failed_switches_;
    status.error = e.what();
    return status;
  }

  SwitchResult result;
  if (policy_ == SwitchPolicy::PipeSwitch) {
    result = simulate_pipeswitch(it->second.profile, it->second.grouping, gpu_);
  } else {
    result = simulate_stop_and_start(it->second.profile, gpu_);
  }
  // The outgoing model's region is recycled once the new one serves.
  if (!active_.empty() && pool_->holds(active_)) pool_->release(active_);
  active_ = scene;
  last_ = result;
  ++switch_count_;
  total_delay_ms_ += result.switching_delay_ms();
  status.ok = true;
  status.delay_ms = result.switching_delay_ms();
  return status;
}

}  // namespace safecross::switching
