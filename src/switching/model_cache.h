#pragma once
// Warm per-weather model cache for the serving path (DESIGN.md §14).
//
// The discrete-event ModelSwitcher answers "how long would this switch
// take"; the ModelCache actually holds models resident. Each registered
// scene owns a region in a GpuMemoryPool sized for `capacity_models`
// simultaneous residents (dual residency by default: the outgoing model
// keeps serving while the incoming one loads). Loads are split into the
// three phases the journaled switch protocol needs:
//
//   prepare(scene)   reserve pool space, evicting LRU residents the
//                    caller's filter allows (owner thread only);
//   transfer(scene)  run the weight movement through PipelinedExecutor —
//                    safe to call off the owner thread, which is how the
//                    server keeps deciding on the old model meanwhile;
//   commit(scene)    mark the scene resident and MRU (owner thread only).
//
// Exactly one load may be in flight at a time. `bytes_scale` shrinks
// every registered profile's weights uniformly so tests get sub-ms loads
// and tiny staging buffers while the bench runs the full-size model.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "switching/executor.h"
#include "switching/memory_pool.h"
#include "switching/profile.h"

namespace safecross::switching {

struct ModelCacheConfig {
  std::size_t capacity_models = 2;  // simultaneous residents the pool holds
  double bytes_scale = 1.0;         // scales layer param_bytes at registration
  ExecutorConfig executor;
};

struct ModelCacheStats {
  std::size_t loads = 0;      // committed loads
  std::size_t evictions = 0;  // residents released to make room
  double load_wall_ms = 0.0;  // summed committed load wall time
};

class ModelCache {
 public:
  /// may_evict(scene) gates which residents LRU eviction may claim.
  using EvictFilter = std::function<bool(const std::string&)>;
  /// on_evict(scene) fires AFTER the victim's region is released — the
  /// mid-cache-eviction chaos instant.
  using EvictHook = std::function<void(const std::string&)>;

  explicit ModelCache(ModelCacheConfig config = {});

  /// Register (or replace) a scene's model. An empty grouping means the
  /// scene loads as one whole-model group (stop-and-start shape).
  void register_model(const std::string& scene, ModelProfile profile,
                      std::vector<int> grouping);

  bool registered(const std::string& scene) const { return entries_.count(scene) > 0; }
  bool resident(const std::string& scene) const;
  std::size_t resident_count() const { return lru_.size(); }
  /// Residents in LRU order (front = next eviction candidate).
  const std::vector<std::string>& residents_lru() const { return lru_; }

  /// Mark a resident scene most-recently-used (each served batch does).
  void touch(const std::string& scene);

  /// Would prepare(scene) succeed without touching anything? False for
  /// unregistered scenes; byte arithmetic over free + evictable space.
  bool can_prepare(const std::string& scene, const EvictFilter& may_evict = {}) const;

  /// Reserve pool space for the scene, evicting allowed LRU residents as
  /// needed. No-op when already resident. Throws std::logic_error if a
  /// different load is already prepared, std::runtime_error when the scene
  /// cannot fit even after every allowed eviction.
  void prepare(const std::string& scene, const EvictFilter& may_evict = {},
               const EvictHook& on_evict = {});

  /// Run the prepared scene's weight movement. Pipelined when requested
  /// and the scene has a grouping; sequential otherwise. The only cache
  /// method safe to call off the owner thread.
  ExecutorResult transfer(const std::string& scene, bool pipelined,
                          const GroupHook& on_group = {});

  /// Mark the prepared scene resident + MRU and account the load.
  void commit(const std::string& scene, double wall_ms);

  /// Roll back prepare() after a failed transfer: release the reserved
  /// region, clear the in-flight slot. No-op when nothing is prepared.
  void abort_prepare();

  /// prepare + transfer + commit on the calling thread (recovery warm-up
  /// and the stop-and-start arm, where the stall IS the measurement).
  ExecutorResult load_blocking(const std::string& scene, bool pipelined,
                               const EvictFilter& may_evict = {},
                               const EvictHook& on_evict = {},
                               const GroupHook& on_group = {});

  /// Release a resident scene. Returns false when not resident.
  bool evict(const std::string& scene);

  const std::optional<std::string>& prepared() const { return prepared_; }
  const ModelCacheStats& stats() const { return stats_; }
  const GpuMemoryPool* pool() const { return pool_.get(); }
  const ModelCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    ModelProfile profile;        // bytes_scale already applied
    std::vector<int> grouping;   // empty => whole-model single group
    std::size_t bytes = 0;       // profile.total_bytes() cached
  };

  void ensure_pool();
  std::size_t required_pool_capacity() const;
  void release_resident(const std::string& scene);

  ModelCacheConfig config_;
  std::map<std::string, Entry> entries_;
  std::unique_ptr<GpuMemoryPool> pool_;
  PipelinedExecutor executor_;
  std::vector<std::string> lru_;  // residents, front = LRU
  std::optional<std::string> prepared_;
  ModelCacheStats stats_;
};

}  // namespace safecross::switching
