#include "switching/memory_pool.h"

#include <algorithm>
#include <stdexcept>

namespace safecross::switching {

GpuMemoryPool::GpuMemoryPool(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
  if (capacity_bytes == 0) throw std::invalid_argument("GpuMemoryPool: zero capacity");
  free_list_.push_back({0, capacity_bytes});
}

std::optional<GpuMemoryPool::Region> GpuMemoryPool::allocate(const std::string& tag,
                                                             std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("GpuMemoryPool: zero-byte allocation");
  if (live_.count(tag) > 0) {
    throw std::logic_error("GpuMemoryPool: tag '" + tag + "' already live");
  }
  // First fit.
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& block = free_list_[i];
    if (block.bytes < bytes) continue;
    const Region region{block.offset, bytes};
    if (block.bytes == bytes) {
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      block.offset += bytes;
      block.bytes -= bytes;
    }
    live_.emplace(tag, region);
    used_ += bytes;
    return region;
  }
  return std::nullopt;
}

void GpuMemoryPool::release(const std::string& tag) {
  const auto it = live_.find(tag);
  if (it == live_.end()) {
    throw std::invalid_argument("GpuMemoryPool: unknown tag '" + tag + "'");
  }
  const Region region = it->second;
  live_.erase(it);
  used_ -= region.bytes;
  const auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), region.offset,
      [](const FreeBlock& b, std::size_t off) { return b.offset < off; });
  free_list_.insert(pos, {region.offset, region.bytes});
  coalesce();
}

void GpuMemoryPool::coalesce() {
  std::vector<FreeBlock> merged;
  for (const FreeBlock& b : free_list_) {
    if (!merged.empty() && merged.back().offset + merged.back().bytes == b.offset) {
      merged.back().bytes += b.bytes;
    } else {
      merged.push_back(b);
    }
  }
  free_list_ = std::move(merged);
}

std::optional<GpuMemoryPool::Region> GpuMemoryPool::region_of(const std::string& tag) const {
  const auto it = live_.find(tag);
  if (it == live_.end()) return std::nullopt;
  return it->second;
}

std::size_t GpuMemoryPool::largest_free_block() const {
  std::size_t best = 0;
  for (const FreeBlock& b : free_list_) best = std::max(best, b.bytes);
  return best;
}

double GpuMemoryPool::fragmentation() const {
  const std::size_t total_free = free_bytes();
  if (total_free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) / static_cast<double>(total_free);
}

}  // namespace safecross::switching
