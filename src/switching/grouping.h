#pragma once
// Optimal model-aware layer grouping (paper §III-E-3).
//
// Uploading per layer maximizes overlap but pays a DMA-setup and a
// synchronization cost per group; uploading the whole model as one group
// has no overlap at all. PipeSwitch groups consecutive layers to balance
// the two. We search the grouping that minimizes the pipelined makespan
// with a branch-and-bound over group boundaries (the paper's "pruning
// method"): partial schedules whose transfer-or-compute frontier already
// exceeds the best-known completion are cut.

#include <vector>

#include "switching/gpu_model.h"

namespace safecross::switching {

/// Every layer its own group.
std::vector<int> per_layer_grouping(const ModelProfile& profile);

/// One group holding the whole model (no pipelining).
std::vector<int> whole_model_grouping(const ModelProfile& profile);

/// Fixed-size consecutive groups of `layers_per_group`.
std::vector<int> fixed_grouping(const ModelProfile& profile, int layers_per_group);

/// Branch-and-bound search for the makespan-minimizing grouping.
/// `max_groups` bounds the search (0 = unbounded).
std::vector<int> optimal_grouping(const ModelProfile& profile, const GpuModelConfig& config,
                                  int max_groups = 0);

/// Pipelined completion time of a given grouping (same model as
/// simulate_pipeswitch, without building the timeline).
double pipelined_makespan(const ModelProfile& profile, const std::vector<int>& groups,
                          const GpuModelConfig& config);

}  // namespace safecross::switching
