#include "switching/model_cache.h"

#include <algorithm>
#include <stdexcept>

namespace safecross::switching {

ModelCache::ModelCache(ModelCacheConfig config)
    : config_(config), executor_(config.executor) {
  if (config_.capacity_models == 0) config_.capacity_models = 1;
}

void ModelCache::register_model(const std::string& scene, ModelProfile profile,
                                std::vector<int> grouping) {
  if (resident(scene) || prepared_ == scene) {
    throw std::logic_error("model-cache: cannot re-register a live scene: " + scene);
  }
  if (config_.bytes_scale != 1.0) {
    for (LayerDesc& l : profile.layers) {
      const double scaled = static_cast<double>(l.param_bytes) * config_.bytes_scale;
      l.param_bytes = std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
    }
  }
  Entry e;
  e.bytes = profile.total_bytes();
  e.profile = std::move(profile);
  e.grouping = std::move(grouping);
  entries_[scene] = std::move(e);
}

bool ModelCache::resident(const std::string& scene) const {
  return std::find(lru_.begin(), lru_.end(), scene) != lru_.end();
}

void ModelCache::touch(const std::string& scene) {
  auto it = std::find(lru_.begin(), lru_.end(), scene);
  if (it == lru_.end()) return;
  lru_.erase(it);
  lru_.push_back(scene);
}

std::size_t ModelCache::required_pool_capacity() const {
  // Large enough for the `capacity_models` largest registered models at
  // once, plus 10% working slack (same sizing rule as ModelSwitcher).
  std::vector<std::size_t> sizes;
  sizes.reserve(entries_.size());
  for (const auto& [scene, e] : entries_) sizes.push_back(e.bytes);
  std::sort(sizes.rbegin(), sizes.rend());
  std::size_t sum = 0;
  for (std::size_t i = 0; i < sizes.size() && i < config_.capacity_models; ++i) {
    sum += sizes[i];
  }
  return sum + sum / 10 + 1;
}

void ModelCache::ensure_pool() {
  const std::size_t required = required_pool_capacity();
  if (pool_ == nullptr) {
    pool_ = std::make_unique<GpuMemoryPool>(required);
    return;
  }
  if (pool_->capacity() < required) {
    if (pool_->live_count() > 0) {
      throw std::logic_error(
          "model-cache: registrations grew the pool while models are live");
    }
    pool_ = std::make_unique<GpuMemoryPool>(required);
  }
}

bool ModelCache::can_prepare(const std::string& scene,
                             const EvictFilter& may_evict) const {
  auto it = entries_.find(scene);
  if (it == entries_.end()) return false;
  if (resident(scene)) return true;
  if (prepared_.has_value()) return false;  // one load in flight at a time
  const std::size_t needed = it->second.bytes;
  std::size_t reclaimable = pool_ == nullptr ? required_pool_capacity()
                                             : pool_->free_bytes();
  for (const std::string& r : lru_) {
    if (may_evict && !may_evict(r)) continue;
    reclaimable += entries_.at(r).bytes;
  }
  return needed <= reclaimable;
}

void ModelCache::release_resident(const std::string& scene) {
  pool_->release(scene);
  lru_.erase(std::find(lru_.begin(), lru_.end(), scene));
  ++stats_.evictions;
}

void ModelCache::prepare(const std::string& scene, const EvictFilter& may_evict,
                         const EvictHook& on_evict) {
  auto it = entries_.find(scene);
  if (it == entries_.end()) {
    throw std::invalid_argument("model-cache: prepare of unregistered scene: " + scene);
  }
  if (resident(scene)) return;
  if (prepared_.has_value()) {
    throw std::logic_error("model-cache: a load is already prepared: " + *prepared_);
  }
  ensure_pool();
  const std::size_t bytes = it->second.bytes;
  while (!pool_->allocate(scene, bytes)) {
    // Evict the least-recently-used resident the filter allows; the
    // incoming scene is never resident here, so it is never a victim.
    auto victim = lru_.end();
    for (auto cand = lru_.begin(); cand != lru_.end(); ++cand) {
      if (!may_evict || may_evict(*cand)) {
        victim = cand;
        break;
      }
    }
    if (victim == lru_.end()) {
      throw std::runtime_error("model-cache: cannot fit " + scene +
                               " even after all allowed evictions");
    }
    const std::string evicted = *victim;
    release_resident(evicted);
    if (on_evict) on_evict(evicted);  // mid-cache-eviction instant
  }
  prepared_ = scene;
}

ExecutorResult ModelCache::transfer(const std::string& scene, bool pipelined,
                                    const GroupHook& on_group) {
  if (prepared_ != scene) {
    throw std::logic_error("model-cache: transfer of unprepared scene: " + scene);
  }
  const Entry& e = entries_.at(scene);
  if (pipelined && !e.grouping.empty()) {
    return executor_.run_pipelined(e.profile, e.grouping, on_group);
  }
  return executor_.run_sequential(e.profile, on_group);
}

void ModelCache::commit(const std::string& scene, double wall_ms) {
  if (prepared_ != scene) {
    throw std::logic_error("model-cache: commit of unprepared scene: " + scene);
  }
  prepared_.reset();
  lru_.push_back(scene);  // MRU
  ++stats_.loads;
  stats_.load_wall_ms += wall_ms;
}

void ModelCache::abort_prepare() {
  if (!prepared_.has_value()) return;
  pool_->release(*prepared_);
  prepared_.reset();
}

ExecutorResult ModelCache::load_blocking(const std::string& scene, bool pipelined,
                                         const EvictFilter& may_evict,
                                         const EvictHook& on_evict,
                                         const GroupHook& on_group) {
  if (resident(scene)) {
    touch(scene);
    return {};
  }
  prepare(scene, may_evict, on_evict);
  ExecutorResult result;
  try {
    result = transfer(scene, pipelined, on_group);
  } catch (...) {
    abort_prepare();
    throw;
  }
  commit(scene, result.wall_ms);
  return result;
}

bool ModelCache::evict(const std::string& scene) {
  if (!resident(scene)) return false;
  release_resident(scene);
  return true;
}

}  // namespace safecross::switching
