#include "fewshot/trainer.h"

#include <stdexcept>

#include "common/logging.h"
#include "common/rng.h"
#include "models/tensor_ops.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace safecross::fewshot {

std::vector<const VideoSegment*> select(const std::vector<VideoSegment>& segments,
                                        const std::vector<std::size_t>& indices) {
  std::vector<const VideoSegment*> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(&segments.at(i));
  return out;
}

nn::Tensor make_batch(const std::vector<const VideoSegment*>& segments,
                      const std::vector<std::size_t>& order, std::size_t begin, std::size_t end,
                      std::vector<int>& labels_out) {
  if (begin >= end || end > order.size()) throw std::invalid_argument("make_batch: bad range");
  std::vector<const std::vector<vision::Image>*> clips;
  clips.reserve(end - begin);
  labels_out.clear();
  for (std::size_t i = begin; i < end; ++i) {
    const VideoSegment* seg = segments[order[i]];
    clips.push_back(&seg->frames);
    labels_out.push_back(seg->binary_label());
  }
  return models::clips_to_batch(clips);
}

float train_classifier(models::VideoClassifier& model,
                       const std::vector<const VideoSegment*>& train_set,
                       const TrainConfig& config) {
  if (train_set.empty()) throw std::invalid_argument("train_classifier: empty training set");
  nn::SGD opt(model.params(), config.lr, config.momentum, config.weight_decay);
  nn::SoftmaxCrossEntropy ce;
  nn::MulticlassHinge hinge;
  safecross::Rng rng(config.seed);

  std::vector<std::size_t> order(train_set.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    safecross::shuffle(order, rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), begin + static_cast<std::size_t>(config.batch_size));
      std::vector<int> labels;
      const nn::Tensor batch = make_batch(train_set, order, begin, end, labels);

      model.zero_grad();
      const nn::Tensor scores = model.forward(batch, /*training=*/true);
      float loss;
      nn::Tensor grad;
      if (config.hinge_loss) {
        loss = hinge.forward(scores, labels);
        grad = hinge.grad();
      } else {
        loss = ce.forward(scores, labels);
        grad = ce.grad();
      }
      model.backward(grad);
      opt.step();
      epoch_loss += loss;
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / std::max<std::size_t>(1, batches));
    if (config.verbose) {
      log_info() << model.name() << " epoch " << epoch + 1 << "/" << config.epochs
                 << " loss=" << last_epoch_loss;
    }
  }
  return last_epoch_loss;
}

EvalResult evaluate(models::VideoClassifier& model,
                    const std::vector<const VideoSegment*>& eval_set, bool hinge_loss) {
  if (eval_set.empty()) throw std::invalid_argument("evaluate: empty eval set");
  EvalResult result{safecross::ConfusionMatrix(static_cast<std::size_t>(model.num_classes())),
                    0.0f};
  nn::SoftmaxCrossEntropy ce;
  nn::MulticlassHinge hinge;

  std::vector<std::size_t> order(eval_set.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  constexpr std::size_t kEvalBatch = 16;
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t begin = 0; begin < order.size(); begin += kEvalBatch) {
    const std::size_t end = std::min(order.size(), begin + kEvalBatch);
    std::vector<int> labels;
    const nn::Tensor batch = make_batch(eval_set, order, begin, end, labels);
    const nn::Tensor scores = model.forward(batch, /*training=*/false);
    const std::vector<int>* preds;
    if (hinge_loss) {
      total_loss += hinge.forward(scores, labels);
      preds = &hinge.predictions();
    } else {
      total_loss += ce.forward(scores, labels);
      preds = &ce.predictions();
    }
    for (std::size_t i = 0; i < labels.size(); ++i) {
      result.confusion.add(static_cast<std::size_t>(labels[i]),
                           static_cast<std::size_t>((*preds)[i]));
    }
    ++batches;
  }
  result.mean_loss = static_cast<float>(total_loss / std::max<std::size_t>(1, batches));
  return result;
}

}  // namespace safecross::fewshot
