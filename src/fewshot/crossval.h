#pragma once
// K-fold cross-validation for tiny pools.
//
// The paper's rain condition has 34 segments: a single 8:1:1 split tests
// on 3 samples and quantizes accuracy to thirds. K-fold gives every
// segment one turn in the test fold and averages — the right evaluation
// for the FL module's data regime.

#include <functional>

#include "fewshot/trainer.h"

namespace safecross::fewshot {

struct CrossValResult {
  double mean_top1 = 0.0;
  double mean_class_acc = 0.0;
  double stddev_top1 = 0.0;
  std::size_t folds = 0;
  std::size_t total_evaluated = 0;
};

/// Factory for a fresh (or freshly adapted) model per fold — e.g.
/// `[&] { return base.clone(); }` for transfer, or a lambda constructing
/// a new randomly initialized model for the from-scratch arm.
using ModelFactory = std::function<std::unique_ptr<models::VideoClassifier>()>;

/// Split `pool` into k folds (shuffled by `seed`); for each fold, train a
/// fresh model from the factory on the other k-1 folds and evaluate on
/// the held-out one.
CrossValResult k_fold_cross_validate(const ModelFactory& factory,
                                     const std::vector<const VideoSegment*>& pool, int k,
                                     const TrainConfig& train_config, std::uint64_t seed);

}  // namespace safecross::fewshot
