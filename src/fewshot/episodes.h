#pragma once
// Episode construction for N-way K-shot learning (paper §III-D).
//
// An episode pairs a *support set* (K labeled segments per class, used
// for adaptation) with a *query set* (evaluation within the episode).
// Episodes are sampled from a task's segment pool; the paper's tasks are
// scene sets {S_1..S_M} — here, simulator runs with different seeds and
// weather conditions.

#include <vector>

#include "common/rng.h"
#include "dataset/segment.h"

namespace safecross::fewshot {

using dataset::VideoSegment;

struct Episode {
  std::vector<const VideoSegment*> support;
  std::vector<const VideoSegment*> query;
};

struct EpisodeConfig {
  int n_way = 2;     // classes per episode (SafeCross is binary)
  int k_shot = 5;    // support segments per class
  int query_per_class = 5;
};

/// A task: one scene's segment pool (e.g. one simulated intersection /
/// weather condition).
struct Task {
  std::vector<const VideoSegment*> pool;
  std::string name;
};

/// Sample an episode from a task's pool. Classes with fewer than
/// k_shot + query_per_class samples reuse segments (sampling with
/// replacement) — matching the paper's tiny rain set (34 segments).
Episode sample_episode(const Task& task, const EpisodeConfig& config, safecross::Rng& rng);

/// Per-class index of a pool (class label -> segment pointers).
std::vector<std::vector<const VideoSegment*>> by_class(
    const std::vector<const VideoSegment*>& pool, int num_classes);

}  // namespace safecross::fewshot
