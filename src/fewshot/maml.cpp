#include "fewshot/maml.h"

#include <stdexcept>

#include "common/logging.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace safecross::fewshot {

namespace {

/// One full-set gradient evaluation: zero grads, forward, CE loss,
/// backward. Returns the loss; the gradients stay on the model's params.
float eval_gradients(models::VideoClassifier& model,
                     const std::vector<const VideoSegment*>& set) {
  std::vector<std::size_t> order(set.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<int> labels;
  const nn::Tensor batch = make_batch(set, order, 0, order.size(), labels);
  model.zero_grad();
  const nn::Tensor scores = model.forward(batch, /*training=*/true);
  nn::SoftmaxCrossEntropy ce;
  const float loss = ce.forward(scores, labels);
  model.backward(ce.grad());
  return loss;
}

}  // namespace

Maml::Maml(MamlConfig config) : config_(config), rng_(config.seed) {}

std::unique_ptr<models::VideoClassifier> Maml::adapt(
    models::VideoClassifier& model, const std::vector<const VideoSegment*>& support, int steps,
    float lr) {
  if (support.empty()) throw std::invalid_argument("Maml::adapt: empty support set");
  std::unique_ptr<models::VideoClassifier> adapted = model.clone();
  nn::SGD opt(adapted->params(), lr, /*momentum=*/0.0f);
  for (int k = 0; k < steps; ++k) {
    eval_gradients(*adapted, support);  // Eq. 1: theta_i^k update
    opt.step();
  }
  return adapted;
}

float Maml::meta_train(models::VideoClassifier& model, const std::vector<Task>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("Maml::meta_train: no tasks");
  const std::vector<nn::Param*> meta_params = model.params();
  float last_query_loss = 0.0f;

  for (int it = 0; it < config_.meta_iterations; ++it) {
    // Accumulate query gradients across the task batch.
    std::vector<nn::Tensor> grad_acc;
    grad_acc.reserve(meta_params.size());
    for (nn::Param* p : meta_params) grad_acc.push_back(nn::Tensor::zeros_like(p->value));

    double batch_loss = 0.0;
    for (int t = 0; t < config_.tasks_per_batch; ++t) {
      const Task& task = tasks[rng_.uniform_int(tasks.size())];
      const Episode ep = sample_episode(task, config_.episode, rng_);
      auto adapted = adapt(model, ep.support, config_.inner_steps, config_.inner_lr);
      batch_loss += eval_gradients(*adapted, ep.query);  // grad at theta_i^k
      const std::vector<nn::Param*> adapted_params = adapted->params();
      for (std::size_t i = 0; i < grad_acc.size(); ++i) {
        grad_acc[i].add_scaled(adapted_params[i]->grad, 1.0f / config_.tasks_per_batch);
      }
    }
    // Eq. 2 (first-order): theta <- theta - beta * mean query gradient.
    for (std::size_t i = 0; i < meta_params.size(); ++i) {
      meta_params[i]->value.add_scaled(grad_acc[i], -config_.outer_lr);
    }
    last_query_loss = static_cast<float>(batch_loss / config_.tasks_per_batch);
    if (config_.verbose) {
      log_info() << "maml iter " << it + 1 << "/" << config_.meta_iterations
                 << " query-loss=" << last_query_loss;
    }
  }
  return last_query_loss;
}

std::unique_ptr<models::VideoClassifier> fewshot_transfer(
    models::VideoClassifier& base, const std::vector<const VideoSegment*>& target_train,
    const TrainConfig& config) {
  std::unique_ptr<models::VideoClassifier> adapted = base.clone();
  train_classifier(*adapted, target_train, config);
  return adapted;
}

}  // namespace safecross::fewshot
