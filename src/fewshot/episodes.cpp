#include "fewshot/episodes.h"

#include <stdexcept>

namespace safecross::fewshot {

std::vector<std::vector<const VideoSegment*>> by_class(
    const std::vector<const VideoSegment*>& pool, int num_classes) {
  std::vector<std::vector<const VideoSegment*>> classes(static_cast<std::size_t>(num_classes));
  for (const VideoSegment* seg : pool) {
    const int label = seg->binary_label();
    if (label < 0 || label >= num_classes) throw std::out_of_range("by_class: label out of range");
    classes[static_cast<std::size_t>(label)].push_back(seg);
  }
  return classes;
}

Episode sample_episode(const Task& task, const EpisodeConfig& config, safecross::Rng& rng) {
  const auto classes = by_class(task.pool, config.n_way);
  for (int c = 0; c < config.n_way; ++c) {
    if (classes[static_cast<std::size_t>(c)].empty()) {
      throw std::runtime_error("sample_episode: task '" + task.name + "' has no samples of class " +
                               std::to_string(c));
    }
  }
  Episode ep;
  for (int c = 0; c < config.n_way; ++c) {
    const auto& cls = classes[static_cast<std::size_t>(c)];
    // With replacement when the class pool is smaller than the demand.
    const bool replace = cls.size() < static_cast<std::size_t>(config.k_shot + config.query_per_class);
    if (replace) {
      for (int i = 0; i < config.k_shot; ++i) ep.support.push_back(cls[rng.uniform_int(cls.size())]);
      for (int i = 0; i < config.query_per_class; ++i) ep.query.push_back(cls[rng.uniform_int(cls.size())]);
    } else {
      std::vector<const VideoSegment*> shuffled = cls;
      safecross::shuffle(shuffled, rng);
      for (int i = 0; i < config.k_shot; ++i) ep.support.push_back(shuffled[static_cast<std::size_t>(i)]);
      for (int i = 0; i < config.query_per_class; ++i) {
        ep.query.push_back(shuffled[static_cast<std::size_t>(config.k_shot + i)]);
      }
    }
  }
  return ep;
}

}  // namespace safecross::fewshot
