#pragma once
// Model-Agnostic Meta-Learning for the FL module (paper §III-D, Eq. 1-2).
//
// Implemented as first-order MAML (FOMAML): the inner loop performs k
// plain-SGD updates on the episode's support set (Eq. 1); the outer loop
// applies the *query-set gradient evaluated at the adapted parameters*
// to the meta-initialization (Eq. 2 without the second-order term —
// standard practice, and the paper's pipeline is insensitive to the
// distinction at this scale).
//
// The paper's deployment flow is also provided: `fewshot_transfer` takes
// the daytime basic model as the (meta-)initialization and adapts it to a
// rare-weather pool (rain/snow), producing the per-weather model the MS
// module switches to.

#include <memory>

#include "fewshot/episodes.h"
#include "fewshot/trainer.h"

namespace safecross::fewshot {

struct MamlConfig {
  EpisodeConfig episode;
  int inner_steps = 5;       // k gradient updates in Eq. 1
  float inner_lr = 0.05f;    // alpha
  float outer_lr = 0.02f;    // beta
  int meta_iterations = 20;
  int tasks_per_batch = 2;   // tasks averaged per outer update
  std::uint64_t seed = 0xFE57u;
  bool verbose = false;
};

class Maml {
 public:
  explicit Maml(MamlConfig config = {});

  /// Outer loop: improve `model` as a meta-initialization over the task
  /// distribution. Returns the mean query loss of the final iteration.
  float meta_train(models::VideoClassifier& model, const std::vector<Task>& tasks);

  /// Inner loop (Eq. 1): clone `model` and take `steps` SGD updates on
  /// the support set (full-support batches).
  static std::unique_ptr<models::VideoClassifier> adapt(
      models::VideoClassifier& model, const std::vector<const VideoSegment*>& support, int steps,
      float lr);

  const MamlConfig& config() const { return config_; }

 private:
  MamlConfig config_;
  safecross::Rng rng_;
};

/// Paper deployment flow: adapt the (daytime) basic model to a rare-
/// weather pool by fine-tuning from its weights — the "with few-shot
/// learning" arm of Tables III and V.
std::unique_ptr<models::VideoClassifier> fewshot_transfer(
    models::VideoClassifier& base, const std::vector<const VideoSegment*>& target_train,
    const TrainConfig& config);

}  // namespace safecross::fewshot
