#pragma once
// Supervised training and evaluation of video classifiers on labeled
// segments. Used directly for the basic (daytime) model and the
// "without few-shot learning" ablation arms, and as the inner machinery
// of the MAML adapters.

#include <vector>

#include "common/stats.h"
#include "dataset/segment.h"
#include "models/video_classifier.h"

namespace safecross::fewshot {

using dataset::VideoSegment;

struct TrainConfig {
  int epochs = 12;
  int batch_size = 8;
  float lr = 0.02f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  bool hinge_loss = false;  // C3D's linear-SVM criterion
  std::uint64_t seed = 99u;
  bool verbose = false;
};

struct EvalResult {
  safecross::ConfusionMatrix confusion;
  float mean_loss = 0.0f;

  double top1() const { return confusion.top1_accuracy(); }
  double mean_class() const { return confusion.mean_class_accuracy(); }
};

/// Views into a segment store by index list (from dataset::DatasetSplit).
std::vector<const VideoSegment*> select(const std::vector<VideoSegment>& segments,
                                        const std::vector<std::size_t>& indices);

/// Pack a batch of segments into a (N, 1, T, H, W) tensor + labels.
nn::Tensor make_batch(const std::vector<const VideoSegment*>& segments,
                      const std::vector<std::size_t>& order, std::size_t begin, std::size_t end,
                      std::vector<int>& labels_out);

/// SGD training loop over shuffled minibatches. Returns final epoch's
/// mean training loss.
float train_classifier(models::VideoClassifier& model,
                       const std::vector<const VideoSegment*>& train_set,
                       const TrainConfig& config);

/// Evaluate (eval mode, no grad) on a segment set.
EvalResult evaluate(models::VideoClassifier& model,
                    const std::vector<const VideoSegment*>& eval_set, bool hinge_loss = false);

}  // namespace safecross::fewshot
