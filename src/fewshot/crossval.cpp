#include "fewshot/crossval.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace safecross::fewshot {

CrossValResult k_fold_cross_validate(const ModelFactory& factory,
                                     const std::vector<const VideoSegment*>& pool, int k,
                                     const TrainConfig& train_config, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("k_fold_cross_validate: k must be >= 2");
  if (pool.size() < static_cast<std::size_t>(k)) {
    throw std::invalid_argument("k_fold_cross_validate: pool smaller than k");
  }

  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  safecross::Rng rng(seed);
  safecross::shuffle(order, rng);

  CrossValResult result;
  result.folds = static_cast<std::size_t>(k);
  double sum = 0.0, sq = 0.0, mc_sum = 0.0;
  for (int fold = 0; fold < k; ++fold) {
    std::vector<const VideoSegment*> train, test;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(k)) == fold) {
        test.push_back(pool[order[i]]);
      } else {
        train.push_back(pool[order[i]]);
      }
    }
    auto model = factory();
    TrainConfig cfg = train_config;
    cfg.seed = seed ^ (0x1000u + static_cast<std::uint64_t>(fold));
    train_classifier(*model, train, cfg);
    const EvalResult eval = evaluate(*model, test);
    sum += eval.top1();
    sq += eval.top1() * eval.top1();
    mc_sum += eval.mean_class();
    result.total_evaluated += test.size();
  }
  result.mean_top1 = sum / k;
  result.mean_class_acc = mc_sum / k;
  result.stddev_top1 = std::sqrt(std::max(0.0, sq / k - result.mean_top1 * result.mean_top1));
  return result;
}

}  // namespace safecross::fewshot
