#include "sim/vehicle.h"

#include <algorithm>
#include <cmath>

namespace safecross::sim {

const char* vehicle_type_name(VehicleType t) {
  switch (t) {
    case VehicleType::Car: return "car";
    case VehicleType::Van: return "van";
    case VehicleType::Truck: return "truck";
  }
  return "?";
}

VehicleDims vehicle_dims(VehicleType t) {
  switch (t) {
    case VehicleType::Car: return {4.5, 1.8};
    case VehicleType::Van: return {6.5, 2.2};
    case VehicleType::Truck: return {10.0, 2.5};
  }
  return {4.5, 1.8};
}

bool is_view_blocking(VehicleType t) { return t != VehicleType::Car; }

void advance_vehicle(Vehicle& v, double dt, double gap_to_obstruction, double accel_limit,
                     double brake_limit) {
  // Desired: free speed, unless the obstruction forces braking.
  double accel = accel_limit * (1.0 - v.speed / std::max(v.free_speed, 0.1));

  if (gap_to_obstruction < 1e9) {
    // Brake so that we can stop `min_gap` short of the obstruction with
    // comfortable deceleration; emergency-brake if closer than that.
    const double min_gap = 2.0;
    const double gap = gap_to_obstruction - min_gap;
    if (gap <= 0.0) {
      accel = -brake_limit;
    } else {
      // Speed admissible at this distance under comfortable braking
      // (60% of the friction limit): v_adm = sqrt(2 * 0.6 b * gap).
      const double v_adm = std::sqrt(2.0 * 0.6 * brake_limit * gap);
      if (v.speed > v_adm) {
        const double needed = (v.speed * v.speed - v_adm * v_adm) / (2.0 * gap);
        accel = -std::min(brake_limit, needed);
      }
    }
  }

  v.speed = std::clamp(v.speed + accel * dt, 0.0, v.free_speed * 1.05);
  v.s += v.speed * dt;
}

}  // namespace safecross::sim
