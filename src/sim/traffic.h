#pragma once
// The intersection traffic simulator — the substrate that replaces the
// paper's 180-day Belarus surveillance feed.
//
// Poisson arrivals feed four routes; left-turning routes hold at their
// stop line until a gap-acceptance check against conflicting through
// traffic passes. Oncoming blockers (vans/trucks waiting to turn left on
// the opposite side) create the blind areas the paper studies. The
// simulator exposes the *ground truth* needed to label segments exactly
// the way the paper labels them: whether a blind area exists (big vehicle
// opposite), whether the subject turned (keyframe = front wheel on the
// lane line), and whether the danger zone held a threat.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/intersection.h"
#include "sim/vehicle.h"
#include "sim/weather.h"

namespace safecross::sim {

struct TrafficConfig {
  double dt = 1.0 / 30.0;        // matches the paper's 30 Hz frame rate
  double critical_gap_s = 5.0;   // base gap drivers demand before turning
  double blocker_critical_gap_s = 6.5;  // opposite-side turners are more cautious
  // Pedestrian arrivals per second per crosswalk. 0 (default) disables
  // pedestrians entirely — they are the "blind spot pedestrian warning"
  // extension (§VI-B), not part of the paper's core scenario.
  double pedestrian_rate = 0.0;
};

/// A pedestrian on one of the two crosswalks (north exit / south exit of
/// the junction). Walks across the crossing road at walking speed; left
/// turners completing their turn must yield.
struct Pedestrian {
  std::uint64_t id = 0;
  int crosswalk = 0;     // 0 = north (EB-left exit), 1 = south (WB-left exit)
  double progress = 0.0; // metres walked from the crosswalk's start
  double speed = 1.3;    // m/s
  int direction = 1;     // +1 walks +x, -1 walks -x
};

/// The two left-turn approaches SafeCross can guard at this junction
/// (the paper's future work asks for all four directions; the east-west
/// pair is the symmetric core — each side's waiters are the other side's
/// blockers).
enum class Approach { EastboundLeft = 0, WestboundLeft = 1 };
constexpr int kNumApproaches = 2;

const char* approach_name(Approach a);

class TrafficSimulator {
 public:
  TrafficSimulator(WeatherParams weather, std::uint64_t seed, IntersectionGeometry geometry = {},
                   TrafficConfig config = {});

  /// Advance one step of config().dt seconds.
  void step();

  double time() const { return time_; }
  const TrafficConfig& config() const { return config_; }
  const Intersection& intersection() const { return intersection_; }
  const WeatherParams& weather() const { return weather_; }
  const std::vector<Vehicle>& vehicles() const { return vehicles_; }

  /// World position of a vehicle's front bumper.
  Point2 position(const Vehicle& v) const;
  /// Unit heading of a vehicle.
  Point2 heading(const Vehicle& v) const;

  // --- ground truth for labeling (per approach; the no-argument
  // overloads keep the paper's primary EastboundLeft scenario terse) ---

  /// The left-turner whose decision is "live" on the given approach: the
  /// one nearest its stop line that has not yet passed the keyframe point.
  const Vehicle* subject(Approach approach) const;
  const Vehicle* subject() const { return subject(Approach::EastboundLeft); }

  /// The opposite-side left-waiting vehicle at its stop line, if any —
  /// the potential view blocker for this approach's subject.
  const Vehicle* blocker(Approach approach) const;
  const Vehicle* blocker() const { return blocker(Approach::EastboundLeft); }

  /// True when blocker() exists and is big enough to occlude (van/truck) —
  /// the paper's "segment with a blind area" rule.
  bool blind_area_present(Approach approach) const;
  bool blind_area_present() const { return blind_area_present(Approach::EastboundLeft); }

  /// Seconds until the nearest oncoming through vehicle reaches the
  /// approach's conflict point; +inf when the lane is empty.
  double nearest_threat_gap_s(Approach approach) const;
  double nearest_threat_gap_s() const { return nearest_threat_gap_s(Approach::EastboundLeft); }

  /// True when it is unsafe to turn right now: a threat reaches the
  /// conflict point within the weather-adjusted gap this approach's
  /// drivers demand. This is the binary class-0/class-1 label truth.
  bool dangerous_to_turn(Approach approach) const;
  bool dangerous_to_turn() const { return dangerous_to_turn(Approach::EastboundLeft); }

  /// X-coordinate of the point where the approach's turn path crosses the
  /// oncoming through lane.
  double conflict_x(Approach approach) const;
  double conflict_x() const { return conflict_x(Approach::EastboundLeft); }

  /// Vehicle ids whose turn keyframe (front wheel on the lane line) fired
  /// during the *last* step() call.
  const std::vector<std::uint64_t>& turn_keyframes(Approach approach) const {
    return keyframes_[static_cast<std::size_t>(approach)];
  }
  const std::vector<std::uint64_t>& turn_keyframes() const {
    return turn_keyframes(Approach::EastboundLeft);
  }

  /// Count of completed left turns on an approach since construction.
  std::uint64_t completed_turns(Approach approach) const {
    return completed_turns_[static_cast<std::size_t>(approach)];
  }
  std::uint64_t completed_turns() const { return completed_turns(Approach::EastboundLeft); }

  // --- pedestrians (extension; empty unless config.pedestrian_rate > 0) ---

  const std::vector<Pedestrian>& pedestrians() const { return pedestrians_; }

  /// World position of a pedestrian.
  Point2 pedestrian_position(const Pedestrian& p) const;

  /// True when a pedestrian is inside the approach's exit corridor on its
  /// crosswalk — the turner must yield even if the vehicle gap is open.
  bool pedestrian_conflict(Approach approach) const;

  /// Crosswalk centre-line y coordinate (0 = north, 1 = south).
  double crosswalk_y(int crosswalk) const;

  // --- checkpoint serialization ---
  // Captures the full dynamic state (RNG stream, clock, every vehicle and
  // pedestrian, spawn timers, keyframe/turn tallies) so a restored
  // simulator continues the *same* trajectory bit-exactly. Static inputs
  // (weather, geometry, config) are reconstruction parameters, not state —
  // the owner must rebuild the simulator from the same config first.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  void maybe_spawn();
  void spawn(RouteId route);
  void update_pedestrians();
  void update_route(RouteId route);
  bool gap_acceptable(const Vehicle& v) const;
  double accel_limit() const;
  double brake_limit() const;

  TrafficConfig config_;
  WeatherParams weather_;
  Intersection intersection_;
  safecross::Rng rng_;
  double time_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::vector<Vehicle> vehicles_;
  std::vector<double> next_spawn_;  // per-route next arrival time
  std::array<std::vector<std::uint64_t>, kNumApproaches> keyframes_;
  std::array<std::uint64_t, kNumApproaches> completed_turns_{};
  std::vector<Pedestrian> pedestrians_;
  std::array<double, 2> next_pedestrian_{};  // per-crosswalk next arrival
};

}  // namespace safecross::sim
