#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safecross::sim {

namespace {
constexpr double kGravity = 9.81;
constexpr double kKeyframeOffset = 0.5;  // metres past the stop line = "wheel on the line"

double route_rate(RouteId route, const WeatherParams& w) {
  switch (route) {
    case RouteId::WestboundThrough: return w.through_rate;
    case RouteId::WestboundLeftWait: return w.blocker_rate;
    case RouteId::EastboundLeft: return w.left_turn_rate;
    case RouteId::EastboundThrough: return w.through_rate * 0.8;
  }
  return 0.0;
}

bool yields(RouteId route) {
  return route == RouteId::EastboundLeft || route == RouteId::WestboundLeftWait;
}

RouteId subject_route(Approach a) {
  return a == Approach::EastboundLeft ? RouteId::EastboundLeft : RouteId::WestboundLeftWait;
}

RouteId threat_route(Approach a) {
  return a == Approach::EastboundLeft ? RouteId::WestboundThrough : RouteId::EastboundThrough;
}

}  // namespace

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::EastboundLeft: return "eastbound-left";
    case Approach::WestboundLeft: return "westbound-left";
  }
  return "?";
}

TrafficSimulator::TrafficSimulator(WeatherParams weather, std::uint64_t seed,
                                   IntersectionGeometry geometry, TrafficConfig config)
    : config_(config), weather_(weather), intersection_(geometry), rng_(seed) {
  next_spawn_.resize(kNumRoutes);
  for (int r = 0; r < kNumRoutes; ++r) {
    const double rate = route_rate(static_cast<RouteId>(r), weather_);
    next_spawn_[r] = rate > 0.0 ? rng_.exponential(rate) : std::numeric_limits<double>::infinity();
  }
  for (int c = 0; c < 2; ++c) {
    next_pedestrian_[c] = config_.pedestrian_rate > 0.0
                              ? rng_.exponential(config_.pedestrian_rate)
                              : std::numeric_limits<double>::infinity();
  }
}

double TrafficSimulator::crosswalk_y(int crosswalk) const {
  const auto& g = intersection_.geometry();
  // Just outside the junction box on the crossing (north-south) road.
  return crosswalk == 0 ? g.center_y - 2.0 * g.lane_width - 1.5
                        : g.center_y + 2.0 * g.lane_width + 1.5;
}

Point2 TrafficSimulator::pedestrian_position(const Pedestrian& p) const {
  const auto& g = intersection_.geometry();
  const double span = 3.0 * g.lane_width;  // crosswalk length across the NS road
  const double start_x = g.center_x - 1.5 * g.lane_width;
  const double x = p.direction > 0 ? start_x + p.progress : start_x + span - p.progress;
  return {x, crosswalk_y(p.crosswalk)};
}

bool TrafficSimulator::pedestrian_conflict(Approach approach) const {
  const auto& g = intersection_.geometry();
  // The turner's exit corridor crosses crosswalk 0 (EB-left exits north)
  // or crosswalk 1 (WB-left exits south).
  const int crosswalk = approach == Approach::EastboundLeft ? 0 : 1;
  const double exit_x = approach == Approach::EastboundLeft ? g.center_x + 0.5 * g.lane_width
                                                            : g.center_x - 0.5 * g.lane_width;
  for (const Pedestrian& p : pedestrians_) {
    if (p.crosswalk != crosswalk) continue;
    if (std::abs(pedestrian_position(p).x - exit_x) < 2.5) return true;
  }
  return false;
}

void TrafficSimulator::update_pedestrians() {
  const auto& g = intersection_.geometry();
  const double span = 3.0 * g.lane_width;
  for (int c = 0; c < 2; ++c) {
    if (time_ < next_pedestrian_[static_cast<std::size_t>(c)]) continue;
    Pedestrian p;
    p.id = next_id_++;
    p.crosswalk = c;
    p.speed = 1.3 * rng_.uniform(0.8, 1.2);
    p.direction = rng_.bernoulli(0.5) ? 1 : -1;
    pedestrians_.push_back(p);
    next_pedestrian_[static_cast<std::size_t>(c)] =
        time_ + rng_.exponential(config_.pedestrian_rate);
  }
  for (Pedestrian& p : pedestrians_) p.progress += p.speed * config_.dt;
  std::erase_if(pedestrians_, [&](const Pedestrian& p) { return p.progress >= span; });
}

double TrafficSimulator::accel_limit() const {
  return 2.5 * std::min(1.0, weather_.friction / 0.7);
}

double TrafficSimulator::brake_limit() const { return weather_.friction * kGravity; }

Point2 TrafficSimulator::position(const Vehicle& v) const {
  return intersection_.route(v.route).position(v.s);
}

Point2 TrafficSimulator::heading(const Vehicle& v) const {
  return intersection_.route(v.route).tangent(v.s);
}

void TrafficSimulator::spawn(RouteId route) {
  Vehicle v;
  v.id = next_id_++;
  v.route = route;
  // Bigger vehicles dominate the opposite left-wait route — they are the
  // blockers the scenario needs; elsewhere cars dominate.
  const double roll = rng_.uniform();
  if (route == RouteId::WestboundLeftWait) {
    v.type = roll < 0.5 ? VehicleType::Truck : (roll < 0.8 ? VehicleType::Van : VehicleType::Car);
  } else {
    v.type = roll < 0.85 ? VehicleType::Car : (roll < 0.95 ? VehicleType::Van : VehicleType::Truck);
  }
  const VehicleDims dims = vehicle_dims(v.type);
  v.length = dims.length;
  v.width = dims.width;
  v.s = v.length;  // front bumper just inside the world
  v.free_speed = 13.9 * weather_.speed_factor * rng_.uniform(0.9, 1.1);
  v.speed = v.free_speed * rng_.uniform(0.8, 1.0);
  v.intensity = rng_.uniform(0.5, 0.95);
  v.aggressiveness = rng_.normal(0.0, weather_.driver_sigma_s);
  vehicles_.push_back(v);
}

void TrafficSimulator::maybe_spawn() {
  for (int r = 0; r < kNumRoutes; ++r) {
    if (time_ < next_spawn_[r]) continue;
    // Entry must be clear: no vehicle still occupying the first metres.
    const auto route = static_cast<RouteId>(r);
    bool clear = true;
    for (const Vehicle& v : vehicles_) {
      if (v.route == route && v.rear_s() < vehicle_dims(VehicleType::Truck).length + 3.0) {
        clear = false;
        break;
      }
    }
    if (!clear) continue;  // retry next step without rescheduling
    spawn(route);
    const double rate = route_rate(route, weather_);
    next_spawn_[r] = time_ + rng_.exponential(rate);
  }
}

double TrafficSimulator::conflict_x(Approach approach) const {
  const auto& g = intersection_.geometry();
  // The turner crosses the oncoming through lane at its exit lane's x.
  return approach == Approach::EastboundLeft ? g.center_x + 0.5 * g.lane_width
                                             : g.center_x - 0.5 * g.lane_width;
}

double TrafficSimulator::nearest_threat_gap_s(Approach approach) const {
  const double cx = conflict_x(approach);
  // Oncoming traffic travels -x toward the EB subject, +x toward the WB
  // subject; `toward` gives the signed distance still to cover.
  const double dir = approach == Approach::EastboundLeft ? 1.0 : -1.0;
  const RouteId lane = threat_route(approach);
  double best = std::numeric_limits<double>::infinity();
  for (const Vehicle& v : vehicles_) {
    if (v.route != lane) continue;
    const double to_conflict = (position(v).x - cx) * dir;
    if (to_conflict < -3.0) continue;     // already past the conflict point
    if (to_conflict < 3.0) return 0.0;    // inside the conflict box right now
    best = std::min(best, to_conflict / std::max(v.speed, 1.0));
  }
  return best;
}

bool TrafficSimulator::dangerous_to_turn(Approach approach) const {
  // Each approach's population has its own demanded gap (WB waiters are
  // the more cautious crowd); the label truth matches the behaviour.
  const double base = approach == Approach::EastboundLeft ? config_.critical_gap_s
                                                          : config_.blocker_critical_gap_s;
  return nearest_threat_gap_s(approach) < base + weather_.gap_margin_s;
}

bool TrafficSimulator::gap_acceptable(const Vehicle& v) const {
  if (v.route == RouteId::EastboundLeft) {
    const double demand = std::max(
        2.0, config_.critical_gap_s + weather_.gap_margin_s - v.aggressiveness);
    return nearest_threat_gap_s(Approach::EastboundLeft) > demand &&
           !pedestrian_conflict(Approach::EastboundLeft);
  }
  // WestboundLeftWait yields to eastbound through traffic and pedestrians.
  const double demand = std::max(
      2.5, config_.blocker_critical_gap_s + weather_.gap_margin_s - v.aggressiveness);
  return nearest_threat_gap_s(Approach::WestboundLeft) > demand &&
         !pedestrian_conflict(Approach::WestboundLeft);
}

void TrafficSimulator::update_route(RouteId route) {
  // Collect indices on this route ordered by decreasing s (leader first).
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (vehicles_[i].route == route) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return vehicles_[a].s > vehicles_[b].s; });

  const double stop_s = intersection_.stop_line_s(route);
  const Vehicle* leader = nullptr;
  for (const std::size_t idx : order) {
    Vehicle& v = vehicles_[idx];
    double gap = std::numeric_limits<double>::max();
    if (leader != nullptr) gap = leader->rear_s() - v.s;

    if (yields(route) && v.state != DriverState::Proceeding && v.state != DriverState::Done) {
      if (v.s < stop_s - 0.6) {
        // Approach: brake for the stop line (and the leader, whichever is
        // closer). The controller rests ~2 m short of its obstruction, so
        // aim past the line to come to rest just behind it.
        v.state = DriverState::Cruising;
        gap = std::min(gap, stop_s + 1.7 - v.s);
      } else {
        // At the line: hold until the gap opens.
        v.state = DriverState::HoldingAtStop;
        v.speed = 0.0;
        v.hold_time += config_.dt;
        if (gap_acceptable(v)) v.state = DriverState::Proceeding;
        leader = &v;
        continue;
      }
    }

    const bool was_before_keyframe = v.s < stop_s + kKeyframeOffset;
    advance_vehicle(v, config_.dt, gap, accel_limit(), brake_limit());

    if (yields(route) && was_before_keyframe && v.s >= stop_s + kKeyframeOffset &&
        v.state == DriverState::Proceeding) {
      const Approach approach = route == RouteId::EastboundLeft ? Approach::EastboundLeft
                                                                : Approach::WestboundLeft;
      keyframes_[static_cast<std::size_t>(approach)].push_back(v.id);
      ++completed_turns_[static_cast<std::size_t>(approach)];
    }
    leader = &v;
  }
}

void TrafficSimulator::step() {
  for (auto& k : keyframes_) k.clear();
  maybe_spawn();
  if (config_.pedestrian_rate > 0.0) update_pedestrians();
  for (int r = 0; r < kNumRoutes; ++r) update_route(static_cast<RouteId>(r));
  // Remove vehicles that have fully left their route.
  std::erase_if(vehicles_, [&](const Vehicle& v) {
    return v.rear_s() >= intersection_.route(v.route).length();
  });
  time_ += config_.dt;
}

const Vehicle* TrafficSimulator::subject(Approach approach) const {
  const RouteId route = subject_route(approach);
  const double stop_s = intersection_.stop_line_s(route);
  const Vehicle* best = nullptr;
  for (const Vehicle& v : vehicles_) {
    if (v.route != route) continue;
    if (v.s >= stop_s + kKeyframeOffset) continue;  // already past the keyframe
    if (best == nullptr || v.s > best->s) best = &v;
  }
  return best;
}

const Vehicle* TrafficSimulator::blocker(Approach approach) const {
  // This approach's blocker is the OTHER side's left-waiting vehicle.
  const RouteId route = subject_route(approach == Approach::EastboundLeft
                                          ? Approach::WestboundLeft
                                          : Approach::EastboundLeft);
  const double stop_s = intersection_.stop_line_s(route);
  const Vehicle* best = nullptr;
  for (const Vehicle& v : vehicles_) {
    if (v.route != route) continue;
    // "At the line": holding, or crawling within a car length of it, or
    // just entering the turn (still physically in front of the subject).
    if (v.s < stop_s - 8.0 || v.s > stop_s + 6.0) continue;
    if (best == nullptr || std::abs(v.s - stop_s) < std::abs(best->s - stop_s)) best = &v;
  }
  return best;
}

bool TrafficSimulator::blind_area_present(Approach approach) const {
  const Vehicle* b = blocker(approach);
  return b != nullptr && is_view_blocking(b->type);
}

void TrafficSimulator::save_state(common::StateWriter& w) const {
  rng_.save_state(w);
  w.f64(time_);
  w.u64(next_id_);

  w.u64(vehicles_.size());
  for (const Vehicle& v : vehicles_) {
    w.u64(v.id);
    w.u8(static_cast<std::uint8_t>(v.route));
    w.u8(static_cast<std::uint8_t>(v.type));
    w.f64(v.s);
    w.f64(v.speed);
    w.f64(v.free_speed);
    w.f64(v.length);
    w.f64(v.width);
    w.f64(v.intensity);
    w.u8(static_cast<std::uint8_t>(v.state));
    w.f64(v.hold_time);
    w.f64(v.aggressiveness);
  }

  w.u64(next_spawn_.size());
  for (double t : next_spawn_) w.f64(t);

  for (const auto& keys : keyframes_) {
    w.u64(keys.size());
    for (std::uint64_t id : keys) w.u64(id);
  }
  for (std::uint64_t n : completed_turns_) w.u64(n);

  w.u64(pedestrians_.size());
  for (const Pedestrian& p : pedestrians_) {
    w.u64(p.id);
    w.i32(p.crosswalk);
    w.f64(p.progress);
    w.f64(p.speed);
    w.i32(p.direction);
  }
  for (double t : next_pedestrian_) w.f64(t);
}

void TrafficSimulator::load_state(common::StateReader& r) {
  rng_.load_state(r);
  time_ = r.f64();
  next_id_ = r.u64();

  const std::uint64_t n_vehicles = r.u64();
  vehicles_.clear();
  vehicles_.reserve(static_cast<std::size_t>(n_vehicles));
  for (std::uint64_t i = 0; i < n_vehicles; ++i) {
    Vehicle v;
    v.id = r.u64();
    v.route = static_cast<RouteId>(r.u8());
    v.type = static_cast<VehicleType>(r.u8());
    v.s = r.f64();
    v.speed = r.f64();
    v.free_speed = r.f64();
    v.length = r.f64();
    v.width = r.f64();
    v.intensity = r.f64();
    v.state = static_cast<DriverState>(r.u8());
    v.hold_time = r.f64();
    v.aggressiveness = r.f64();
    vehicles_.push_back(v);
  }

  const std::uint64_t n_spawn = r.u64();
  next_spawn_.clear();
  next_spawn_.reserve(static_cast<std::size_t>(n_spawn));
  for (std::uint64_t i = 0; i < n_spawn; ++i) next_spawn_.push_back(r.f64());

  for (auto& keys : keyframes_) {
    const std::uint64_t n = r.u64();
    keys.clear();
    keys.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) keys.push_back(r.u64());
  }
  for (std::uint64_t& n : completed_turns_) n = r.u64();

  const std::uint64_t n_peds = r.u64();
  pedestrians_.clear();
  pedestrians_.reserve(static_cast<std::size_t>(n_peds));
  for (std::uint64_t i = 0; i < n_peds; ++i) {
    Pedestrian p;
    p.id = r.u64();
    p.crosswalk = r.i32();
    p.progress = r.f64();
    p.speed = r.f64();
    p.direction = r.i32();
    pedestrians_.push_back(p);
  }
  for (double& t : next_pedestrian_) t = r.f64();
}

}  // namespace safecross::sim
