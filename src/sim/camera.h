#pragma once
// Roadside surveillance camera model.
//
// Renders the simulated intersection into a grayscale frame the way the
// paper's decades-old camera sees it: an oblique perspective (far edge of
// the scene compressed), low resolution, static scene texture, per-frame
// sensor noise, and weather artefacts (rain streaks / snow flakes). The
// projection is an exact planar homography, so the VP pipeline can invert
// it to produce the paper's 2-D top-down representation.
//
// Also provides the ground-truth top-down rasterizer (the "ideal VP"
// output) used for fast dataset generation.

#include "common/rng.h"
#include "sim/traffic.h"
#include "vision/homography.h"
#include "vision/image.h"

namespace safecross::sim {

struct CameraConfig {
  int width = 256;           // quarter-ish scale of the paper's 1376x776 feed
  int height = 144;
  double far_y_fraction = 0.24;   // image y (fraction) of the scene's far edge
  double far_x_margin = 0.26;     // horizontal inset of the far edge (perspective)
  bool low_quality_blur = true;   // extra box blur to mimic an old camera
};

class CameraModel {
 public:
  explicit CameraModel(IntersectionGeometry geometry, CameraConfig config = {});

  const CameraConfig& config() const { return config_; }

  /// Ground (metres) -> image (pixels) homography.
  const vision::Homography& ground_to_image() const { return ground_to_image_; }

  /// The static scene (roads, markings, grass, sky) without vehicles or
  /// per-frame noise.
  const vision::Image& background() const { return background_; }

  /// Full camera frame at the simulator's current state. `view`, when
  /// non-null, is an extrinsic perturbation homography (ideal pixel ->
  /// perturbed pixel, e.g. FaultInjector::view_perturbation()): the
  /// background is warped through it and every projected quad composes
  /// it onto the ground->image mapping, so the rendered view really
  /// moves. Null reproduces the unperturbed frame bit-identically.
  vision::Image render(const TrafficSimulator& sim, safecross::Rng& rng,
                       const vision::Homography* view = nullptr) const;

  /// Deterministic clean frame (scene + weather ambient/fog + blur, no
  /// per-frame rain/snow/sensor noise and no RNG): what the calibration
  /// estimator samples, so a recalibration solve carries no hidden RNG
  /// state into checkpoints.
  vision::Image render_view(const TrafficSimulator& sim,
                            const vision::Homography* view = nullptr) const;

  /// Static reference for calibration: the background under the current
  /// weather's deterministic effects (ambient, fog, blur) with no
  /// vehicles or pedestrians — moving objects in a live frame become
  /// RANSAC outliers against this.
  vision::Image reference_view(const TrafficSimulator& sim) const;

  /// Ground-truth occupancy of moving vehicles on a gw x gh top-down grid
  /// covering the whole world rectangle (the ideal output of the VP
  /// pipeline; used by the fast dataset path).
  vision::Image rasterize_topdown(const TrafficSimulator& sim, int grid_w, int grid_h,
                                  double min_speed = 0.5) const;

  /// rasterize_topdown through an explicit ground (metres) -> grid
  /// mapping instead of the ideal axis-aligned scale: the fast dataset
  /// path under a geometric perturbation, where the effective mapping is
  /// image_to_grid ∘ view_perturbation ∘ ground_to_image.
  vision::Image rasterize_topdown_mapped(const TrafficSimulator& sim, int grid_w, int grid_h,
                                         const vision::Homography& ground_to_grid,
                                         double min_speed = 0.5) const;

  /// Homography mapping camera-image pixels to top-down grid cells, for
  /// warping foreground masks into the 2-D representation (Fig. 3c).
  vision::Homography image_to_grid(int grid_w, int grid_h) const;

  /// Image-space footprint corners of one vehicle (for tests/diagnostics).
  std::array<vision::Point2, 4> vehicle_quad_image(const TrafficSimulator& sim,
                                                   const Vehicle& v) const;

  /// Per-pixel distance (metres) from the camera's near edge to the
  /// ground point under the pixel (sky pixels get the far limit). Drives
  /// the fog extinction model.
  const vision::Image& depth_map() const { return depth_; }

 private:
  vision::Image render_background() const;
  vision::Image render_depth() const;
  vision::Image render_scene(const TrafficSimulator& sim, const vision::Homography* view) const;

  IntersectionGeometry geometry_;
  CameraConfig config_;
  vision::Homography ground_to_image_;
  vision::Image background_;
  vision::Image depth_;
};

/// Fill a convex quadrilateral into `img` with `value` (used by both the
/// camera renderer and the top-down rasterizer).
void fill_convex_quad(vision::Image& img, const std::array<vision::Point2, 4>& quad, float value);

}  // namespace safecross::sim
