#include "sim/camera.h"

#include <algorithm>
#include <cmath>

namespace safecross::sim {

using vision::Homography;
using vision::Image;
using vision::Point2;

namespace {

// Deterministic per-pixel hash noise in [0, 1) for static scene texture.
float hash_noise(int x, int y) {
  std::uint32_t h = static_cast<std::uint32_t>(x) * 374761393u + static_cast<std::uint32_t>(y) * 668265263u;
  h = (h ^ (h >> 13)) * 1274126177u;
  return static_cast<float>(h ^ (h >> 16)) / 4294967296.0f;
}

}  // namespace

void fill_convex_quad(Image& img, const std::array<Point2, 4>& quad, float value) {
  double min_x = quad[0].x, max_x = quad[0].x, min_y = quad[0].y, max_y = quad[0].y;
  for (const auto& p : quad) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(max_x)));
  const int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(max_y)));

  // Point-in-convex-polygon: consistent sign of all edge cross products.
  auto inside = [&](double px, double py) {
    int sign = 0;
    for (int i = 0; i < 4; ++i) {
      const Point2& a = quad[i];
      const Point2& b = quad[(i + 1) % 4];
      const double cross = (b.x - a.x) * (py - a.y) - (b.y - a.y) * (px - a.x);
      if (std::fabs(cross) < 1e-12) continue;
      const int s = cross > 0 ? 1 : -1;
      if (sign == 0) {
        sign = s;
      } else if (s != sign) {
        return false;
      }
    }
    return true;
  };

  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (inside(x + 0.5, y + 0.5)) img.at(x, y) = value;
    }
  }
}

CameraModel::CameraModel(IntersectionGeometry geometry, CameraConfig config)
    : geometry_(geometry), config_(config) {
  const double w = config_.width;
  const double h = config_.height;
  const double far_y = config_.far_y_fraction * h;
  const double inset = config_.far_x_margin * w;
  // Near edge (ground y = world_height, close to the camera) spans the
  // full image width at the bottom; far edge is inset and high.
  const std::vector<Point2> ground = {{0.0, geometry_.world_height},
                                      {geometry_.world_width, geometry_.world_height},
                                      {0.0, 0.0},
                                      {geometry_.world_width, 0.0}};
  const std::vector<Point2> image = {{0.0, h - 1.0},
                                     {w - 1.0, h - 1.0},
                                     {inset, far_y},
                                     {w - 1.0 - inset, far_y}};
  ground_to_image_ = Homography::fit(ground, image);
  background_ = render_background();
  depth_ = render_depth();
}

vision::Image CameraModel::render_depth() const {
  Image depth(config_.width, config_.height, 0.0f);
  const Homography image_to_ground = ground_to_image_.inverse();
  const float far_limit = static_cast<float>(geometry_.world_height);
  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      const Point2 p = image_to_ground.apply({static_cast<double>(x), static_cast<double>(y)});
      if (p.y < 0.0 || p.y > geometry_.world_height) {
        depth.at(x, y) = far_limit;  // sky / beyond the scene
      } else {
        depth.at(x, y) = static_cast<float>(geometry_.world_height - p.y);
      }
    }
  }
  return depth;
}

vision::Image CameraModel::render_background() const {
  const auto& g = geometry_;
  Image bg(config_.width, config_.height, 0.0f);
  const Homography image_to_ground = ground_to_image_.inverse();
  const double road_half = 2.0 * g.lane_width;
  const double ns_half = 1.0 * g.lane_width;
  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      const Point2 p = image_to_ground.apply({static_cast<double>(x), static_cast<double>(y)});
      float v;
      if (p.y < 0.0 || p.y > g.world_height || p.x < -20.0 || p.x > g.world_width + 20.0) {
        v = 0.55f;  // sky / beyond the scene
      } else {
        const bool on_ew = std::fabs(p.y - g.center_y) <= road_half;
        const bool on_ns = std::fabs(p.x - g.center_x) <= ns_half;
        if (on_ew || on_ns) {
          v = 0.35f;  // asphalt
          // Dashed lane markings on the EW road, skipping the junction box.
          if (on_ew && !on_ns) {
            for (int k = -1; k <= 1; ++k) {
              const double line_y = g.center_y + k * g.lane_width;
              if (std::fabs(p.y - line_y) < 0.15 &&
                  (static_cast<int>(std::floor(p.x / 3.0)) % 2 == 0)) {
                v = 0.8f;
              }
            }
          }
        } else {
          v = 0.18f;  // grass / sidewalks
        }
      }
      // Static texture so the scene is not flat (helps make sparse optical
      // flow latch onto the background, as in the paper's Fig. 8b).
      bg.at(x, y) = v + 0.05f * (hash_noise(x, y) - 0.5f);
    }
  }
  return bg;
}

std::array<Point2, 4> CameraModel::vehicle_quad_image(const TrafficSimulator& sim,
                                                      const Vehicle& v) const {
  const Point2 front = sim.position(v);
  const Point2 dir = sim.heading(v);
  const Point2 center{front.x - dir.x * v.length / 2.0, front.y - dir.y * v.length / 2.0};
  const Point2 perp{-dir.y, dir.x};
  const double hl = v.length / 2.0;
  const double hw = v.width / 2.0;
  std::array<Point2, 4> ground_quad = {
      Point2{center.x + dir.x * hl + perp.x * hw, center.y + dir.y * hl + perp.y * hw},
      Point2{center.x + dir.x * hl - perp.x * hw, center.y + dir.y * hl - perp.y * hw},
      Point2{center.x - dir.x * hl - perp.x * hw, center.y - dir.y * hl - perp.y * hw},
      Point2{center.x - dir.x * hl + perp.x * hw, center.y - dir.y * hl + perp.y * hw}};
  std::array<Point2, 4> out;
  for (int i = 0; i < 4; ++i) out[i] = ground_to_image_.apply(ground_quad[i]);
  return out;
}

vision::Image CameraModel::render_scene(const TrafficSimulator& sim,
                                        const vision::Homography* view) const {
  // `project` maps an already-projected ideal image point into the
  // (possibly perturbed) view; with view == nullptr it is the identity so
  // the unperturbed path stays bit-identical to the pre-geometry renderer.
  auto project = [view](const Point2& p) { return view ? view->apply(p) : p; };
  Image frame = view ? view->warp(background_, config_.width, config_.height) : background_;
  const auto& w = sim.weather();
  for (const Vehicle& v : sim.vehicles()) {
    // Compress vehicle/road contrast in bad weather.
    const float value = 0.35f + (static_cast<float>(v.intensity) - 0.35f) * w.contrast;
    std::array<Point2, 4> quad = vehicle_quad_image(sim, v);
    for (Point2& p : quad) p = project(p);
    fill_convex_quad(frame, quad, value);
  }

  // Pedestrians: small upright blobs on the crosswalks.
  for (const Pedestrian& p : sim.pedestrians()) {
    const Point2 g = sim.pedestrian_position(p);
    std::array<Point2, 4> quad;
    const double half = 0.35;
    const Point2 corners[4] = {{-half, -half}, {half, -half}, {half, half}, {-half, half}};
    for (int i = 0; i < 4; ++i) {
      quad[static_cast<std::size_t>(i)] =
          project(ground_to_image_.apply({g.x + corners[i].x, g.y + corners[i].y}));
    }
    fill_convex_quad(frame, quad, 0.35f + (0.85f - 0.35f) * w.contrast);
  }

  // Global illumination (night), then headlights above it.
  if (w.ambient < 1.0f) {
    for (std::size_t i = 0; i < frame.size(); ++i) frame.data()[i] *= w.ambient;
  }
  if (w.headlights) {
    for (const Vehicle& v : sim.vehicles()) {
      // A bright patch just ahead of the front bumper.
      const Point2 front = sim.position(v);
      const Point2 dir = sim.heading(v);
      const Point2 perp{-dir.y, dir.x};
      const double reach = 3.0, half_w = v.width * 0.6;
      std::array<Point2, 4> beam;
      const Point2 corners[4] = {{0.2, half_w}, {0.2, -half_w}, {reach, -half_w}, {reach, half_w}};
      for (int i = 0; i < 4; ++i) {
        const Point2 g{front.x + dir.x * corners[i].x + perp.x * corners[i].y,
                       front.y + dir.y * corners[i].x + perp.y * corners[i].y};
        beam[static_cast<std::size_t>(i)] = project(ground_to_image_.apply(g));
      }
      fill_convex_quad(frame, beam, 0.92f);
    }
  }
  // Fog: exponential extinction toward a grey veil, by ground distance.
  if (w.fog_density > 0.0f) {
    constexpr float veil = 0.72f;
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        const float t = 1.0f - std::exp(-w.fog_density * depth_.at(x, y));
        frame.at(x, y) += (veil - frame.at(x, y)) * t;
      }
    }
  }
  return frame;
}

vision::Image CameraModel::render_view(const TrafficSimulator& sim,
                                       const vision::Homography* view) const {
  Image frame = render_scene(sim, view);
  if (config_.low_quality_blur) frame = frame.box_blur3();
  return frame;
}

vision::Image CameraModel::reference_view(const TrafficSimulator& sim) const {
  Image frame = background_;
  const auto& w = sim.weather();
  if (w.ambient < 1.0f) {
    for (std::size_t i = 0; i < frame.size(); ++i) frame.data()[i] *= w.ambient;
  }
  if (w.fog_density > 0.0f) {
    constexpr float veil = 0.72f;
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        const float t = 1.0f - std::exp(-w.fog_density * depth_.at(x, y));
        frame.at(x, y) += (veil - frame.at(x, y)) * t;
      }
    }
  }
  if (config_.low_quality_blur) frame = frame.box_blur3();
  return frame;
}

vision::Image CameraModel::render(const TrafficSimulator& sim, safecross::Rng& rng,
                                  const vision::Homography* view) const {
  Image frame = render_scene(sim, view);
  const auto& w = sim.weather();
  const double kpx = static_cast<double>(config_.width) * config_.height / 1000.0;
  const int streaks = static_cast<int>(w.rain_streaks_per_kpx * kpx);
  for (int i = 0; i < streaks; ++i) {
    int sx = rng.uniform_int(0, config_.width - 1);
    int sy = rng.uniform_int(0, config_.height - 1);
    const int len = rng.uniform_int(4, 8);
    for (int t = 0; t < len; ++t) {
      const int px = sx + t / 3;
      const int py = sy + t;
      if (px < 0 || py < 0 || px >= config_.width || py >= config_.height) break;
      frame.at(px, py) = std::min(1.0f, frame.at(px, py) + 0.22f);
    }
  }
  const int flakes = static_cast<int>(w.snow_flakes_per_kpx * kpx);
  for (int i = 0; i < flakes; ++i) {
    const int px = rng.uniform_int(0, config_.width - 1);
    const int py = rng.uniform_int(0, config_.height - 1);
    frame.at(px, py) = std::min(1.0f, frame.at(px, py) + 0.4f);
    if (px + 1 < config_.width && rng.bernoulli(0.5)) {
      frame.at(px + 1, py) = std::min(1.0f, frame.at(px + 1, py) + 0.3f);
    }
  }

  // Sensor noise, then the low-quality blur.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame.data()[i] = std::clamp(
        frame.data()[i] + static_cast<float>(rng.normal(0.0, w.sensor_noise)), 0.0f, 1.0f);
  }
  if (config_.low_quality_blur) frame = frame.box_blur3();
  return frame;
}

vision::Image CameraModel::rasterize_topdown(const TrafficSimulator& sim, int grid_w, int grid_h,
                                             double min_speed) const {
  Image grid(grid_w, grid_h, 0.0f);
  const double sx = static_cast<double>(grid_w) / geometry_.world_width;
  const double sy = static_cast<double>(grid_h) / geometry_.world_height;
  for (const Vehicle& v : sim.vehicles()) {
    if (v.speed < min_speed) continue;  // background subtraction only sees motion
    const Point2 front = sim.position(v);
    const Point2 dir = sim.heading(v);
    const Point2 center{front.x - dir.x * v.length / 2.0, front.y - dir.y * v.length / 2.0};
    const Point2 perp{-dir.y, dir.x};
    const double hl = v.length / 2.0;
    const double hw = v.width / 2.0;
    std::array<Point2, 4> quad;
    const double ex[4] = {hl, hl, -hl, -hl};
    const double ey[4] = {hw, -hw, -hw, hw};
    for (int i = 0; i < 4; ++i) {
      quad[i] = {(center.x + dir.x * ex[i] + perp.x * ey[i]) * sx,
                 (center.y + dir.y * ex[i] + perp.y * ey[i]) * sy};
    }
    fill_convex_quad(grid, quad, 1.0f);
  }
  // Pedestrians are sub-cell: mark the cell under each walker (they are
  // always moving, so background subtraction sees them).
  for (const Pedestrian& p : sim.pedestrians()) {
    const Point2 g = sim.pedestrian_position(p);
    const int cx = static_cast<int>(g.x * sx);
    const int cy = static_cast<int>(g.y * sy);
    if (cx >= 0 && cy >= 0 && cx < grid_w && cy < grid_h) grid.at(cx, cy) = 1.0f;
  }
  return grid;
}

vision::Image CameraModel::rasterize_topdown_mapped(const TrafficSimulator& sim, int grid_w,
                                                    int grid_h,
                                                    const vision::Homography& ground_to_grid,
                                                    double min_speed) const {
  Image grid(grid_w, grid_h, 0.0f);
  for (const Vehicle& v : sim.vehicles()) {
    if (v.speed < min_speed) continue;  // background subtraction only sees motion
    const Point2 front = sim.position(v);
    const Point2 dir = sim.heading(v);
    const Point2 center{front.x - dir.x * v.length / 2.0, front.y - dir.y * v.length / 2.0};
    const Point2 perp{-dir.y, dir.x};
    const double hl = v.length / 2.0;
    const double hw = v.width / 2.0;
    std::array<Point2, 4> quad;
    const double ex[4] = {hl, hl, -hl, -hl};
    const double ey[4] = {hw, -hw, -hw, hw};
    for (int i = 0; i < 4; ++i) {
      quad[i] = ground_to_grid.apply({center.x + dir.x * ex[i] + perp.x * ey[i],
                                      center.y + dir.y * ex[i] + perp.y * ey[i]});
    }
    fill_convex_quad(grid, quad, 1.0f);
  }
  for (const Pedestrian& p : sim.pedestrians()) {
    const Point2 g = ground_to_grid.apply(sim.pedestrian_position(p));
    const int cx = static_cast<int>(g.x);
    const int cy = static_cast<int>(g.y);
    if (cx >= 0 && cy >= 0 && cx < grid_w && cy < grid_h) grid.at(cx, cy) = 1.0f;
  }
  return grid;
}

vision::Homography CameraModel::image_to_grid(int grid_w, int grid_h) const {
  const double sx = static_cast<double>(grid_w) / geometry_.world_width;
  const double sy = static_cast<double>(grid_h) / geometry_.world_height;
  const Homography scale({sx, 0.0, 0.0, 0.0, sy, 0.0, 0.0, 0.0, 1.0});
  return scale * ground_to_image_.inverse();
}

}  // namespace safecross::sim
