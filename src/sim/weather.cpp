#include "sim/weather.h"

namespace safecross::sim {

WeatherParams weather_params(Weather weather) {
  WeatherParams p;
  p.weather = weather;
  switch (weather) {
    case Weather::Daytime:
      break;  // defaults
    case Weather::Rain:
      p.friction = 0.4f;
      p.speed_factor = 0.85f;
      p.gap_margin_s = 1.0f;
      p.driver_sigma_s = 1.1f;
      p.sensor_noise = 0.035f;
      p.rain_streaks_per_kpx = 1.2f;
      p.contrast = 0.75f;
      p.through_rate = 0.08f;
      break;
    case Weather::Snow:
      p.friction = 0.25f;
      p.speed_factor = 0.65f;
      p.gap_margin_s = 2.0f;
      p.driver_sigma_s = 1.5f;
      p.sensor_noise = 0.030f;
      p.snow_flakes_per_kpx = 2.0f;
      p.contrast = 0.65f;
      // Slow columns of traffic: headways compress in snow, putting many
      // gaps in the marginal band where drivers disagree.
      p.through_rate = 0.11f;
      break;
    case Weather::Night:
      p.friction = 0.65f;
      p.speed_factor = 0.95f;
      p.gap_margin_s = 0.8f;
      p.driver_sigma_s = 1.2f;
      p.sensor_noise = 0.030f;  // gain-cranked sensor
      p.contrast = 0.55f;
      p.ambient = 0.35f;
      p.headlights = true;
      p.through_rate = 0.05f;   // light night traffic
      p.left_turn_rate = 0.03f;
      break;
    case Weather::Fog:
      p.friction = 0.55f;
      p.speed_factor = 0.70f;
      p.gap_margin_s = 1.5f;
      p.driver_sigma_s = 1.3f;
      p.sensor_noise = 0.020f;
      p.contrast = 0.80f;       // near-field contrast ok; distance kills it
      p.fog_density = 0.025f;   // ~63% extinction at 40 m
      p.through_rate = 0.07f;
      break;
  }
  return p;
}

}  // namespace safecross::sim
