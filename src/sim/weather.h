#pragma once
// Weather model (§III of the paper): weather changes both vehicle physics
// (friction → braking and approach speeds, driver gap acceptance) and the
// camera image (rain streaks, snow speckle, reduced contrast). The
// per-weather constants below are the knobs the rest of the simulator and
// the renderer consume.

#include "vision/danger_zone.h"  // Weather enum

namespace safecross::sim {

using vision::Weather;

struct WeatherParams {
  Weather weather = Weather::Daytime;

  // --- physics ---
  float friction = 0.7f;          // tyre/road friction coefficient
  float speed_factor = 1.0f;      // scales free-flow speeds
  float gap_margin_s = 0.0f;      // extra critical-gap seconds drivers demand
  float driver_sigma_s = 0.9f;    // driver-to-driver spread of the demanded gap;
                                  // grows in unfamiliar (wet/icy) conditions

  // --- camera / sensor ---
  float sensor_noise = 0.015f;    // stddev of per-pixel Gaussian noise
  float rain_streaks_per_kpx = 0.0f;  // bright streaks per 1000 pixels/frame
  float snow_flakes_per_kpx = 0.0f;   // bright dots per 1000 pixels/frame
  float contrast = 1.0f;          // vehicle/background contrast multiplier
  float ambient = 1.0f;           // global scene brightness (night << 1)
  bool headlights = false;        // render bright spots at vehicle fronts
  float fog_density = 0.0f;       // per-metre extinction; fades far content

  // --- traffic demand (vehicles per second per route) ---
  float through_rate = 0.10f;     // oncoming straight traffic
  float left_turn_rate = 0.05f;   // subject-side left turners
  float blocker_rate = 0.04f;     // opposite-side left-waiting (truck/van) arrivals
};

/// Canonical parameter set for each weather condition.
WeatherParams weather_params(Weather weather);

}  // namespace safecross::sim
