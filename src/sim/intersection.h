#pragma once
// Intersection geometry: a 4-way junction of a horizontal (east-west)
// main road, in ground coordinates (metres, x right, y down — matching
// image conventions).
//
// The paper's scenario (Fig. 1/2) is expressed with four routes:
//   * WestboundThrough  — oncoming straight traffic, travels -x along the
//     lane the *threat* vehicles use (the blind area lives here).
//   * WestboundLeftWait — opposite-side vehicles waiting to turn left;
//     these are the view *blockers* (trucks/vans).
//   * EastboundLeft     — the subject vehicles attempting the left turn
//     the paper warns about.
//   * EastboundThrough  — background traffic for scene realism.
//
// Every route is a polyline path with arc-smoothed turns; vehicles follow
// it by arc length.

#include <vector>

#include "vision/homography.h"

namespace safecross::sim {

using vision::Point2;

enum class RouteId {
  WestboundThrough = 0,
  WestboundLeftWait = 1,
  EastboundLeft = 2,
  EastboundThrough = 3,
};
constexpr int kNumRoutes = 4;

const char* route_name(RouteId id);

/// A path as a dense polyline; position is found by arc length.
class Path {
 public:
  explicit Path(std::vector<Point2> points);

  double length() const { return total_length_; }

  /// Position at arc length s (clamped to [0, length]).
  Point2 position(double s) const;

  /// Unit tangent (heading) at arc length s.
  Point2 tangent(double s) const;

 private:
  std::vector<Point2> points_;
  std::vector<double> cumulative_;  // arc length at each vertex
  double total_length_ = 0.0;
};

struct IntersectionGeometry {
  double world_width = 120.0;   // metres
  double world_height = 80.0;

  double center_x = 60.0;
  double center_y = 40.0;
  double lane_width = 3.7;

  // Lane centre y-coordinates (y grows downward/south).
  // Eastbound (travel +x) lanes sit south of the centre line.
  double eb_through_y() const { return center_y + 1.5 * lane_width; }
  double eb_left_y() const { return center_y + 0.5 * lane_width; }
  // Westbound (travel -x) lanes sit north of the centre line.
  double wb_left_y() const { return center_y - 0.5 * lane_width; }
  double wb_through_y() const { return center_y - 1.5 * lane_width; }

  // Stop lines: edges of the crossing road's footprint.
  double eb_stop_x() const { return center_x - 2.0 * lane_width; }
  double wb_stop_x() const { return center_x + 2.0 * lane_width; }
};

class Intersection {
 public:
  explicit Intersection(IntersectionGeometry geometry = {});

  const IntersectionGeometry& geometry() const { return geometry_; }
  const Path& route(RouteId id) const { return routes_.at(static_cast<std::size_t>(id)); }

  /// Arc length along a route at which its stop line sits (entry to the
  /// conflict area). Vehicles yielding must hold at this s.
  double stop_line_s(RouteId id) const { return stop_line_s_.at(static_cast<std::size_t>(id)); }

 private:
  IntersectionGeometry geometry_;
  std::vector<Path> routes_;
  std::vector<double> stop_line_s_;
};

}  // namespace safecross::sim
