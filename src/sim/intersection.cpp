#include "sim/intersection.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace safecross::sim {

const char* route_name(RouteId id) {
  switch (id) {
    case RouteId::WestboundThrough: return "wb-through";
    case RouteId::WestboundLeftWait: return "wb-left";
    case RouteId::EastboundLeft: return "eb-left";
    case RouteId::EastboundThrough: return "eb-through";
  }
  return "?";
}

Path::Path(std::vector<Point2> points) : points_(std::move(points)) {
  if (points_.size() < 2) throw std::invalid_argument("Path needs >= 2 points");
  cumulative_.resize(points_.size(), 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dx = points_[i].x - points_[i - 1].x;
    const double dy = points_[i].y - points_[i - 1].y;
    cumulative_[i] = cumulative_[i - 1] + std::sqrt(dx * dx + dy * dy);
  }
  total_length_ = cumulative_.back();
}

Point2 Path::position(double s) const {
  if (s <= 0.0) return points_.front();
  if (s >= total_length_) return points_.back();
  // Binary search for the segment containing s.
  std::size_t lo = 0, hi = points_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative_[mid] <= s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double seg_len = cumulative_[hi] - cumulative_[lo];
  const double f = seg_len > 0.0 ? (s - cumulative_[lo]) / seg_len : 0.0;
  return {points_[lo].x + f * (points_[hi].x - points_[lo].x),
          points_[lo].y + f * (points_[hi].y - points_[lo].y)};
}

Point2 Path::tangent(double s) const {
  const double eps = 0.25;
  const Point2 a = position(std::max(0.0, s - eps));
  const Point2 b = position(std::min(total_length_, s + eps));
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double norm = std::sqrt(dx * dx + dy * dy);
  if (norm < 1e-9) return {1.0, 0.0};
  return {dx / norm, dy / norm};
}

namespace {

// Quarter-circle arc from `from` to `to` around `center`, as a polyline.
void append_arc(std::vector<Point2>& pts, const Point2& center, const Point2& from,
                const Point2& to, int segments = 10) {
  const double a0 = std::atan2(from.y - center.y, from.x - center.x);
  double a1 = std::atan2(to.y - center.y, to.x - center.x);
  // Take the short way around.
  while (a1 - a0 > std::numbers::pi) a1 -= 2.0 * std::numbers::pi;
  while (a1 - a0 < -std::numbers::pi) a1 += 2.0 * std::numbers::pi;
  const double r0 = std::hypot(from.x - center.x, from.y - center.y);
  const double r1 = std::hypot(to.x - center.x, to.y - center.y);
  for (int i = 1; i <= segments; ++i) {
    const double f = static_cast<double>(i) / segments;
    const double a = a0 + f * (a1 - a0);
    const double r = r0 + f * (r1 - r0);
    pts.push_back({center.x + r * std::cos(a), center.y + r * std::sin(a)});
  }
}

}  // namespace

Intersection::Intersection(IntersectionGeometry geometry) : geometry_(geometry) {
  const auto& g = geometry_;
  routes_.reserve(kNumRoutes);
  stop_line_s_.resize(kNumRoutes, 0.0);

  // WestboundThrough: straight, travel -x along the wb through lane.
  {
    std::vector<Point2> pts{{g.world_width, g.wb_through_y()}, {0.0, g.wb_through_y()}};
    routes_.emplace_back(std::move(pts));
    stop_line_s_[static_cast<int>(RouteId::WestboundThrough)] = g.world_width - g.wb_stop_x();
  }
  // WestboundLeftWait: -x along wb left lane, stop, then turn left
  // (southbound, +y, exiting on the west side of the south road).
  {
    std::vector<Point2> pts{{g.world_width, g.wb_left_y()}, {g.wb_stop_x(), g.wb_left_y()}};
    const Point2 turn_end{g.center_x - 0.5 * g.lane_width, g.center_y + 2.0 * g.lane_width};
    const Point2 center{g.wb_stop_x(), g.center_y + 2.0 * g.lane_width};
    append_arc(pts, center, {g.wb_stop_x(), g.wb_left_y()}, turn_end);
    pts.push_back({turn_end.x, g.world_height});
    routes_.emplace_back(std::move(pts));
    stop_line_s_[static_cast<int>(RouteId::WestboundLeftWait)] = g.world_width - g.wb_stop_x();
  }
  // EastboundLeft: +x along eb left lane, stop, turn left (northbound, -y,
  // exiting on the east side of the north road).
  {
    std::vector<Point2> pts{{0.0, g.eb_left_y()}, {g.eb_stop_x(), g.eb_left_y()}};
    const Point2 turn_end{g.center_x + 0.5 * g.lane_width, g.center_y - 2.0 * g.lane_width};
    const Point2 center{g.eb_stop_x(), g.center_y - 2.0 * g.lane_width};
    append_arc(pts, center, {g.eb_stop_x(), g.eb_left_y()}, turn_end);
    pts.push_back({turn_end.x, 0.0});
    routes_.emplace_back(std::move(pts));
    stop_line_s_[static_cast<int>(RouteId::EastboundLeft)] = g.eb_stop_x();
  }
  // EastboundThrough: straight +x.
  {
    std::vector<Point2> pts{{0.0, g.eb_through_y()}, {g.world_width, g.eb_through_y()}};
    routes_.emplace_back(std::move(pts));
    stop_line_s_[static_cast<int>(RouteId::EastboundThrough)] = g.eb_stop_x();
  }
}

}  // namespace safecross::sim
