#pragma once
// Vehicle kinematics and driver behaviour.
//
// Vehicles follow their route path by arc length with a simple
// longitudinal controller: accelerate toward the free-flow speed, brake
// (friction-limited, so weather matters) for the leader and for hold
// points (stop lines while yielding). Left-turning routes hold at the
// stop line until their gap-acceptance check passes.

#include <cstdint>

#include "sim/intersection.h"
#include "sim/weather.h"

namespace safecross::sim {

enum class VehicleType { Car, Van, Truck };

const char* vehicle_type_name(VehicleType t);

/// Footprint length/width in metres.
struct VehicleDims {
  double length;
  double width;
};

VehicleDims vehicle_dims(VehicleType t);

/// A vehicle "big" enough to create a blind area behind it (the paper's
/// "big car on the opposite side" labeling rule).
bool is_view_blocking(VehicleType t);

enum class DriverState {
  Cruising,       // free driving / car-following
  HoldingAtStop,  // stopped at the stop line waiting for a gap
  Proceeding,     // gap accepted, committed through the turn
  Done,           // past the end of its route
};

struct Vehicle {
  std::uint64_t id = 0;
  RouteId route = RouteId::WestboundThrough;
  VehicleType type = VehicleType::Car;
  double s = 0.0;            // arc length of the *front bumper* along the route
  double speed = 0.0;        // m/s
  double free_speed = 13.9;  // desired cruise speed, m/s
  double length = 4.5;
  double width = 1.8;
  double intensity = 0.7;    // rendered brightness (contrast proxy)
  DriverState state = DriverState::Cruising;
  double hold_time = 0.0;    // seconds spent in HoldingAtStop
  double aggressiveness = 0.0;  // shrinks (positive) or grows the critical gap

  double rear_s() const { return s - length; }
};

/// Longitudinal update for one step: chooses an acceleration given the
/// distance to the obstruction ahead (leader rear or hold point) and
/// friction-limited braking, then integrates. `stop_at_s` < 0 means no
/// hold point.
void advance_vehicle(Vehicle& v, double dt, double gap_to_obstruction, double accel_limit,
                     double brake_limit);

}  // namespace safecross::sim
