#pragma once
// Batch dataset generation: run one simulator per weather condition until
// the requested number of segments (or a simulated-time cap) is reached.
// Default target counts reproduce the paper's Table I
// (1966 daytime / 34 rain / 855 snow); training benches typically scale
// them down with `scale`.

#include <cstdint>

#include "dataset/collector.h"

namespace safecross::dataset {

struct BuildRequest {
  Weather weather = Weather::Daytime;
  std::size_t target_segments = 100;
  double max_sim_hours = 12.0;   // hard stop even if the target isn't met
  std::uint64_t seed = 1;
  CollectorConfig collector;
};

struct BuiltDataset {
  std::vector<VideoSegment> segments;
  double sim_hours = 0.0;       // simulated time actually consumed
  std::size_t frames = 0;
};

/// Generate one weather condition's segments.
BuiltDataset build_dataset(const BuildRequest& request);

/// Paper Table I target segment counts per weather.
std::size_t paper_segment_count(Weather weather);

/// Paper Table I recording time spans (hours) per weather.
double paper_time_span_hours(Weather weather);

}  // namespace safecross::dataset
