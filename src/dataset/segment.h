#pragma once
// Video segments and their labels (paper §IV-B).
//
// A segment is 32 consecutive top-down occupancy frames. The paper's four
// categories come from two independent bits:
//   * turned      — the driver made the left turn; the segment's last
//                   frame is the keyframe (front wheel on the lane line).
//   * blind_area  — a big vehicle waited on the opposite side during the
//                   segment ("segment with a blind area").
// For classification the paper collapses to two classes:
//   class 0 = danger to turn left, class 1 = safe to turn left,
// labeled from driver behaviour (waited vs turned).

#include <string>
#include <vector>

#include "sim/traffic.h"  // Approach
#include "vision/danger_zone.h"  // Weather
#include "vision/image.h"

namespace safecross::dataset {

using vision::Weather;

enum class SegmentCategory {
  TurnNoBlind = 0,
  NoTurnNoBlind = 1,
  TurnBlind = 2,
  NoTurnBlind = 3,
};

const char* category_name(SegmentCategory c);

struct VideoSegment {
  std::vector<vision::Image> frames;  // top-down occupancy, oldest first
  Weather weather = Weather::Daytime;
  sim::Approach approach = sim::Approach::EastboundLeft;
  bool turned = false;
  bool blind_area = false;
  bool danger_truth = false;  // simulator ground truth at the last frame
  double sim_time = 0.0;      // simulation time of the last frame

  SegmentCategory category() const {
    if (turned) return blind_area ? SegmentCategory::TurnBlind : SegmentCategory::TurnNoBlind;
    return blind_area ? SegmentCategory::NoTurnBlind : SegmentCategory::NoTurnNoBlind;
  }

  /// Paper's binary label: 0 = danger (driver waited), 1 = safe (turned).
  int binary_label() const { return turned ? 1 : 0; }
};

/// Simple dataset view: indices into a segment vector.
struct DatasetSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};

/// Shuffle and split 8:1:1 (the paper's train:val:test ratio).
DatasetSplit split_811(std::size_t count, std::uint64_t seed);

/// Per-category counts over a segment set.
std::vector<std::size_t> category_histogram(const std::vector<VideoSegment>& segments);

}  // namespace safecross::dataset
