#include "dataset/collector.h"

#include <algorithm>

namespace safecross::dataset {

using sim::DriverState;
using vision::Image;

SegmentCollector::SegmentCollector(sim::TrafficSimulator& sim, const sim::CameraModel& camera,
                                   CollectorConfig config, std::uint64_t noise_seed)
    : sim_(sim),
      camera_(camera),
      config_(config),
      rng_(noise_seed),
      image_to_grid_(camera.image_to_grid(config.grid_w, config.grid_h)) {}

Image SegmentCollector::preprocess_frame() {
  if (config_.mode == PipelineMode::FullVP) {
    // Fig. 3 pipeline: camera frame -> dynamic-background subtraction with
    // opening morphology -> top-down warp -> binarize. A geometric fault
    // perturbs the rendered view; the (possibly recalibrated) remap is
    // whatever image_to_grid_ currently holds.
    const Image frame = camera_.render(sim_, rng_, view_perturbation_);
    const Image mask = bg_.apply(frame);
    const Image warped = image_to_grid_.warp(mask, config_.grid_w, config_.grid_h);
    return warped.threshold(0.5f);
  }

  // FastTopdown: ideal VP output + weather-noise emulation. Under a view
  // perturbation the effective ground->grid mapping is the remap applied
  // to where the perturbed camera actually images each ground point:
  // image_to_grid ∘ view ∘ ground_to_image. Without one, the legacy pure
  // scale rasterizer runs unchanged (bit-identity with geometry off).
  Image grid = view_perturbation_ == nullptr
                   ? camera_.rasterize_topdown(sim_, config_.grid_w, config_.grid_h)
                   : camera_.rasterize_topdown_mapped(
                         sim_, config_.grid_w, config_.grid_h,
                         image_to_grid_ * (*view_perturbation_) * camera_.ground_to_image());
  const auto weather = sim_.weather().weather;
  float speckle = config_.speckle_base;
  float dropout = 0.0f;
  if (weather == Weather::Rain) {
    speckle = config_.speckle_rain;
    dropout = config_.dropout_rain;
  } else if (weather == Weather::Snow) {
    speckle = config_.speckle_snow;
    dropout = config_.dropout_snow;
  } else if (weather == Weather::Night) {
    speckle = config_.speckle_night;
    dropout = config_.dropout_night;
  } else if (weather == Weather::Fog) {
    speckle = config_.speckle_fog;
    dropout = config_.dropout_fog;
  }
  // Visibility falls with distance from the camera (south edge, high y)
  // in rain/snow: far cells — the oncoming threat lane — are dropped with
  // up to ~1.6x the base rate, near cells with ~0.4x.
  for (int y = 0; y < grid.height(); ++y) {
    const float dist_factor =
        0.4f + 1.2f * (1.0f - static_cast<float>(y) / static_cast<float>(grid.height() - 1));
    const float p_drop = std::min(0.9f, dropout * dist_factor);
    for (int x = 0; x < grid.width(); ++x) {
      float& cell = grid.at(x, y);
      if (cell > 0.5f) {
        if (p_drop > 0.0f && rng_.bernoulli(p_drop)) cell = 0.0f;
      } else if (rng_.bernoulli(speckle)) {
        cell = 1.0f;
      }
    }
  }
  return grid;
}

std::size_t SegmentCollector::stale_in_window() const {
  return static_cast<std::size_t>(
      std::count(fresh_window_.begin(), fresh_window_.end(), false));
}

void SegmentCollector::emit(bool turned) {
  // Never cut a training segment across a feed gap: a window that silently
  // skips frames would teach the classifier that vehicles teleport.
  if (!window_contiguous()) return;
  VideoSegment seg;
  seg.frames.assign(window_.begin(), window_.end());
  seg.weather = sim_.weather().weather;
  seg.approach = config_.approach;
  seg.turned = turned;
  // Blind area if a big vehicle blocked the opposite side for most of the
  // segment (the paper's "big car on the opposite side in a segment").
  const std::size_t blind_frames =
      static_cast<std::size_t>(std::count(blind_window_.begin(), blind_window_.end(), true));
  seg.blind_area = blind_frames * 2 >= blind_window_.size();
  seg.danger_truth = sim_.dangerous_to_turn(config_.approach);
  seg.sim_time = sim_.time();
  segments_.push_back(std::move(seg));
}

void SegmentCollector::step(FrameStatus status) {
  sim_.step();
  switch (status) {
    case FrameStatus::Fresh:
    case FrameStatus::Corrupted: {
      Image frame = preprocess_frame();
      if (frame_hook_) frame_hook_(frame);
      window_.push_back(std::move(frame));
      fresh_window_.push_back(status == FrameStatus::Fresh);
      blind_window_.push_back(sim_.blind_area_present(config_.approach));
      ++frames_since_gap_;
      if (status == FrameStatus::Corrupted) ++frames_corrupted_;
      break;
    }
    case FrameStatus::Frozen: {
      // The encoder repeated the last frame: the slot is filled (the
      // window stays temporally aligned) but its content is stale.
      Image dup = window_.empty() ? Image(config_.grid_w, config_.grid_h) : window_.back();
      window_.push_back(std::move(dup));
      fresh_window_.push_back(false);
      blind_window_.push_back(sim_.blind_area_present(config_.approach));
      ++frames_since_gap_;
      ++frames_frozen_;
      break;
    }
    case FrameStatus::Dropped:
      // The slot is empty: the window now hides a temporal gap, so it is
      // not contiguous again until frames_per_segment filled slots pass.
      frames_since_gap_ = 0;
      ++frames_dropped_;
      break;
  }
  while (window_.size() > static_cast<std::size_t>(config_.frames_per_segment)) {
    window_.pop_front();
    blind_window_.pop_front();
    fresh_window_.pop_front();
  }
  ++frames_processed_;

  // Turn segments: keyframe fired this step.
  if (!sim_.turn_keyframes(config_.approach).empty()) {
    emit(/*turned=*/true);
    hold_frames_ = 0;  // the hold (if any) resolved into a turn
  }

  // No-turn segments: subject waiting at the stop line.
  const sim::Vehicle* subject = sim_.subject(config_.approach);
  if (subject != nullptr && subject->state == DriverState::HoldingAtStop) {
    if (subject->id != hold_subject_id_) {
      hold_subject_id_ = subject->id;
      hold_frames_ = 0;
    }
    ++hold_frames_;
    if (hold_frames_ >= config_.frames_per_segment) {
      emit(/*turned=*/false);
      hold_frames_ = 0;
    }
  } else {
    hold_frames_ = 0;
    hold_subject_id_ = 0;
  }
}

std::vector<VideoSegment> SegmentCollector::take_segments() {
  std::vector<VideoSegment> out;
  out.swap(segments_);
  return out;
}

void SegmentCollector::save_state(common::StateWriter& w) const {
  rng_.save_state(w);
  bg_.save_state(w);

  w.u64(window_.size());
  for (const vision::Image& frame : window_) frame.save_state(w);
  w.u64(blind_window_.size());
  for (bool b : blind_window_) w.boolean(b);
  w.u64(fresh_window_.size());
  for (bool b : fresh_window_) w.boolean(b);

  w.u64(frames_processed_);
  w.u64(frames_since_gap_);
  w.u64(frames_dropped_);
  w.u64(frames_frozen_);
  w.u64(frames_corrupted_);
  w.i32(hold_frames_);
  w.u64(hold_subject_id_);
  // The applied remap: under online recalibration this diverges from the
  // construction-time ideal, and a restored collector must keep warping
  // through the same matrix the killed one had swapped in.
  for (double v : image_to_grid_.matrix()) w.f64(v);
}

void SegmentCollector::load_state(common::StateReader& r) {
  rng_.load_state(r);
  bg_.load_state(r);

  const std::uint64_t n_frames = r.u64();
  window_.clear();
  for (std::uint64_t i = 0; i < n_frames; ++i) {
    vision::Image frame;
    frame.load_state(r);
    window_.push_back(std::move(frame));
  }
  const std::uint64_t n_blind = r.u64();
  blind_window_.clear();
  for (std::uint64_t i = 0; i < n_blind; ++i) blind_window_.push_back(r.boolean());
  const std::uint64_t n_fresh = r.u64();
  fresh_window_.clear();
  for (std::uint64_t i = 0; i < n_fresh; ++i) fresh_window_.push_back(r.boolean());

  frames_processed_ = static_cast<std::size_t>(r.u64());
  frames_since_gap_ = static_cast<std::size_t>(r.u64());
  frames_dropped_ = static_cast<std::size_t>(r.u64());
  frames_frozen_ = static_cast<std::size_t>(r.u64());
  frames_corrupted_ = static_cast<std::size_t>(r.u64());
  hold_frames_ = r.i32();
  hold_subject_id_ = r.u64();
  std::array<double, 9> m{};
  for (double& v : m) v = r.f64();
  image_to_grid_ = vision::Homography(m);
}

}  // namespace safecross::dataset
