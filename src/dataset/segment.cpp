#include "dataset/segment.h"

#include "common/rng.h"

namespace safecross::dataset {

const char* category_name(SegmentCategory c) {
  switch (c) {
    case SegmentCategory::TurnNoBlind: return "turn/no-blind";
    case SegmentCategory::NoTurnNoBlind: return "no-turn/no-blind";
    case SegmentCategory::TurnBlind: return "turn/blind";
    case SegmentCategory::NoTurnBlind: return "no-turn/blind";
  }
  return "?";
}

DatasetSplit split_811(std::size_t count, std::uint64_t seed) {
  std::vector<std::size_t> idx(count);
  for (std::size_t i = 0; i < count; ++i) idx[i] = i;
  safecross::Rng rng(seed);
  safecross::shuffle(idx, rng);
  DatasetSplit split;
  const std::size_t n_val = count / 10;
  const std::size_t n_test = count / 10;
  const std::size_t n_train = count - n_val - n_test;
  split.train.assign(idx.begin(), idx.begin() + n_train);
  split.val.assign(idx.begin() + n_train, idx.begin() + n_train + n_val);
  split.test.assign(idx.begin() + n_train + n_val, idx.end());
  return split;
}

std::vector<std::size_t> category_histogram(const std::vector<VideoSegment>& segments) {
  std::vector<std::size_t> hist(4, 0);
  for (const VideoSegment& s : segments) ++hist[static_cast<std::size_t>(s.category())];
  return hist;
}

}  // namespace safecross::dataset
