#pragma once
// Online segment collector: steps the traffic simulator, runs the chosen
// video-preprocessing path on every frame, keeps a rolling 32-frame
// window, and cuts labeled segments by the paper's rules:
//   * a TURN segment ends exactly at the keyframe (front wheel on the
//     lane line) — the last 32 frames before and including it;
//   * a NO-TURN segment is emitted for every full 32-frame block during
//     which a subject waits at the stop line.
//
// Two preprocessing paths:
//   * FullVP     — the real pipeline of Fig. 3: render the camera frame,
//     background-subtract (dynamic background + opening morphology), then
//     homography-warp the mask onto the top-down grid. Faithful but
//     ~100x slower.
//   * FastTopdown — rasterize the moving vehicles' ground-truth
//     footprints directly onto the grid (the ideal VP output) and inject
//     weather-dependent speckle/dropout emulating what bg-sub noise does
//     to the mask. Used for large training runs.

#include <deque>
#include <functional>

#include "common/rng.h"
#include "dataset/segment.h"
#include "sim/camera.h"
#include "sim/traffic.h"
#include "vision/background_subtraction.h"

namespace safecross::dataset {

enum class PipelineMode { FullVP, FastTopdown };

/// What the camera feed delivered for one frame slot. Fresh is the normal
/// path; the rest model a faulty feed (see runtime::FaultInjector).
enum class FrameStatus {
  Fresh,      // frame delivered intact
  Dropped,    // slot empty: the window gains a temporal gap
  Frozen,     // previous frame duplicated into the slot (stale content)
  Corrupted,  // frame delivered but content untrustworthy (noise/blackout)
};

struct CollectorConfig {
  int frames_per_segment = 32;  // paper: 32-frame segments
  sim::Approach approach = sim::Approach::EastboundLeft;  // which turners to watch
  int grid_w = 36;              // top-down 2-D representation resolution
  int grid_h = 24;
  PipelineMode mode = PipelineMode::FastTopdown;
  // FastTopdown noise emulation (per-cell probabilities). Rain degrades
  // the mask hardest (streak leakage + contrast loss through bg-sub),
  // snow moderately — the paper's accuracy ordering rests on this.
  float speckle_base = 0.002f;  // false-positive cells, daytime
  float speckle_rain = 0.100f;  // ... in rain (streak leakage)
  float speckle_snow = 0.080f;  // ... in snow
  float dropout_rain = 0.45f;   // missed vehicle cells in rain (scaled by distance)
  float dropout_snow = 0.38f;   // missed vehicle cells in snow (scaled by distance)
  float speckle_night = 0.015f; // gain noise leaking through bg-sub at night
  float dropout_night = 0.35f;  // unlit vehicle cells missed at night
  float speckle_fog = 0.008f;
  float dropout_fog = 0.42f;    // fog extinction (distance-scaled hardest)
};

class SegmentCollector {
 public:
  SegmentCollector(sim::TrafficSimulator& sim, const sim::CameraModel& camera,
                   CollectorConfig config, std::uint64_t noise_seed);

  /// Advance the simulator one step and process the new frame. Any
  /// segments completed by this step are appended to segments().
  void step() { step(FrameStatus::Fresh); }

  /// Advance the simulator one step with an explicit frame fate:
  ///   * Fresh     — render/rasterize and append a new frame (as step());
  ///   * Dropped   — the slot is empty: nothing is appended and the window
  ///     is marked gapped until frames_per_segment filled slots rebuild it;
  ///   * Frozen    — the previous frame is duplicated into the slot; the
  ///     window stays full but the duplicate counts as stale;
  ///   * Corrupted — the frame is captured (and run through the hook, which
  ///     typically garbles it) but flagged untrustworthy in the window.
  /// Segments are only ever cut from contiguous windows.
  void step(FrameStatus status);

  /// Optional hook applied to each freshly preprocessed frame before it
  /// enters the window (fault injection: noise bursts, blackouts).
  /// Pass nullptr to remove.
  void set_frame_hook(std::function<void(vision::Image&)> hook) {
    frame_hook_ = std::move(hook);
  }

  /// Wire the geometric fault family in: a non-null pointer is read every
  /// frame as the current ideal->perturbed view homography (typically
  /// runtime::FaultInjector::view_perturbation()), and the preprocessing
  /// paths render/rasterize through it — the camera really moved. Null
  /// (the default) keeps the exact legacy code path, bit-identically.
  void set_view_perturbation(const vision::Homography* view) { view_perturbation_ = view; }

  /// The image->grid homography currently applied by the preprocessing
  /// paths, and the recalibration loop's swap point: replacing it re-aims
  /// the top-down remap without touching the camera's ideal calibration.
  const vision::Homography& image_to_grid() const { return image_to_grid_; }
  void set_image_to_grid(const vision::Homography& h) { image_to_grid_ = h; }

  const std::vector<VideoSegment>& segments() const { return segments_; }
  std::vector<VideoSegment> take_segments();

  /// Number of frames processed so far.
  std::size_t frames_processed() const { return frames_processed_; }

  /// The preprocessed top-down frame produced by the last step().
  const vision::Image& last_frame() const { return window_.back(); }

  /// The rolling window of the most recent preprocessed frames (at most
  /// frames_per_segment of them, oldest first).
  const std::deque<vision::Image>& window() const { return window_; }

  /// True when the window holds frames_per_segment frames captured in
  /// consecutive slots — i.e. no dropped frame hides inside it. A gapped
  /// window must never be classified as if it were contiguous.
  bool window_contiguous() const {
    return window_.size() >= static_cast<std::size_t>(config_.frames_per_segment) &&
           frames_since_gap_ >= static_cast<std::size_t>(config_.frames_per_segment);
  }

  /// Frozen or corrupted frames currently in the window.
  std::size_t stale_in_window() const;

  /// Genuine (fresh) frames currently in the window.
  std::size_t fresh_in_window() const { return window_.size() - stale_in_window(); }

  std::size_t frames_dropped() const { return frames_dropped_; }
  std::size_t frames_frozen() const { return frames_frozen_; }
  std::size_t frames_corrupted() const { return frames_corrupted_; }

  // --- checkpoint serialization ---
  // Captures everything a resumed collector needs to keep producing the
  // same frames and cutting the same segments: noise RNG, background
  // model, the rolling window with its blind/fresh flags, the gap and
  // hold trackers, and the frame-status counters. The referenced
  // simulator and camera are rebuilt by the owner (same config, then
  // sim.load_state). Already-emitted segments_ are deliberately NOT
  // state: they never influence future decisions, and the serving layer
  // accounts for emitted decisions in its own journal.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  vision::Image preprocess_frame();
  void emit(bool turned);

  sim::TrafficSimulator& sim_;
  const sim::CameraModel& camera_;
  CollectorConfig config_;
  safecross::Rng rng_;
  vision::RunningAverageBackground bg_;
  vision::Homography image_to_grid_;
  const vision::Homography* view_perturbation_ = nullptr;

  std::deque<vision::Image> window_;
  std::deque<bool> blind_window_;     // blind-area flag per frame
  std::deque<bool> fresh_window_;     // genuine-frame flag per window slot
  std::function<void(vision::Image&)> frame_hook_;
  std::size_t frames_processed_ = 0;
  std::size_t frames_since_gap_ = 0;  // consecutive slots that got a frame
  std::size_t frames_dropped_ = 0;
  std::size_t frames_frozen_ = 0;
  std::size_t frames_corrupted_ = 0;
  int hold_frames_ = 0;               // consecutive frames the subject held
  std::uint64_t hold_subject_id_ = 0;
  std::vector<VideoSegment> segments_;
};

}  // namespace safecross::dataset
