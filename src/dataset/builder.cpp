#include "dataset/builder.h"

#include "common/logging.h"

namespace safecross::dataset {

std::size_t paper_segment_count(Weather weather) {
  switch (weather) {
    case Weather::Daytime: return 1966;
    case Weather::Rain: return 34;
    case Weather::Snow: return 855;
    case Weather::Night:
    case Weather::Fog:
      return 0;  // extension scenes; not in the paper's Table I
  }
  return 0;
}

double paper_time_span_hours(Weather weather) {
  switch (weather) {
    case Weather::Daytime: return 6.0;
    case Weather::Rain: return 1.0;
    case Weather::Snow: return 3.0;
    case Weather::Night:
    case Weather::Fog:
      return 0.0;
  }
  return 0.0;
}

BuiltDataset build_dataset(const BuildRequest& request) {
  sim::WeatherParams weather = sim::weather_params(request.weather);
  sim::TrafficSimulator sim(weather, request.seed);
  const sim::CameraModel camera(sim.intersection().geometry());
  SegmentCollector collector(sim, camera, request.collector, request.seed ^ 0xC0113C7u);

  const double max_seconds = request.max_sim_hours * 3600.0;
  while (collector.segments().size() < request.target_segments && sim.time() < max_seconds) {
    collector.step();
  }

  BuiltDataset out;
  out.sim_hours = sim.time() / 3600.0;
  out.frames = collector.frames_processed();
  out.segments = collector.take_segments();
  log_info() << "dataset[" << vision::weather_name(request.weather) << "]: "
             << out.segments.size() << " segments in " << out.sim_hours << " sim-hours";
  return out;
}

}  // namespace safecross::dataset
