#pragma once
// YOLO-lite: a single-shot grid detector standing in for YOLOv3 in the
// detection-method comparison (Table II / Fig. 8).
//
// YOLOv1-style formulation: the image is divided into a GH x GW cell
// grid; a fully-convolutional backbone predicts, per cell, an objectness
// logit and a box (center offset within the cell via sigmoid, log-scale
// width/height relative to cell size). The cell containing a ground-truth
// box center is "responsible" for it; all other cells are pushed toward
// zero objectness with a reduced weight (lambda_noobj).

#include <vector>

#include "nn/conv2d.h"
#include "nn/sequential.h"
#include "vision/image.h"

namespace safecross::models {

/// A detection in pixel coordinates (box center + size).
struct YoloBox {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  float confidence = 0.0f;
};

struct YoloLiteConfig {
  int in_height = 144;
  int in_width = 256;
  int base_channels = 12;
  float lambda_coord = 5.0f;
  float lambda_noobj = 0.5f;
  std::uint64_t init_seed = 24u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // all Conv2D layers

  /// Three stride-2 stages -> grid cells of 8x8 pixels.
  int downscale() const { return 8; }
  int grid_h() const { return in_height / downscale(); }
  int grid_w() const { return in_width / downscale(); }
};

class YoloLite {
 public:
  explicit YoloLite(YoloLiteConfig config = {});

  /// (N, 1, H, W) frames -> (N, 5, GH, GW) raw predictions
  /// (channel 0 objectness logit, 1-2 center offsets, 3-4 log sizes).
  nn::Tensor forward(const nn::Tensor& frames, bool training);
  void backward(const nn::Tensor& grad);
  std::vector<nn::Param*> params() { return net_.params(); }
  std::vector<nn::Tensor*> buffers() { return net_.buffers(); }

  const YoloLiteConfig& config() const { return config_; }

  /// Run inference on one frame and decode boxes above the confidence
  /// threshold (greedy IoU-based non-maximum suppression applied).
  std::vector<YoloBox> detect(const vision::Image& frame, float conf_threshold = 0.5f);

 private:
  YoloLiteConfig config_;
  nn::Sequential net_;
};

/// YOLOv1-style composite loss over a batch.
class YoloLoss {
 public:
  explicit YoloLoss(const YoloLiteConfig& config) : config_(config) {}

  /// `truth[i]` lists the ground-truth boxes (pixel coords) of batch item i.
  float forward(const nn::Tensor& pred, const std::vector<std::vector<YoloBox>>& truth);
  nn::Tensor grad() const { return grad_; }

 private:
  YoloLiteConfig config_;
  nn::Tensor grad_;
};

/// Intersection-over-union of two boxes.
float iou(const YoloBox& a, const YoloBox& b);

}  // namespace safecross::models
