#include "models/tensor_ops.h"

#include <stdexcept>

namespace safecross::models {

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.ndim() != b.ndim() || a.ndim() < 2) {
    throw std::invalid_argument("concat_channels: rank mismatch");
  }
  for (std::size_t d = 0; d < a.ndim(); ++d) {
    if (d != 1 && a.dim(d) != b.dim(d)) {
      throw std::invalid_argument("concat_channels: non-channel dims must match");
    }
  }
  std::vector<int> shape(a.shape());
  shape[1] = a.dim(1) + b.dim(1);
  Tensor out(shape);
  const int n = a.dim(0);
  std::size_t inner = 1;
  for (std::size_t d = 2; d < a.ndim(); ++d) inner *= static_cast<std::size_t>(a.dim(d));
  const std::size_t a_block = static_cast<std::size_t>(a.dim(1)) * inner;
  const std::size_t b_block = static_cast<std::size_t>(b.dim(1)) * inner;
  for (int i = 0; i < n; ++i) {
    float* dst = out.data() + static_cast<std::size_t>(i) * (a_block + b_block);
    std::copy(a.data() + i * a_block, a.data() + (i + 1) * a_block, dst);
    std::copy(b.data() + i * b_block, b.data() + (i + 1) * b_block, dst + a_block);
  }
  return out;
}

std::pair<Tensor, Tensor> split_channels(const Tensor& grad, int channels_a) {
  if (grad.ndim() < 2 || channels_a <= 0 || channels_a >= grad.dim(1)) {
    throw std::invalid_argument("split_channels: bad channel split");
  }
  std::vector<int> sa(grad.shape());
  std::vector<int> sb(grad.shape());
  sa[1] = channels_a;
  sb[1] = grad.dim(1) - channels_a;
  Tensor a(sa), b(sb);
  const int n = grad.dim(0);
  std::size_t inner = 1;
  for (std::size_t d = 2; d < grad.ndim(); ++d) inner *= static_cast<std::size_t>(grad.dim(d));
  const std::size_t a_block = static_cast<std::size_t>(channels_a) * inner;
  const std::size_t b_block = static_cast<std::size_t>(sb[1]) * inner;
  for (int i = 0; i < n; ++i) {
    const float* src = grad.data() + static_cast<std::size_t>(i) * (a_block + b_block);
    std::copy(src, src + a_block, a.data() + i * a_block);
    std::copy(src + a_block, src + a_block + b_block, b.data() + i * b_block);
  }
  return {std::move(a), std::move(b)};
}

namespace {
std::vector<int> strided_indices(int t, int stride, int offset) {
  std::vector<int> idx;
  for (int i = offset; i < t; i += stride) idx.push_back(i);
  if (idx.empty()) throw std::invalid_argument("subsample_time: no frames selected");
  return idx;
}
}  // namespace

Tensor select_frames(const Tensor& x, const std::vector<int>& frame_indices) {
  if (x.ndim() != 5) throw std::invalid_argument("select_frames expects (N, C, T, H, W)");
  const int n = x.dim(0), c = x.dim(1), t = x.dim(2), h = x.dim(3), w = x.dim(4);
  const int ot = static_cast<int>(frame_indices.size());
  Tensor out({n, c, ot, h, w});
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      for (int k = 0; k < ot; ++k) {
        const int src_t = frame_indices[static_cast<std::size_t>(k)];
        if (src_t < 0 || src_t >= t) throw std::out_of_range("select_frames: index out of range");
        const float* src =
            x.data() + ((static_cast<std::size_t>(i) * c + ch) * t + src_t) * plane;
        float* dst = out.data() + ((static_cast<std::size_t>(i) * c + ch) * ot + k) * plane;
        std::copy(src, src + plane, dst);
      }
    }
  }
  return out;
}

Tensor subsample_time(const Tensor& x, int stride, int offset) {
  if (x.ndim() != 5) throw std::invalid_argument("subsample_time expects (N, C, T, H, W)");
  return select_frames(x, strided_indices(x.dim(2), stride, offset));
}

Tensor subsample_time_backward(const Tensor& grad, const std::vector<int>& full_shape, int stride,
                               int offset) {
  if (grad.ndim() != 5 || full_shape.size() != 5) {
    throw std::invalid_argument("subsample_time_backward expects rank-5 shapes");
  }
  Tensor out(full_shape, 0.0f);
  const int n = full_shape[0], c = full_shape[1], t = full_shape[2], h = full_shape[3],
            w = full_shape[4];
  const std::vector<int> idx = strided_indices(t, stride, offset);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const int ot = grad.dim(2);
  if (ot != static_cast<int>(idx.size())) {
    throw std::invalid_argument("subsample_time_backward: frame count mismatch");
  }
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      for (int k = 0; k < ot; ++k) {
        const float* src =
            grad.data() + ((static_cast<std::size_t>(i) * c + ch) * ot + k) * plane;
        float* dst = out.data() + ((static_cast<std::size_t>(i) * c + ch) * t + idx[k]) * plane;
        std::copy(src, src + plane, dst);
      }
    }
  }
  return out;
}

Tensor clip_to_tensor(const std::vector<vision::Image>& frames) {
  return clips_to_batch({&frames});
}

Tensor clips_to_batch(const std::vector<const std::vector<vision::Image>*>& clips) {
  if (clips.empty() || clips[0]->empty()) throw std::invalid_argument("clips_to_batch: empty");
  const int t = static_cast<int>(clips[0]->size());
  const int h = (*clips[0])[0].height();
  const int w = (*clips[0])[0].width();
  Tensor out({static_cast<int>(clips.size()), 1, t, h, w});
  float* dst = out.data();
  for (const auto* clip : clips) {
    if (static_cast<int>(clip->size()) != t) {
      throw std::invalid_argument("clips_to_batch: clip length mismatch");
    }
    for (const vision::Image& frame : *clip) {
      if (frame.width() != w || frame.height() != h) {
        throw std::invalid_argument("clips_to_batch: frame size mismatch");
      }
      std::copy(frame.data(), frame.data() + frame.size(), dst);
      dst += frame.size();
    }
  }
  return out;
}

}  // namespace safecross::models
