#include "models/tsn.h"

#include <stdexcept>

#include "models/tensor_ops.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace safecross::models {

using nn::Tensor;

std::vector<int> TSN::segment_indices(int frames, int segments) {
  std::vector<int> idx;
  idx.reserve(segments);
  for (int s = 0; s < segments; ++s) {
    idx.push_back((2 * s + 1) * frames / (2 * segments));  // segment centers
  }
  return idx;
}

TSN::TSN(TSNConfig config) : config_(config) {
  const int c = config.base_channels;
  auto conv = [&config](int in_c, int out_c, int stride) {
    nn::Conv2DConfig cc;
    cc.in_channels = in_c;
    cc.out_channels = out_c;
    cc.kernel = 3;
    cc.stride = stride;
    cc.padding = 1;
    cc.backend = config.conv_backend;
    return cc;
  };
  backbone_.emplace<nn::Conv2D>(conv(1, c, 2));
  backbone_.emplace<nn::BatchNorm>(c);
  backbone_.emplace<nn::ReLU>();
  backbone_.emplace<nn::Conv2D>(conv(c, 2 * c, 2));
  backbone_.emplace<nn::BatchNorm>(2 * c);
  backbone_.emplace<nn::ReLU>();
  backbone_.emplace<nn::GlobalAvgPool>();
  backbone_.emplace<nn::Linear>(2 * c, config.num_classes);

  safecross::Rng rng(config.init_seed);
  nn::init_params(backbone_.params(), rng);
}

Tensor TSN::forward(const Tensor& clips, bool training) {
  if (clips.ndim() != 5 || clips.dim(2) != config_.frames) {
    throw std::invalid_argument("TSN: expected (N, 1, " + std::to_string(config_.frames) +
                                ", H, W), got " + clips.shape_str());
  }
  const int n = clips.dim(0);
  const int h = clips.dim(3), w = clips.dim(4);
  last_batch_ = n;
  const int segs = config_.segments;

  // Sample one frame per segment, fold segments into the batch axis.
  const Tensor sampled = select_frames(clips, segment_indices(config_.frames, segs));
  // (N, 1, segs, H, W) -> (N*segs, 1, H, W): for channel count 1 the two
  // layouts are already identical in memory.
  const Tensor folded = sampled.reshaped({n * segs, 1, h, w});

  const Tensor per_frame = backbone_.forward(folded, training);  // (N*segs, K)

  // Consensus: average scores across segments.
  const int k = config_.num_classes;
  Tensor out({n, k}, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < segs; ++s) {
      for (int j = 0; j < k; ++j) {
        out[static_cast<std::size_t>(i) * k + j] +=
            per_frame[(static_cast<std::size_t>(i) * segs + s) * k + j];
      }
    }
  }
  out.scale(1.0f / static_cast<float>(segs));
  return out;
}

void TSN::backward(const Tensor& grad_scores) {
  const int n = last_batch_;
  const int segs = config_.segments;
  const int k = config_.num_classes;
  Tensor g({n * segs, k});
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < segs; ++s) {
      for (int j = 0; j < k; ++j) {
        g[(static_cast<std::size_t>(i) * segs + s) * k + j] =
            grad_scores[static_cast<std::size_t>(i) * k + j] / static_cast<float>(segs);
      }
    }
  }
  backbone_.backward(g);  // frame-selection grads discarded at the top
}

std::unique_ptr<VideoClassifier> TSN::clone() {
  auto copy = std::make_unique<TSN>(config_);
  nn::copy_param_values(params(), copy->params());
  nn::copy_buffers(buffers(), copy->buffers());
  return copy;
}

}  // namespace safecross::models
