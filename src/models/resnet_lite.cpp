#include "models/resnet_lite.h"

#include "nn/init.h"

namespace safecross::models {

using nn::Tensor;

namespace {

nn::Conv2DConfig conv_cfg(int in_c, int out_c, int kernel, int stride, int pad,
                          nn::ConvBackend backend) {
  nn::Conv2DConfig c;
  c.in_channels = in_c;
  c.out_channels = out_c;
  c.kernel = kernel;
  c.stride = stride;
  c.padding = pad;
  c.backend = backend;
  return c;
}

void relu_inplace(Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (t[i] < 0.0f) t[i] = 0.0f;
  }
}

void relu_backward_inplace(Tensor& grad, const Tensor& pre_activation) {
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (pre_activation[i] <= 0.0f) grad[i] = 0.0f;
  }
}

}  // namespace

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             nn::ConvBackend backend)
    : projected_(stride != 1 || in_channels != out_channels),
      conv1_(conv_cfg(in_channels, out_channels, 3, stride, 1, backend)),
      bn1_(out_channels),
      conv2_(conv_cfg(out_channels, out_channels, 3, 1, 1, backend)),
      bn2_(out_channels) {
  if (projected_) {
    proj_ =
        std::make_unique<nn::Conv2D>(conv_cfg(in_channels, out_channels, 1, stride, 0, backend));
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool training) {
  Tensor y = bn1_.forward(conv1_.forward(x, training), training);
  relu1_input_ = y;
  relu_inplace(y);
  y = bn2_.forward(conv2_.forward(y, training), training);
  const Tensor skip = projected_ ? proj_->forward(x, training) : x;
  y.add_scaled(skip, 1.0f);
  sum_input_ = y;
  relu_inplace(y);
  return y;
}

Tensor ResidualBlock::backward(const Tensor& grad) {
  Tensor g = grad;
  relu_backward_inplace(g, sum_input_);
  // The post-sum gradient flows into both the residual branch and the skip.
  Tensor branch = conv2_.backward(bn2_.backward(g));
  relu_backward_inplace(branch, relu1_input_);
  Tensor gx = conv1_.backward(bn1_.backward(branch));
  if (projected_) {
    gx.add_scaled(proj_->backward(g), 1.0f);
  } else {
    gx.add_scaled(g, 1.0f);
  }
  return gx;
}

void ResidualBlock::collect(std::vector<nn::Param*>& params, std::vector<nn::Tensor*>& buffers) {
  for (nn::Param* p : conv1_.params()) params.push_back(p);
  for (nn::Param* p : bn1_.params()) params.push_back(p);
  for (nn::Tensor* b : bn1_.buffers()) buffers.push_back(b);
  for (nn::Param* p : conv2_.params()) params.push_back(p);
  for (nn::Param* p : bn2_.params()) params.push_back(p);
  for (nn::Tensor* b : bn2_.buffers()) buffers.push_back(b);
  if (projected_) {
    for (nn::Param* p : proj_->params()) params.push_back(p);
  }
}

ResNetLite::ResNetLite(ResNetLiteConfig config)
    : config_(config),
      stem_(conv_cfg(1, config.base_channels, 3, 2, 1, config.conv_backend)),
      stem_bn_(config.base_channels),
      head_(2 * config.base_channels, config.num_classes) {
  const int c = config.base_channels;
  for (int b = 0; b < config.blocks_per_stage; ++b) {
    blocks_.push_back(std::make_unique<ResidualBlock>(c, c, 1, config.conv_backend));
  }
  blocks_.push_back(std::make_unique<ResidualBlock>(c, 2 * c, 2, config.conv_backend));
  for (int b = 1; b < config.blocks_per_stage; ++b) {
    blocks_.push_back(std::make_unique<ResidualBlock>(2 * c, 2 * c, 1, config.conv_backend));
  }
  safecross::Rng rng(config.init_seed);
  nn::init_params(params(), rng);
}

Tensor ResNetLite::forward(const Tensor& images, bool training) {
  Tensor y = stem_bn_.forward(stem_.forward(images, training), training);
  stem_relu_input_ = y;
  relu_inplace(y);
  for (auto& block : blocks_) y = block->forward(y, training);
  return head_.forward(pool_.forward(y, training), training);
}

void ResNetLite::backward(const Tensor& grad_scores) {
  Tensor g = pool_.backward(head_.backward(grad_scores));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = (*it)->backward(g);
  relu_backward_inplace(g, stem_relu_input_);
  stem_.backward(stem_bn_.backward(g));
}

std::vector<nn::Param*> ResNetLite::params() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  for (nn::Param* q : stem_.params()) p.push_back(q);
  for (nn::Param* q : stem_bn_.params()) p.push_back(q);
  for (auto& block : blocks_) block->collect(p, b);
  for (nn::Param* q : head_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> ResNetLite::buffers() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  for (nn::Tensor* q : stem_bn_.buffers()) b.push_back(q);
  for (auto& block : blocks_) block->collect(p, b);
  return b;
}

std::unique_ptr<ResNetLite> ResNetLite::clone() {
  auto copy = std::make_unique<ResNetLite>(config_);
  nn::copy_param_values(params(), copy->params());
  nn::copy_buffers(buffers(), copy->buffers());
  return copy;
}

}  // namespace safecross::models
