#pragma once
// Structural tensor operations the model graphs need beyond plain layer
// chaining: channel concat/split (SlowFast lateral fusion), temporal
// subsampling (slow pathway / C3D / TSN frame selection), and clip
// batching helpers. Each forward op has an explicit adjoint used in the
// manual backward passes.

#include <vector>

#include "nn/tensor.h"
#include "vision/image.h"

namespace safecross::models {

using nn::Tensor;

/// Concatenate along the channel axis (dim 1) of two tensors that agree
/// on every other dimension. Works for any rank >= 2.
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Adjoint of concat_channels: split grad into the two channel blocks.
std::pair<Tensor, Tensor> split_channels(const Tensor& grad, int channels_a);

/// Select every `stride`-th time step of a (N, C, T, H, W) tensor,
/// starting at `offset`: the SlowFast slow-pathway input.
Tensor subsample_time(const Tensor& x, int stride, int offset = 0);

/// Adjoint of subsample_time: scatter grads back to the full time axis.
Tensor subsample_time_backward(const Tensor& grad, const std::vector<int>& full_shape, int stride,
                               int offset = 0);

/// Pick explicit frame indices from (N, C, T, H, W) -> (N, C, |idx|, H, W)
/// (TSN's sparse segment sampling).
Tensor select_frames(const Tensor& x, const std::vector<int>& frame_indices);

/// Pack a clip (T grayscale images of identical size) into a
/// (1, 1, T, H, W) tensor.
Tensor clip_to_tensor(const std::vector<vision::Image>& frames);

/// Pack several clips into a (N, 1, T, H, W) batch (all clips must agree
/// on T, H, W).
Tensor clips_to_batch(const std::vector<const std::vector<vision::Image>*>& clips);

}  // namespace safecross::models
