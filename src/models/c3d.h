#pragma once
// C3D baseline (Tran et al., ICCV'15), scaled down: a stack of 3x3x3
// Conv3D + ReLU + MaxPool3D stages over a 16-frame clip, with a linear
// SVM head (the paper: "C3D ... uses SVM to classify video" — train it
// with nn::MulticlassHinge).
//
// Input clips are (N, 1, 32, H, W); C3D takes every second frame
// (16x1x1 sampling, mirroring the paper's c3d_sports1m_16x1x1 config).

#include "models/video_classifier.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace safecross::models {

struct C3DConfig {
  int num_classes = 2;
  int frames = 32;       // input clip length; internally strided to 16
  int base_channels = 8;
  std::uint64_t init_seed = 22u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // all Conv3D layers
};

class C3D final : public VideoClassifier {
 public:
  explicit C3D(C3DConfig config = {});

  nn::Tensor forward(const nn::Tensor& clips, bool training) override;
  void backward(const nn::Tensor& grad_scores) override;
  std::vector<nn::Param*> params() override { return net_.params(); }
  std::vector<nn::Tensor*> buffers() override { return net_.buffers(); }
  std::string name() const override { return "c3d"; }
  int num_classes() const override { return config_.num_classes; }
  std::unique_ptr<VideoClassifier> clone() override;

  const C3DConfig& config() const { return config_; }

 private:
  C3DConfig config_;
  nn::Sequential net_;
  std::vector<int> input_shape_;
};

}  // namespace safecross::models
