#pragma once
// Common interface of the video classification models (SlowFast, C3D,
// TSN). Input is a (N, 1, T, H, W) clip batch of top-down occupancy
// frames; output is (N, K) class logits/scores.

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace safecross::models {

class VideoClassifier {
 public:
  virtual ~VideoClassifier() = default;

  /// (N, 1, T, H, W) -> (N, num_classes) scores.
  virtual nn::Tensor forward(const nn::Tensor& clips, bool training) = 0;

  /// Propagate d(loss)/d(scores); accumulates parameter gradients.
  virtual void backward(const nn::Tensor& grad_scores) = 0;

  virtual std::vector<nn::Param*> params() = 0;
  virtual std::vector<nn::Tensor*> buffers() = 0;
  virtual std::string name() const = 0;
  virtual int num_classes() const = 0;

  /// Structurally identical copy with the same weights and buffers —
  /// the primitive MAML's inner loop and PipeSwitch's standby models use.
  virtual std::unique_ptr<VideoClassifier> clone() = 0;

  void zero_grad() {
    for (nn::Param* p : params()) p->zero_grad();
  }
};

}  // namespace safecross::models
