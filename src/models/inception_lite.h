#pragma once
// Inception-lite: genuine multi-branch inception blocks over (N, 1, H, W)
// images — per-block parallel 1x1 / 3x3 / 5x5 branches whose outputs are
// channel-concatenated, with manual backward that splits the gradient
// back into the branches. The third real image workload for the
// switching engine, and a structural test bed for branch-and-concat
// graphs.

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace safecross::models {

struct InceptionLiteConfig {
  int num_classes = 3;
  int branch_channels = 4;  // per-branch width inside each block
  int blocks = 2;
  std::uint64_t init_seed = 26u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // all Conv2D layers
};

/// One inception block: three parallel conv paths concatenated on the
/// channel axis. Output channels = 3 * branch_channels.
class InceptionBlock {
 public:
  InceptionBlock(int in_channels, int branch_channels,
                 nn::ConvBackend backend = nn::ConvBackend::kAuto);

  nn::Tensor forward(const nn::Tensor& x, bool training);
  nn::Tensor backward(const nn::Tensor& grad);
  void collect(std::vector<nn::Param*>& params, std::vector<nn::Tensor*>& buffers);

  int out_channels() const { return 3 * branch_channels_; }

 private:
  struct Branch {
    nn::Conv2D conv;
    nn::BatchNorm bn;
    nn::Tensor relu_input;

    Branch(nn::Conv2DConfig cfg) : conv(cfg), bn(cfg.out_channels) {}
  };

  int branch_channels_;
  Branch b1x1_;
  Branch b3x3_;
  Branch b5x5_;
};

class InceptionLite {
 public:
  explicit InceptionLite(InceptionLiteConfig config = {});

  /// (N, 1, H, W) -> (N, num_classes).
  nn::Tensor forward(const nn::Tensor& images, bool training);
  void backward(const nn::Tensor& grad_scores);
  std::vector<nn::Param*> params();
  std::vector<nn::Tensor*> buffers();
  std::unique_ptr<InceptionLite> clone();

  const InceptionLiteConfig& config() const { return config_; }

 private:
  InceptionLiteConfig config_;
  nn::Conv2D stem_;
  nn::BatchNorm stem_bn_;
  std::vector<std::unique_ptr<InceptionBlock>> blocks_;
  std::vector<std::unique_ptr<nn::MaxPool2D>> pools_;  // between blocks
  nn::GlobalAvgPool gap_;
  nn::Linear head_;
  nn::Tensor stem_relu_input_;
};

}  // namespace safecross::models
