#pragma once
// ResNet-lite: a small but genuine residual network over (N, 1, H, W)
// images — identity and projection skip connections with manual
// forward/backward plumbing. Serves three roles: an image-classification
// workload with real weights for the switching engine, the backbone of
// the learned weather classifier, and a structural test bed for skip
// connections (which SlowFast's scaled-down pathways omit).

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace safecross::models {

struct ResNetLiteConfig {
  int num_classes = 3;
  int base_channels = 8;
  int blocks_per_stage = 2;  // two stages; stage 2 doubles width at stride 2
  std::uint64_t init_seed = 25u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // all Conv2D layers
};

/// One residual block: conv-bn-relu-conv-bn (+ skip) -> relu.
/// A stride-2 block projects the skip with a 1x1 conv.
class ResidualBlock {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride,
                nn::ConvBackend backend = nn::ConvBackend::kAuto);

  nn::Tensor forward(const nn::Tensor& x, bool training);
  nn::Tensor backward(const nn::Tensor& grad);
  void collect(std::vector<nn::Param*>& params, std::vector<nn::Tensor*>& buffers);

 private:
  bool projected_;
  nn::Conv2D conv1_;
  nn::BatchNorm bn1_;
  nn::Conv2D conv2_;
  nn::BatchNorm bn2_;
  std::unique_ptr<nn::Conv2D> proj_;  // 1x1 skip projection when shapes change
  nn::Tensor relu1_input_;
  nn::Tensor sum_input_;  // pre-activation of the final ReLU
};

class ResNetLite {
 public:
  explicit ResNetLite(ResNetLiteConfig config = {});

  /// (N, 1, H, W) -> (N, num_classes).
  nn::Tensor forward(const nn::Tensor& images, bool training);
  void backward(const nn::Tensor& grad_scores);
  std::vector<nn::Param*> params();
  std::vector<nn::Tensor*> buffers();
  std::unique_ptr<ResNetLite> clone();

  const ResNetLiteConfig& config() const { return config_; }

 private:
  ResNetLiteConfig config_;
  nn::Conv2D stem_;
  nn::BatchNorm stem_bn_;
  std::vector<std::unique_ptr<ResidualBlock>> blocks_;
  nn::GlobalAvgPool pool_;
  nn::Linear head_;
  nn::Tensor stem_relu_input_;
};

}  // namespace safecross::models
