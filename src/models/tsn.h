#pragma once
// Temporal Segment Network baseline (Wang et al., ECCV'16), scaled down.
//
// TSN's defining idea: divide the clip into `segments` equal spans,
// sample ONE frame from each, run a shared 2-D CNN backbone on each
// sampled frame, and average the per-frame class scores (the "consensus").
// Implemented by folding segments into the batch axis so the shared
// backbone sees (N * segments, 1, H, W) in a single pass.
//
// Deliberately discards most temporal information — which is exactly why
// it trails SlowFast/C3D on SafeCross data (paper Table IV), where the
// label depends on oncoming-vehicle *motion*.

#include "models/video_classifier.h"
#include "nn/conv_backend.h"
#include "nn/sequential.h"

namespace safecross::models {

struct TSNConfig {
  int num_classes = 2;
  int frames = 32;
  int segments = 3;  // the paper's tsn_r50_1x1x3 config
  int base_channels = 8;
  std::uint64_t init_seed = 23u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // backbone Conv2D layers
};

class TSN final : public VideoClassifier {
 public:
  explicit TSN(TSNConfig config = {});

  nn::Tensor forward(const nn::Tensor& clips, bool training) override;
  void backward(const nn::Tensor& grad_scores) override;
  std::vector<nn::Param*> params() override { return backbone_.params(); }
  std::vector<nn::Tensor*> buffers() override { return backbone_.buffers(); }
  std::string name() const override { return "tsn"; }
  int num_classes() const override { return config_.num_classes; }
  std::unique_ptr<VideoClassifier> clone() override;

  const TSNConfig& config() const { return config_; }

  /// Center frame index of each segment for a clip of `frames` frames.
  static std::vector<int> segment_indices(int frames, int segments);

 private:
  TSNConfig config_;
  nn::Sequential backbone_;  // (N*segments, 1, H, W) -> (N*segments, K)
  int last_batch_ = 0;
};

}  // namespace safecross::models
