#pragma once
// SlowFast video classification network (Feichtenhofer et al., ICCV'19),
// scaled to SafeCross's small occupancy-grid inputs.
//
// Structure kept from the paper (its Fig. 5):
//   * Slow pathway: low frame rate — every alpha-th frame — and most of
//     the channel capacity; learns spatial semantics.
//   * Fast pathway: every frame, beta-fraction of the channels; learns
//     motion.
//   * Lateral connections: time-strided Conv3D projects fast features to
//     the slow pathway's temporal resolution, channel-concatenated into
//     the slow pathway after each stage.
//   * Head: global average pool of both pathways, concatenated, linear
//     classifier.
//
// `use_lateral = false` severs the lateral connections for the ablation
// bench.

#include "models/video_classifier.h"
#include "nn/batchnorm.h"
#include "nn/conv3d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace safecross::models {

struct SlowFastConfig {
  int num_classes = 2;
  int frames = 32;       // T of the input clip (the paper's segment length)
  int alpha = 8;         // slow pathway temporal stride (32/8 = 4 slow frames)
  int slow_channels = 8;     // stage-1 slow width
  int fast_channels = 2;     // stage-1 fast width (≈ beta * slow)
  bool use_lateral = true;
  float dropout = 0.3f;
  std::uint64_t init_seed = 21u;
  nn::ConvBackend conv_backend = nn::ConvBackend::kAuto;  // all Conv3D layers
};

/// Conv3D + BatchNorm + ReLU block with manual forward/backward.
struct ConvBNReLU3D {
  nn::Conv3D conv;
  nn::BatchNorm bn;

  explicit ConvBNReLU3D(nn::Conv3DConfig c) : conv(c), bn(c.out_channels) {}

  nn::Tensor forward(const nn::Tensor& x, bool training);
  nn::Tensor backward(const nn::Tensor& grad);
  void collect(std::vector<nn::Param*>& params, std::vector<nn::Tensor*>& buffers);

 private:
  nn::Tensor relu_input_;
};

class SlowFast final : public VideoClassifier {
 public:
  explicit SlowFast(SlowFastConfig config = {});

  nn::Tensor forward(const nn::Tensor& clips, bool training) override;
  void backward(const nn::Tensor& grad_scores) override;
  std::vector<nn::Param*> params() override;
  std::vector<nn::Tensor*> buffers() override;
  std::string name() const override { return "slowfast"; }
  int num_classes() const override { return config_.num_classes; }
  std::unique_ptr<VideoClassifier> clone() override;

  const SlowFastConfig& config() const { return config_; }

 private:
  SlowFastConfig config_;

  ConvBNReLU3D slow_stem_;
  ConvBNReLU3D slow_stage2_;
  ConvBNReLU3D fast_stem_;
  ConvBNReLU3D fast_stage2_;
  nn::Conv3D lateral1_;  // fast stem out -> slow temporal resolution
  nn::Conv3D lateral2_;  // fast stage2 out -> slow temporal resolution
  nn::GlobalAvgPool pool_slow_;
  nn::GlobalAvgPool pool_fast_;
  nn::Dropout dropout_;
  nn::Linear head_;

  // Forward-state needed by backward.
  std::vector<int> input_shape_;
  int slow_feat_channels_ = 0;
};

}  // namespace safecross::models
