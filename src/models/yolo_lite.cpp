#include "models/yolo_lite.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/init.h"

namespace safecross::models {

using nn::Tensor;

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

float iou(const YoloBox& a, const YoloBox& b) {
  const float ax0 = a.cx - a.w / 2, ax1 = a.cx + a.w / 2;
  const float ay0 = a.cy - a.h / 2, ay1 = a.cy + a.h / 2;
  const float bx0 = b.cx - b.w / 2, bx1 = b.cx + b.w / 2;
  const float by0 = b.cy - b.h / 2, by1 = b.cy + b.h / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = a.w * a.h + b.w * b.h - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

YoloLite::YoloLite(YoloLiteConfig config) : config_(config) {
  if (config.in_height % config.downscale() != 0 || config.in_width % config.downscale() != 0) {
    throw std::invalid_argument("YoloLite: input must be divisible by the grid downscale");
  }
  const int c = config.base_channels;
  auto conv = [&config](int in_c, int out_c, int kernel, int stride, int pad) {
    nn::Conv2DConfig cc;
    cc.in_channels = in_c;
    cc.out_channels = out_c;
    cc.kernel = kernel;
    cc.stride = stride;
    cc.padding = pad;
    cc.backend = config.conv_backend;
    return cc;
  };
  net_.emplace<nn::Conv2D>(conv(1, c, 3, 2, 1));
  net_.emplace<nn::BatchNorm>(c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(conv(c, 2 * c, 3, 2, 1));
  net_.emplace<nn::BatchNorm>(2 * c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(conv(2 * c, 2 * c, 3, 2, 1));
  net_.emplace<nn::BatchNorm>(2 * c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(conv(2 * c, 5, 1, 1, 0));  // detection head

  safecross::Rng rng(config.init_seed);
  nn::init_params(net_.params(), rng);
}

Tensor YoloLite::forward(const Tensor& frames, bool training) {
  // Fully convolutional: any resolution divisible by the grid downscale
  // works; config.in_* is the canonical training size.
  if (frames.ndim() != 4 || frames.dim(1) != 1 || frames.dim(2) % config_.downscale() != 0 ||
      frames.dim(3) % config_.downscale() != 0) {
    throw std::invalid_argument("YoloLite: expected (N, 1, H, W) with H, W divisible by " +
                                std::to_string(config_.downscale()) + ", got " +
                                frames.shape_str());
  }
  return net_.forward(frames, training);
}

void YoloLite::backward(const Tensor& grad) { net_.backward(grad); }

std::vector<YoloBox> YoloLite::detect(const vision::Image& frame, float conf_threshold) {
  // Run at the frame's native resolution when the grid divides it;
  // otherwise resize to the canonical training size.
  vision::Image scaled = frame;
  if (frame.width() % config_.downscale() != 0 || frame.height() % config_.downscale() != 0) {
    scaled = frame.resized_area(config_.in_width, config_.in_height);
  }
  Tensor input({1, 1, scaled.height(), scaled.width()});
  std::copy(scaled.data(), scaled.data() + scaled.size(), input.data());

  const Tensor pred = forward(input, /*training=*/false);
  const int gh = scaled.height() / config_.downscale();
  const int gw = scaled.width() / config_.downscale();
  const float cell = static_cast<float>(config_.downscale());
  const std::size_t plane = static_cast<std::size_t>(gh) * gw;

  std::vector<YoloBox> boxes;
  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      const std::size_t i = static_cast<std::size_t>(gy) * gw + gx;
      const float conf = sigmoid(pred[0 * plane + i]);
      if (conf < conf_threshold) continue;
      YoloBox b;
      b.confidence = conf;
      b.cx = (static_cast<float>(gx) + sigmoid(pred[1 * plane + i])) * cell;
      b.cy = (static_cast<float>(gy) + sigmoid(pred[2 * plane + i])) * cell;
      b.w = std::exp(std::clamp(pred[3 * plane + i], -4.0f, 4.0f)) * cell;
      b.h = std::exp(std::clamp(pred[4 * plane + i], -4.0f, 4.0f)) * cell;
      boxes.push_back(b);
    }
  }

  // Greedy NMS.
  std::sort(boxes.begin(), boxes.end(),
            [](const YoloBox& a, const YoloBox& b) { return a.confidence > b.confidence; });
  std::vector<YoloBox> kept;
  for (const YoloBox& b : boxes) {
    bool suppressed = false;
    for (const YoloBox& k : kept) {
      if (iou(b, k) > 0.4f) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(b);
  }
  return kept;
}

float YoloLoss::forward(const Tensor& pred, const std::vector<std::vector<YoloBox>>& truth) {
  const int n = pred.dim(0);
  if (static_cast<std::size_t>(n) != truth.size() || pred.ndim() != 4 || pred.dim(1) != 5) {
    throw std::invalid_argument("YoloLoss: prediction/truth mismatch");
  }
  const int gh = pred.dim(2);
  const int gw = pred.dim(3);
  const float cell = static_cast<float>(config_.downscale());
  const std::size_t plane = static_cast<std::size_t>(gh) * gw;

  grad_ = Tensor::zeros_like(pred);
  double loss = 0.0;
  for (int bi = 0; bi < n; ++bi) {
    const float* p = pred.data() + static_cast<std::size_t>(bi) * 5 * plane;
    float* g = grad_.data() + static_cast<std::size_t>(bi) * 5 * plane;

    // Mark responsible cells and their targets.
    std::vector<int> responsible(plane, -1);
    for (std::size_t t = 0; t < truth[bi].size(); ++t) {
      const YoloBox& box = truth[bi][t];
      const int gx = std::clamp(static_cast<int>(box.cx / cell), 0, gw - 1);
      const int gy = std::clamp(static_cast<int>(box.cy / cell), 0, gh - 1);
      responsible[static_cast<std::size_t>(gy) * gw + gx] = static_cast<int>(t);
    }

    for (std::size_t i = 0; i < plane; ++i) {
      const float conf = sigmoid(p[0 * plane + i]);
      if (responsible[i] >= 0) {
        const YoloBox& box = truth[bi][static_cast<std::size_t>(responsible[i])];
        const int gx = static_cast<int>(i) % gw;
        const int gy = static_cast<int>(i) / gw;
        // Objectness toward 1 (squared error on the sigmoid; chain the
        // sigmoid derivative into the logit gradient).
        const float derr = conf - 1.0f;
        loss += derr * derr;
        g[0 * plane + i] += 2.0f * derr * conf * (1.0f - conf);
        // Box regression.
        const float tx = box.cx / cell - static_cast<float>(gx);
        const float ty = box.cy / cell - static_cast<float>(gy);
        const float sx = sigmoid(p[1 * plane + i]);
        const float sy = sigmoid(p[2 * plane + i]);
        const float dw = p[3 * plane + i] - std::log(std::max(box.w / cell, 1e-3f));
        const float dh = p[4 * plane + i] - std::log(std::max(box.h / cell, 1e-3f));
        loss += config_.lambda_coord *
                ((sx - tx) * (sx - tx) + (sy - ty) * (sy - ty) + dw * dw + dh * dh);
        g[1 * plane + i] += config_.lambda_coord * 2.0f * (sx - tx) * sx * (1.0f - sx);
        g[2 * plane + i] += config_.lambda_coord * 2.0f * (sy - ty) * sy * (1.0f - sy);
        g[3 * plane + i] += config_.lambda_coord * 2.0f * dw;
        g[4 * plane + i] += config_.lambda_coord * 2.0f * dh;
      } else {
        // Objectness toward 0 at reduced weight.
        loss += config_.lambda_noobj * conf * conf;
        g[0 * plane + i] += config_.lambda_noobj * 2.0f * conf * conf * (1.0f - conf);
      }
    }
  }
  const float scale = 1.0f / static_cast<float>(n);
  grad_.scale(scale);
  return static_cast<float>(loss * scale);
}

}  // namespace safecross::models
