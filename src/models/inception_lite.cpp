#include "models/inception_lite.h"

#include "models/tensor_ops.h"
#include "nn/init.h"

namespace safecross::models {

using nn::Tensor;

namespace {

nn::Conv2DConfig conv_cfg(int in_c, int out_c, int kernel, int stride, int pad,
                          nn::ConvBackend backend) {
  nn::Conv2DConfig c;
  c.in_channels = in_c;
  c.out_channels = out_c;
  c.kernel = kernel;
  c.stride = stride;
  c.padding = pad;
  c.backend = backend;
  return c;
}

void relu_inplace(Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (t[i] < 0.0f) t[i] = 0.0f;
  }
}

void relu_backward_inplace(Tensor& grad, const Tensor& pre) {
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (pre[i] <= 0.0f) grad[i] = 0.0f;
  }
}

}  // namespace

InceptionBlock::InceptionBlock(int in_channels, int branch_channels, nn::ConvBackend backend)
    : branch_channels_(branch_channels),
      b1x1_(conv_cfg(in_channels, branch_channels, 1, 1, 0, backend)),
      b3x3_(conv_cfg(in_channels, branch_channels, 3, 1, 1, backend)),
      b5x5_(conv_cfg(in_channels, branch_channels, 5, 1, 2, backend)) {}

Tensor InceptionBlock::forward(const Tensor& x, bool training) {
  auto run = [&](Branch& br) {
    Tensor y = br.bn.forward(br.conv.forward(x, training), training);
    br.relu_input = y;
    relu_inplace(y);
    return y;
  };
  const Tensor y1 = run(b1x1_);
  const Tensor y3 = run(b3x3_);
  const Tensor y5 = run(b5x5_);
  return concat_channels(concat_channels(y1, y3), y5);
}

Tensor InceptionBlock::backward(const Tensor& grad) {
  auto [g13, g5] = split_channels(grad, 2 * branch_channels_);
  auto [g1, g3] = split_channels(g13, branch_channels_);
  auto run = [&](Branch& br, Tensor g) {
    relu_backward_inplace(g, br.relu_input);
    return br.conv.backward(br.bn.backward(g));
  };
  Tensor gx = run(b1x1_, std::move(g1));
  gx.add_scaled(run(b3x3_, std::move(g3)), 1.0f);
  gx.add_scaled(run(b5x5_, std::move(g5)), 1.0f);
  return gx;
}

void InceptionBlock::collect(std::vector<nn::Param*>& params,
                             std::vector<nn::Tensor*>& buffers) {
  for (Branch* br : {&b1x1_, &b3x3_, &b5x5_}) {
    for (nn::Param* p : br->conv.params()) params.push_back(p);
    for (nn::Param* p : br->bn.params()) params.push_back(p);
    for (nn::Tensor* b : br->bn.buffers()) buffers.push_back(b);
  }
}

InceptionLite::InceptionLite(InceptionLiteConfig config)
    : config_(config),
      stem_(conv_cfg(1, 2 * config.branch_channels, 3, 2, 1, config.conv_backend)),
      stem_bn_(2 * config.branch_channels),
      head_(3 * config.branch_channels, config.num_classes) {
  int channels = 2 * config.branch_channels;
  for (int b = 0; b < config.blocks; ++b) {
    blocks_.push_back(
        std::make_unique<InceptionBlock>(channels, config.branch_channels, config.conv_backend));
    channels = blocks_.back()->out_channels();
    if (b + 1 < config.blocks) pools_.push_back(std::make_unique<nn::MaxPool2D>(2, 2));
  }
  safecross::Rng rng(config.init_seed);
  nn::init_params(params(), rng);
}

Tensor InceptionLite::forward(const Tensor& images, bool training) {
  Tensor y = stem_bn_.forward(stem_.forward(images, training), training);
  stem_relu_input_ = y;
  relu_inplace(y);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    y = blocks_[b]->forward(y, training);
    if (b < pools_.size()) y = pools_[b]->forward(y, training);
  }
  return head_.forward(gap_.forward(y, training), training);
}

void InceptionLite::backward(const Tensor& grad_scores) {
  Tensor g = gap_.backward(head_.backward(grad_scores));
  for (std::size_t b = blocks_.size(); b-- > 0;) {
    if (b < pools_.size()) g = pools_[b]->backward(g);
    g = blocks_[b]->backward(g);
  }
  relu_backward_inplace(g, stem_relu_input_);
  stem_.backward(stem_bn_.backward(g));
}

std::vector<nn::Param*> InceptionLite::params() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  for (nn::Param* q : stem_.params()) p.push_back(q);
  for (nn::Param* q : stem_bn_.params()) p.push_back(q);
  for (auto& block : blocks_) block->collect(p, b);
  for (nn::Param* q : head_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> InceptionLite::buffers() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  for (nn::Tensor* q : stem_bn_.buffers()) b.push_back(q);
  for (auto& block : blocks_) block->collect(p, b);
  return b;
}

std::unique_ptr<InceptionLite> InceptionLite::clone() {
  auto copy = std::make_unique<InceptionLite>(config_);
  nn::copy_param_values(params(), copy->params());
  nn::copy_buffers(buffers(), copy->buffers());
  return copy;
}

}  // namespace safecross::models
