#include "models/c3d.h"

#include <stdexcept>

#include "models/tensor_ops.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/init.h"

namespace safecross::models {

using nn::Tensor;

C3D::C3D(C3DConfig config) : config_(config) {
  const int c = config.base_channels;
  auto conv = [&config](int in_c, int out_c) {
    nn::Conv3DConfig cc;
    cc.in_channels = in_c;
    cc.out_channels = out_c;
    cc.kernel_t = 3;
    cc.kernel_s = 3;
    cc.pad_t = 1;
    cc.pad_s = 1;
    cc.backend = config.conv_backend;
    return cc;
  };
  // conv1 -> pool (spatial only, as in C3D's first stage) -> conv2 ->
  // pool (temporal+spatial) -> conv3 -> global pool -> SVM scores.
  net_.emplace<nn::Conv3D>(conv(1, c));
  net_.emplace<nn::BatchNorm>(c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool3D>(1, 2, 1, 2);
  net_.emplace<nn::Conv3D>(conv(c, 2 * c));
  net_.emplace<nn::BatchNorm>(2 * c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool3D>(2, 2, 2, 2);
  net_.emplace<nn::Conv3D>(conv(2 * c, 2 * c));
  net_.emplace<nn::BatchNorm>(2 * c);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::GlobalAvgPool>();
  net_.emplace<nn::Linear>(2 * c, config.num_classes);

  safecross::Rng rng(config.init_seed);
  nn::init_params(net_.params(), rng);
}

Tensor C3D::forward(const Tensor& clips, bool training) {
  if (clips.ndim() != 5 || clips.dim(2) != config_.frames) {
    throw std::invalid_argument("C3D: expected (N, 1, " + std::to_string(config_.frames) +
                                ", H, W), got " + clips.shape_str());
  }
  input_shape_.assign(clips.shape().begin(), clips.shape().end());
  const Tensor sub = subsample_time(clips, 2);  // 32 -> 16 frames
  return net_.forward(sub, training);
}

void C3D::backward(const Tensor& grad_scores) {
  net_.backward(grad_scores);  // input grads discarded at the top
}

std::unique_ptr<VideoClassifier> C3D::clone() {
  auto copy = std::make_unique<C3D>(config_);
  nn::copy_param_values(params(), copy->params());
  nn::copy_buffers(buffers(), copy->buffers());
  return copy;
}

}  // namespace safecross::models
