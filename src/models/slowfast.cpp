#include "models/slowfast.h"

#include <stdexcept>

#include "models/tensor_ops.h"
#include "nn/init.h"

namespace safecross::models {

using nn::Tensor;

nn::Tensor ConvBNReLU3D::forward(const nn::Tensor& x, bool training) {
  Tensor y = conv.forward(x, training);
  y = bn.forward(y, training);
  relu_input_ = y;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
  }
  return y;
}

nn::Tensor ConvBNReLU3D::backward(const nn::Tensor& grad) {
  Tensor g = grad;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    if (relu_input_[i] <= 0.0f) g[i] = 0.0f;
  }
  g = bn.backward(g);
  return conv.backward(g);
}

void ConvBNReLU3D::collect(std::vector<nn::Param*>& params, std::vector<nn::Tensor*>& buffers) {
  for (nn::Param* p : conv.params()) params.push_back(p);
  for (nn::Param* p : bn.params()) params.push_back(p);
  for (nn::Tensor* b : bn.buffers()) buffers.push_back(b);
}

namespace {

nn::Conv3DConfig conv_cfg(nn::ConvBackend backend, int in_c, int out_c, int kt, int ks, int st,
                          int ss, int pt, int ps) {
  nn::Conv3DConfig c;
  c.in_channels = in_c;
  c.out_channels = out_c;
  c.kernel_t = kt;
  c.kernel_s = ks;
  c.stride_t = st;
  c.stride_s = ss;
  c.pad_t = pt;
  c.pad_s = ps;
  c.backend = backend;
  return c;
}

}  // namespace

SlowFast::SlowFast(SlowFastConfig config)
    : config_(config),
      // Slow pathway: temporal kernel 1 in the stem (the SlowFast paper's
      // "no temporal convolution before res4 in the slow path" insight,
      // scaled down), spatial stride 2.
      slow_stem_(conv_cfg(config.conv_backend, 1, config.slow_channels, 1, 3, 1, 2, 0, 1)),
      slow_stage2_(conv_cfg(
          config.conv_backend,
          config.use_lateral ? config.slow_channels + 2 * config.fast_channels
                             : config.slow_channels,
          2 * config.slow_channels, 3, 3, 1, 2, 1, 1)),
      // Fast pathway: long temporal kernel, thin channels.
      fast_stem_(conv_cfg(config.conv_backend, 1, config.fast_channels, 5, 3, 1, 2, 2, 1)),
      fast_stage2_(conv_cfg(config.conv_backend, config.fast_channels, 2 * config.fast_channels,
                            3, 3, 1, 2, 1, 1)),
      // Lateral: time-strided conv, fast temporal resolution -> slow.
      lateral1_(conv_cfg(config.conv_backend, config.fast_channels, 2 * config.fast_channels,
                         config.alpha, 1, config.alpha, 1, 0, 0)),
      lateral2_(conv_cfg(config.conv_backend, 2 * config.fast_channels, 4 * config.fast_channels,
                         config.alpha, 1, config.alpha, 1, 0, 0)),
      dropout_(config.dropout, config.init_seed ^ 0xD0u),
      head_((config.use_lateral ? 2 * config.slow_channels + 4 * config.fast_channels
                                : 2 * config.slow_channels) +
                2 * config.fast_channels,
            config.num_classes) {
  if (config.frames % config.alpha != 0) {
    throw std::invalid_argument("SlowFast: frames must be a multiple of alpha");
  }
  slow_feat_channels_ =
      config.use_lateral ? 2 * config_.slow_channels + 4 * config_.fast_channels
                         : 2 * config_.slow_channels;
  safecross::Rng rng(config.init_seed);
  nn::init_params(params(), rng);
}

Tensor SlowFast::forward(const Tensor& clips, bool training) {
  if (clips.ndim() != 5 || clips.dim(1) != 1 || clips.dim(2) != config_.frames) {
    throw std::invalid_argument("SlowFast: expected (N, 1, " + std::to_string(config_.frames) +
                                ", H, W), got " + clips.shape_str());
  }
  input_shape_.assign(clips.shape().begin(), clips.shape().end());

  const Tensor slow_in = subsample_time(clips, config_.alpha);
  Tensor s = slow_stem_.forward(slow_in, training);
  Tensor f = fast_stem_.forward(clips, training);

  if (config_.use_lateral) {
    const Tensor l1 = lateral1_.forward(f, training);
    s = concat_channels(s, l1);
  }
  Tensor s2 = slow_stage2_.forward(s, training);
  Tensor f2 = fast_stage2_.forward(f, training);
  if (config_.use_lateral) {
    const Tensor l2 = lateral2_.forward(f2, training);
    s2 = concat_channels(s2, l2);
  }

  const Tensor ps = pool_slow_.forward(s2, training);
  const Tensor pf = pool_fast_.forward(f2, training);
  Tensor feat = concat_channels(ps, pf);
  feat = dropout_.forward(feat, training);
  return head_.forward(feat, training);
}

void SlowFast::backward(const Tensor& grad_scores) {
  Tensor g = head_.backward(grad_scores);
  g = dropout_.backward(g);
  auto [gps, gpf] = split_channels(g, slow_feat_channels_);

  Tensor g_s2c = pool_slow_.backward(gps);
  Tensor g_f2 = pool_fast_.backward(gpf);

  Tensor g_s2 = std::move(g_s2c);
  if (config_.use_lateral) {
    auto [gs, gl2] = split_channels(g_s2, 2 * config_.slow_channels);
    g_s2 = std::move(gs);
    g_f2.add_scaled(lateral2_.backward(gl2), 1.0f);
  }

  Tensor g_f1 = fast_stage2_.backward(g_f2);
  Tensor g_s1c = slow_stage2_.backward(g_s2);

  Tensor g_s1 = std::move(g_s1c);
  if (config_.use_lateral) {
    auto [gs, gl1] = split_channels(g_s1, config_.slow_channels);
    g_s1 = std::move(gs);
    g_f1.add_scaled(lateral1_.backward(gl1), 1.0f);
  }

  fast_stem_.backward(g_f1);
  slow_stem_.backward(g_s1);
  // Input gradients discarded: clips are the top of the graph.
}

std::vector<nn::Param*> SlowFast::params() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  slow_stem_.collect(p, b);
  slow_stage2_.collect(p, b);
  fast_stem_.collect(p, b);
  fast_stage2_.collect(p, b);
  if (config_.use_lateral) {
    for (nn::Param* q : lateral1_.params()) p.push_back(q);
    for (nn::Param* q : lateral2_.params()) p.push_back(q);
  }
  for (nn::Param* q : head_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> SlowFast::buffers() {
  std::vector<nn::Param*> p;
  std::vector<nn::Tensor*> b;
  slow_stem_.collect(p, b);
  slow_stage2_.collect(p, b);
  fast_stem_.collect(p, b);
  fast_stage2_.collect(p, b);
  return b;
}

std::unique_ptr<VideoClassifier> SlowFast::clone() {
  auto copy = std::make_unique<SlowFast>(config_);
  nn::copy_param_values(params(), copy->params());
  nn::copy_buffers(buffers(), copy->buffers());
  return copy;
}

}  // namespace safecross::models
