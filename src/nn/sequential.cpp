#include "nn/sequential.h"

namespace safecross::nn {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

}  // namespace safecross::nn
