#include "nn/conv3d.h"

#include <algorithm>
#include <stdexcept>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "nn/gemm.h"
#include "nn/im2col.h"

namespace safecross::nn {

namespace {

// Valid kernel index range [begin, end) so that the input coordinate
// o*stride - pad + k stays inside [0, in).
inline void kernel_range(int o, int stride, int pad, int kernel, int in, int& begin, int& end) {
  const int base = o * stride - pad;
  begin = std::max(0, -base);
  end = std::min(kernel, in - base);
}

}  // namespace

Conv3D::Conv3D(Conv3DConfig config)
    : config_(config),
      backend_(resolve_conv_backend(config.backend)),
      weight_(Tensor({config.out_channels, config.in_channels, config.kernel_t, config.kernel_s,
                      config.kernel_s})),
      bias_(Tensor({config.out_channels})) {
  if (config.kernel_t < 1 || config.kernel_s < 1 || config.stride_t < 1 || config.stride_s < 1 ||
      config.pad_t < 0 || config.pad_s < 0) {
    throw std::invalid_argument("Conv3D: invalid geometry");
  }
}

int Conv3D::out_size(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

std::vector<Param*> Conv3D::params() {
  if (config_.bias) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Conv3D::forward(const Tensor& input, bool training) {
  if (input.ndim() != 5 || input.dim(1) != config_.in_channels) {
    throw std::invalid_argument("Conv3D: expected (N, " + std::to_string(config_.in_channels) +
                                ", T, H, W), got " + input.shape_str());
  }
  cached_input_ = input;
  const int ot = out_size(input.dim(2), config_.kernel_t, config_.stride_t, config_.pad_t);
  const int oh = out_size(input.dim(3), config_.kernel_s, config_.stride_s, config_.pad_s);
  const int ow = out_size(input.dim(4), config_.kernel_s, config_.stride_s, config_.pad_s);
  if (ot <= 0 || oh <= 0 || ow <= 0) throw std::invalid_argument("Conv3D: output would be empty");
  return backend_ == ConvBackend::kDirect ? forward_direct(input)
                                          : forward_gemm(input, training);
}

Tensor Conv3D::backward(const Tensor& grad_output) {
  return backend_ == ConvBackend::kDirect ? backward_direct(grad_output)
                                          : backward_gemm(grad_output);
}

// ---------------------------------------------------------------------------
// im2col + GEMM backend (see conv2d.cpp for the decomposition; identical
// here with (T, H, W) receptive fields).

Tensor Conv3D::forward_gemm(const Tensor& input, bool training) {
  const int n = input.dim(0), c_in = input.dim(1), t = input.dim(2), h = input.dim(3),
            w = input.dim(4);
  const int c_out = config_.out_channels;
  const Im2ColGeom3D g{c_in,
                       t,
                       h,
                       w,
                       config_.kernel_t,
                       config_.kernel_s,
                       config_.stride_t,
                       config_.stride_s,
                       config_.pad_t,
                       config_.pad_s,
                       out_size(t, config_.kernel_t, config_.stride_t, config_.pad_t),
                       out_size(h, config_.kernel_s, config_.stride_s, config_.pad_s),
                       out_size(w, config_.kernel_s, config_.stride_s, config_.pad_s)};
  const int rows = g.rows();
  const std::size_t cols = g.cols();
  const std::size_t per_item = static_cast<std::size_t>(rows) * cols;

  // Training keeps the lowering for backward's weight gradient; inference
  // lowers into reusable thread-local arena scratch (see conv2d.cpp).
  ScratchArena& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* col;
  if (training) {
    if (col_.size() < static_cast<std::size_t>(n) * per_item) {
      col_.resize(static_cast<std::size_t>(n) * per_item);
    }
    col = col_.data();
    col_valid_ = true;
  } else {
    col = arena.floats(static_cast<std::size_t>(n) * per_item);
    col_valid_ = false;
  }

  const float* x = input.data();
  const std::size_t in_chan = static_cast<std::size_t>(t) * h * w;
  ThreadPool::global().parallel_for(static_cast<std::size_t>(n) * c_in, [&](std::size_t job) {
    const int bi = static_cast<int>(job) / c_in;
    const int ic = static_cast<int>(job) % c_in;
    im2col_3d(x + static_cast<std::size_t>(bi) * c_in * in_chan, g, ic * g.rows_per_channel(),
              (ic + 1) * g.rows_per_channel(), col + bi * per_item);
  });

  Tensor out({n, c_out, g.ot, g.oh, g.ow});
  float* y = out.data();
  for (int bi = 0; bi < n; ++bi) {
    sgemm(Trans::kNo, Trans::kNo, c_out, static_cast<int>(cols), rows, 1.0f,
          weight_.value.data(), rows, col + bi * per_item, static_cast<int>(cols), 0.0f,
          y + static_cast<std::size_t>(bi) * c_out * cols, static_cast<int>(cols));
  }

  if (config_.bias) {
    const float* b = bias_.value.data();
    ThreadPool::global().parallel_for(static_cast<std::size_t>(n) * c_out, [&](std::size_t job) {
      const float bv = b[job % c_out];
      float* row = y + job * cols;
      for (std::size_t m = 0; m < cols; ++m) row[m] += bv;
    });
  }
  return out;
}

Tensor Conv3D::backward_gemm(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), c_in = input.dim(1), t = input.dim(2), h = input.dim(3),
            w = input.dim(4);
  const int c_out = config_.out_channels;
  const Im2ColGeom3D g{c_in,
                       t,
                       h,
                       w,
                       config_.kernel_t,
                       config_.kernel_s,
                       config_.stride_t,
                       config_.stride_s,
                       config_.pad_t,
                       config_.pad_s,
                       grad_output.dim(2),
                       grad_output.dim(3),
                       grad_output.dim(4)};
  const int rows = g.rows();
  const std::size_t cols = g.cols();
  const std::size_t per_item = static_cast<std::size_t>(rows) * cols;
  if (!col_valid_) {
    throw std::logic_error(
        "Conv3D: backward requires a preceding forward with training=true "
        "(inference forwards do not retain the im2col lowering)");
  }
  ScratchArena& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* col_grad = arena.floats(per_item);

  const float* go = grad_output.data();
  float* gw = weight_.grad.data();

  if (config_.bias) {
    float* gb = bias_.grad.data();
    ThreadPool::global().parallel_for(static_cast<std::size_t>(c_out), [&](std::size_t oc) {
      double acc = 0.0;
      for (int bi = 0; bi < n; ++bi) {
        const float* row = go + (static_cast<std::size_t>(bi) * c_out + oc) * cols;
        for (std::size_t m = 0; m < cols; ++m) acc += row[m];
      }
      gb[oc] += static_cast<float>(acc);
    });
  }

  for (int bi = 0; bi < n; ++bi) {
    sgemm(Trans::kNo, Trans::kTrans, c_out, rows, static_cast<int>(cols), 1.0f,
          go + static_cast<std::size_t>(bi) * c_out * cols, static_cast<int>(cols),
          col_.data() + bi * per_item, static_cast<int>(cols), 1.0f, gw, rows);
  }

  Tensor grad_input({n, c_in, t, h, w}, 0.0f);
  float* gi = grad_input.data();
  const std::size_t in_chan = static_cast<std::size_t>(t) * h * w;
  for (int bi = 0; bi < n; ++bi) {
    sgemm(Trans::kTrans, Trans::kNo, rows, static_cast<int>(cols), c_out, 1.0f,
          weight_.value.data(), rows, go + static_cast<std::size_t>(bi) * c_out * cols,
          static_cast<int>(cols), 0.0f, col_grad, static_cast<int>(cols));
    float* gi_b = gi + static_cast<std::size_t>(bi) * c_in * in_chan;
    ThreadPool::global().parallel_for(static_cast<std::size_t>(c_in), [&](std::size_t ic) {
      col2im_3d(col_grad, g, static_cast<int>(ic) * g.rows_per_channel(),
                (static_cast<int>(ic) + 1) * g.rows_per_channel(), gi_b);
    });
  }
  return grad_input;
}

// ---------------------------------------------------------------------------
// Direct backend: the original range-clipped loops, kept as the parity
// oracle.

Tensor Conv3D::forward_direct(const Tensor& input) {
  const int n = input.dim(0), c_in = input.dim(1), t = input.dim(2), h = input.dim(3),
            w = input.dim(4);
  const int kt = config_.kernel_t, ks = config_.kernel_s;
  const int st = config_.stride_t, ss = config_.stride_s;
  const int pt = config_.pad_t, ps = config_.pad_s;
  const int c_out = config_.out_channels;
  const int ot = out_size(t, kt, st, pt);
  const int oh = out_size(h, ks, ss, ps);
  const int ow = out_size(w, ks, ss, ps);

  Tensor out({n, c_out, ot, oh, ow});
  const float* x = input.data();
  const float* wgt = weight_.value.data();
  const float* b = bias_.value.data();
  float* y = out.data();
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t in_chan = static_cast<std::size_t>(t) * in_plane;
  const std::size_t w_plane = static_cast<std::size_t>(ks) * ks;
  const std::size_t w_chan = static_cast<std::size_t>(kt) * w_plane;

  safecross::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n) * c_out, [&](std::size_t job) {
        const int bi = static_cast<int>(job) / c_out;
        const int oc = static_cast<int>(job) % c_out;
        const float* x_b = x + static_cast<std::size_t>(bi) * c_in * in_chan;
        const float* w_oc = wgt + static_cast<std::size_t>(oc) * c_in * w_chan;
        float* y_o =
            y + ((static_cast<std::size_t>(bi) * c_out + oc) * ot) * oh * ow;
        const float bias = config_.bias ? b[oc] : 0.0f;
        for (int oz = 0; oz < ot; ++oz) {
          int kz0, kz1;
          kernel_range(oz, st, pt, kt, t, kz0, kz1);
          for (int oy = 0; oy < oh; ++oy) {
            int ky0, ky1;
            kernel_range(oy, ss, ps, ks, h, ky0, ky1);
            for (int ox = 0; ox < ow; ++ox) {
              int kx0, kx1;
              kernel_range(ox, ss, ps, ks, w, kx0, kx1);
              float acc = bias;
              for (int ic = 0; ic < c_in; ++ic) {
                const float* x_c = x_b + static_cast<std::size_t>(ic) * in_chan;
                const float* w_c = w_oc + static_cast<std::size_t>(ic) * w_chan;
                for (int kz = kz0; kz < kz1; ++kz) {
                  const int iz = oz * st - pt + kz;
                  const float* x_z = x_c + static_cast<std::size_t>(iz) * in_plane;
                  const float* w_z = w_c + static_cast<std::size_t>(kz) * w_plane;
                  for (int ky = ky0; ky < ky1; ++ky) {
                    const int iy = oy * ss - ps + ky;
                    const float* x_row = x_z + static_cast<std::size_t>(iy) * w + ox * ss - ps;
                    const float* w_row = w_z + static_cast<std::size_t>(ky) * ks;
                    for (int kx = kx0; kx < kx1; ++kx) acc += x_row[kx] * w_row[kx];
                  }
                }
              }
              y_o[(static_cast<std::size_t>(oz) * oh + oy) * ow + ox] = acc;
            }
          }
        }
      });
  return out;
}

Tensor Conv3D::backward_direct(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), c_in = input.dim(1), t = input.dim(2), h = input.dim(3),
            w = input.dim(4);
  const int kt = config_.kernel_t, ks = config_.kernel_s;
  const int st = config_.stride_t, ss = config_.stride_s;
  const int pt = config_.pad_t, ps = config_.pad_s;
  const int c_out = config_.out_channels;
  const int ot = grad_output.dim(2), oh = grad_output.dim(3), ow = grad_output.dim(4);

  Tensor grad_input({n, c_in, t, h, w}, 0.0f);
  const float* x = input.data();
  const float* go = grad_output.data();
  const float* wgt = weight_.value.data();
  float* gi = grad_input.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();

  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t in_chan = static_cast<std::size_t>(t) * in_plane;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  const std::size_t out_chan = static_cast<std::size_t>(ot) * out_plane;
  const std::size_t w_plane = static_cast<std::size_t>(ks) * ks;
  const std::size_t w_chan = static_cast<std::size_t>(kt) * w_plane;

  // Weight/bias grads: parallel over output channels (disjoint gw slices).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(c_out), [&](std::size_t ocj) {
    const int oc = static_cast<int>(ocj);
    float* gw_oc = gw + static_cast<std::size_t>(oc) * c_in * w_chan;
    for (int bi = 0; bi < n; ++bi) {
      const float* x_b = x + static_cast<std::size_t>(bi) * c_in * in_chan;
      const float* go_o = go + (static_cast<std::size_t>(bi) * c_out + oc) * out_chan;
      for (int oz = 0; oz < ot; ++oz) {
        int kz0, kz1;
        kernel_range(oz, st, pt, kt, t, kz0, kz1);
        for (int oy = 0; oy < oh; ++oy) {
          int ky0, ky1;
          kernel_range(oy, ss, ps, ks, h, ky0, ky1);
          for (int ox = 0; ox < ow; ++ox) {
            const float g = go_o[(static_cast<std::size_t>(oz) * oh + oy) * ow + ox];
            if (g == 0.0f) continue;
            if (config_.bias) gb[oc] += g;
            int kx0, kx1;
            kernel_range(ox, ss, ps, ks, w, kx0, kx1);
            for (int ic = 0; ic < c_in; ++ic) {
              const float* x_c = x_b + static_cast<std::size_t>(ic) * in_chan;
              float* gw_c = gw_oc + static_cast<std::size_t>(ic) * w_chan;
              for (int kz = kz0; kz < kz1; ++kz) {
                const int iz = oz * st - pt + kz;
                const float* x_row_base = x_c + static_cast<std::size_t>(iz) * in_plane;
                float* gw_z = gw_c + static_cast<std::size_t>(kz) * w_plane;
                for (int ky = ky0; ky < ky1; ++ky) {
                  const int iy = oy * ss - ps + ky;
                  const float* x_row = x_row_base + static_cast<std::size_t>(iy) * w + ox * ss - ps;
                  float* gw_row = gw_z + static_cast<std::size_t>(ky) * ks;
                  for (int kx = kx0; kx < kx1; ++kx) gw_row[kx] += g * x_row[kx];
                }
              }
            }
          }
        }
      }
    }
  });

  // Input grads: parallel over batch (disjoint gi slices).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(n), [&](std::size_t bij) {
    const int bi = static_cast<int>(bij);
    float* gi_b = gi + static_cast<std::size_t>(bi) * c_in * in_chan;
    for (int oc = 0; oc < c_out; ++oc) {
      const float* go_o = go + (static_cast<std::size_t>(bi) * c_out + oc) * out_chan;
      const float* w_oc = wgt + static_cast<std::size_t>(oc) * c_in * w_chan;
      for (int oz = 0; oz < ot; ++oz) {
        int kz0, kz1;
        kernel_range(oz, st, pt, kt, t, kz0, kz1);
        for (int oy = 0; oy < oh; ++oy) {
          int ky0, ky1;
          kernel_range(oy, ss, ps, ks, h, ky0, ky1);
          for (int ox = 0; ox < ow; ++ox) {
            const float g = go_o[(static_cast<std::size_t>(oz) * oh + oy) * ow + ox];
            if (g == 0.0f) continue;
            int kx0, kx1;
            kernel_range(ox, ss, ps, ks, w, kx0, kx1);
            for (int ic = 0; ic < c_in; ++ic) {
              float* gi_c = gi_b + static_cast<std::size_t>(ic) * in_chan;
              const float* w_c = w_oc + static_cast<std::size_t>(ic) * w_chan;
              for (int kz = kz0; kz < kz1; ++kz) {
                const int iz = oz * st - pt + kz;
                float* gi_z = gi_c + static_cast<std::size_t>(iz) * in_plane;
                const float* w_z = w_c + static_cast<std::size_t>(kz) * w_plane;
                for (int ky = ky0; ky < ky1; ++ky) {
                  const int iy = oy * ss - ps + ky;
                  float* gi_row = gi_z + static_cast<std::size_t>(iy) * w + ox * ss - ps;
                  const float* w_row = w_z + static_cast<std::size_t>(ky) * ks;
                  for (int kx = kx0; kx < kx1; ++kx) gi_row[kx] += g * w_row[kx];
                }
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

}  // namespace safecross::nn
