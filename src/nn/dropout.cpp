#include "nn/dropout.h"

#include <stdexcept>

namespace safecross::nn {

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) throw std::invalid_argument("Dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  was_training_ = training;
  if (!training || rate_ == 0.0f) return input;
  const float keep = 1.0f - rate_;
  mask_.assign(input.numel(), 0.0f);
  Tensor out = input;
  for (std::size_t i = 0; i < input.numel(); ++i) {
    if (rng_.bernoulli(keep)) {
      mask_[i] = 1.0f / keep;
      out[i] *= mask_[i];
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!was_training_ || rate_ == 0.0f) return grad_output;
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

}  // namespace safecross::nn
