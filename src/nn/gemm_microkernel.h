#pragma once
// Register-tiled GEMM microkernel and panel packing (internal to the nn
// library; the public entry point is nn/gemm.h).
//
// Layout (BLIS-style, row-major):
//   - op(A) row panels are packed into strips of kMr rows, k-major:
//     pa[strip][kk * kMr + r]. Rows past m are zero-padded, so the
//     microkernel never branches on the m tail.
//   - op(B) column panels are packed into strips of kNr columns:
//     pb[strip][kk * kNr + c], zero-padded past n.
//   - The 6x16 microkernel keeps a kMr x kNr accumulator block in
//     registers and does one broadcast(A) x vector(B) FMA row per k step.
//     The block is written as plain arrays with compile-time extents so
//     the compiler lowers it to whatever the build ISA offers: one
//     16-lane zmm row on AVX-512, two ymm on AVX2, four xmm on SSE —
//     the same source is the dispatch table across widths.
//
// Packing is templated on the storage type of the panel: float for the
// default kernel, fp16-rounded floats (common/half.h) for the
// reduced-precision path — storage loses precision, accumulation stays
// fp32.

#include <cstddef>

#include "common/half.h"
#include "nn/gemm.h"

namespace safecross::nn::detail {

inline constexpr int kMr = 6;    // microkernel rows (broadcast axis)
inline constexpr int kNr = 16;   // microkernel columns (vector axis)
inline constexpr int kKc = 256;  // k-slab: one packed A strip spans kKc
inline constexpr int kMc = 96;   // rows per macro-tile (16 kMr strips)
inline constexpr int kNc = 512;  // cols per macro-tile (32 kNr strips)

/// Pack op(A) rows [i0, i0 + mc) x k [k0, k0 + kc) into kMr strips.
/// pa must hold ceil(mc / kMr) * kMr * kc floats.
template <bool kHalf>
inline void pack_a(Trans trans_a, const float* a, int lda, int i0, int mc, int k0, int kc,
                   float* pa) {
  for (int s = 0; s < mc; s += kMr) {
    const int rows = mc - s < kMr ? mc - s : kMr;
    float* strip = pa + static_cast<std::size_t>(s) * kc;
    if (trans_a == Trans::kNo) {
      // op(A)(i, kk) = a[i * lda + kk]: copy row-by-row, transposing into
      // the k-major strip.
      for (int r = 0; r < rows; ++r) {
        const float* src = a + static_cast<std::size_t>(i0 + s + r) * lda + k0;
        for (int kk = 0; kk < kc; ++kk) {
          const float v = src[kk];
          strip[static_cast<std::size_t>(kk) * kMr + r] = kHalf ? fp16_round(v) : v;
        }
      }
    } else {
      // op(A)(i, kk) = a[kk * lda + i]: source rows are contiguous in i,
      // exactly the strip's inner axis.
      for (int kk = 0; kk < kc; ++kk) {
        const float* src = a + static_cast<std::size_t>(k0 + kk) * lda + i0 + s;
        float* dst = strip + static_cast<std::size_t>(kk) * kMr;
        for (int r = 0; r < rows; ++r) dst[r] = kHalf ? fp16_round(src[r]) : src[r];
      }
    }
    if (rows < kMr) {
      for (int kk = 0; kk < kc; ++kk) {
        for (int r = rows; r < kMr; ++r) strip[static_cast<std::size_t>(kk) * kMr + r] = 0.0f;
      }
    }
  }
}

/// Pack op(B) k [k0, k0 + kc) x cols [j0, j0 + nc) into kNr strips.
/// pb must hold ceil(nc / kNr) * kNr * kc floats.
template <bool kHalf>
inline void pack_b(Trans trans_b, const float* b, int ldb, int k0, int kc, int j0, int nc,
                   float* pb) {
  for (int s = 0; s < nc; s += kNr) {
    const int cols = nc - s < kNr ? nc - s : kNr;
    float* strip = pb + static_cast<std::size_t>(s) * kc;
    if (trans_b == Trans::kNo) {
      // op(B)(kk, j) = b[kk * ldb + j]: contiguous in j, the inner axis.
      for (int kk = 0; kk < kc; ++kk) {
        const float* src = b + static_cast<std::size_t>(k0 + kk) * ldb + j0 + s;
        float* dst = strip + static_cast<std::size_t>(kk) * kNr;
        for (int c = 0; c < cols; ++c) dst[c] = kHalf ? fp16_round(src[c]) : src[c];
      }
    } else {
      // op(B)(kk, j) = b[j * ldb + kk]: walk each stored row (contiguous
      // in kk) and scatter into the strips.
      for (int c = 0; c < cols; ++c) {
        const float* src = b + static_cast<std::size_t>(j0 + s + c) * ldb + k0;
        for (int kk = 0; kk < kc; ++kk) {
          const float v = src[kk];
          strip[static_cast<std::size_t>(kk) * kNr + c] = kHalf ? fp16_round(v) : v;
        }
      }
    }
    if (cols < kNr) {
      for (int kk = 0; kk < kc; ++kk) {
        for (int c = cols; c < kNr; ++c) strip[static_cast<std::size_t>(kk) * kNr + c] = 0.0f;
      }
    }
  }
}

// One microkernel row: 16 floats the compiler maps onto the widest
// vectors the build ISA offers (1 zmm / 2 ymm / 4 xmm). aligned(4) keeps
// loads legal at any float address; may_alias because we view packed
// float strips through it.
typedef float Row16 __attribute__((vector_size(64), aligned(4), may_alias));

/// acc (kMr x kNr) = Astrip * Bstrip over kc steps. Written with explicit
/// vector rows so the six accumulators demonstrably live in registers —
/// auto-vectorization of the equivalent scalar loops picks a 4-lane
/// broadcast shape that runs ~50x slower.
inline void microkernel_6x16(int kc, const float* __restrict__ pa, const float* __restrict__ pb,
                             float* __restrict__ acc) {
  Row16 c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (int kk = 0; kk < kc; ++kk) {
    const Row16 bv = *reinterpret_cast<const Row16*>(pb + static_cast<std::size_t>(kk) * kNr);
    const float* arow = pa + static_cast<std::size_t>(kk) * kMr;
    c0 += arow[0] * bv;
    c1 += arow[1] * bv;
    c2 += arow[2] * bv;
    c3 += arow[3] * bv;
    c4 += arow[4] * bv;
    c5 += arow[5] * bv;
  }
  *reinterpret_cast<Row16*>(acc + 0 * kNr) = c0;
  *reinterpret_cast<Row16*>(acc + 1 * kNr) = c1;
  *reinterpret_cast<Row16*>(acc + 2 * kNr) = c2;
  *reinterpret_cast<Row16*>(acc + 3 * kNr) = c3;
  *reinterpret_cast<Row16*>(acc + 4 * kNr) = c4;
  *reinterpret_cast<Row16*>(acc + 5 * kNr) = c5;
}

/// As microkernel_6x16, but streams the B strip straight from the caller's
/// untransposed matrix (row kk at stride ldb) instead of a packed panel.
/// Packing B pays only when a panel is re-read once per A strip; skinny-m
/// GEMMs (the im2col conv forwards: m = c_out, a handful of A strips,
/// tens of MB of B) read B essentially once, so the pack is pure loss.
inline void microkernel_6x16_bdirect(int kc, const float* __restrict__ pa,
                                     const float* __restrict__ b, int ldb,
                                     float* __restrict__ acc) {
  Row16 c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (int kk = 0; kk < kc; ++kk) {
    const Row16 bv = *reinterpret_cast<const Row16*>(b + static_cast<std::size_t>(kk) * ldb);
    const float* arow = pa + static_cast<std::size_t>(kk) * kMr;
    c0 += arow[0] * bv;
    c1 += arow[1] * bv;
    c2 += arow[2] * bv;
    c3 += arow[3] * bv;
    c4 += arow[4] * bv;
    c5 += arow[5] * bv;
  }
  *reinterpret_cast<Row16*>(acc + 0 * kNr) = c0;
  *reinterpret_cast<Row16*>(acc + 1 * kNr) = c1;
  *reinterpret_cast<Row16*>(acc + 2 * kNr) = c2;
  *reinterpret_cast<Row16*>(acc + 3 * kNr) = c3;
  *reinterpret_cast<Row16*>(acc + 4 * kNr) = c4;
  *reinterpret_cast<Row16*>(acc + 5 * kNr) = c5;
}

/// C block (mr x nr at `c`) = alpha * acc + beta * C. beta == 0 never
/// reads C (so uninitialised/NaN output buffers are safe to overwrite).
inline void store_tile(const float* acc, float alpha, float beta, float* c, int ldc, int mr,
                       int nr) {
  for (int r = 0; r < mr; ++r) {
    const float* arow = acc + r * kNr;
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < nr; ++j) crow[j] = alpha * arow[j];
    } else if (beta == 1.0f) {
      for (int j = 0; j < nr; ++j) crow[j] += alpha * arow[j];
    } else {
      for (int j = 0; j < nr; ++j) crow[j] = alpha * arow[j] + beta * crow[j];
    }
  }
}

}  // namespace safecross::nn::detail
