#include "nn/activations.h"

#include <stdexcept>

namespace safecross::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() < 2) throw std::invalid_argument("Flatten expects (N, ...)");
  in_shape_.assign(input.shape().begin(), input.shape().end());
  int features = 1;
  for (std::size_t d = 1; d < input.ndim(); ++d) features *= input.dim(d);
  return input.reshaped({input.dim(0), features});
}

Tensor Flatten::backward(const Tensor& grad_output) { return grad_output.reshaped(in_shape_); }

}  // namespace safecross::nn
