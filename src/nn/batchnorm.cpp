#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace safecross::nn {

BatchNorm::BatchNorm(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor({channels}, 1.0f)),
      beta_(Tensor({channels}, 0.0f)),
      running_mean_({channels}, 0.0f),
      running_var_({channels}, 1.0f) {
  if (channels < 1) throw std::invalid_argument("BatchNorm: channels must be >= 1");
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  if (input.ndim() < 2 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm: expected (N, " + std::to_string(channels_) +
                                ", ...), got " + input.shape_str());
  }
  in_shape_.assign(input.shape().begin(), input.shape().end());
  const int n = input.dim(0);
  std::size_t spatial = 1;
  for (std::size_t d = 2; d < input.ndim(); ++d) spatial *= static_cast<std::size_t>(input.dim(d));
  const std::size_t per_channel = static_cast<std::size_t>(n) * spatial;

  cached_mean_.assign(channels_, 0.0f);
  cached_inv_std_.assign(channels_, 0.0f);
  Tensor out = input;
  cached_xhat_ = Tensor(input.shape());

  for (int c = 0; c < channels_; ++c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sq = 0.0;
      for (int bi = 0; bi < n; ++bi) {
        const float* base =
            input.data() + (static_cast<std::size_t>(bi) * channels_ + c) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) {
          sum += base[i];
          sq += static_cast<double>(base[i]) * base[i];
        }
      }
      mean = sum / static_cast<double>(per_channel);
      var = sq / static_cast<double>(per_channel) - mean * mean;
      if (var < 0.0) var = 0.0;
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * static_cast<float>(mean);
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_mean_[c] = static_cast<float>(mean);
    cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (int bi = 0; bi < n; ++bi) {
      const std::size_t off = (static_cast<std::size_t>(bi) * channels_ + c) * spatial;
      const float* xin = input.data() + off;
      float* xh = cached_xhat_.data() + off;
      float* y = out.data() + off;
      for (std::size_t i = 0; i < spatial; ++i) {
        const float xhat = (xin[i] - static_cast<float>(mean)) * inv_std;
        xh[i] = xhat;
        y[i] = g * xhat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  const int n = in_shape_[0];
  std::size_t spatial = 1;
  for (std::size_t d = 2; d < in_shape_.size(); ++d) spatial *= static_cast<std::size_t>(in_shape_[d]);
  const double m = static_cast<double>(n) * static_cast<double>(spatial);

  Tensor grad_input(in_shape_, 0.0f);
  for (int c = 0; c < channels_; ++c) {
    // Accumulate sums needed by the batchnorm backward formula.
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (int bi = 0; bi < n; ++bi) {
      const std::size_t off = (static_cast<std::size_t>(bi) * channels_ + c) * spatial;
      const float* gy = grad_output.data() + off;
      const float* xh = cached_xhat_.data() + off;
      for (std::size_t i = 0; i < spatial; ++i) {
        sum_gy += gy[i];
        sum_gy_xhat += static_cast<double>(gy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xhat);
    beta_.grad[c] += static_cast<float>(sum_gy);

    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[c];
    for (int bi = 0; bi < n; ++bi) {
      const std::size_t off = (static_cast<std::size_t>(bi) * channels_ + c) * spatial;
      const float* gy = grad_output.data() + off;
      const float* xh = cached_xhat_.data() + off;
      float* gi = grad_input.data() + off;
      for (std::size_t i = 0; i < spatial; ++i) {
        // dL/dx = gamma * inv_std * (gy - mean(gy) - xhat * mean(gy*xhat))
        gi[i] = g * inv_std *
                static_cast<float>(gy[i] - sum_gy / m - xh[i] * (sum_gy_xhat / m));
      }
    }
  }
  return grad_input;
}

}  // namespace safecross::nn
