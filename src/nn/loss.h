#pragma once
// Losses. SoftmaxCrossEntropy is the training criterion for every
// classifier in the paper; the YOLO-lite detector uses a composite
// objectness/box loss built from these pieces.

#include <vector>

#include "nn/tensor.h"

namespace safecross::nn {

/// Numerically-stable softmax over the last axis of a (N, K) tensor.
Tensor softmax(const Tensor& logits);

/// Combined softmax + cross-entropy for (N, K) logits and N integer
/// labels. forward() returns the mean loss; grad() returns dLoss/dLogits
/// for the same batch (softmax(x) - onehot(y)) / N.
class SoftmaxCrossEntropy {
 public:
  float forward(const Tensor& logits, const std::vector<int>& labels);
  Tensor grad() const;

  /// Argmax prediction per row of the last forward's logits.
  const std::vector<int>& predictions() const { return predictions_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
  std::vector<int> predictions_;
};

/// Multiclass hinge loss (Crammer–Singer), the criterion of a linear SVM
/// head — C3D in the paper "uses SVM to classify video", so our C3D
/// baseline trains its final layer with this.
/// loss_i = sum_{j != y_i} max(0, margin + s_j - s_{y_i}).
class MulticlassHinge {
 public:
  explicit MulticlassHinge(float margin = 1.0f) : margin_(margin) {}

  float forward(const Tensor& scores, const std::vector<int>& labels);
  Tensor grad() const;
  const std::vector<int>& predictions() const { return predictions_; }

 private:
  float margin_;
  Tensor scores_;
  std::vector<int> labels_;
  std::vector<int> predictions_;
};

/// Mean squared error between prediction and target; grad is
/// 2 (pred - target) / numel.
class MeanSquaredError {
 public:
  float forward(const Tensor& pred, const Tensor& target);
  Tensor grad() const;

 private:
  Tensor pred_;
  Tensor target_;
};

}  // namespace safecross::nn
