#pragma once
// Packed, cache-blocked single-precision GEMM on row-major matrices.
//
// The compute core of the im2col convolution backend and of Linear:
// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
//
// The default kernel packs A/B panels into per-worker scratch arenas and
// runs a register-tiled 6x16 FMA microkernel (see gemm_microkernel.h);
// C is partitioned into 2-D macro-tiles distributed across the global
// ThreadPool, with tile sizes shrunk adaptively so skinny shapes (weight
// gradients, im2col panels, batched classify forwards) still fan out.
// A scalar fallback (the pre-microkernel implementation) is kept for
// sanitizer/portability builds and as the parity oracle.

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace safecross::nn {

enum class Trans { kNo, kTrans };

/// Which compute kernel sgemm runs. Mirrors nn::ConvBackend's pattern:
/// kAuto consults the SAFECROSS_GEMM_KERNEL environment variable.
enum class GemmKernel {
  kAuto,    // resolve from SAFECROSS_GEMM_KERNEL, default micro
  kMicro,   // packed panels + 6x16 register-tiled FMA microkernel
  kScalar,  // unpacked tile loops; portable fallback and parity oracle
  kFp16,    // micro kernel with fp16-storage / fp32-accumulate packing
};

/// Collapse kAuto to a concrete kernel via SAFECROSS_GEMM_KERNEL
/// ("micro", "scalar", "fp16"; "auto"/unset mean micro). Unlike the conv
/// backend resolver this throws on an unknown value — a typo'd kernel
/// selection in a CI job must fail loudly, not silently benchmark the
/// wrong code path.
inline GemmKernel resolve_gemm_kernel(GemmKernel requested) {
  if (requested != GemmKernel::kAuto) return requested;
  const char* env = std::getenv("SAFECROSS_GEMM_KERNEL");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || std::strcmp(env, "micro") == 0) {
    return GemmKernel::kMicro;
  }
  if (std::strcmp(env, "scalar") == 0) return GemmKernel::kScalar;
  if (std::strcmp(env, "fp16") == 0) return GemmKernel::kFp16;
  throw std::invalid_argument(std::string("SAFECROSS_GEMM_KERNEL: unknown kernel '") + env +
                              "' (expected auto|micro|scalar|fp16)");
}

/// C (m x n) = alpha * op(A) (m x k) * op(B) (k x n) + beta * C.
///
/// lda/ldb/ldc are leading dimensions of the *stored* row-major arrays:
/// A is m x k when trans_a == kNo and k x m when kTrans (same for B).
/// beta == 0 overwrites C (it is never read), beta == 1 accumulates.
/// `kernel` selects the compute path; kAuto resolves per call, so tests
/// and CI jobs can flip SAFECROSS_GEMM_KERNEL without rebuilding.
void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc,
           GemmKernel kernel = GemmKernel::kAuto);

}  // namespace safecross::nn
