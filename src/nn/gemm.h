#pragma once
// Cache-blocked single-precision GEMM on row-major matrices.
//
// The compute core of the im2col convolution backend and of Linear:
// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
// Work is tiled over C and the tiles are distributed across the global
// ThreadPool; tile sizes shrink adaptively so small-but-deep products
// (e.g. weight gradients) still fan out across workers.

namespace safecross::nn {

enum class Trans { kNo, kTrans };

/// C (m x n) = alpha * op(A) (m x k) * op(B) (k x n) + beta * C.
///
/// lda/ldb/ldc are leading dimensions of the *stored* row-major arrays:
/// A is m x k when trans_a == kNo and k x m when kTrans (same for B).
/// beta == 0 overwrites C (it is never read), beta == 1 accumulates.
void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc);

}  // namespace safecross::nn
