#pragma once
// 2-D convolution over (N, C, H, W) tensors, with stride and zero padding.
//
// Used by the TSN/ResNet-lite/Inception-lite 2-D backbones and the
// YOLO-lite detector. Direct (non-im2col) implementation, parallelized
// over (batch x output-channel) via the global thread pool.

#include "nn/layer.h"

namespace safecross::nn {

struct Conv2DConfig {
  int in_channels = 1;
  int out_channels = 1;
  int kernel = 3;
  int stride = 1;
  int padding = 1;
  bool bias = true;
};

class Conv2D final : public Layer {
 public:
  explicit Conv2D(Conv2DConfig config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2D"; }

  const Conv2DConfig& config() const { return config_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

  /// Output spatial size for a given input size.
  static int out_size(int in, int kernel, int stride, int padding);

 private:
  Conv2DConfig config_;
  Param weight_;  // (out_c, in_c, k, k)
  Param bias_;    // (out_c)
  Tensor cached_input_;
};

}  // namespace safecross::nn
