#pragma once
// 2-D convolution over (N, C, H, W) tensors, with stride and zero padding.
//
// Used by the TSN/ResNet-lite/Inception-lite 2-D backbones and the
// YOLO-lite detector. Two backends (see conv_backend.h): the default
// lowers each image to an im2col matrix and runs a cache-blocked GEMM
// against the flattened weight; kDirect keeps the original naive loops,
// parallelized over (batch x output-channel), as a parity oracle.

#include <vector>

#include "nn/conv_backend.h"
#include "nn/layer.h"

namespace safecross::nn {

struct Conv2DConfig {
  int in_channels = 1;
  int out_channels = 1;
  int kernel = 3;
  int stride = 1;
  int padding = 1;
  bool bias = true;
  ConvBackend backend = ConvBackend::kAuto;
};

class Conv2D final : public Layer {
 public:
  explicit Conv2D(Conv2DConfig config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2D"; }

  const Conv2DConfig& config() const { return config_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

  /// The concrete backend this layer resolved to (never kAuto).
  ConvBackend backend() const { return backend_; }

  /// Output spatial size for a given input size.
  static int out_size(int in, int kernel, int stride, int padding);

 private:
  Tensor forward_direct(const Tensor& input);
  Tensor backward_direct(const Tensor& grad_output);
  Tensor forward_gemm(const Tensor& input, bool training);
  Tensor backward_gemm(const Tensor& grad_output);

  Conv2DConfig config_;
  ConvBackend backend_;
  Param weight_;  // (out_c, in_c, k, k)
  Param bias_;    // (out_c)
  Tensor cached_input_;
  // GEMM-backend state: a training forward keeps the lowered batch
  // (n x rows x cols) here because backward reuses it for the weight
  // gradient. Inference forwards lower into the calling thread's
  // ScratchArena instead — nothing stays resident per layer — so
  // col_valid_ gates backward against a missing lowering. Backward's own
  // per-item gradient matrix is always arena scratch.
  std::vector<float> col_;
  bool col_valid_ = false;
};

}  // namespace safecross::nn
