#include "nn/conv2d.h"

#include <stdexcept>

#include "common/thread_pool.h"

namespace safecross::nn {

Conv2D::Conv2D(Conv2DConfig config)
    : config_(config),
      weight_(Tensor({config.out_channels, config.in_channels, config.kernel, config.kernel})),
      bias_(Tensor({config.out_channels})) {
  if (config.kernel < 1 || config.stride < 1 || config.padding < 0) {
    throw std::invalid_argument("Conv2D: invalid geometry");
  }
}

int Conv2D::out_size(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

std::vector<Param*> Conv2D::params() {
  if (config_.bias) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() != 4 || input.dim(1) != config_.in_channels) {
    throw std::invalid_argument("Conv2D: expected (N, " + std::to_string(config_.in_channels) +
                                ", H, W), got " + input.shape_str());
  }
  cached_input_ = input;
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, s = config_.stride, p = config_.padding;
  const int c_out = config_.out_channels;
  const int oh = out_size(h, k, s, p);
  const int ow = out_size(w, k, s, p);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("Conv2D: output would be empty");

  Tensor out({n, c_out, oh, ow});
  const float* x = input.data();
  const float* wgt = weight_.value.data();
  const float* b = bias_.value.data();
  float* y = out.data();

  safecross::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n) * c_out, [&](std::size_t job) {
        const int bi = static_cast<int>(job) / c_out;
        const int oc = static_cast<int>(job) % c_out;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            float acc = config_.bias ? b[oc] : 0.0f;
            for (int ic = 0; ic < c_in; ++ic) {
              for (int ky = 0; ky < k; ++ky) {
                const int iy = oy * s - p + ky;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < k; ++kx) {
                  const int ix = ox * s - p + kx;
                  if (ix < 0 || ix >= w) continue;
                  acc += x[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix] *
                         wgt[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx];
                }
              }
            }
            y[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox] = acc;
          }
        }
      });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, s = config_.stride, p = config_.padding;
  const int c_out = config_.out_channels;
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);

  Tensor grad_input({n, c_in, h, w}, 0.0f);
  const float* x = input.data();
  const float* go = grad_output.data();
  const float* wgt = weight_.value.data();
  float* gi = grad_input.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();

  // Weight/bias gradients, parallel over output channels (each job owns
  // disjoint slices of gw/gb).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(c_out), [&](std::size_t ocj) {
    const int oc = static_cast<int>(ocj);
    for (int bi = 0; bi < n; ++bi) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = go[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox];
          if (config_.bias) gb[oc] += g;
          for (int ic = 0; ic < c_in; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * s - p + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * s - p + kx;
                if (ix < 0 || ix >= w) continue;
                gw[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx] +=
                    g * x[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix];
              }
            }
          }
        }
      }
    }
  });

  // Input gradient, parallel over batch (each job owns one batch slice).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(n), [&](std::size_t bij) {
    const int bi = static_cast<int>(bij);
    for (int oc = 0; oc < c_out; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = go[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox];
          for (int ic = 0; ic < c_in; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * s - p + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * s - p + kx;
                if (ix < 0 || ix >= w) continue;
                gi[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix] +=
                    g * wgt[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx];
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

}  // namespace safecross::nn
