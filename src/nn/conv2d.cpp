#include "nn/conv2d.h"

#include <stdexcept>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "nn/gemm.h"
#include "nn/im2col.h"

namespace safecross::nn {

Conv2D::Conv2D(Conv2DConfig config)
    : config_(config),
      backend_(resolve_conv_backend(config.backend)),
      weight_(Tensor({config.out_channels, config.in_channels, config.kernel, config.kernel})),
      bias_(Tensor({config.out_channels})) {
  if (config.kernel < 1 || config.stride < 1 || config.padding < 0) {
    throw std::invalid_argument("Conv2D: invalid geometry");
  }
}

int Conv2D::out_size(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

std::vector<Param*> Conv2D::params() {
  if (config_.bias) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  if (input.ndim() != 4 || input.dim(1) != config_.in_channels) {
    throw std::invalid_argument("Conv2D: expected (N, " + std::to_string(config_.in_channels) +
                                ", H, W), got " + input.shape_str());
  }
  cached_input_ = input;
  const int oh = out_size(input.dim(2), config_.kernel, config_.stride, config_.padding);
  const int ow = out_size(input.dim(3), config_.kernel, config_.stride, config_.padding);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("Conv2D: output would be empty");
  return backend_ == ConvBackend::kDirect ? forward_direct(input)
                                          : forward_gemm(input, training);
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  return backend_ == ConvBackend::kDirect ? backward_direct(grad_output)
                                          : backward_gemm(grad_output);
}

// ---------------------------------------------------------------------------
// im2col + GEMM backend.
//
// Per batch item: col = im2col(x) with rows in weight order, so
// y (c_out x oh*ow) = W (c_out x rows) * col, and in backward
// dW += dy * col^T and dx = col2im(W^T * dy).

Tensor Conv2D::forward_gemm(const Tensor& input, bool training) {
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, c_out = config_.out_channels;
  const Im2ColGeom2D g{c_in, h,
                       w,    k,
                       config_.stride, config_.padding,
                       out_size(h, k, config_.stride, config_.padding),
                       out_size(w, k, config_.stride, config_.padding)};
  const int rows = g.rows();
  const std::size_t cols = g.cols();
  const std::size_t per_item = static_cast<std::size_t>(rows) * cols;

  // A training forward must keep the lowering for backward's weight
  // gradient; inference lowers into reusable thread-local arena scratch
  // so serving holds no per-layer column buffers.
  ScratchArena& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* col;
  if (training) {
    if (col_.size() < static_cast<std::size_t>(n) * per_item) {
      col_.resize(static_cast<std::size_t>(n) * per_item);
    }
    col = col_.data();
    col_valid_ = true;
  } else {
    col = arena.floats(static_cast<std::size_t>(n) * per_item);
    col_valid_ = false;
  }

  const float* x = input.data();
  // Lower: each job owns one (batch, channel) block of whole rows.
  ThreadPool::global().parallel_for(static_cast<std::size_t>(n) * c_in, [&](std::size_t job) {
    const int bi = static_cast<int>(job) / c_in;
    const int ic = static_cast<int>(job) % c_in;
    im2col_2d(x + static_cast<std::size_t>(bi) * c_in * h * w, g, ic * g.rows_per_channel(),
              (ic + 1) * g.rows_per_channel(), col + bi * per_item);
  });

  Tensor out({n, c_out, g.oh, g.ow});
  float* y = out.data();
  for (int bi = 0; bi < n; ++bi) {
    sgemm(Trans::kNo, Trans::kNo, c_out, static_cast<int>(cols), rows, 1.0f,
          weight_.value.data(), rows, col + bi * per_item, static_cast<int>(cols), 0.0f,
          y + static_cast<std::size_t>(bi) * c_out * cols, static_cast<int>(cols));
  }

  if (config_.bias) {
    const float* b = bias_.value.data();
    ThreadPool::global().parallel_for(static_cast<std::size_t>(n) * c_out, [&](std::size_t job) {
      const float bv = b[job % c_out];
      float* row = y + job * cols;
      for (std::size_t m = 0; m < cols; ++m) row[m] += bv;
    });
  }
  return out;
}

Tensor Conv2D::backward_gemm(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, c_out = config_.out_channels;
  const Im2ColGeom2D g{c_in, h,
                       w,    k,
                       config_.stride, config_.padding,
                       grad_output.dim(2), grad_output.dim(3)};
  const int rows = g.rows();
  const std::size_t cols = g.cols();
  const std::size_t per_item = static_cast<std::size_t>(rows) * cols;
  if (!col_valid_) {
    throw std::logic_error(
        "Conv2D: backward requires a preceding forward with training=true "
        "(inference forwards do not retain the im2col lowering)");
  }
  ScratchArena& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* col_grad = arena.floats(per_item);

  const float* go = grad_output.data();
  float* gw = weight_.grad.data();

  if (config_.bias) {
    float* gb = bias_.grad.data();
    ThreadPool::global().parallel_for(static_cast<std::size_t>(c_out), [&](std::size_t oc) {
      double acc = 0.0;
      for (int bi = 0; bi < n; ++bi) {
        const float* row = go + (static_cast<std::size_t>(bi) * c_out + oc) * cols;
        for (std::size_t m = 0; m < cols; ++m) acc += row[m];
      }
      gb[oc] += static_cast<float>(acc);
    });
  }

  // dW += dy_b * col_b^T, accumulated over the batch (col_ still holds
  // this layer's lowering from the matching forward call).
  for (int bi = 0; bi < n; ++bi) {
    sgemm(Trans::kNo, Trans::kTrans, c_out, rows, static_cast<int>(cols), 1.0f,
          go + static_cast<std::size_t>(bi) * c_out * cols, static_cast<int>(cols),
          col_.data() + bi * per_item, static_cast<int>(cols), 1.0f, gw, rows);
  }

  Tensor grad_input({n, c_in, h, w}, 0.0f);
  float* gi = grad_input.data();
  for (int bi = 0; bi < n; ++bi) {
    // dcol = W^T * dy_b, then scatter back to image layout.
    sgemm(Trans::kTrans, Trans::kNo, rows, static_cast<int>(cols), c_out, 1.0f,
          weight_.value.data(), rows, go + static_cast<std::size_t>(bi) * c_out * cols,
          static_cast<int>(cols), 0.0f, col_grad, static_cast<int>(cols));
    float* gi_b = gi + static_cast<std::size_t>(bi) * c_in * h * w;
    ThreadPool::global().parallel_for(static_cast<std::size_t>(c_in), [&](std::size_t ic) {
      col2im_2d(col_grad, g, static_cast<int>(ic) * g.rows_per_channel(),
                (static_cast<int>(ic) + 1) * g.rows_per_channel(), gi_b);
    });
  }
  return grad_input;
}

// ---------------------------------------------------------------------------
// Direct backend: the original naive loops, kept as the parity oracle.

Tensor Conv2D::forward_direct(const Tensor& input) {
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, s = config_.stride, p = config_.padding;
  const int c_out = config_.out_channels;
  const int oh = out_size(h, k, s, p);
  const int ow = out_size(w, k, s, p);

  Tensor out({n, c_out, oh, ow});
  const float* x = input.data();
  const float* wgt = weight_.value.data();
  const float* b = bias_.value.data();
  float* y = out.data();

  safecross::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n) * c_out, [&](std::size_t job) {
        const int bi = static_cast<int>(job) / c_out;
        const int oc = static_cast<int>(job) % c_out;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            float acc = config_.bias ? b[oc] : 0.0f;
            for (int ic = 0; ic < c_in; ++ic) {
              for (int ky = 0; ky < k; ++ky) {
                const int iy = oy * s - p + ky;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < k; ++kx) {
                  const int ix = ox * s - p + kx;
                  if (ix < 0 || ix >= w) continue;
                  acc += x[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix] *
                         wgt[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx];
                }
              }
            }
            y[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox] = acc;
          }
        }
      });
  return out;
}

Tensor Conv2D::backward_direct(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), c_in = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int k = config_.kernel, s = config_.stride, p = config_.padding;
  const int c_out = config_.out_channels;
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);

  Tensor grad_input({n, c_in, h, w}, 0.0f);
  const float* x = input.data();
  const float* go = grad_output.data();
  const float* wgt = weight_.value.data();
  float* gi = grad_input.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();

  // Weight/bias gradients, parallel over output channels (each job owns
  // disjoint slices of gw/gb).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(c_out), [&](std::size_t ocj) {
    const int oc = static_cast<int>(ocj);
    for (int bi = 0; bi < n; ++bi) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = go[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox];
          if (config_.bias) gb[oc] += g;
          for (int ic = 0; ic < c_in; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * s - p + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * s - p + kx;
                if (ix < 0 || ix >= w) continue;
                gw[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx] +=
                    g * x[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix];
              }
            }
          }
        }
      }
    }
  });

  // Input gradient, parallel over batch (each job owns one batch slice).
  safecross::ThreadPool::global().parallel_for(static_cast<std::size_t>(n), [&](std::size_t bij) {
    const int bi = static_cast<int>(bij);
    for (int oc = 0; oc < c_out; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = go[((static_cast<std::size_t>(bi) * c_out + oc) * oh + oy) * ow + ox];
          for (int ic = 0; ic < c_in; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * s - p + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * s - p + kx;
                if (ix < 0 || ix >= w) continue;
                gi[((static_cast<std::size_t>(bi) * c_in + ic) * h + iy) * w + ix] +=
                    g * wgt[((static_cast<std::size_t>(oc) * c_in + ic) * k + ky) * k + kx];
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

}  // namespace safecross::nn
