#pragma once
// Convolution backend selection.
//
// Conv2D/Conv3D can run either as the original direct (naive loop)
// kernels or lowered to im2col + tiled GEMM. kAuto (the default)
// consults the SAFECROSS_CONV_BACKEND environment variable ("direct" or
// "im2col") and falls back to im2col, the fast path. kDirect is kept so
// tests can assert bitwise-tolerant parity between the two backends.

#include <cstdlib>
#include <cstring>

namespace safecross::nn {

enum class ConvBackend {
  kAuto,    // resolve from SAFECROSS_CONV_BACKEND, default im2col
  kDirect,  // naive loops, parallel over batch x out-channel
  kIm2col,  // im2col lowering + cache-blocked SGEMM
};

/// Collapse kAuto to a concrete backend; called once per layer at
/// construction so the env var is consulted, not cached process-wide.
inline ConvBackend resolve_conv_backend(ConvBackend requested) {
  if (requested != ConvBackend::kAuto) return requested;
  if (const char* env = std::getenv("SAFECROSS_CONV_BACKEND")) {
    if (std::strcmp(env, "direct") == 0) return ConvBackend::kDirect;
    if (std::strcmp(env, "im2col") == 0) return ConvBackend::kIm2col;
  }
  return ConvBackend::kIm2col;
}

}  // namespace safecross::nn
