#include "nn/im2col.h"

#include <algorithm>
#include <cstring>

namespace safecross::nn {

namespace {

// ceil(a / b) for b > 0; callers clamp, so truncation on a <= 0 is fine.
inline int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Valid output-coordinate range [lo, hi) for kernel offset kx: the ox
// with 0 <= ox * stride - pad + kx < in.
inline void out_range(int kx, int stride, int pad, int in, int out, int& lo, int& hi) {
  lo = std::clamp(ceil_div(pad - kx, stride), 0, out);
  hi = std::clamp(ceil_div(in + pad - kx, stride), lo, out);
}

// One output row of width ow for spatial kernel offset (ky, kx): gathers
// from input row iy of x_plane (h x w), zero-filling the padded ends.
// iy is already known valid.
inline void gather_row(const float* src_row, int w, int kx, int stride, int pad, int ow,
                       float* dst) {
  int lo, hi;
  out_range(kx, stride, pad, w, ow, lo, hi);
  std::fill(dst, dst + lo, 0.0f);
  std::fill(dst + hi, dst + ow, 0.0f);
  int ix = lo * stride - pad + kx;
  if (stride == 1) {
    std::memcpy(dst + lo, src_row + ix, static_cast<std::size_t>(hi - lo) * sizeof(float));
  } else {
    for (int ox = lo; ox < hi; ++ox, ix += stride) dst[ox] = src_row[ix];
  }
}

// Adjoint of gather_row: scatter-add dst's valid span back into the
// input row.
inline void scatter_row(const float* src, int w, int kx, int stride, int pad, int ow,
                        float* gx_row) {
  int lo, hi;
  out_range(kx, stride, pad, w, ow, lo, hi);
  int ix = lo * stride - pad + kx;
  for (int ox = lo; ox < hi; ++ox, ix += stride) gx_row[ix] += src[ox];
}

}  // namespace

void im2col_2d(const float* x, const Im2ColGeom2D& g, int row_begin, int row_end, float* col) {
  const std::size_t cols = g.cols();
  const int kk = g.kernel * g.kernel;
  for (int r = row_begin; r < row_end; ++r) {
    const int ic = r / kk;
    const int ky = (r % kk) / g.kernel;
    const int kx = r % g.kernel;
    const float* xc = x + static_cast<std::size_t>(ic) * g.h * g.w;
    float* crow = col + static_cast<std::size_t>(r) * cols;
    for (int oy = 0; oy < g.oh; ++oy) {
      const int iy = oy * g.stride - g.pad + ky;
      float* dst = crow + static_cast<std::size_t>(oy) * g.ow;
      if (iy < 0 || iy >= g.h) {
        std::fill(dst, dst + g.ow, 0.0f);
      } else {
        gather_row(xc + static_cast<std::size_t>(iy) * g.w, g.w, kx, g.stride, g.pad, g.ow, dst);
      }
    }
  }
}

void col2im_2d(const float* col, const Im2ColGeom2D& g, int row_begin, int row_end, float* gx) {
  const std::size_t cols = g.cols();
  const int kk = g.kernel * g.kernel;
  for (int r = row_begin; r < row_end; ++r) {
    const int ic = r / kk;
    const int ky = (r % kk) / g.kernel;
    const int kx = r % g.kernel;
    float* gxc = gx + static_cast<std::size_t>(ic) * g.h * g.w;
    const float* crow = col + static_cast<std::size_t>(r) * cols;
    for (int oy = 0; oy < g.oh; ++oy) {
      const int iy = oy * g.stride - g.pad + ky;
      if (iy < 0 || iy >= g.h) continue;
      scatter_row(crow + static_cast<std::size_t>(oy) * g.ow, g.w, kx, g.stride, g.pad, g.ow,
                  gxc + static_cast<std::size_t>(iy) * g.w);
    }
  }
}

void im2col_3d(const float* x, const Im2ColGeom3D& g, int row_begin, int row_end, float* col) {
  const std::size_t cols = g.cols();
  const std::size_t plane = static_cast<std::size_t>(g.oh) * g.ow;
  const int ks2 = g.kernel_s * g.kernel_s;
  const int per_c = g.rows_per_channel();
  for (int r = row_begin; r < row_end; ++r) {
    const int ic = r / per_c;
    const int kz = (r % per_c) / ks2;
    const int ky = (r % ks2) / g.kernel_s;
    const int kx = r % g.kernel_s;
    const float* xc = x + static_cast<std::size_t>(ic) * g.t * g.h * g.w;
    float* crow = col + static_cast<std::size_t>(r) * cols;
    for (int oz = 0; oz < g.ot; ++oz) {
      const int iz = oz * g.stride_t - g.pad_t + kz;
      float* dst_plane = crow + static_cast<std::size_t>(oz) * plane;
      if (iz < 0 || iz >= g.t) {
        std::fill(dst_plane, dst_plane + plane, 0.0f);
        continue;
      }
      const float* xz = xc + static_cast<std::size_t>(iz) * g.h * g.w;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride_s - g.pad_s + ky;
        float* dst = dst_plane + static_cast<std::size_t>(oy) * g.ow;
        if (iy < 0 || iy >= g.h) {
          std::fill(dst, dst + g.ow, 0.0f);
        } else {
          gather_row(xz + static_cast<std::size_t>(iy) * g.w, g.w, kx, g.stride_s, g.pad_s, g.ow,
                     dst);
        }
      }
    }
  }
}

void col2im_3d(const float* col, const Im2ColGeom3D& g, int row_begin, int row_end, float* gx) {
  const std::size_t cols = g.cols();
  const std::size_t plane = static_cast<std::size_t>(g.oh) * g.ow;
  const int ks2 = g.kernel_s * g.kernel_s;
  const int per_c = g.rows_per_channel();
  for (int r = row_begin; r < row_end; ++r) {
    const int ic = r / per_c;
    const int kz = (r % per_c) / ks2;
    const int ky = (r % ks2) / g.kernel_s;
    const int kx = r % g.kernel_s;
    float* gxc = gx + static_cast<std::size_t>(ic) * g.t * g.h * g.w;
    const float* crow = col + static_cast<std::size_t>(r) * cols;
    for (int oz = 0; oz < g.ot; ++oz) {
      const int iz = oz * g.stride_t - g.pad_t + kz;
      if (iz < 0 || iz >= g.t) continue;
      float* gxz = gxc + static_cast<std::size_t>(iz) * g.h * g.w;
      const float* src_plane = crow + static_cast<std::size_t>(oz) * plane;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride_s - g.pad_s + ky;
        if (iy < 0 || iy >= g.h) continue;
        scatter_row(src_plane + static_cast<std::size_t>(oy) * g.ow, g.w, kx, g.stride_s, g.pad_s,
                    g.ow, gxz + static_cast<std::size_t>(iy) * g.w);
      }
    }
  }
}

}  // namespace safecross::nn
