#pragma once
// 3-D (spatio-temporal) convolution over (N, C, T, H, W) tensors.
//
// The workhorse of the SlowFast pathways and the C3D baseline: temporal
// kernel x spatial kernel with independent strides, zero padding.
// Two backends (see conv_backend.h): the default lowers each clip with
// im2col_3d and runs a cache-blocked GEMM; kDirect keeps the original
// range-clipped loops as a parity oracle.

#include <vector>

#include "nn/conv_backend.h"
#include "nn/layer.h"

namespace safecross::nn {

struct Conv3DConfig {
  int in_channels = 1;
  int out_channels = 1;
  int kernel_t = 3;
  int kernel_s = 3;   // spatial kernel (square)
  int stride_t = 1;
  int stride_s = 1;
  int pad_t = 1;
  int pad_s = 1;
  bool bias = true;
  ConvBackend backend = ConvBackend::kAuto;
};

class Conv3D final : public Layer {
 public:
  explicit Conv3D(Conv3DConfig config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv3D"; }

  const Conv3DConfig& config() const { return config_; }
  Param& weight() { return weight_; }

  /// The concrete backend this layer resolved to (never kAuto).
  ConvBackend backend() const { return backend_; }

  static int out_size(int in, int kernel, int stride, int padding);

 private:
  Tensor forward_direct(const Tensor& input);
  Tensor backward_direct(const Tensor& grad_output);
  Tensor forward_gemm(const Tensor& input, bool training);
  Tensor backward_gemm(const Tensor& grad_output);

  Conv3DConfig config_;
  ConvBackend backend_;
  Param weight_;  // (out_c, in_c, kt, ks, ks)
  Param bias_;    // (out_c)
  Tensor cached_input_;
  // GEMM-backend state: training forwards keep the lowered batch here for
  // backward's weight gradient; inference forwards lower into the calling
  // thread's ScratchArena (see conv2d.h).
  std::vector<float> col_;
  bool col_valid_ = false;
};

}  // namespace safecross::nn
