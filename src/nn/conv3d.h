#pragma once
// 3-D (spatio-temporal) convolution over (N, C, T, H, W) tensors.
//
// The workhorse of the SlowFast pathways and the C3D baseline: temporal
// kernel x spatial kernel with independent strides, zero padding.

#include "nn/layer.h"

namespace safecross::nn {

struct Conv3DConfig {
  int in_channels = 1;
  int out_channels = 1;
  int kernel_t = 3;
  int kernel_s = 3;   // spatial kernel (square)
  int stride_t = 1;
  int stride_s = 1;
  int pad_t = 1;
  int pad_s = 1;
  bool bias = true;
};

class Conv3D final : public Layer {
 public:
  explicit Conv3D(Conv3DConfig config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv3D"; }

  const Conv3DConfig& config() const { return config_; }
  Param& weight() { return weight_; }

  static int out_size(int in, int kernel, int stride, int padding);

 private:
  Conv3DConfig config_;
  Param weight_;  // (out_c, in_c, kt, ks, ks)
  Param bias_;    // (out_c)
  Tensor cached_input_;
};

}  // namespace safecross::nn
