#pragma once
// Elementwise activations and shape adapters.

#include "nn/layer.h"

namespace safecross::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Flattens (N, ...) to (N, F); backward restores the original shape.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> in_shape_;
};

}  // namespace safecross::nn
