#include "nn/linear.h"

#include <stdexcept>

namespace safecross::nn {

Linear::Linear(int in_features, int out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(Tensor({out_features, in_features})),
      bias_(Tensor({out_features})) {
  if (in_features < 1 || out_features < 1) throw std::invalid_argument("Linear: invalid sizes");
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_) + "), got " +
                                input.shape_str());
  }
  cached_input_ = input;
  const int n = input.dim(0);
  Tensor out({n, out_});
  const float* x = input.data();
  const float* w = weight_.value.data();
  const float* b = bias_.value.data();
  float* y = out.data();
  for (int bi = 0; bi < n; ++bi) {
    for (int o = 0; o < out_; ++o) {
      float acc = has_bias_ ? b[o] : 0.0f;
      const float* xr = x + static_cast<std::size_t>(bi) * in_;
      const float* wr = w + static_cast<std::size_t>(o) * in_;
      for (int i = 0; i < in_; ++i) acc += xr[i] * wr[i];
      y[static_cast<std::size_t>(bi) * out_ + o] = acc;
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int n = cached_input_.dim(0);
  Tensor grad_input({n, in_}, 0.0f);
  const float* x = cached_input_.data();
  const float* go = grad_output.data();
  const float* w = weight_.value.data();
  float* gi = grad_input.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  for (int bi = 0; bi < n; ++bi) {
    const float* xr = x + static_cast<std::size_t>(bi) * in_;
    const float* gr = go + static_cast<std::size_t>(bi) * out_;
    float* gir = gi + static_cast<std::size_t>(bi) * in_;
    for (int o = 0; o < out_; ++o) {
      const float g = gr[o];
      if (has_bias_) gb[o] += g;
      const float* wr = w + static_cast<std::size_t>(o) * in_;
      float* gwr = gw + static_cast<std::size_t>(o) * in_;
      for (int i = 0; i < in_; ++i) {
        gwr[i] += g * xr[i];
        gir[i] += g * wr[i];
      }
    }
  }
  return grad_input;
}

}  // namespace safecross::nn
