#include "nn/linear.h"

#include <stdexcept>

#include "nn/gemm.h"

namespace safecross::nn {

Linear::Linear(int in_features, int out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(Tensor({out_features, in_features})),
      bias_(Tensor({out_features})) {
  if (in_features < 1 || out_features < 1) throw std::invalid_argument("Linear: invalid sizes");
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_) + "), got " +
                                input.shape_str());
  }
  cached_input_ = input;
  const int n = input.dim(0);
  Tensor out({n, out_});
  // Y (n x out) = X (n x in) * W^T, then broadcast the bias row.
  sgemm(Trans::kNo, Trans::kTrans, n, out_, in_, 1.0f, input.data(), in_, weight_.value.data(),
        in_, 0.0f, out.data(), out_);
  if (has_bias_) {
    const float* b = bias_.value.data();
    float* y = out.data();
    for (int bi = 0; bi < n; ++bi) {
      float* row = y + static_cast<std::size_t>(bi) * out_;
      for (int o = 0; o < out_; ++o) row[o] += b[o];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int n = cached_input_.dim(0);
  Tensor grad_input({n, in_});
  const float* go = grad_output.data();
  // dW (out x in) += dY^T * X;  dX (n x in) = dY * W.
  sgemm(Trans::kTrans, Trans::kNo, out_, in_, n, 1.0f, go, out_, cached_input_.data(), in_, 1.0f,
        weight_.grad.data(), in_);
  sgemm(Trans::kNo, Trans::kNo, n, in_, out_, 1.0f, go, out_, weight_.value.data(), in_, 0.0f,
        grad_input.data(), in_);
  if (has_bias_) {
    float* gb = bias_.grad.data();
    for (int bi = 0; bi < n; ++bi) {
      const float* gr = go + static_cast<std::size_t>(bi) * out_;
      for (int o = 0; o < out_; ++o) gb[o] += gr[o];
    }
  }
  return grad_input;
}

}  // namespace safecross::nn
