#include "nn/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace safecross::nn {

namespace {
std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor dimensions must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(std::initializer_list<int> shape, float fill)
    : Tensor(std::vector<int>(shape), fill) {}

std::size_t Tensor::flat_index(std::initializer_list<int> idx) const {
  if (idx.size() != shape_.size()) throw std::invalid_argument("Tensor::at rank mismatch");
  std::size_t flat = 0;
  std::size_t d = 0;
  for (const int i : idx) {
    if (i < 0 || i >= shape_[d]) throw std::out_of_range("Tensor::at index out of range");
    flat = flat * static_cast<std::size_t>(shape_[d]) + static_cast<std::size_t>(i);
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int> idx) { return data_[flat_index(idx)]; }
float Tensor::at(std::initializer_list<int> idx) const { return data_[flat_index(idx)]; }

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped numel mismatch");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_scaled(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

float Tensor::max() const {
  if (data_.empty()) throw std::runtime_error("Tensor::max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void Tensor::check_same_shape(const Tensor& a, const Tensor& b, const char* context) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(context) + ": shape mismatch " + a.shape_str() +
                                " vs " + b.shape_str());
  }
}

}  // namespace safecross::nn
