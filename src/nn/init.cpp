#include "nn/init.h"

#include <cmath>

namespace safecross::nn {

void he_init(Tensor& weight, std::size_t fan_in, safecross::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1));
  for (std::size_t i = 0; i < weight.numel(); ++i) {
    weight[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_init(Tensor& weight, std::size_t fan_in, std::size_t fan_out, safecross::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::size_t i = 0; i < weight.numel(); ++i) {
    weight[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void init_params(const std::vector<Param*>& params, safecross::Rng& rng) {
  for (Param* p : params) {
    // Rank >= 2 tensors are weights: He init with fan_in = product of all
    // dims but the first (output) dim. Rank-1 tensors keep their
    // constructor defaults (bias = 0, BatchNorm gamma = 1).
    if (p->value.ndim() < 2) continue;
    std::size_t fan_in = 1;
    for (std::size_t d = 1; d < p->value.ndim(); ++d) {
      fan_in *= static_cast<std::size_t>(p->value.dim(d));
    }
    he_init(p->value, fan_in, rng);
  }
}

}  // namespace safecross::nn
