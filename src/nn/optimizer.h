#pragma once
// Gradient-descent optimizers over explicit parameter lists.

#include <vector>

#include "nn/layer.h"

namespace safecross::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Param*> params_;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Param*> params, float lr, float momentum = 0.0f, float weight_decay = 0.0f);

  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace safecross::nn
