#pragma once
// Binary (de)serialization of parameter lists — the on-"GPU" model images
// the switching engine transfers, and simple checkpointing for trainers.
//
// Format: magic, count, then per tensor: rank, dims..., float data.
// Little-endian host order (this is a single-machine reproduction).

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/layer.h"

namespace safecross::nn {

constexpr std::uint32_t kCheckpointMagic = 0x5AFEC805u;

/// Write all parameter values (not gradients) to the stream.
void save_params(std::ostream& os, const std::vector<Param*>& params);

/// Read values back into an identically-structured parameter list.
/// Throws std::runtime_error on magic/shape mismatch.
void load_params(std::istream& is, const std::vector<Param*>& params);

/// Byte size save_params would emit (used by the switching engine to size
/// PCIe transfers per layer).
std::size_t serialized_size(const std::vector<Param*>& params);

/// Same format for bare tensor lists (e.g. BatchNorm running statistics,
/// which are state but not parameters). Shares the magic/count framing.
void save_tensors(std::ostream& os, const std::vector<Tensor*>& tensors);
void load_tensors(std::istream& is, const std::vector<Tensor*>& tensors);

}  // namespace safecross::nn
