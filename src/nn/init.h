#pragma once
// Weight initialization. He (Kaiming) initialization for conv/linear
// weights feeding ReLU networks; zeros for biases.

#include "common/rng.h"
#include "nn/layer.h"

namespace safecross::nn {

/// Fill with N(0, sqrt(2 / fan_in)).
void he_init(Tensor& weight, std::size_t fan_in, safecross::Rng& rng);

/// Fill with U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
void xavier_init(Tensor& weight, std::size_t fan_in, std::size_t fan_out, safecross::Rng& rng);

/// Initialize every parameter of a layer tree: tensors whose first
/// dimension is the output count get He init with fan_in inferred from the
/// remaining dims; rank-1 tensors (biases) are zeroed, except BatchNorm
/// gammas which init to 1 (handled by the layer's own constructor and
/// left untouched here — rank-1 params are zeroed only if their name says
/// bias is safe, so we simply skip rank-1 with value already nonzero).
void init_params(const std::vector<Param*>& params, safecross::Rng& rng);

}  // namespace safecross::nn
