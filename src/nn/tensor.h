#pragma once
// Dense N-dimensional float tensor.
//
// The deliberate minimum needed to train the paper's video classifiers on
// CPU: contiguous row-major storage, shape bookkeeping, and a handful of
// elementwise helpers. Layers index raw data() directly in their hot
// loops; Tensor does not attempt views, broadcasting, or autograd —
// gradients are propagated explicitly by each Layer.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace safecross::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);
  Tensor(std::initializer_list<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other) { return Tensor(other.shape_, 0.0f); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const { return shape_.at(i); }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Multi-index accessor (slow; for tests and non-hot paths).
  float& at(std::initializer_list<int> idx);
  float at(std::initializer_list<int> idx) const;

  /// Same data, new shape (numel must match).
  Tensor reshaped(std::vector<int> new_shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// In-place axpy: this += alpha * other (shapes must match).
  void add_scaled(const Tensor& other, float alpha);

  /// Elementwise scale.
  void scale(float alpha);

  double sum() const;
  float max() const;

  /// Human-readable "[2, 3, 4]" shape string for error messages.
  std::string shape_str() const;

  /// Throws std::invalid_argument unless shapes match exactly.
  static void check_same_shape(const Tensor& a, const Tensor& b, const char* context);

 private:
  std::size_t flat_index(std::initializer_list<int> idx) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace safecross::nn
