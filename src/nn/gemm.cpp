#include "nn/gemm.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "nn/gemm_microkernel.h"

namespace safecross::nn {

namespace {

// ---------------------------------------------------------------------------
// Scalar fallback: the pre-microkernel implementation, kept verbatim as
// the portable path for sanitizer builds and as the parity oracle the
// tests compare the packed kernel against.

// Contiguous dot product with a 16-lane accumulator bank so the float
// reduction vectorizes (SLP) without -ffast-math reassociation.
float dot16(const float* a, const float* b, int k) {
  constexpr int kLanes = 16;
  float acc[kLanes] = {};
  int kk = 0;
  for (; kk + kLanes <= k; kk += kLanes) {
    for (int u = 0; u < kLanes; ++u) acc[u] += a[kk + u] * b[kk + u];
  }
  float s = 0.0f;
  for (int u = 0; u < kLanes; ++u) s += acc[u];
  for (; kk < k; ++kk) s += a[kk] * b[kk];
  return s;
}

// One m-tile x n-tile block of C. The inner loops are laid out per
// transpose case so the innermost axis is always contiguous in memory:
// axpy over C rows for kNo B (k in cache-resident slabs so the touched
// B rows stay hot), dot products over full rows for kTrans B.
void scalar_tile(Trans trans_a, Trans trans_b, int i0, int i1, int j0, int j1, int k, float alpha,
                 const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (beta == 0.0f) {
      std::fill(crow + j0, crow + j1, 0.0f);
    } else if (beta != 1.0f) {
      for (int j = j0; j < j1; ++j) crow[j] *= beta;
    }
  }

  if (trans_b == Trans::kNo) {
    // C[i, j0:j1] += alpha * op(A)[i, kk] * B[kk, j0:j1] — axpy over the
    // contiguous C row, vectorizable.
    for (int kc = 0; kc < k; kc += detail::kKc) {
      const int kend = std::min(k, kc + detail::kKc);
      for (int i = i0; i < i1; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * ldc;
        for (int kk = kc; kk < kend; ++kk) {
          const float av =
              alpha * (trans_a == Trans::kNo ? a[static_cast<std::size_t>(i) * lda + kk]
                                             : a[static_cast<std::size_t>(kk) * lda + i]);
          const float* brow = b + static_cast<std::size_t>(kk) * ldb;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else if (trans_a == Trans::kNo) {
    // op(B) = B^T: C[i, j] += alpha * dot(A[i, :], B[j, :]).
    for (int i = i0; i < i1; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      for (int j = j0; j < j1; ++j) {
        crow[j] += alpha * dot16(arow, b + static_cast<std::size_t>(j) * ldb, k);
      }
    }
  } else {
    // A^T * B^T: strided A reads; rare (no hot path uses it).
    for (int i = i0; i < i1; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = j0; j < j1; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float s = 0.0f;
        for (int kk = 0; kk < k; ++kk) s += a[static_cast<std::size_t>(kk) * lda + i] * brow[kk];
        crow[j] += alpha * s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Packed path: one (mc x nc) macro-tile of C, k walked in kKc slabs.
// Both operand panels are packed into this worker's thread-local arena
// (zero allocation at steady state) so the microkernel streams aligned,
// contiguous, transpose-free strips whatever the caller's layout was.

template <bool kHalf>
void packed_tile(Trans trans_a, Trans trans_b, int i0, int i1, int j0, int j1, int k, float alpha,
                 const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  using namespace detail;
  const int mc = i1 - i0;
  const int nc = j1 - j0;
  const int mc_round = (mc + kMr - 1) / kMr * kMr;
  const int nc_round = (nc + kNr - 1) / kNr * kNr;
  const int kc_max = std::min(k, kKc);

  // With untransposed B and only one or two A strips, each B panel is
  // read at most twice: stream it straight from the caller's matrix and
  // skip the pack entirely (only the sub-16 column tail is packed, for
  // zero-padding). This is the im2col conv-forward shape — m = c_out,
  // n = output positions — where packing B would double memory traffic.
  // (The fp16 path always packs: rounding happens at pack time.)
  const bool b_direct = !kHalf && trans_b == Trans::kNo && mc <= 2 * kMr;

  ScratchArena& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* pa = arena.floats(static_cast<std::size_t>(mc_round) * kc_max);
  float* pb =
      arena.floats(static_cast<std::size_t>(b_direct ? kNr : nc_round) * kc_max);

  for (int k0 = 0; k0 < k; k0 += kKc) {
    const int kc = std::min(kKc, k - k0);
    pack_a<kHalf>(trans_a, a, lda, i0, mc, k0, kc, pa);
    if (!b_direct) pack_b<kHalf>(trans_b, b, ldb, k0, kc, j0, nc, pb);
    // The first slab applies the caller's beta; later slabs accumulate.
    const float beta_eff = k0 == 0 ? beta : 1.0f;
    for (int jr = 0; jr < nc; jr += kNr) {
      const int nr = std::min(kNr, nc - jr);
      const float* bstrip = nullptr;
      if (!b_direct) {
        bstrip = pb + static_cast<std::size_t>(jr) * kc;
      } else if (nr < kNr) {
        pack_b<kHalf>(trans_b, b, ldb, k0, kc, j0 + jr, nr, pb);
        bstrip = pb;
      }
      for (int ir = 0; ir < mc; ir += kMr) {
        const int mr = std::min(kMr, mc - ir);
        alignas(64) float acc[kMr * kNr];
        if (bstrip != nullptr) {
          microkernel_6x16(kc, pa + static_cast<std::size_t>(ir) * kc, bstrip, acc);
        } else {
          microkernel_6x16_bdirect(kc, pa + static_cast<std::size_t>(ir) * kc,
                                   b + static_cast<std::size_t>(k0) * ldb + j0 + jr, ldb, acc);
        }
        store_tile(acc, alpha, beta_eff, c + static_cast<std::size_t>(i0 + ir) * ldc + j0 + jr,
                   ldc, mr, nr);
      }
    }
  }
}

}  // namespace

void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc, GemmKernel kernel) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("sgemm: negative dimension");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }
  const GemmKernel resolved = resolve_gemm_kernel(kernel);

  // Tile C in 2-D; start from cache-friendly macro-tiles and shrink until
  // there is enough fan-out for the pool, down to one microkernel block.
  // Skinny shapes (weight grads: tiny m*n, huge k; im2col panels: tiny m,
  // huge n) fan out along whichever axis has room. k is never split, so
  // each C element's summation order — and thus the result bit pattern —
  // is independent of the worker count and tiling decisions.
  const bool scalar = resolved == GemmKernel::kScalar;
  const int min_tm = scalar ? 8 : detail::kMr;
  const int min_tn = scalar ? 32 : detail::kNr;
  int tm = std::min(m, scalar ? 64 : detail::kMc);
  int tn = std::min(n, scalar ? 256 : detail::kNc);
  const std::size_t workers = ThreadPool::global().size();
  auto tiles = [&] {
    return static_cast<std::size_t>((m + tm - 1) / tm) *
           static_cast<std::size_t>((n + tn - 1) / tn);
  };
  while (tiles() < 2 * workers && (tm > min_tm || tn > min_tn)) {
    if (tn > min_tn) {
      tn = std::max(min_tn, tn / 2);
    } else {
      tm = std::max(min_tm, tm / 2);
    }
  }

  const int tiles_n = (n + tn - 1) / tn;
  ThreadPool::global().parallel_for(tiles(), [&](std::size_t tile) {
    const int ti = static_cast<int>(tile) / tiles_n;
    const int tj = static_cast<int>(tile) % tiles_n;
    const int i0 = ti * tm, i1 = std::min(m, i0 + tm);
    const int j0 = tj * tn, j1 = std::min(n, j0 + tn);
    switch (resolved) {
      case GemmKernel::kScalar:
        scalar_tile(trans_a, trans_b, i0, i1, j0, j1, k, alpha, a, lda, b, ldb, beta, c, ldc);
        break;
      case GemmKernel::kFp16:
        packed_tile<true>(trans_a, trans_b, i0, i1, j0, j1, k, alpha, a, lda, b, ldb, beta, c,
                          ldc);
        break;
      default:
        packed_tile<false>(trans_a, trans_b, i0, i1, j0, j1, k, alpha, a, lda, b, ldb, beta, c,
                           ldc);
        break;
    }
  });
}

}  // namespace safecross::nn
