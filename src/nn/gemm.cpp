#include "nn/gemm.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "common/thread_pool.h"

namespace safecross::nn {

namespace {

// Contiguous dot product with a 16-lane accumulator bank so the float
// reduction vectorizes (SLP) without -ffast-math reassociation; ~3x
// over a 4-way scalar unroll on AVX-512.
float dot16(const float* a, const float* b, int k) {
  constexpr int kLanes = 16;
  float acc[kLanes] = {};
  int kk = 0;
  for (; kk + kLanes <= k; kk += kLanes) {
    for (int u = 0; u < kLanes; ++u) acc[u] += a[kk + u] * b[kk + u];
  }
  float s = 0.0f;
  for (int u = 0; u < kLanes; ++u) s += acc[u];
  for (; kk < k; ++kk) s += a[kk] * b[kk];
  return s;
}

// One m-tile x n-tile block of C. The inner loops are laid out per
// transpose case so the innermost axis is always contiguous in memory:
// axpy over C rows for kNo B (k in cache-resident slabs so the touched
// B rows stay hot), dot products over full rows for kTrans B.
void gemm_tile(Trans trans_a, Trans trans_b, int i0, int i1, int j0, int j1, int k, float alpha,
               const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  constexpr int kKc = 256;

  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (beta == 0.0f) {
      std::fill(crow + j0, crow + j1, 0.0f);
    } else if (beta != 1.0f) {
      for (int j = j0; j < j1; ++j) crow[j] *= beta;
    }
  }

  if (trans_b == Trans::kNo) {
    // C[i, j0:j1] += alpha * op(A)[i, kk] * B[kk, j0:j1] — axpy over the
    // contiguous C row, vectorizable.
    for (int kc = 0; kc < k; kc += kKc) {
      const int kend = std::min(k, kc + kKc);
      for (int i = i0; i < i1; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * ldc;
        for (int kk = kc; kk < kend; ++kk) {
          const float av =
              alpha * (trans_a == Trans::kNo ? a[static_cast<std::size_t>(i) * lda + kk]
                                             : a[static_cast<std::size_t>(kk) * lda + i]);
          const float* brow = b + static_cast<std::size_t>(kk) * ldb;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else if (trans_a == Trans::kNo) {
    // op(B) = B^T: C[i, j] += alpha * dot(A[i, :], B[j, :]).
    for (int i = i0; i < i1; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      for (int j = j0; j < j1; ++j) {
        crow[j] += alpha * dot16(arow, b + static_cast<std::size_t>(j) * ldb, k);
      }
    }
  } else {
    // A^T * B^T: strided A reads; rare (no hot path uses it).
    for (int i = i0; i < i1; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = j0; j < j1; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float s = 0.0f;
        for (int kk = 0; kk < k; ++kk) s += a[static_cast<std::size_t>(kk) * lda + i] * brow[kk];
        crow[j] += alpha * s;
      }
    }
  }
}

}  // namespace

void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("sgemm: negative dimension");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }

  // Tile C; start from cache-friendly tiles and shrink until there is
  // enough fan-out for the pool (weight-grad GEMMs have tiny m*n but a
  // huge k, and would otherwise run on one worker).
  const std::size_t workers = ThreadPool::global().size();
  int tm = std::min(m, 64);
  int tn = std::min(n, 256);
  auto tiles = [&] {
    return static_cast<std::size_t>((m + tm - 1) / tm) *
           static_cast<std::size_t>((n + tn - 1) / tn);
  };
  while (tiles() < 2 * workers && (tm > 8 || tn > 32)) {
    if (tn > 32) {
      tn = std::max(32, tn / 2);
    } else {
      tm = std::max(8, tm / 2);
    }
  }

  const int tiles_n = (n + tn - 1) / tn;
  ThreadPool::global().parallel_for(tiles(), [&](std::size_t tile) {
    const int ti = static_cast<int>(tile) / tiles_n;
    const int tj = static_cast<int>(tile) % tiles_n;
    const int i0 = ti * tm, i1 = std::min(m, i0 + tm);
    const int j0 = tj * tn, j1 = std::min(n, j0 + tn);
    gemm_tile(trans_a, trans_b, i0, i1, j0, j1, k, alpha, a, lda, b, ldb, beta, c, ldc);
  });
}

}  // namespace safecross::nn
