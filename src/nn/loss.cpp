#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safecross::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.ndim() != 2) throw std::invalid_argument("softmax expects (N, K)");
  const int n = logits.dim(0);
  const int k = logits.dim(1);
  Tensor out({n, k});
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<std::size_t>(i) * k;
    float* orow = out.data() + static_cast<std::size_t>(i) * k;
    const float mx = *std::max_element(row, row + k);
    double sum = 0.0;
    for (int j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    for (int j = 0; j < k; ++j) orow[j] = static_cast<float>(orow[j] / sum);
  }
  return out;
}

float SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.ndim() != 2 || static_cast<std::size_t>(logits.dim(0)) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits/labels mismatch");
  }
  const int n = logits.dim(0);
  const int k = logits.dim(1);
  probs_ = softmax(logits);
  labels_ = labels;
  predictions_.assign(n, 0);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= k) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    const float* row = probs_.data() + static_cast<std::size_t>(i) * k;
    predictions_[i] = static_cast<int>(std::max_element(row, row + k) - row);
    loss -= std::log(std::max(row[labels[i]], 1e-12f));
  }
  return static_cast<float>(loss / n);
}

Tensor SoftmaxCrossEntropy::grad() const {
  const int n = probs_.dim(0);
  const int k = probs_.dim(1);
  Tensor g = probs_;
  for (int i = 0; i < n; ++i) {
    g[static_cast<std::size_t>(i) * k + labels_[i]] -= 1.0f;
  }
  g.scale(1.0f / static_cast<float>(n));
  return g;
}

float MulticlassHinge::forward(const Tensor& scores, const std::vector<int>& labels) {
  if (scores.ndim() != 2 || static_cast<std::size_t>(scores.dim(0)) != labels.size()) {
    throw std::invalid_argument("MulticlassHinge: scores/labels mismatch");
  }
  scores_ = scores;
  labels_ = labels;
  const int n = scores.dim(0);
  const int k = scores.dim(1);
  predictions_.assign(n, 0);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* row = scores.data() + static_cast<std::size_t>(i) * k;
    predictions_[i] = static_cast<int>(std::max_element(row, row + k) - row);
    const float correct = row[labels[i]];
    for (int j = 0; j < k; ++j) {
      if (j == labels[i]) continue;
      loss += std::max(0.0f, margin_ + row[j] - correct);
    }
  }
  return static_cast<float>(loss / n);
}

Tensor MulticlassHinge::grad() const {
  const int n = scores_.dim(0);
  const int k = scores_.dim(1);
  Tensor g({n, k}, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float* row = scores_.data() + static_cast<std::size_t>(i) * k;
    float* grow = g.data() + static_cast<std::size_t>(i) * k;
    const float correct = row[labels_[i]];
    int violations = 0;
    for (int j = 0; j < k; ++j) {
      if (j == labels_[i]) continue;
      if (margin_ + row[j] - correct > 0.0f) {
        grow[j] = 1.0f;
        ++violations;
      }
    }
    grow[labels_[i]] = -static_cast<float>(violations);
  }
  g.scale(1.0f / static_cast<float>(n));
  return g;
}

float MeanSquaredError::forward(const Tensor& pred, const Tensor& target) {
  Tensor::check_same_shape(pred, target, "MeanSquaredError");
  pred_ = pred;
  target_ = target;
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = pred[i] - target[i];
    sum += d * d;
  }
  return static_cast<float>(sum / static_cast<double>(pred.numel()));
}

Tensor MeanSquaredError::grad() const {
  Tensor g = pred_;
  const float scale = 2.0f / static_cast<float>(pred_.numel());
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] = scale * (pred_[i] - target_[i]);
  return g;
}

}  // namespace safecross::nn
