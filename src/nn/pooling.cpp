#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace safecross::nn {

MaxPool2D::MaxPool2D(int window, int stride) : window_(window), stride_(stride) {
  if (window < 1 || stride < 1) throw std::invalid_argument("MaxPool2D: invalid geometry");
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() != 4) throw std::invalid_argument("MaxPool2D expects (N, C, H, W)");
  cached_input_ = input;
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int oh = (h - window_) / stride_ + 1;
  const int ow = (w - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("MaxPool2D: output would be empty");
  out_shape_ = {n, c, oh, ow};
  Tensor out(out_shape_);
  argmax_.assign(out.numel(), 0);
  const float* x = input.data();
  float* y = out.data();
  std::size_t o = 0;
  for (int bi = 0; bi < n; ++bi) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++o) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (int ky = 0; ky < window_; ++ky) {
            for (int kx = 0; kx < window_; ++kx) {
              const int iy = oy * stride_ + ky;
              const int ix = ox * stride_ + kx;
              const std::size_t idx =
                  ((static_cast<std::size_t>(bi) * c + ch) * h + iy) * w + ix;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y[o] = best;
          argmax_[o] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  Tensor grad_input = Tensor::zeros_like(cached_input_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  for (std::size_t o = 0; o < grad_output.numel(); ++o) gi[argmax_[o]] += go[o];
  return grad_input;
}

MaxPool3D::MaxPool3D(int window_t, int window_s, int stride_t, int stride_s)
    : wt_(window_t), ws_(window_s), st_(stride_t), ss_(stride_s) {
  if (wt_ < 1 || ws_ < 1 || st_ < 1 || ss_ < 1) {
    throw std::invalid_argument("MaxPool3D: invalid geometry");
  }
}

Tensor MaxPool3D::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() != 5) throw std::invalid_argument("MaxPool3D expects (N, C, T, H, W)");
  cached_input_ = input;
  const int n = input.dim(0), c = input.dim(1), t = input.dim(2), h = input.dim(3),
            w = input.dim(4);
  const int ot = (t - wt_) / st_ + 1;
  const int oh = (h - ws_) / ss_ + 1;
  const int ow = (w - ws_) / ss_ + 1;
  if (ot <= 0 || oh <= 0 || ow <= 0) throw std::invalid_argument("MaxPool3D: output empty");
  out_shape_ = {n, c, ot, oh, ow};
  Tensor out(out_shape_);
  argmax_.assign(out.numel(), 0);
  const float* x = input.data();
  float* y = out.data();
  std::size_t o = 0;
  for (int bi = 0; bi < n; ++bi) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oz = 0; oz < ot; ++oz) {
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox, ++o) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (int kz = 0; kz < wt_; ++kz) {
              for (int ky = 0; ky < ws_; ++ky) {
                for (int kx = 0; kx < ws_; ++kx) {
                  const int iz = oz * st_ + kz;
                  const int iy = oy * ss_ + ky;
                  const int ix = ox * ss_ + kx;
                  const std::size_t idx =
                      (((static_cast<std::size_t>(bi) * c + ch) * t + iz) * h + iy) * w + ix;
                  if (x[idx] > best) {
                    best = x[idx];
                    best_idx = idx;
                  }
                }
              }
            }
            y[o] = best;
            argmax_[o] = best_idx;
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool3D::backward(const Tensor& grad_output) {
  Tensor grad_input = Tensor::zeros_like(cached_input_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  for (std::size_t o = 0; o < grad_output.numel(); ++o) gi[argmax_[o]] += go[o];
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  if (input.ndim() < 3) throw std::invalid_argument("GlobalAvgPool expects (N, C, ...)");
  in_shape_.assign(input.shape().begin(), input.shape().end());
  const int n = input.dim(0), c = input.dim(1);
  std::size_t spatial = 1;
  for (std::size_t d = 2; d < input.ndim(); ++d) spatial *= static_cast<std::size_t>(input.dim(d));
  Tensor out({n, c});
  const float* x = input.data();
  float* y = out.data();
  for (int bi = 0; bi < n; ++bi) {
    for (int ch = 0; ch < c; ++ch) {
      const float* base = x + (static_cast<std::size_t>(bi) * c + ch) * spatial;
      double sum = 0.0;
      for (std::size_t i = 0; i < spatial; ++i) sum += base[i];
      y[static_cast<std::size_t>(bi) * c + ch] = static_cast<float>(sum / spatial);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(in_shape_, 0.0f);
  const int n = in_shape_[0], c = in_shape_[1];
  std::size_t spatial = 1;
  for (std::size_t d = 2; d < in_shape_.size(); ++d) spatial *= static_cast<std::size_t>(in_shape_[d]);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  for (int bi = 0; bi < n; ++bi) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = go[static_cast<std::size_t>(bi) * c + ch] / static_cast<float>(spatial);
      float* base = gi + (static_cast<std::size_t>(bi) * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) base[i] = g;
    }
  }
  return grad_input;
}

}  // namespace safecross::nn
