#include "nn/optimizer.h"

#include <cmath>

namespace safecross::nn {

SGD::SGD(std::vector<Param*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(Tensor::zeros_like(p->value));
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      float g = p.grad[j] + weight_decay_ * p.value[j];
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + g;
        g = vel[j];
      }
      p.value[j] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::zeros_like(p->value));
    v_.push_back(Tensor::zeros_like(p->value));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace safecross::nn
