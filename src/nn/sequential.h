#pragma once
// Ordered layer container. forward() threads the activation through every
// layer; backward() runs the chain in reverse.

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace safecross::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace safecross::nn
