#pragma once
// Pooling layers: 2-D/3-D max pooling and global average pooling.

#include "nn/layer.h"

namespace safecross::nn {

/// Max pooling over (N, C, H, W) with a square window.
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(int window, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  int window_;
  int stride_;
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;  // winning input flat index per output cell
  std::vector<int> out_shape_;
};

/// Max pooling over (N, C, T, H, W) with independent temporal/spatial
/// windows (window of 1 disables pooling along that axis).
class MaxPool3D final : public Layer {
 public:
  MaxPool3D(int window_t, int window_s, int stride_t, int stride_s);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool3D"; }

 private:
  int wt_, ws_, st_, ss_;
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;
  std::vector<int> out_shape_;
};

/// Global average pooling: (N, C, ...) -> (N, C), averaging every
/// trailing dimension.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int> in_shape_;
};

}  // namespace safecross::nn
