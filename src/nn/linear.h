#pragma once
// Fully-connected layer: (N, in) -> (N, out), y = x W^T + b.

#include "nn/layer.h"

namespace safecross::nn {

class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Linear"; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  Param& weight() { return weight_; }

 private:
  int in_;
  int out_;
  bool has_bias_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor cached_input_;
};

}  // namespace safecross::nn
