#pragma once
// Layer abstraction: explicit forward/backward with cached activations.
//
// Each layer owns its parameters (value + gradient pairs). backward()
// consumes the gradient w.r.t. the layer's last output, accumulates
// parameter gradients, and returns the gradient w.r.t. the last input.
// A layer instance therefore supports one in-flight forward/backward
// pair — exactly the pattern the trainers use.

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace safecross::nn {

/// A trainable parameter: value and its accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(Tensor::zeros_like(value)) {}
  Param() = default;

  void zero_grad() { grad.zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input, bool training) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state that must survive cloning (e.g. BatchNorm
  /// running statistics).
  virtual std::vector<Tensor*> buffers() { return {}; }

  virtual std::string name() const = 0;

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Total parameter element count across a parameter list.
std::size_t param_count(const std::vector<Param*>& params);

/// Copy parameter values (not gradients) elementwise; lists must be
/// structurally identical (same count, same shapes).
void copy_param_values(const std::vector<Param*>& from, const std::vector<Param*>& to);

/// Copy buffers (running stats etc.) between structurally identical lists.
void copy_buffers(const std::vector<Tensor*>& from, const std::vector<Tensor*>& to);

}  // namespace safecross::nn
