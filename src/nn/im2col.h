#pragma once
// Patch lowering for the GEMM convolution backend.
//
// im2col rewrites one image/clip as a (rows x cols) matrix whose row r
// holds, for every output position, the input value the kernel element r
// would read (zero where the receptive field hangs over the padding).
// Row r enumerates (channel, kernel offsets) in weight order, so the
// flattened conv weight times this matrix is exactly the conv output.
// col2im is the adjoint scatter-add used by the backward pass.
//
// All functions take an explicit [row_begin, row_end) range so callers
// can partition the lowering across the thread pool; ranges aligned to
// whole channels touch disjoint input channels, making the col2im
// scatter race-free under that partitioning.

#include <cstddef>

namespace safecross::nn {

struct Im2ColGeom2D {
  int c_in, h, w;            // input (C, H, W)
  int kernel, stride, pad;   // square kernel geometry
  int oh, ow;                // output spatial size

  int rows() const { return c_in * kernel * kernel; }
  std::size_t cols() const { return static_cast<std::size_t>(oh) * ow; }
  int rows_per_channel() const { return kernel * kernel; }
};

struct Im2ColGeom3D {
  int c_in, t, h, w;                     // input (C, T, H, W)
  int kernel_t, kernel_s;                // temporal x square-spatial kernel
  int stride_t, stride_s, pad_t, pad_s;
  int ot, oh, ow;                        // output size

  int rows() const { return c_in * kernel_t * kernel_s * kernel_s; }
  std::size_t cols() const { return static_cast<std::size_t>(ot) * oh * ow; }
  int rows_per_channel() const { return kernel_t * kernel_s * kernel_s; }
};

/// Fill rows [row_begin, row_end) of the col matrix from image x (C,H,W).
/// col points at the matrix base (row r lives at col + r * g.cols()).
void im2col_2d(const float* x, const Im2ColGeom2D& g, int row_begin, int row_end, float* col);

/// Adjoint of im2col_2d: gx[c][iy][ix] += col[r][m]. gx must be zeroed by
/// the caller before the first row range is applied.
void col2im_2d(const float* col, const Im2ColGeom2D& g, int row_begin, int row_end, float* gx);

void im2col_3d(const float* x, const Im2ColGeom3D& g, int row_begin, int row_end, float* col);
void col2im_3d(const float* col, const Im2ColGeom3D& g, int row_begin, int row_end, float* gx);

}  // namespace safecross::nn
