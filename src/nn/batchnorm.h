#pragma once
// Batch normalization over the channel axis (dim 1) of (N, C, ...)
// tensors. Training mode normalizes with batch statistics and updates
// exponential running estimates; eval mode uses the running estimates.

#include "nn/layer.h"

namespace safecross::nn {

class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(int channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override { return {&running_mean_, &running_var_}; }
  std::string name() const override { return "BatchNorm"; }

  int channels() const { return channels_; }

 private:
  int channels_;
  float momentum_;
  float eps_;
  Param gamma_;  // (C) scale
  Param beta_;   // (C) shift
  Tensor running_mean_;
  Tensor running_var_;

  // Cached forward state for backward.
  Tensor cached_xhat_;
  std::vector<float> cached_mean_;
  std::vector<float> cached_inv_std_;
  std::vector<int> in_shape_;
};

}  // namespace safecross::nn
