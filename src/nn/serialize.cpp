#include "nn/serialize.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace safecross::nn {

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: unexpected end of stream");
  return v;
}

}  // namespace

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  write_pod(os, kCheckpointMagic);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Param* p : params) {
    const Tensor& t = p->value;
    write_pod(os, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d = 0; d < t.ndim(); ++d) {
      write_pod(os, static_cast<std::int32_t>(t.dim(d)));
    }
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed");
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  if (read_pod<std::uint32_t>(is) != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (Param* p : params) {
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank != p->value.ndim()) throw std::runtime_error("checkpoint: rank mismatch");
    for (std::size_t d = 0; d < rank; ++d) {
      if (read_pod<std::int32_t>(is) != p->value.dim(d)) {
        throw std::runtime_error("checkpoint: shape mismatch");
      }
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: unexpected end of stream");
  }
}

void save_tensors(std::ostream& os, const std::vector<Tensor*>& tensors) {
  write_pod(os, kCheckpointMagic);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const Tensor* t : tensors) {
    write_pod(os, static_cast<std::uint32_t>(t->ndim()));
    for (std::size_t d = 0; d < t->ndim(); ++d) {
      write_pod(os, static_cast<std::int32_t>(t->dim(d)));
    }
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed");
}

void load_tensors(std::istream& is, const std::vector<Tensor*>& tensors) {
  if (read_pod<std::uint32_t>(is) != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  if (read_pod<std::uint64_t>(is) != tensors.size()) {
    throw std::runtime_error("checkpoint: tensor count mismatch");
  }
  for (Tensor* t : tensors) {
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank != t->ndim()) throw std::runtime_error("checkpoint: rank mismatch");
    for (std::size_t d = 0; d < rank; ++d) {
      if (read_pod<std::int32_t>(is) != t->dim(d)) {
        throw std::runtime_error("checkpoint: shape mismatch");
      }
    }
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: unexpected end of stream");
  }
}

std::size_t serialized_size(const std::vector<Param*>& params) {
  std::size_t bytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);
  for (const Param* p : params) {
    bytes += sizeof(std::uint32_t) + p->value.ndim() * sizeof(std::int32_t) +
             p->value.numel() * sizeof(float);
  }
  return bytes;
}

}  // namespace safecross::nn
