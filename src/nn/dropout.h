#pragma once
// Inverted dropout: active only in training mode; eval is the identity.

#include "common/rng.h"
#include "nn/layer.h"

namespace safecross::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(float rate, std::uint64_t seed = 0x0D120907u);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  float rate_;
  safecross::Rng rng_;
  std::vector<float> mask_;
  bool was_training_ = false;
};

}  // namespace safecross::nn
