#include "nn/layer.h"

#include <stdexcept>

namespace safecross::nn {

std::size_t param_count(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const Param* p : params) n += p->value.numel();
  return n;
}

void copy_param_values(const std::vector<Param*>& from, const std::vector<Param*>& to) {
  if (from.size() != to.size()) throw std::invalid_argument("copy_param_values: count mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    Tensor::check_same_shape(from[i]->value, to[i]->value, "copy_param_values");
    to[i]->value = from[i]->value;
  }
}

void copy_buffers(const std::vector<Tensor*>& from, const std::vector<Tensor*>& to) {
  if (from.size() != to.size()) throw std::invalid_argument("copy_buffers: count mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    Tensor::check_same_shape(*from[i], *to[i], "copy_buffers");
    *to[i] = *from[i];
  }
}

}  // namespace safecross::nn
