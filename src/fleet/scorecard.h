#pragma once
// Fleet-wide scorecard aggregation: every per-stream scorecard, every
// shard's health/heartbeat story, every failover's recovery damage,
// rolled into one report — so a failover (and the corruption it
// tolerated) is observable, never silent.
//
// The report also carries the reconciliation invariant the chaos tests
// pin: with shedding off, every window a stream produced must have been
// decided (windows_produced == decisions per stream, opportunities ==
// produced), and every degrade is accounted by source — so "no window
// silently dropped" is checkable arithmetic, not a hope.

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/stream_policy.h"
#include "runtime/health_monitor.h"
#include "runtime/message_channel.h"
#include "serving/stream.h"
#include "serving/stream_server.h"

namespace safecross::fleet {

/// Rollup of RecoveryReport damage counters across every failover the
/// fleet performed: what the journals and snapshot stores had to
/// tolerate to keep the decision streams bit-identical.
struct RecoveryDamage {
  std::size_t recoveries = 0;
  std::size_t recovered_from_snapshot = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_pending = 0;
  std::uint64_t journal_pending_recalibrations = 0;
  std::uint64_t journal_bytes_dropped = 0;  // torn/corrupt tail bytes truncated
  std::size_t journal_torn_tails = 0;
  std::size_t journal_bad_headers = 0;
  std::size_t snapshots_rejected = 0;
  std::vector<std::string> rejection_reasons;  // "file: reason"

  void add(const serving::RecoveryReport& r);
};

/// One shard death the controller handled.
struct FailoverEvent {
  std::size_t wave = 0;
  std::size_t shard = 0;
  runtime::CrashPoint point = runtime::CrashPoint::MidJournalAppend;  // planned point
  double detect_ms = 0.0;   // crash instant → declared dead (missed heartbeats)
  double recover_ms = 0.0;  // recover() + drain_streams() wall time
  std::size_t streams_moved = 0;
  serving::RecoveryReport recovery;
};

/// One live (cooperative) drain the controller orchestrated: a gray
/// shard handed streams to an idle peer mid-run, no crash, no recovery.
struct DrainEvent {
  std::size_t wave = 0;        // fleet wave the drain interrupted
  std::size_t from_shard = 0;
  std::size_t to_shard = 0;
  std::size_t streams_moved = 0;
  double request_ms = 0.0;  // trigger → hand-offs received (wall)
};

/// One stream's final, merged outcome (after any number of hand-offs).
struct StreamResult {
  std::string name;
  core::StreamPriority priority = core::StreamPriority::Standard;
  bool degraded = false;     // admission-control degrade (static, placement-time)
  std::size_t first_shard = 0;
  std::size_t final_shard = 0;
  std::size_t moves = 0;     // failover hand-offs this stream rode
  std::size_t frames_run = 0;
  std::size_t windows_produced = 0;
  std::size_t opportunities = 0;
  std::size_t decisions = 0;
  std::size_t model_decisions = 0;
  std::size_t fail_safe_decisions = 0;
  std::size_t degraded_decisions = 0;  // by_source[FleetDegraded]
  std::size_t warnings = 0;
  std::size_t correct = 0;
  double accuracy = 0.0;
  std::vector<serving::DecisionRecord> trace;  // merged per-seq verdicts
};

struct ShardSummary {
  std::size_t id = 0;
  int final_status = 0;  // shard.h ShardStatus as int (no include cycle)
  std::size_t incarnations = 0;
  std::size_t streams_final = 0;     // streams whose last home this was
  std::size_t beats_published = 0;
  std::size_t beats_evicted = 0;
  runtime::HealthState controller_view = runtime::HealthState::Nominal;
  std::size_t windows_shed = 0;      // must stay 0: degrade-before-drop
  std::size_t queue_high_water = 0;
  double latency_watermark_ms = 0.0;
};

struct FleetReport {
  std::vector<StreamResult> streams;
  std::vector<ShardSummary> shards;
  std::vector<FailoverEvent> failovers;
  std::vector<DrainEvent> drains;  // live drains (no recovery involved)
  RecoveryDamage damage;
  std::size_t streams_degraded = 0;
  std::size_t windows_produced_total = 0;
  std::size_t decisions_total = 0;
  std::size_t model_decisions_total = 0;
  std::size_t fail_safe_total = 0;
  std::size_t degraded_decisions_total = 0;
  std::size_t windows_shed_total = 0;  // must stay 0
  std::size_t uncaught_exceptions = 0;  // non-injected shard deaths
  /// Shards declared dead by the failure detector that had in fact
  /// completed — the false-positive count the suspicion detector exists
  /// to drive to zero (reconciliation kept them from failing over).
  std::size_t false_deaths = 0;
  /// Control commands the faulty fabric ate past RpcPolicy::max_attempts,
  /// delivered over the reliable local path instead ("console cable").
  std::size_t transport_fallbacks = 0;
  std::size_t live_degrades = 0;    // dynamic-admission degrade actions applied
  std::size_t live_undegrades = 0;  // ...and recoveries
  /// Delivery accounting summed over every control-plane link.
  runtime::LinkStats transport;

  /// The no-window-silently-dropped invariant: every produced window was
  /// decided, nothing was shed, every opportunity produced a window.
  bool reconciled() const;
};

/// Human-readable dump (examples/multi_camera, bench verbose mode).
void print_fleet_report(std::ostream& os, const FleetReport& report);

}  // namespace safecross::fleet
