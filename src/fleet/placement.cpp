#include "fleet/placement.h"

#include <stdexcept>

namespace safecross::fleet {

const char* placement_policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::Rendezvous: return "rendezvous";
    case PlacementPolicy::LeastLoaded: return "least-loaded";
  }
  return "?";
}

double stream_weight(const serving::StreamConfig& sc) {
  const int stride = sc.decision_stride > 0 ? sc.decision_stride : 1;
  return 8.0 / static_cast<double>(stride);
}

namespace {

// SplitMix64 finalizer: a fast, portable 64-bit mix with full avalanche —
// the quality bar rendezvous hashing needs so one shard doesn't win every
// stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t Placer::score(const std::string& name, std::size_t shard) const {
  // FNV-1a over the name folded with the seed and shard id through the
  // SplitMix64 finalizer. Stable across platforms and runs by
  // construction (no std::hash).
  std::uint64_t h = 0xCBF29CE484222325ULL ^ config_.seed;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ mix64(static_cast<std::uint64_t>(shard) + 1));
}

std::size_t Placer::place(const std::string& name, const std::vector<std::size_t>& live,
                          const std::vector<double>& load) const {
  if (live.empty()) throw std::invalid_argument("Placer::place: no live shards");
  std::size_t best = live.front();
  if (config_.policy == PlacementPolicy::Rendezvous) {
    std::uint64_t best_score = score(name, best);
    for (std::size_t i = 1; i < live.size(); ++i) {
      const std::uint64_t s = score(name, live[i]);
      if (s > best_score) {
        best = live[i];
        best_score = s;
      }
    }
    return best;
  }
  // LeastLoaded: smallest accumulated weight, rendezvous tie-break so
  // equal-load ties stay deterministic and seed-dependent.
  double best_load = best < load.size() ? load[best] : 0.0;
  std::uint64_t best_score = score(name, best);
  for (std::size_t i = 1; i < live.size(); ++i) {
    const std::size_t id = live[i];
    const double l = id < load.size() ? load[id] : 0.0;
    const std::uint64_t s = score(name, id);
    if (l < best_load || (l == best_load && s > best_score)) {
      best = id;
      best_load = l;
      best_score = s;
    }
  }
  return best;
}

std::vector<std::size_t> Placer::place_all(const std::vector<serving::StreamConfig>& streams,
                                           std::size_t shard_count) const {
  if (shard_count == 0) throw std::invalid_argument("Placer::place_all: no shards");
  std::vector<std::size_t> live(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) live[s] = s;
  std::vector<double> load(shard_count, 0.0);
  std::vector<std::size_t> assignment;
  assignment.reserve(streams.size());
  for (const serving::StreamConfig& sc : streams) {
    const std::size_t shard = place(sc.name, live, load);
    load[shard] += stream_weight(sc);
    assignment.push_back(shard);
  }
  return assignment;
}

}  // namespace safecross::fleet
