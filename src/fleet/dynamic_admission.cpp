#include "fleet/dynamic_admission.h"

#include <algorithm>

#include "fleet/placement.h"

namespace safecross::fleet {

DynamicAdmission::Action DynamicAdmission::observe(double latency_watermark_ms) {
  if (!config_.enabled) return Action::None;
  if (latency_watermark_ms > config_.degrade_watermark_ms) {
    ++hot_;
    cool_ = 0;
  } else if (latency_watermark_ms <= config_.undegrade_watermark_ms) {
    ++cool_;
    hot_ = 0;
  } else {
    // In-band (including exactly at the degrade watermark): ambiguity
    // interrupts both streaks — the no-flapping guarantee.
    hot_ = 0;
    cool_ = 0;
  }
  if (degraded_ < config_.max_degraded && hot_ >= config_.breach_streak) {
    hot_ = 0;
    ++degraded_;
    ++degrades_;
    return Action::Degrade;
  }
  if (degraded_ > 0 && cool_ >= config_.recover_streak) {
    cool_ = 0;
    --degraded_;
    ++undegrades_;
    return Action::Undegrade;
  }
  return Action::None;
}

std::vector<std::string> degrade_order(const std::vector<serving::StreamConfig>& streams) {
  // Same sacrifice order as static admission: lowest tier first, heaviest
  // first within a tier, name ascending as the tie-break; Critical never.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (streams[i].priority != core::StreamPriority::Critical) candidates.push_back(i);
  }
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    if (streams[a].priority != streams[b].priority) {
      return static_cast<int>(streams[a].priority) > static_cast<int>(streams[b].priority);
    }
    const double wa = stream_weight(streams[a]);
    const double wb = stream_weight(streams[b]);
    if (wa != wb) return wa > wb;
    return streams[a].name < streams[b].name;
  });
  std::vector<std::string> order;
  order.reserve(candidates.size());
  for (std::size_t i : candidates) order.push_back(streams[i].name);
  return order;
}

}  // namespace safecross::fleet
