#pragma once
// FleetController: the control plane over S StreamServer shards.
//
// One run() is a full fleet lifecycle:
//
//   1. place    — seeded deterministic placement (rendezvous or
//                 least-loaded) of K streams onto S shards;
//   2. admit    — degrade-before-drop admission control stamps
//                 fleet_degraded on the sacrificial streams of every
//                 oversubscribed shard (static, so parity holds);
//   3. serve    — every shard with streams runs its assignment on its
//                 own thread, heartbeating to the controller;
//   4. watch    — the controller drains each shard's heartbeat channel
//                 on a fixed cadence into a per-shard HealthMonitor:
//                 fresh beat → frame_ok (or frame_degraded past a
//                 queue-depth/latency watermark), silence → frame_missing.
//                 A shard whose monitor escalates to FailSafe is declared
//                 dead — detection by missed heartbeats, exactly the
//                 contract a real SIGKILL forces;
//   5. failover — for each dead shard: build a recovery server over its
//                 durability dir, recover() (tolerating torn tails and
//                 corrupt snapshot generations), drain_streams(), and
//                 re-place the hand-offs onto surviving shards, which
//                 run them as a new wave (back to 3). A wave can crash
//                 too — the loop runs until every stream's run completes;
//   6. aggregate — per-stream merged results, per-shard summaries,
//                 failover timings and recovery damage into a FleetReport.
//
// Determinism contract: placement, admission and the kill plan are pure
// functions of the config; stream verdicts are functions of per-stream
// seeded state plus bit-identical per-shard engines; hand-off resumes
// bit-identically. Hence the fleet parity oracle: every stream's merged
// decision sequence from a killed-and-failed-over run equals the
// same-config uninterrupted run's, bit for bit — only wall-clock
// observability (detection latency, heartbeat counts) may differ.

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <vector>

#include "fleet/admission.h"
#include "fleet/fault.h"
#include "fleet/placement.h"
#include "fleet/scorecard.h"
#include "fleet/shard.h"
#include "runtime/health_monitor.h"

namespace safecross::fleet {

struct FleetConfig {
  std::vector<serving::StreamConfig> streams;  // priorities set by the caller
  std::size_t shards = 2;

  PlacementConfig placement;
  AdmissionConfig admission;

  ShardSpec shard;             // engine recipe, identical on every shard
  ShardServingConfig serving;  // per-incarnation server knobs

  /// Root for per-shard durable dirs (root/shard-<id>/wave-<w>). Empty →
  /// durability off; fault injection then has no crash points to arm and
  /// failover is impossible.
  std::filesystem::path durability_root;

  // Controller watch cadence and the health machine that turns missed
  // heartbeats into a death verdict. Keep watch_interval_ms comfortably
  // above serving.heartbeat_interval_ms so a healthy shard beats at
  // least once per watch tick.
  double watch_interval_ms = 10.0;
  runtime::HealthConfig shard_health{.degraded_after_missing = 3,
                                     .failsafe_after_missing = 10,
                                     .recover_after_healthy = 5};
  std::size_t queue_depth_watermark = 0;  // beats at/above → frame_degraded; 0 off
  double latency_watermark_ms = 0.0;      // beats above → frame_degraded; 0 off

  ShardFaultConfig fault;  // seeded shard-kill plan (chaos)
};

class FleetController {
 public:
  explicit FleetController(FleetConfig config);

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// The full lifecycle (see file header). Runs once per controller.
  void run();

  /// Initial stream index → shard id (valid after run()).
  const std::vector<std::size_t>& placement() const { return assignment_; }
  const AdmissionReport& admission() const { return admission_; }
  const FleetReport& report() const { return report_; }
  std::size_t kills_fired() const { return fault_.kills_fired(); }
  const ShardFaultInjector& fault() const { return fault_; }
  ShardFaultInjector& fault() { return fault_; }

 private:
  struct Launched {
    std::size_t shard = 0;
    ShardAssignment assignment;
    const ShardKill* planned_kill = nullptr;
    bool finished = false;
    bool dead = false;
    std::chrono::steady_clock::time_point declared_at{};
    // unique_ptr: HealthMonitor holds an atomic latch, so it cannot live
    // by value in a movable Launched.
    std::unique_ptr<runtime::HealthMonitor> monitor;
  };

  /// Steps 3+4 for one wave: launch, watch, join. Fills crash verdicts.
  void run_wave(std::vector<Launched>& wave);
  /// Step 5: recovery + re-placement of every dead entry; returns the
  /// next wave's launch list (empty when nothing died).
  std::vector<Launched> fail_over(std::vector<Launched>& wave, std::size_t wave_no);
  void aggregate();

  std::filesystem::path wave_dir(std::size_t shard, std::size_t wave_no) const;

  FleetConfig cfg_;
  Placer placer_;
  ShardFaultInjector fault_;
  std::vector<std::unique_ptr<ShardHost>> hosts_;
  std::vector<std::size_t> assignment_;  // stream index → shard id (initial)
  AdmissionReport admission_;
  /// Per-stream shard history (index parallel to cfg_.streams).
  std::vector<std::vector<std::size_t>> homes_;
  /// Wave number of each stream's final (completed) incarnation.
  std::vector<std::size_t> final_wave_;
  std::vector<runtime::HealthState> last_view_;  // controller's last health view
  FleetReport report_;
  bool ran_ = false;
};

}  // namespace safecross::fleet
