#pragma once
// FleetController: the partition-tolerant control plane over S shards.
//
// One run() is a full fleet lifecycle:
//
//   1. place    — seeded deterministic placement (rendezvous or
//                 least-loaded) of K streams onto the S - reserve
//                 placeable shards (reserves stay idle: drain targets);
//   2. admit    — degrade-before-drop admission control stamps
//                 fleet_degraded on the sacrificial streams of every
//                 oversubscribed shard (static, so parity holds);
//   3. serve    — every placed shard gets a PlacementCmd over its
//                 downlink MessageChannel; its agent acks, dispatches
//                 the incarnation onto a host-owned thread, and pumps
//                 heartbeats onto the uplink. Commands are retried per
//                 RpcPolicy and fall back to the shard's reliable local
//                 queue after max_attempts (the "console cable"), so a
//                 run terminates under any fault plan;
//   4. watch    — the controller drains every uplink on a fixed cadence.
//                 Stale/reordered beats are discarded by (incarnation,
//                 seq); fresh beats feed the chosen failure detector:
//                 HardThreshold (HealthMonitor missed-frame escalation)
//                 or Suspicion (phi-accrual — a healed partition teaches
//                 the detector, so gray links stop costing failovers).
//                 Beats breaching the drain watermark accrue toward a
//                 live drain; beats breaching the dynamic-admission
//                 watermark drive per-stream live degrades (hysteresis);
//   5a. drain   — a gray (slow-but-alive) shard is asked to hand its
//                 streams off at its next quiescent point (DrainRequest
//                 → cooperative drain → DrainComplete, retransmitted
//                 until DrainAck). The controller mints a fresh
//                 ownership epoch per moved stream and re-places them on
//                 an idle shard — zero windows shed, no recovery pass;
//   5b. failover— a dead shard's durable dir is recovered
//                 (torn-tail-tolerant), drained, and re-placed onto
//                 survivors under freshly minted epochs. Reconciliation
//                 against ground truth keeps a false death (declared
//                 dead, actually completed) from ever double-serving;
//   6. aggregate — merged per-stream results, shard summaries, failover
//                 and drain events, transport link stats → FleetReport.
//
// Split-brain fencing: every stream carries a controller-minted
// ownership epoch (StreamConfig::owner_epoch, part of the config
// fingerprint). Epochs bump on every re-placement; adopt_stream rejects
// a hand-off whose epoch does not match the assignment's; every
// journaled decision records the epoch it was decided under; and
// epoch_audit() re-reads every granted journal after the run to prove no
// decision was recorded under a stale epoch — at-most-once hand-off even
// when the fabric duplicates or reorders entire hand-off transfers.
//
// Determinism contract: placement, admission, epochs and the kill plan
// are pure functions of the config; stream verdicts are functions of
// per-stream seeded state plus bit-identical per-shard engines; hand-off
// resumes bit-identically (cooperative drains quiesce at a batch
// boundary, and verdicts are batch-composition invariant). Hence the
// fleet parity oracle: every stream's merged decision sequence under ANY
// seeded NetFaultPlan equals the same-config uninterrupted run's, bit
// for bit — only wall-clock observability (detection latency, beat and
// link counts) may differ. Live degradation (dynamic admission) is the
// one wall-clock-reactive knob, and parity runs keep it off.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fleet/admission.h"
#include "fleet/dynamic_admission.h"
#include "fleet/fault.h"
#include "fleet/placement.h"
#include "fleet/scorecard.h"
#include "fleet/shard.h"
#include "fleet/transport.h"
#include "runtime/health_monitor.h"
#include "runtime/message_channel.h"
#include "runtime/suspicion.h"

namespace safecross::fleet {

/// Which silence-to-death translation the watch loop runs.
enum class DetectorKind : std::uint8_t {
  HardThreshold = 0,  // HealthMonitor: N missed watch frames → dead
  Suspicion = 1,      // phi-accrual: silence scaled to the link's history
};

const char* detector_kind_name(DetectorKind k);

struct FleetConfig {
  std::vector<serving::StreamConfig> streams;  // priorities set by the caller
  std::size_t shards = 2;
  /// Shards excluded from initial placement, held idle as live-drain
  /// targets. Must be < shards.
  std::size_t reserve_shards = 0;

  PlacementConfig placement;
  AdmissionConfig admission;

  ShardSpec shard;             // engine recipe, identical on every shard
  ShardServingConfig serving;  // per-incarnation server knobs

  /// Root for per-shard durable dirs (root/shard-<id>/wave-<w>). Empty →
  /// durability off; fault injection then has no crash points to arm and
  /// failover is impossible.
  std::filesystem::path durability_root;

  // Controller watch cadence and the health machine that turns missed
  // heartbeats into a death verdict. Keep watch_interval_ms comfortably
  // above serving.heartbeat_interval_ms so a healthy shard beats at
  // least once per watch tick.
  double watch_interval_ms = 10.0;
  runtime::HealthConfig shard_health{.degraded_after_missing = 3,
                                     .failsafe_after_missing = 10,
                                     .recover_after_healthy = 5};
  std::size_t queue_depth_watermark = 0;  // beats at/above → frame_degraded; 0 off
  double latency_watermark_ms = 0.0;      // beats above → frame_degraded; 0 off

  DetectorKind detector = DetectorKind::HardThreshold;
  runtime::SuspicionConfig suspicion;  // used when detector == Suspicion

  // --- gray-failure handling ---
  /// Artificial per-batch inference delay per shard id (gray drill: make
  /// shard s slow-but-alive). Shorter than `shards` → remaining are 0.
  std::vector<double> shard_decide_delay_ms;
  /// Heartbeat latency watermark above which a shard accrues toward a
  /// live drain (0 = drains disabled).
  double drain_latency_watermark_ms = 0.0;
  std::size_t drain_after_breaches = 3;  // consecutive hot beats → drain
  /// Per-shard live degradation (hysteresis watermarks). NOT parity-safe;
  /// chaos parity runs keep it disabled.
  DynamicAdmissionConfig dynamic_admission;

  ShardFaultConfig fault;          // seeded shard-kill plan (chaos)
  runtime::NetFaultPlan net_fault; // seeded control-plane fault plan (chaos)
  runtime::RpcPolicy rpc;          // command retry/backoff discipline
};

/// What the post-run journal walk proved about epoch fencing.
struct EpochAuditReport {
  std::size_t journals_checked = 0;
  std::uint64_t decisions_checked = 0;
  /// Human-readable fencing violations (decision under a stale epoch, a
  /// (stream, seq) decided under two different epochs in one journal...).
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

class FleetController {
 public:
  explicit FleetController(FleetConfig config);

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// The full lifecycle (see file header). Runs once per controller.
  void run();

  /// Initial stream index → shard id (valid after run()).
  const std::vector<std::size_t>& placement() const { return assignment_; }
  const AdmissionReport& admission() const { return admission_; }
  const FleetReport& report() const { return report_; }
  std::size_t kills_fired() const { return fault_.kills_fired(); }
  const ShardFaultInjector& fault() const { return fault_; }
  ShardFaultInjector& fault() { return fault_; }
  FleetTransport& transport() { return *transport_; }

  /// Current ownership epoch per stream name (valid after run()).
  const std::unordered_map<std::string, std::uint64_t>& epochs() const { return epochs_; }

  /// Walk every journal this run granted an epoch for and verify the
  /// fencing invariant: every journaled decision carries exactly the
  /// epoch its incarnation was granted for that stream. Call after run().
  EpochAuditReport epoch_audit() const;

 private:
  struct Launched {
    std::size_t shard = 0;
    ShardAssignment assignment;
    /// Immutable command payload shared with every (re)send of the
    /// PlacementCmd — retransmits and fabric duplicates copy the pointer,
    /// not the assignment.
    std::shared_ptr<const ShardAssignment> cmd_payload;
    const ShardKill* planned_kill = nullptr;
    bool finished = false;
    bool dead = false;
    std::chrono::steady_clock::time_point declared_at{};
    // unique_ptr: HealthMonitor holds an atomic latch, so it cannot live
    // by value in a movable Launched.
    std::unique_ptr<runtime::HealthMonitor> monitor;
    std::unique_ptr<runtime::SuspicionDetector> suspicion;
    // Placement command rpc state.
    std::uint64_t cmd_req_id = 0;
    bool cmd_acked = false;
    std::size_t cmd_attempts = 0;
    std::chrono::steady_clock::time_point cmd_sent{};
    bool saw_beat = false;  // at least one beat routed to this entry
    // Live-drain rpc state (this entry is the drain *source*).
    bool draining = false;
    std::uint64_t drain_req_id = 0;
    std::size_t drain_target = 0;
    std::size_t drain_attempts = 0;
    bool drain_fellback = false;  // request went over the console cable
    std::chrono::steady_clock::time_point drain_sent{};
    std::chrono::steady_clock::time_point drain_triggered{};
    std::size_t breach_streak = 0;  // consecutive drain-watermark breaches
    // Dynamic admission (live degradation) state.
    std::unique_ptr<DynamicAdmission> dyn;
    std::vector<std::string> dyn_order;    // victim order, precomputed
    std::vector<std::string> dyn_victims;  // currently held degraded
  };

  /// Steps 3–5a for one wave: command, watch, drain, join, reconcile.
  void run_wave(std::vector<Launched>& wave, std::size_t wave_no);
  /// Step 5b: recovery + re-placement of every dead entry; returns the
  /// next wave's launch list (empty when nothing died).
  std::vector<Launched> fail_over(std::vector<Launched>& wave, std::size_t wave_no);
  void aggregate();

  /// Reset the host's stale status and send (or resend) the entry's
  /// PlacementCmd over its downlink.
  void launch(Launched& l);
  void send_placement(Launched& l);
  /// Route one uplink message into the wave (watch loop, by value — the
  /// wave vector may grow while messages are handled).
  void route_uplink(FleetMsg msg, std::vector<Launched>& wave, std::size_t wave_no);
  /// Adopt a DrainComplete: ack, dedupe, mint epochs, launch the target.
  void handle_drain_complete(const FleetMsg& msg, std::vector<Launched>& wave,
                             std::size_t wave_no);
  /// Record the epochs an assignment's journal dir was granted (audit).
  void record_grants(const ShardAssignment& a);

  std::filesystem::path wave_dir(std::size_t shard, std::size_t wave_no) const;

  FleetConfig cfg_;
  Placer placer_;
  ShardFaultInjector fault_;
  std::unique_ptr<FleetTransport> transport_;
  std::vector<std::unique_ptr<ShardHost>> hosts_;
  std::vector<std::size_t> assignment_;  // stream index → shard id (initial)
  AdmissionReport admission_;
  /// Per-stream shard history (index parallel to cfg_.streams).
  std::vector<std::vector<std::size_t>> homes_;
  /// Wave number of each stream's final (completed) incarnation.
  std::vector<std::size_t> final_wave_;
  std::vector<runtime::HealthState> last_view_;  // controller's last health view
  /// Per-shard newest (incarnation, seq) seen — the stale-beat filter.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> beat_high_;
  /// Freshest unprocessed beat per shard (routed, pending the tick).
  std::vector<std::optional<runtime::Heartbeat>> fresh_beat_;
  std::unordered_map<std::string, std::uint64_t> epochs_;  // name → current epoch
  /// Journal dir → (name, granted epoch) in local stream order —
  /// DecisionEntry.stream is the local index, so order matters (audit).
  std::map<std::filesystem::path, std::vector<std::pair<std::string, std::uint64_t>>>
      grants_;
  std::unordered_set<std::uint64_t> drains_adopted_;  // DrainComplete dedupe
  std::uint64_t next_req_id_ = 1;
  /// Drain incarnations get wave numbers from here so they can never
  /// collide with failover wave numbering.
  std::size_t drain_wave_next_ = 1000;
  FleetReport report_;
  bool ran_ = false;
};

}  // namespace safecross::fleet
