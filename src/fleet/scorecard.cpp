#include "fleet/scorecard.h"

#include <iomanip>

namespace safecross::fleet {

void RecoveryDamage::add(const serving::RecoveryReport& r) {
  ++recoveries;
  if (r.recovered_from_snapshot) ++recovered_from_snapshot;
  journal_records += r.journal_records;
  journal_pending += r.journal_pending;
  journal_pending_recalibrations += r.journal_pending_recalibrations;
  journal_bytes_dropped += r.journal_bytes_dropped;
  if (r.journal_torn_tail) ++journal_torn_tails;
  if (r.journal_bad_header) ++journal_bad_headers;
  snapshots_rejected += r.snapshots_rejected.size();
  rejection_reasons.insert(rejection_reasons.end(), r.snapshots_rejected.begin(),
                           r.snapshots_rejected.end());
}

bool FleetReport::reconciled() const {
  if (windows_shed_total != 0) return false;
  if (windows_produced_total != decisions_total) return false;
  for (const StreamResult& s : streams) {
    if (s.windows_produced != s.decisions) return false;
    if (s.opportunities != s.windows_produced) return false;
    if (s.model_decisions + s.fail_safe_decisions != s.decisions) return false;
  }
  return true;
}

void print_fleet_report(std::ostream& os, const FleetReport& report) {
  os << "fleet: " << report.streams.size() << " streams on " << report.shards.size()
     << " shards, " << report.failovers.size() << " failover(s)\n";
  os << "  decisions " << report.decisions_total << " (model "
     << report.model_decisions_total << ", fail-safe " << report.fail_safe_total
     << ", of which fleet-degraded " << report.degraded_decisions_total << ")\n";
  os << "  degraded streams " << report.streams_degraded << ", windows shed "
     << report.windows_shed_total << ", reconciled "
     << (report.reconciled() ? "yes" : "NO") << "\n";
  for (const ShardSummary& sh : report.shards) {
    os << "  shard " << sh.id << ": " << sh.incarnations << " incarnation(s), "
       << sh.streams_final << " stream(s) ended here, " << sh.beats_published
       << " heartbeats (" << sh.beats_evicted << " evicted), controller saw "
       << runtime::health_state_name(sh.controller_view) << ", queue high-water "
       << sh.queue_high_water << ", latency watermark " << std::fixed
       << std::setprecision(2) << sh.latency_watermark_ms << " ms\n";
  }
  if (report.transport.sent > 0) {
    const runtime::LinkStats& t = report.transport;
    os << "  transport: " << t.sent << " sent, " << t.delivered << " delivered, "
       << t.dropped << " dropped (" << t.partitioned << " to partitions), "
       << t.duplicated << " duplicated, " << t.delayed << " delayed, " << t.reordered
       << " reordered; " << report.transport_fallbacks << " console-cable fallback(s)\n";
  }
  if (report.false_deaths > 0) {
    os << "  false deaths: " << report.false_deaths
       << " (declared dead, actually completed — reconciled, not failed over)\n";
  }
  if (report.live_degrades + report.live_undegrades > 0) {
    os << "  dynamic admission: " << report.live_degrades << " degrade(s), "
       << report.live_undegrades << " recovery(ies)\n";
  }
  for (const DrainEvent& d : report.drains) {
    os << "  live drain: wave " << d.wave << " shard " << d.from_shard << " -> shard "
       << d.to_shard << ", " << d.streams_moved << " stream(s) in " << std::fixed
       << std::setprecision(1) << d.request_ms << " ms\n";
  }
  for (const FailoverEvent& f : report.failovers) {
    os << "  failover: wave " << f.wave << " shard " << f.shard << " died at "
       << runtime::crash_point_name(f.point) << "; detected " << std::fixed
       << std::setprecision(1) << f.detect_ms << " ms after the crash, recovered+drained in "
       << f.recover_ms << " ms, " << f.streams_moved << " stream(s) re-placed\n";
  }
  if (report.damage.recoveries > 0) {
    const RecoveryDamage& d = report.damage;
    os << "  replay damage absorbed: " << d.journal_records
       << " journal records replayed (" << d.journal_pending << " pending decisions, "
       << d.journal_pending_recalibrations << " pending recalibrations), "
       << d.journal_bytes_dropped << " torn-tail byte(s) dropped across "
       << d.journal_torn_tails << " torn tail(s), " << d.journal_bad_headers
       << " bad header(s), " << d.snapshots_rejected << " snapshot(s) rejected\n";
    for (const std::string& reason : d.rejection_reasons) {
      os << "    snapshot rejected: " << reason << "\n";
    }
  }
}

}  // namespace safecross::fleet
