#include "fleet/controller.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace safecross::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

FleetController::FleetController(FleetConfig config)
    : cfg_(std::move(config)), placer_(cfg_.placement), fault_(cfg_.fault) {
  if (cfg_.streams.empty()) {
    throw std::invalid_argument("FleetController: at least one stream required");
  }
  if (cfg_.shards == 0) {
    throw std::invalid_argument("FleetController: at least one shard required");
  }
  if (cfg_.fault.enabled && cfg_.durability_root.empty()) {
    // The crash points live inside the journal/snapshot write paths, and
    // failover has nothing to recover without a durable dir.
    throw std::invalid_argument(
        "FleetController: fault injection requires a durability_root");
  }
  hosts_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    hosts_.push_back(std::make_unique<ShardHost>(s, cfg_.shard, cfg_.serving));
  }
  last_view_.assign(cfg_.shards, runtime::HealthState::Nominal);
}

std::filesystem::path FleetController::wave_dir(std::size_t shard,
                                                std::size_t wave_no) const {
  return cfg_.durability_root / ("shard-" + std::to_string(shard)) /
         ("wave-" + std::to_string(wave_no));
}

void FleetController::run() {
  if (ran_) throw std::logic_error("FleetController: a controller runs once");
  ran_ = true;

  // 1 + 2: seeded placement, then static degrade-before-drop admission.
  // Both are pure functions of the config, so the same-config reference
  // run (and any failover re-placement) sees the identical decisions.
  assignment_ = placer_.place_all(cfg_.streams, cfg_.shards);
  admission_ = apply_admission(cfg_.streams, assignment_, cfg_.shards, cfg_.admission);
  report_.streams_degraded = admission_.streams_degraded;
  homes_.assign(cfg_.streams.size(), {});
  final_wave_.assign(cfg_.streams.size(), 0);
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    homes_[i].push_back(assignment_[i]);
  }

  // Primary wave: every shard that was placed at least one stream.
  std::vector<Launched> wave;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    ShardAssignment a;
    a.wave = 0;
    for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
      if (assignment_[i] == s) a.streams.push_back(cfg_.streams[i]);
    }
    if (a.streams.empty()) continue;
    if (!cfg_.durability_root.empty()) a.durability_dir = wave_dir(s, 0);
    Launched l;
    l.shard = s;
    l.assignment = std::move(a);
    l.monitor = std::make_unique<runtime::HealthMonitor>(cfg_.shard_health);
    wave.push_back(std::move(l));
  }
  for (std::size_t slot = 0; slot < wave.size(); ++slot) {
    wave[slot].assignment.crash = fault_.injector_for(0, slot, wave.size());
    wave[slot].planned_kill = fault_.planned_for(0, slot, wave.size());
  }

  // 3–5: serve, watch, fail over — until every stream's run completed.
  std::size_t wave_no = 0;
  while (!wave.empty()) {
    run_wave(wave);
    std::vector<Launched> next = fail_over(wave, wave_no);
    wave = std::move(next);
    ++wave_no;
  }

  aggregate();
}

void FleetController::run_wave(std::vector<Launched>& wave) {
  std::vector<std::thread> threads;
  threads.reserve(wave.size());
  for (Launched& l : wave) {
    ShardHost* host = hosts_[l.shard].get();
    ShardAssignment a = l.assignment;
    threads.emplace_back([host, a = std::move(a)] { host->run_assignment(a); });
  }

  // The watch loop: drain every launched shard's heartbeat channel on a
  // fixed cadence into its HealthMonitor. A beat is frame_ok (or
  // frame_degraded past a watermark); silence while the shard should be
  // beating is frame_missing; FailSafe declares the shard dead. The
  // controller never blocks on a shard's channel — drain_latest() is a
  // non-blocking pop loop.
  const auto interval = std::chrono::duration<double, std::milli>(
      cfg_.watch_interval_ms > 0.0 ? cfg_.watch_interval_ms : 1.0);
  for (;;) {
    bool settled = true;
    for (Launched& l : wave) {
      if (l.finished || l.dead) continue;
      ShardHost& host = *hosts_[l.shard];
      const std::optional<runtime::Heartbeat> hb = host.channel().drain_latest();
      const ShardStatus st = host.status();
      if (st == ShardStatus::Completed) {
        l.finished = true;
        l.monitor->frame_ok();
        continue;
      }
      if (hb) {
        const bool depth_hot = cfg_.queue_depth_watermark > 0 &&
                               hb->queue_depth >= cfg_.queue_depth_watermark;
        const bool latency_hot = cfg_.latency_watermark_ms > 0.0 &&
                                 hb->latency_watermark_ms > cfg_.latency_watermark_ms;
        if (depth_hot || latency_hot) {
          l.monitor->frame_degraded();
        } else {
          l.monitor->frame_ok();
        }
      } else if (st == ShardStatus::Idle) {
        l.monitor->frame_ok();  // thread not on-CPU yet; startup is not death
      } else {
        l.monitor->frame_missing();
      }
      if (l.monitor->state() == runtime::HealthState::FailSafe) {
        l.dead = true;
        l.declared_at = Clock::now();
      }
      settled = false;
    }
    if (settled) break;
    std::this_thread::sleep_for(interval);
  }
  for (std::thread& t : threads) t.join();

  // Reconcile the silence-based verdicts against ground truth now that
  // every incarnation has returned: a shard declared dead that actually
  // completed (starvation false positive) must NOT be failed over — its
  // streams finished; double-serving them would corrupt the merged
  // sequences. The converse cannot happen: a crashed shard never
  // completes, so the watch loop can only have exited by declaring it.
  for (Launched& l : wave) {
    const ShardStatus st = hosts_[l.shard]->status();
    const bool crashed = st == ShardStatus::Crashed;
    if (l.dead && !crashed) {
      l.dead = false;
      l.finished = true;
    } else if (crashed) {
      l.dead = true;
      if (l.declared_at == Clock::time_point{}) l.declared_at = Clock::now();
    }
    last_view_[l.shard] = l.monitor->state();
  }
}

std::vector<FleetController::Launched> FleetController::fail_over(
    std::vector<Launched>& wave, std::size_t wave_no) {
  std::vector<Launched*> dead;
  std::vector<std::size_t> crashed_shards;
  for (Launched& l : wave) {
    if (l.dead) {
      dead.push_back(&l);
      crashed_shards.push_back(l.shard);
    }
  }
  if (dead.empty()) return {};

  // Survivors adopt the orphans. When every shard died (S = 1, or a
  // correlated wipeout), the crashed shards restart in place: the host
  // outlives its incarnations, so "restart" is just being a valid
  // re-placement target again.
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    if (std::find(crashed_shards.begin(), crashed_shards.end(), s) ==
        crashed_shards.end()) {
      live.push_back(s);
    }
  }
  if (live.empty()) live = crashed_shards;

  std::unordered_map<std::string, std::size_t> name_index;
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    name_index.emplace(cfg_.streams[i].name, i);
  }

  std::vector<double> load(cfg_.shards, 0.0);
  std::map<std::size_t, ShardAssignment> regroup;  // ordered: deterministic slots
  for (Launched* l : dead) {
    ShardHost& host = *hosts_[l->shard];
    if (!host.crash_what().empty()) ++report_.uncaught_exceptions;

    FailoverEvent ev;
    ev.wave = wave_no;
    ev.shard = l->shard;
    if (l->planned_kill) ev.point = l->planned_kill->point;
    ev.detect_ms = ms_between(host.crashed_at(), l->declared_at);

    // Recovery server: the dead incarnation's exact config (fingerprint
    // match) over its durable dir, crash injector disarmed — the kill
    // already happened. recover() absorbs torn tails and corrupt
    // snapshot generations; drain_streams() extracts the hand-offs.
    const auto t0 = Clock::now();
    ShardAssignment dead_a = l->assignment;
    dead_a.crash = nullptr;
    serving::StreamServer recovery(host.engine(), host.server_config(dead_a));
    ev.recovery = recovery.recover();
    std::vector<serving::StreamHandoff> handoffs = recovery.drain_streams();
    ev.recover_ms = ms_between(t0, Clock::now());
    ev.streams_moved = handoffs.size();
    report_.damage.add(ev.recovery);

    for (serving::StreamHandoff& h : handoffs) {
      const std::size_t target = placer_.place(h.config.name, live, load);
      load[target] += stream_weight(h.config);
      const auto it = name_index.find(h.config.name);
      if (it != name_index.end()) {
        homes_[it->second].push_back(target);
        final_wave_[it->second] = wave_no + 1;
      }
      ShardAssignment& a = regroup[target];
      a.wave = wave_no + 1;
      a.streams.push_back(h.config);
      a.handoffs.push_back(std::move(h));
    }
    report_.failovers.push_back(std::move(ev));
  }

  std::vector<Launched> next;
  next.reserve(regroup.size());
  for (auto& [shard, a] : regroup) {
    if (!cfg_.durability_root.empty()) a.durability_dir = wave_dir(shard, wave_no + 1);
    Launched l;
    l.shard = shard;
    l.assignment = std::move(a);
    l.monitor = std::make_unique<runtime::HealthMonitor>(cfg_.shard_health);
    next.push_back(std::move(l));
  }
  for (std::size_t slot = 0; slot < next.size(); ++slot) {
    next[slot].assignment.crash = fault_.injector_for(wave_no + 1, slot, next.size());
    next[slot].planned_kill = fault_.planned_for(wave_no + 1, slot, next.size());
  }
  return next;
}

void FleetController::aggregate() {
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    const std::size_t shard = homes_[i].back();
    const std::size_t wave = final_wave_[i];
    const ShardHost::Incarnation* inc = nullptr;
    for (const ShardHost::Incarnation& c : hosts_[shard]->incarnations()) {
      if (c.wave == wave) inc = &c;
    }
    if (inc == nullptr) {
      throw std::logic_error("FleetController: stream '" + cfg_.streams[i].name +
                             "' has no completed incarnation");
    }
    std::size_t local = inc->stream_names.size();
    for (std::size_t j = 0; j < inc->stream_names.size(); ++j) {
      if (inc->stream_names[j] == cfg_.streams[i].name) local = j;
    }
    if (local == inc->stream_names.size()) {
      throw std::logic_error("FleetController: stream '" + cfg_.streams[i].name +
                             "' missing from its final incarnation");
    }
    const serving::StreamContext& ctx = inc->server->stream(local);
    const core::StreamScorecard& sc = ctx.scorecard();

    StreamResult r;
    r.name = cfg_.streams[i].name;
    r.priority = cfg_.streams[i].priority;
    r.degraded = cfg_.streams[i].fleet_degraded;
    r.first_shard = homes_[i].front();
    r.final_shard = shard;
    r.moves = homes_[i].size() - 1;
    r.frames_run = ctx.frames_run();
    r.windows_produced = ctx.windows_produced();
    r.opportunities = sc.decision_opportunities();
    r.decisions = sc.decisions();
    r.model_decisions = sc.model_decisions();
    r.fail_safe_decisions = sc.fail_safe_decisions();
    r.degraded_decisions = sc.fail_safe_by_source(runtime::DecisionSource::FleetDegraded);
    r.warnings = sc.warnings();
    r.correct = sc.correct();
    r.accuracy = sc.accuracy();
    r.trace = ctx.trace();

    report_.windows_produced_total += r.windows_produced;
    report_.decisions_total += r.decisions;
    report_.model_decisions_total += r.model_decisions;
    report_.fail_safe_total += r.fail_safe_decisions;
    report_.degraded_decisions_total += r.degraded_decisions;
    report_.streams.push_back(std::move(r));
  }

  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    ShardSummary sum;
    sum.id = s;
    sum.final_status = static_cast<int>(hosts_[s]->status());
    sum.incarnations = hosts_[s]->incarnations().size();
    for (const auto& homes : homes_) {
      if (!homes.empty() && homes.back() == s) ++sum.streams_final;
    }
    sum.beats_published = hosts_[s]->channel().beats_published();
    sum.beats_evicted = hosts_[s]->channel().beats_evicted();
    sum.controller_view = last_view_[s];
    for (const ShardHost::Incarnation& inc : hosts_[s]->incarnations()) {
      sum.windows_shed += inc.server->windows_shed_total();
      for (std::size_t j = 0; j < inc.server->stream_count(); ++j) {
        sum.queue_high_water = std::max(sum.queue_high_water,
                                        inc.server->queue_high_water(j));
      }
      sum.latency_watermark_ms =
          std::max(sum.latency_watermark_ms, inc.server->latency_watermark_ms());
    }
    report_.windows_shed_total += sum.windows_shed;
    report_.shards.push_back(sum);
  }
}

}  // namespace safecross::fleet
