#include "fleet/controller.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "runtime/journal.h"

namespace safecross::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

constexpr const char* kJournalFile = "journal.wal";  // serving durability layout

}  // namespace

const char* detector_kind_name(DetectorKind k) {
  switch (k) {
    case DetectorKind::HardThreshold: return "hard-threshold";
    case DetectorKind::Suspicion: return "suspicion";
  }
  return "?";
}

FleetController::FleetController(FleetConfig config)
    : cfg_(std::move(config)), placer_(cfg_.placement), fault_(cfg_.fault) {
  if (cfg_.streams.empty()) {
    throw std::invalid_argument("FleetController: at least one stream required");
  }
  if (cfg_.shards == 0) {
    throw std::invalid_argument("FleetController: at least one shard required");
  }
  if (cfg_.reserve_shards >= cfg_.shards) {
    throw std::invalid_argument("FleetController: reserve_shards must be < shards");
  }
  if (cfg_.fault.enabled && cfg_.durability_root.empty()) {
    // The crash points live inside the journal/snapshot write paths, and
    // failover has nothing to recover without a durable dir.
    throw std::invalid_argument(
        "FleetController: fault injection requires a durability_root");
  }
  transport_ = std::make_unique<FleetTransport>(cfg_.net_fault, cfg_.shards);
  hosts_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    hosts_.push_back(std::make_unique<ShardHost>(s, cfg_.shard, cfg_.serving));
    hosts_.back()->attach_transport(transport_.get());
  }
  last_view_.assign(cfg_.shards, runtime::HealthState::Nominal);
  beat_high_.assign(cfg_.shards, {0, 0});
  fresh_beat_.assign(cfg_.shards, std::nullopt);
}

std::filesystem::path FleetController::wave_dir(std::size_t shard,
                                                std::size_t wave_no) const {
  return cfg_.durability_root / ("shard-" + std::to_string(shard)) /
         ("wave-" + std::to_string(wave_no));
}

void FleetController::record_grants(const ShardAssignment& a) {
  if (a.durability_dir.empty()) return;
  std::vector<std::pair<std::string, std::uint64_t>> granted;
  granted.reserve(a.streams.size());
  for (const serving::StreamConfig& sc : a.streams) {
    granted.emplace_back(sc.name, sc.owner_epoch);
  }
  grants_[a.durability_dir] = std::move(granted);
}

void FleetController::run() {
  if (ran_) throw std::logic_error("FleetController: a controller runs once");
  ran_ = true;

  for (auto& host : hosts_) host->start_agent();

  // 1 + 2: seeded placement over the placeable shards (reserves stay
  // idle — live-drain targets), then static degrade-before-drop
  // admission. Both are pure functions of the config, so the same-config
  // reference run (and any failover re-placement) sees the identical
  // decisions. Every stream starts at ownership epoch 1; epochs only
  // ever move through the controller's mint (fail_over / live drain).
  const std::size_t placeable = cfg_.shards - cfg_.reserve_shards;
  assignment_ = placer_.place_all(cfg_.streams, placeable);
  for (serving::StreamConfig& sc : cfg_.streams) {
    sc.owner_epoch = 1;
    epochs_[sc.name] = 1;
  }
  admission_ = apply_admission(cfg_.streams, assignment_, cfg_.shards, cfg_.admission);
  report_.streams_degraded = admission_.streams_degraded;
  homes_.assign(cfg_.streams.size(), {});
  final_wave_.assign(cfg_.streams.size(), 0);
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    homes_[i].push_back(assignment_[i]);
  }

  // Primary wave: every shard that was placed at least one stream.
  std::vector<Launched> wave;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    ShardAssignment a;
    a.wave = 0;
    for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
      if (assignment_[i] == s) a.streams.push_back(cfg_.streams[i]);
    }
    if (a.streams.empty()) continue;
    if (s < cfg_.shard_decide_delay_ms.size()) {
      a.decide_delay_ms = cfg_.shard_decide_delay_ms[s];
    }
    if (!cfg_.durability_root.empty()) a.durability_dir = wave_dir(s, 0);
    record_grants(a);
    Launched l;
    l.shard = s;
    l.assignment = std::move(a);
    l.monitor = std::make_unique<runtime::HealthMonitor>(cfg_.shard_health);
    if (cfg_.detector == DetectorKind::Suspicion) {
      l.suspicion = std::make_unique<runtime::SuspicionDetector>(cfg_.suspicion);
    }
    if (cfg_.dynamic_admission.enabled) {
      l.dyn = std::make_unique<DynamicAdmission>(cfg_.dynamic_admission);
      l.dyn_order = degrade_order(l.assignment.streams);
    }
    wave.push_back(std::move(l));
  }
  for (std::size_t slot = 0; slot < wave.size(); ++slot) {
    wave[slot].assignment.crash = fault_.injector_for(0, slot, wave.size());
    wave[slot].planned_kill = fault_.planned_for(0, slot, wave.size());
  }

  // 3–5: serve, watch, drain, fail over — until every stream completed.
  std::size_t wave_no = 0;
  while (!wave.empty()) {
    run_wave(wave, wave_no);
    std::vector<Launched> next = fail_over(wave, wave_no);
    wave = std::move(next);
    ++wave_no;
  }

  for (auto& host : hosts_) host->stop_agent();
  aggregate();
}

void FleetController::send_placement(Launched& l) {
  FleetMsg m;
  m.type = FleetMsgType::PlacementCmd;
  m.req_id = l.cmd_req_id;
  m.shard = l.shard;
  m.assignment = l.cmd_payload;
  transport_->downlink(l.shard).send(std::move(m));
  ++l.cmd_attempts;
  l.cmd_sent = Clock::now();
}

void FleetController::launch(Launched& l) {
  // Clear any stale Completed/Crashed before the command can land: until
  // the agent dispatches, the old incarnation's outcome would otherwise
  // be readable as this one's.
  hosts_[l.shard]->reset_status();
  l.cmd_req_id = next_req_id_++;
  l.cmd_payload = std::make_shared<const ShardAssignment>(l.assignment);
  send_placement(l);
}

void FleetController::route_uplink(FleetMsg msg, std::vector<Launched>& wave,
                                   std::size_t wave_no) {
  switch (msg.type) {
    case FleetMsgType::Heartbeat: {
      // Stale-beat filter: a faulty fabric delays and reorders, and a
      // beat from a finished incarnation must never vouch for the next
      // one. (incarnation, seq) is monotonic per shard by construction.
      auto& high = beat_high_[msg.shard];
      const std::pair<std::uint64_t, std::uint64_t> key{msg.beat.incarnation,
                                                        msg.beat.seq};
      if (key <= high) return;
      high = key;
      fresh_beat_[msg.shard] = msg.beat;
      return;
    }
    case FleetMsgType::PlacementAck: {
      for (Launched& l : wave) {
        if (l.cmd_req_id == msg.req_id) l.cmd_acked = true;
      }
      return;
    }
    case FleetMsgType::DrainComplete:
      handle_drain_complete(msg, wave, wave_no);
      return;
    default:
      return;  // shard-bound types never arrive on an uplink
  }
}

void FleetController::handle_drain_complete(const FleetMsg& msg,
                                            std::vector<Launched>& wave,
                                            std::size_t wave_no) {
  // Always re-ack: the previous ack may have been eaten, and the shard
  // agent retransmits until one lands.
  {
    FleetMsg ack;
    ack.type = FleetMsgType::DrainAck;
    ack.req_id = msg.req_id;
    ack.shard = msg.shard;
    transport_->downlink(msg.shard).send(std::move(ack));
  }
  // At-most-once adoption: a duplicated or retransmitted hand-off
  // transfer is dropped here; the minted-epoch check in adopt_stream is
  // the belt-and-braces beneath this.
  if (!drains_adopted_.insert(msg.req_id).second) return;
  if (msg.handoffs.empty()) return;

  Launched* src = nullptr;
  for (Launched& l : wave) {
    if (l.draining && l.drain_req_id == msg.req_id) src = &l;
  }
  if (src == nullptr) return;  // unknown req_id: not a drain this run asked for
  const std::size_t target = src->drain_target;
  const Clock::time_point triggered = src->drain_triggered;

  ShardAssignment a;
  a.wave = drain_wave_next_++;
  if (target < cfg_.shard_decide_delay_ms.size()) {
    a.decide_delay_ms = cfg_.shard_decide_delay_ms[target];
  }
  for (serving::StreamHandoff h : msg.handoffs) {
    const std::string& name = h.config.name;
    // Mint a fresh ownership epoch: the source's epoch is now stale, so
    // even if the source were to journal one more decision for this
    // stream (it cannot — the stream is detached), the audit would see it.
    const std::uint64_t epoch = ++epochs_[name];
    h.config.owner_epoch = epoch;
    for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
      if (cfg_.streams[i].name == name) {
        homes_[i].push_back(target);
        final_wave_[i] = a.wave;
      }
    }
    a.streams.push_back(h.config);
    a.handoffs.push_back(std::move(h));
  }
  if (!cfg_.durability_root.empty()) a.durability_dir = wave_dir(target, a.wave);
  record_grants(a);

  DrainEvent ev;
  ev.wave = wave_no;
  ev.from_shard = msg.shard;
  ev.to_shard = target;
  ev.streams_moved = a.streams.size();
  ev.request_ms = ms_between(triggered, Clock::now());
  report_.drains.push_back(ev);

  Launched nl;
  nl.shard = target;
  nl.assignment = std::move(a);
  nl.monitor = std::make_unique<runtime::HealthMonitor>(cfg_.shard_health);
  if (cfg_.detector == DetectorKind::Suspicion) {
    nl.suspicion = std::make_unique<runtime::SuspicionDetector>(cfg_.suspicion);
  }
  if (cfg_.dynamic_admission.enabled) {
    nl.dyn = std::make_unique<DynamicAdmission>(cfg_.dynamic_admission);
    nl.dyn_order = degrade_order(nl.assignment.streams);
  }
  wave.push_back(std::move(nl));  // src pointer is dead past this line
  launch(wave.back());
}

void FleetController::run_wave(std::vector<Launched>& wave, std::size_t wave_no) {
  transport_->fabric().set_wave(wave_no);
  for (std::size_t i = 0; i < wave.size(); ++i) launch(wave[i]);

  // The watch loop. All control traffic rides the (possibly faulty)
  // transport: beats arrive on uplinks and are stale-filtered, unacked
  // commands are retried per RpcPolicy and fall back to the console
  // cable, silence feeds the chosen failure detector, hot beats accrue
  // toward live drains and dynamic admission. The wave vector GROWS when
  // a drain's hand-offs are adopted — every pass iterates by index.
  const auto interval = std::chrono::duration<double, std::milli>(
      cfg_.watch_interval_ms > 0.0 ? cfg_.watch_interval_ms : 1.0);
  for (;;) {
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      while (auto m = transport_->uplink(s).try_recv()) {
        route_uplink(std::move(*m), wave, wave_no);
      }
    }

    bool settled = true;
    for (std::size_t idx = 0; idx < wave.size(); ++idx) {
      Launched& l = wave[idx];
      if (l.finished || l.dead) continue;
      ShardHost& host = *hosts_[l.shard];
      const Clock::time_point now = Clock::now();
      const ShardStatus st = host.status();

      if (st == ShardStatus::Completed) {
        l.finished = true;
        l.monitor->frame_ok();
        if (l.draining && !drains_adopted_.count(l.drain_req_id)) {
          // The source completed before the drain executed (request
          // raced the end of the run): nothing detached, nothing to
          // adopt — the streams finished in place. A drain that DID
          // execute leaves detached streams, and its DrainComplete is
          // retransmitted until adopted, so keep waiting for it then.
          const auto& incs = host.incarnations();
          const bool executed =
              !incs.empty() && incs.back().server->streams_detached() > 0;
          if (!executed) l.draining = false;
        }
        continue;
      }

      // Command rpc: resend per backoff; after max_attempts the console
      // cable (reliable local queue) guarantees delivery, so a run
      // terminates under a total permanent partition.
      if (!l.cmd_acked &&
          ms_between(l.cmd_sent, now) >= cfg_.rpc.timeout_for_attempt(l.cmd_attempts)) {
        if (l.cmd_attempts >= cfg_.rpc.max_attempts) {
          FleetMsg m;
          m.type = FleetMsgType::PlacementCmd;
          m.req_id = l.cmd_req_id;
          m.shard = l.shard;
          m.assignment = l.cmd_payload;
          host.enqueue_local(std::move(m));
          l.cmd_acked = true;
          ++report_.transport_fallbacks;
        } else {
          send_placement(l);
        }
      }

      // Drain request rpc (DrainComplete is its ack).
      if (l.draining && !l.drain_fellback && !drains_adopted_.count(l.drain_req_id) &&
          ms_between(l.drain_sent, now) >=
              cfg_.rpc.timeout_for_attempt(l.drain_attempts)) {
        FleetMsg m;
        m.type = FleetMsgType::DrainRequest;
        m.req_id = l.drain_req_id;
        m.shard = l.shard;
        for (std::size_t i = 0; i < l.assignment.streams.size(); ++i) {
          m.drain_streams.push_back(i);
        }
        if (l.drain_attempts >= cfg_.rpc.max_attempts) {
          host.enqueue_local(std::move(m));
          l.drain_fellback = true;
          ++report_.transport_fallbacks;
        } else {
          transport_->downlink(l.shard).send(std::move(m));
          ++l.drain_attempts;
          l.drain_sent = now;
        }
      }

      std::optional<runtime::Heartbeat> hb = fresh_beat_[l.shard];
      fresh_beat_[l.shard].reset();
      if (hb) {
        l.saw_beat = true;
        if (l.suspicion) l.suspicion->on_beat(now);
        const bool depth_hot = cfg_.queue_depth_watermark > 0 &&
                               hb->queue_depth >= cfg_.queue_depth_watermark;
        const bool latency_hot = cfg_.latency_watermark_ms > 0.0 &&
                                 hb->latency_watermark_ms > cfg_.latency_watermark_ms;
        if (depth_hot || latency_hot) {
          l.monitor->frame_degraded();
        } else {
          l.monitor->frame_ok();
        }

        // Gray-failure drain trigger: a shard whose latency watermark
        // stays over the drain mark is slow-but-alive — hand its streams
        // to an idle peer instead of waiting for a death that may never
        // come.
        if (cfg_.drain_latency_watermark_ms > 0.0 && !l.draining) {
          if (hb->latency_watermark_ms > cfg_.drain_latency_watermark_ms) {
            ++l.breach_streak;
          } else {
            l.breach_streak = 0;
          }
          if (l.breach_streak >= cfg_.drain_after_breaches) {
            // Pick an idle target: no live entry in this wave, not dead.
            std::vector<char> busy(cfg_.shards, 0);
            for (const Launched& o : wave) {
              if (!o.finished || o.dead) busy[o.shard] = 1;
              if (o.dead) busy[o.shard] = 1;
            }
            std::size_t target = cfg_.shards;
            for (std::size_t s = 0; s < cfg_.shards; ++s) {
              if (!busy[s]) { target = s; break; }
            }
            if (target < cfg_.shards) {
              l.draining = true;
              l.drain_req_id = next_req_id_++;
              l.drain_target = target;
              l.drain_attempts = 0;
              l.drain_sent = Clock::time_point{};  // send on the next pass
              l.drain_triggered = now;
            } else {
              l.breach_streak = 0;  // nowhere to go; back off and re-accrue
            }
          }
        }

        // Dynamic admission: live per-stream degrade with hysteresis.
        if (l.dyn) {
          switch (l.dyn->observe(hb->latency_watermark_ms)) {
            case DynamicAdmission::Action::Degrade: {
              for (const std::string& name : l.dyn_order) {
                if (std::find(l.dyn_victims.begin(), l.dyn_victims.end(), name) !=
                    l.dyn_victims.end()) {
                  continue;
                }
                if (host.set_stream_degraded(name, true)) {
                  l.dyn_victims.push_back(name);
                  ++report_.live_degrades;
                }
                break;
              }
              break;
            }
            case DynamicAdmission::Action::Undegrade: {
              if (!l.dyn_victims.empty()) {
                if (host.set_stream_degraded(l.dyn_victims.back(), false)) {
                  ++report_.live_undegrades;
                }
                l.dyn_victims.pop_back();
              }
              break;
            }
            case DynamicAdmission::Action::None:
              break;
          }
        }
      } else if (st == ShardStatus::Idle) {
        l.monitor->frame_ok();  // command still in flight; startup is not death
      } else {
        l.monitor->frame_missing();
        if (l.suspicion && l.suspicion->poll_silent(now)) {
          l.dead = true;
          l.declared_at = now;
        }
      }
      // Death: the hard threshold declares on the monitor's escalation;
      // suspicion declared above. A beatless incarnation (dead on
      // arrival) falls back to the monitor under either detector —
      // suspicion's phi never accrues on a link that never beat.
      if ((l.suspicion == nullptr || !l.saw_beat) &&
          l.monitor->state() == runtime::HealthState::FailSafe) {
        l.dead = true;
        if (l.declared_at == Clock::time_point{}) l.declared_at = Clock::now();
      }
      settled = false;
    }

    // A drain whose hand-offs are still in flight keeps the wave open:
    // the source may already be finished, but the moved streams have no
    // incarnation yet.
    for (Launched& l : wave) {
      if (l.draining && !drains_adopted_.count(l.drain_req_id)) settled = false;
    }
    if (settled) break;
    std::this_thread::sleep_for(interval);
  }

  // Wave epilogue: join every incarnation this wave dispatched.
  {
    std::vector<char> joined(cfg_.shards, 0);
    for (const Launched& l : wave) {
      if (!joined[l.shard]) {
        hosts_[l.shard]->wait_idle();
        joined[l.shard] = 1;
      }
    }
  }

  // Reconcile the silence-based verdicts against ground truth now that
  // every incarnation has returned: a shard declared dead that actually
  // completed (a partition or starvation false positive) must NOT be
  // failed over — its streams finished; double-serving them would
  // corrupt the merged sequences. The converse cannot happen: a crashed
  // shard never completes, so the watch loop can only have exited by
  // declaring it.
  for (Launched& l : wave) {
    const ShardStatus st = hosts_[l.shard]->status();
    const bool crashed = st == ShardStatus::Crashed;
    if (l.dead && !crashed) {
      l.dead = false;
      l.finished = true;
      ++report_.false_deaths;
    } else if (crashed && !l.finished) {
      l.dead = true;
      if (l.declared_at == Clock::time_point{}) l.declared_at = Clock::now();
    }
    last_view_[l.shard] = l.monitor->state();
  }
}

std::vector<FleetController::Launched> FleetController::fail_over(
    std::vector<Launched>& wave, std::size_t wave_no) {
  std::vector<Launched*> dead;
  std::vector<std::size_t> crashed_shards;
  for (Launched& l : wave) {
    if (l.dead) {
      dead.push_back(&l);
      crashed_shards.push_back(l.shard);
    }
  }
  if (dead.empty()) return {};

  // Survivors adopt the orphans. When every shard died (S = 1, or a
  // correlated wipeout), the crashed shards restart in place: the host
  // outlives its incarnations, so "restart" is just being a valid
  // re-placement target again.
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    if (std::find(crashed_shards.begin(), crashed_shards.end(), s) ==
        crashed_shards.end()) {
      live.push_back(s);
    }
  }
  if (live.empty()) live = crashed_shards;

  std::unordered_map<std::string, std::size_t> name_index;
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    name_index.emplace(cfg_.streams[i].name, i);
  }

  std::vector<double> load(cfg_.shards, 0.0);
  std::map<std::size_t, ShardAssignment> regroup;  // ordered: deterministic slots
  for (Launched* l : dead) {
    ShardHost& host = *hosts_[l->shard];
    if (!host.crash_what().empty()) ++report_.uncaught_exceptions;

    FailoverEvent ev;
    ev.wave = wave_no;
    ev.shard = l->shard;
    if (l->planned_kill) ev.point = l->planned_kill->point;
    ev.detect_ms = ms_between(host.crashed_at(), l->declared_at);

    // Recovery server: the dead incarnation's exact config (fingerprint
    // match) over its durable dir, crash injector disarmed — the kill
    // already happened. recover() absorbs torn tails and corrupt
    // snapshot generations; drain_streams() extracts the hand-offs
    // (cooperatively-drained streams were already detached in the
    // snapshot and are skipped — their new owner holds a newer epoch).
    const auto t0 = Clock::now();
    ShardAssignment dead_a = l->assignment;
    dead_a.crash = nullptr;
    serving::StreamServer recovery(host.engine(), host.server_config(dead_a));
    ev.recovery = recovery.recover();
    std::vector<serving::StreamHandoff> handoffs = recovery.drain_streams();
    ev.recover_ms = ms_between(t0, Clock::now());
    ev.streams_moved = handoffs.size();
    report_.damage.add(ev.recovery);

    for (serving::StreamHandoff& h : handoffs) {
      const std::size_t target = placer_.place(h.config.name, live, load);
      load[target] += stream_weight(h.config);
      // Split-brain fencing: the dead incarnation's epoch is dead with
      // it. The replacement serves under a freshly minted epoch, so any
      // zombie decision under the old one is auditable as stale.
      h.config.owner_epoch = ++epochs_[h.config.name];
      const auto it = name_index.find(h.config.name);
      if (it != name_index.end()) {
        homes_[it->second].push_back(target);
        final_wave_[it->second] = wave_no + 1;
      }
      ShardAssignment& a = regroup[target];
      a.wave = wave_no + 1;
      a.streams.push_back(h.config);
      a.handoffs.push_back(std::move(h));
    }
    report_.failovers.push_back(std::move(ev));
  }

  std::vector<Launched> next;
  next.reserve(regroup.size());
  for (auto& [shard, a] : regroup) {
    if (shard < cfg_.shard_decide_delay_ms.size()) {
      a.decide_delay_ms = cfg_.shard_decide_delay_ms[shard];
    }
    if (!cfg_.durability_root.empty()) a.durability_dir = wave_dir(shard, wave_no + 1);
    record_grants(a);
    Launched l;
    l.shard = shard;
    l.assignment = std::move(a);
    l.monitor = std::make_unique<runtime::HealthMonitor>(cfg_.shard_health);
    if (cfg_.detector == DetectorKind::Suspicion) {
      l.suspicion = std::make_unique<runtime::SuspicionDetector>(cfg_.suspicion);
    }
    if (cfg_.dynamic_admission.enabled) {
      l.dyn = std::make_unique<DynamicAdmission>(cfg_.dynamic_admission);
      l.dyn_order = degrade_order(l.assignment.streams);
    }
    next.push_back(std::move(l));
  }
  for (std::size_t slot = 0; slot < next.size(); ++slot) {
    next[slot].assignment.crash = fault_.injector_for(wave_no + 1, slot, next.size());
    next[slot].planned_kill = fault_.planned_for(wave_no + 1, slot, next.size());
  }
  return next;
}

void FleetController::aggregate() {
  for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
    const std::size_t shard = homes_[i].back();
    const std::size_t wave = final_wave_[i];
    const ShardHost::Incarnation* inc = nullptr;
    for (const ShardHost::Incarnation& c : hosts_[shard]->incarnations()) {
      if (c.wave == wave) inc = &c;
    }
    if (inc == nullptr) {
      throw std::logic_error("FleetController: stream '" + cfg_.streams[i].name +
                             "' has no completed incarnation");
    }
    std::size_t local = inc->stream_names.size();
    for (std::size_t j = 0; j < inc->stream_names.size(); ++j) {
      if (inc->stream_names[j] == cfg_.streams[i].name) local = j;
    }
    if (local == inc->stream_names.size()) {
      throw std::logic_error("FleetController: stream '" + cfg_.streams[i].name +
                             "' missing from its final incarnation");
    }
    const serving::StreamContext& ctx = inc->server->stream(local);
    const core::StreamScorecard& sc = ctx.scorecard();

    StreamResult r;
    r.name = cfg_.streams[i].name;
    r.priority = cfg_.streams[i].priority;
    r.degraded = cfg_.streams[i].fleet_degraded;
    r.first_shard = homes_[i].front();
    r.final_shard = shard;
    r.moves = homes_[i].size() - 1;
    r.frames_run = ctx.frames_run();
    r.windows_produced = ctx.windows_produced();
    r.opportunities = sc.decision_opportunities();
    r.decisions = sc.decisions();
    r.model_decisions = sc.model_decisions();
    r.fail_safe_decisions = sc.fail_safe_decisions();
    r.degraded_decisions = sc.fail_safe_by_source(runtime::DecisionSource::FleetDegraded);
    r.warnings = sc.warnings();
    r.correct = sc.correct();
    r.accuracy = sc.accuracy();
    r.trace = ctx.trace();

    report_.windows_produced_total += r.windows_produced;
    report_.decisions_total += r.decisions;
    report_.model_decisions_total += r.model_decisions;
    report_.fail_safe_total += r.fail_safe_decisions;
    report_.degraded_decisions_total += r.degraded_decisions;
    report_.streams.push_back(std::move(r));
  }

  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    ShardSummary sum;
    sum.id = s;
    sum.final_status = static_cast<int>(hosts_[s]->status());
    sum.incarnations = hosts_[s]->incarnations().size();
    for (const auto& homes : homes_) {
      if (!homes.empty() && homes.back() == s) ++sum.streams_final;
    }
    sum.beats_published = hosts_[s]->channel().beats_published();
    sum.beats_evicted = hosts_[s]->channel().beats_evicted();
    sum.controller_view = last_view_[s];
    for (const ShardHost::Incarnation& inc : hosts_[s]->incarnations()) {
      sum.windows_shed += inc.server->windows_shed_total();
      for (std::size_t j = 0; j < inc.server->stream_count(); ++j) {
        sum.queue_high_water = std::max(sum.queue_high_water,
                                        inc.server->queue_high_water(j));
      }
      sum.latency_watermark_ms =
          std::max(sum.latency_watermark_ms, inc.server->latency_watermark_ms());
    }
    report_.windows_shed_total += sum.windows_shed;
    report_.shards.push_back(sum);
  }

  report_.transport = transport_->total_stats();
}

EpochAuditReport FleetController::epoch_audit() const {
  EpochAuditReport rep;
  // (stream name, seq) → epoch it was decided under, across every
  // journal: one decision may only ever be recorded under one epoch.
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> decided_under;
  for (const auto& [dir, granted] : grants_) {
    const std::filesystem::path path = dir / kJournalFile;
    const runtime::Journal::ReplayReport replay = runtime::Journal::replay(path);
    if (replay.missing) continue;  // incarnation never journaled (ok: e.g. crash at boot)
    ++rep.journals_checked;
    for (const runtime::JournalRecord& rec : replay.records) {
      if (rec.type != runtime::JournalRecordType::Decision) continue;
      ++rep.decisions_checked;
      const runtime::DecisionEntry& d = rec.decision;
      if (d.stream >= granted.size()) {
        rep.violations.push_back(path.string() + ": decision for unknown local stream " +
                                 std::to_string(d.stream));
        continue;
      }
      const auto& [name, epoch] = granted[d.stream];
      if (d.owner_epoch != epoch) {
        rep.violations.push_back(path.string() + ": stream '" + name + "' seq " +
                                 std::to_string(d.seq) + " decided under epoch " +
                                 std::to_string(d.owner_epoch) + ", granted " +
                                 std::to_string(epoch));
      }
      const auto key = std::make_pair(name, d.seq);
      const auto [it, fresh] = decided_under.emplace(key, d.owner_epoch);
      if (!fresh && it->second != d.owner_epoch) {
        rep.violations.push_back("stream '" + name + "' seq " + std::to_string(d.seq) +
                                 " decided under two epochs (" +
                                 std::to_string(it->second) + " and " +
                                 std::to_string(d.owner_epoch) + ")");
      }
    }
  }
  return rep;
}

}  // namespace safecross::fleet
