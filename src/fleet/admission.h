#pragma once
// Tiered admission control: degrade-before-drop.
//
// A hot shard must never silently drop a window — durable serving runs
// with shedding off, so the only pressure valve the fleet allows itself
// is *fidelity*: when a shard's placed load exceeds its capacity, the
// lowest-priority streams on it are degraded to conservative warns
// (DecisionSource::FleetDegraded, stamped via StreamConfig::
// fleet_degraded). A degraded stream still produces every window and
// scores every decision — it just answers "do not turn" without paying
// for inference, which is exactly the fail-safe the paper's safety story
// already trusts.
//
// The degrade set is decided *statically at placement time*, as a pure
// function of (assignment, priorities, weights, capacity). That is
// deliberate: reacting to live load would make the decision stream
// wall-clock-dependent and break the fleet parity oracle. Failover
// re-placement carries each stream's degraded flag along unchanged —
// survivors absorb the extra load through backpressure, never through
// new degradation mid-run.
//
// Order of sacrifice on an oversubscribed shard: BestEffort streams
// first, then Standard; Critical streams are never degraded, even if the
// shard stays over capacity. Within a tier the heaviest streams go first
// (maximum relief per stream degraded), name as the deterministic
// tie-break.

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/placement.h"
#include "serving/stream.h"

namespace safecross::fleet {

struct AdmissionConfig {
  /// Max aggregate stream weight (see stream_weight) a shard serves at
  /// full fidelity. 0 disables admission control entirely.
  double shard_capacity = 0.0;
};

struct AdmissionReport {
  std::size_t streams_degraded = 0;
  std::vector<std::string> degraded_streams;     // names, degrade order
  std::vector<double> shard_load;                // placed weight per shard
  std::vector<double> shard_load_after;          // full-fidelity weight kept
  std::vector<std::size_t> degraded_per_shard;
};

/// Stamp `fleet_degraded` on the sacrificial streams of every
/// oversubscribed shard. `assignment` maps stream index → shard id;
/// `streams` is mutated in place. Deterministic (see header).
AdmissionReport apply_admission(std::vector<serving::StreamConfig>& streams,
                                const std::vector<std::size_t>& assignment,
                                std::size_t shard_count, const AdmissionConfig& config);

}  // namespace safecross::fleet
