#include "fleet/admission.h"

#include <algorithm>
#include <stdexcept>

namespace safecross::fleet {

AdmissionReport apply_admission(std::vector<serving::StreamConfig>& streams,
                                const std::vector<std::size_t>& assignment,
                                std::size_t shard_count, const AdmissionConfig& config) {
  if (assignment.size() != streams.size()) {
    throw std::invalid_argument("apply_admission: assignment/stream size mismatch");
  }
  AdmissionReport report;
  report.shard_load.assign(shard_count, 0.0);
  report.shard_load_after.assign(shard_count, 0.0);
  report.degraded_per_shard.assign(shard_count, 0);

  for (std::size_t i = 0; i < streams.size(); ++i) {
    report.shard_load[assignment[i]] += stream_weight(streams[i]);
  }
  report.shard_load_after = report.shard_load;
  if (config.shard_capacity <= 0.0) return report;

  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    if (report.shard_load[shard] <= config.shard_capacity) continue;
    // Sacrifice order: lowest tier first, heaviest first within a tier,
    // name ascending as the tie-break — all properties of the config, so
    // the same placement always degrades the same streams.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (assignment[i] == shard &&
          streams[i].priority != core::StreamPriority::Critical) {
        candidates.push_back(i);
      }
    }
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      if (streams[a].priority != streams[b].priority) {
        return static_cast<int>(streams[a].priority) > static_cast<int>(streams[b].priority);
      }
      const double wa = stream_weight(streams[a]);
      const double wb = stream_weight(streams[b]);
      if (wa != wb) return wa > wb;
      return streams[a].name < streams[b].name;
    });
    double load = report.shard_load[shard];
    for (std::size_t i : candidates) {
      if (load <= config.shard_capacity) break;
      streams[i].fleet_degraded = true;
      load -= stream_weight(streams[i]);
      ++report.streams_degraded;
      ++report.degraded_per_shard[shard];
      report.degraded_streams.push_back(streams[i].name);
    }
    report.shard_load_after[shard] = load;
  }
  return report;
}

}  // namespace safecross::fleet
