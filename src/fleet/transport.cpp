#include "fleet/transport.h"

#include "fleet/shard.h"

namespace safecross::fleet {

const char* fleet_msg_type_name(FleetMsgType t) {
  switch (t) {
    case FleetMsgType::Heartbeat: return "heartbeat";
    case FleetMsgType::PlacementCmd: return "placement-cmd";
    case FleetMsgType::PlacementAck: return "placement-ack";
    case FleetMsgType::DrainRequest: return "drain-request";
    case FleetMsgType::DrainComplete: return "drain-complete";
    case FleetMsgType::DrainAck: return "drain-ack";
  }
  return "?";
}

FleetTransport::FleetTransport(runtime::NetFaultPlan plan, std::size_t shards)
    : fabric_(std::move(plan)) {
  up_.reserve(shards);
  down_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    up_.push_back(std::make_unique<Channel>(&fabric_, s,
                                            runtime::FaultFabric::Direction::ToController));
    down_.push_back(std::make_unique<Channel>(&fabric_, s,
                                              runtime::FaultFabric::Direction::ToShard));
  }
}

void FleetTransport::close_all() {
  for (auto& c : up_) c->close();
  for (auto& c : down_) c->close();
}

runtime::LinkStats FleetTransport::total_stats() const {
  runtime::LinkStats total;
  for (const auto& c : up_) total += c->stats();
  for (const auto& c : down_) total += c->stats();
  return total;
}

}  // namespace safecross::fleet
