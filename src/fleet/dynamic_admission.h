#pragma once
// Watermark-driven dynamic admission: the gray-failure fidelity valve.
//
// Static admission (admission.h) degrades streams once, at placement
// time, as a pure function of the config — parity-safe but blind to a
// shard that turns slow mid-run. DynamicAdmission closes that gap: the
// controller feeds it each shard's heartbeat latency watermark, and it
// answers with Degrade/Undegrade actions the controller applies through
// ShardHost::set_stream_degraded (the stream's live_degraded gate).
//
// Hysteresis discipline, pinned by tests/test_dynamic_admission.cpp:
//   * a sample strictly ABOVE degrade_watermark_ms is a breach; a sample
//     AT the watermark is in-band — so a shard sitting exactly on the
//     line flaps nothing;
//   * a sample at/below undegrade_watermark_ms (set it strictly below
//     the degrade mark) is a cool sample;
//   * in-band samples reset BOTH streaks: neither escalation nor
//     recovery may ride a streak interrupted by ambiguity;
//   * Degrade fires after breach_streak consecutive breaches,
//     Undegrade after recover_streak consecutive cools — asymmetric on
//     purpose (degrade fast, recover slow).
//
// Victim selection reuses static admission's sacrifice order: BestEffort
// before Standard, heaviest first, name tie-break — and Critical streams
// are NEVER degraded, even when every other stream already is.
//
// Live degradation is wall-clock reactive and therefore NOT part of the
// deterministic parity contract; chaos parity runs keep it disabled.

#include <cstddef>
#include <string>
#include <vector>

#include "serving/stream.h"

namespace safecross::fleet {

struct DynamicAdmissionConfig {
  bool enabled = false;
  double degrade_watermark_ms = 0.0;    // strictly above → breach
  double undegrade_watermark_ms = 0.0;  // at/below → cool
  std::size_t breach_streak = 3;   // consecutive breaches → Degrade
  std::size_t recover_streak = 5;  // consecutive cools → Undegrade
  /// Streams this shard may hold degraded at once (degrade_order caps
  /// what is eligible anyway — Critical never appears in it).
  std::size_t max_degraded = 1;
};

/// Per-shard hysteresis state machine. The controller owns one per
/// launched incarnation and applies the actions it emits.
class DynamicAdmission {
 public:
  enum class Action { None, Degrade, Undegrade };

  explicit DynamicAdmission(DynamicAdmissionConfig config) : config_(config) {}

  /// Feed one heartbeat's latency watermark; returns the action due now.
  Action observe(double latency_watermark_ms);

  std::size_t degraded() const { return degraded_; }
  std::size_t degrades() const { return degrades_; }
  std::size_t undegrades() const { return undegrades_; }
  const DynamicAdmissionConfig& config() const { return config_; }

 private:
  DynamicAdmissionConfig config_;
  std::size_t hot_ = 0;       // consecutive breach samples
  std::size_t cool_ = 0;      // consecutive cool samples
  std::size_t degraded_ = 0;  // streams currently held degraded
  std::size_t degrades_ = 0;
  std::size_t undegrades_ = 0;
};

/// The sacrifice order for live degradation on one shard: BestEffort
/// first, then Standard, heaviest first within a tier, name as the
/// deterministic tie-break. Critical streams are excluded entirely.
std::vector<std::string> degrade_order(const std::vector<serving::StreamConfig>& streams);

}  // namespace safecross::fleet
