#include "fleet/shard.h"

#include <iterator>
#include <thread>

#include "models/slowfast.h"

namespace safecross::fleet {

const char* shard_status_name(ShardStatus s) {
  switch (s) {
    case ShardStatus::Idle: return "idle";
    case ShardStatus::Running: return "running";
    case ShardStatus::Completed: return "completed";
    case ShardStatus::Crashed: return "crashed";
  }
  return "?";
}

ShardHost::ShardHost(std::size_t id, const ShardSpec& spec, ShardServingConfig serving)
    : id_(id), serving_(std::move(serving)) {
  engine_ = std::make_unique<core::SafeCross>(spec.engine);
  for (dataset::Weather w : spec.weathers) {
    models::SlowFastConfig mc = spec.engine.model;
    mc.init_seed = spec.model_init_seed_base + static_cast<std::uint64_t>(w);
    engine_->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
}

serving::StreamServerConfig ShardHost::server_config(const ShardAssignment& a) const {
  serving::StreamServerConfig cfg;
  cfg.streams = a.streams;
  cfg.frames = serving_.frames;
  cfg.batcher = serving_.batcher;
  cfg.queue_capacity = serving_.queue_capacity;
  cfg.push_timeout_ms = serving_.push_timeout_ms;
  // Degrade-before-drop: the fleet's only pressure valves are admission
  // degradation and producer backpressure — a window silently shed at a
  // wall-clock-dependent instant could never reconcile, nor recover.
  cfg.shed_on_overload = false;
  cfg.record_traces = serving_.record_traces;
  cfg.decide_delay_ms = a.decide_delay_ms;
  cfg.prewarm = serving_.prewarm;
  if (!a.durability_dir.empty()) {
    cfg.durability.dir = a.durability_dir;
    cfg.durability.snapshot_every_decisions = serving_.snapshot_every_decisions;
    cfg.durability.keep_snapshots = serving_.keep_snapshots;
    cfg.durability.crash = a.crash;
  }
  return cfg;
}

ShardHost::~ShardHost() {
  stop_agent();
  wait_idle();
}

bool ShardHost::run_assignment(const ShardAssignment& a) {
  const std::uint64_t incarnation = ++incarnations_started_;
  std::unique_ptr<serving::StreamServer> server;
  bool ok = false;
  std::string what;
  try {
    server = std::make_unique<serving::StreamServer>(*engine_, server_config(a));
    for (std::size_t i = 0; i < a.handoffs.size(); ++i) {
      if (!a.handoffs[i].state.empty()) server->adopt_stream(i, a.handoffs[i]);
    }
  } catch (const std::exception& e) {
    // Construction/adoption failure (e.g. a stale-epoch hand-off the
    // fencing check rejected) is a dead-on-arrival incarnation.
    server.reset();
    crashed_at_ = std::chrono::steady_clock::now();
    crash_what_ = e.what();
    status_.store(static_cast<int>(ShardStatus::Crashed), std::memory_order_release);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_ = server.get();
  }
  status_.store(static_cast<int>(ShardStatus::Running), std::memory_order_release);

  // Heartbeat sidecar: liveness + progress + watermarks on a fixed
  // cadence, for as long as the serving loop is on-CPU. publish() never
  // blocks; the controller's silence-based detection does the rest. The
  // incarnation tag lets the controller drop stale/reordered beats a
  // faulty fabric delivers after a newer incarnation has started.
  std::atomic<bool> stop{false};
  const auto interval = std::chrono::duration<double, std::milli>(
      serving_.heartbeat_interval_ms > 0.0 ? serving_.heartbeat_interval_ms : 1.0);
  std::thread beater([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      runtime::Heartbeat hb;
      hb.shard = id_;
      hb.incarnation = incarnation;
      hb.seq = seq++;
      hb.decisions = server->decisions_applied();
      hb.queue_depth = server->live_queue_depth();
      hb.latency_watermark_ms = server->latency_watermark_ms();
      channel_.publish(hb);
      std::this_thread::sleep_for(interval);
    }
  });

  try {
    if (serving_.batched) {
      server->run();
    } else {
      server->run_sequential();
    }
    ok = true;
  } catch (const runtime::CrashInjected&) {
    // The scripted kill: on-disk state is exactly what a SIGKILL at the
    // armed crash point would leave.
  } catch (const std::exception& e) {
    what = e.what();
  }
  stop.store(true, std::memory_order_release);
  beater.join();

  // Unregister before the server can die: cross-thread pokes
  // (set_stream_degraded, the agent's drain polling) must never touch a
  // dying server. Sweep any uncollected drain hand-offs first — the
  // drained streams' state must survive the incarnation's end (the
  // agent keeps retransmitting them until the controller acks).
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    if (server && server->drain_ready()) {
      std::vector<serving::StreamHandoff> hs = server->take_drained();
      orphan_handoffs_.insert(orphan_handoffs_.end(),
                              std::make_move_iterator(hs.begin()),
                              std::make_move_iterator(hs.end()));
    }
    live_ = nullptr;
  }

  if (ok) {
    std::vector<std::string> names;
    names.reserve(a.streams.size());
    for (const serving::StreamConfig& sc : a.streams) names.push_back(sc.name);
    incarnations_.push_back({a.wave, std::move(names), std::move(server)});
    status_.store(static_cast<int>(ShardStatus::Completed), std::memory_order_release);
  } else {
    server.reset();  // a dead process keeps no in-memory state
    crashed_at_ = std::chrono::steady_clock::now();
    crash_what_ = std::move(what);
    status_.store(static_cast<int>(ShardStatus::Crashed), std::memory_order_release);
  }
  return ok;
}

void ShardHost::dispatch_assignment(ShardAssignment a) {
  std::lock_guard<std::mutex> lock(inc_mu_);
  if (inc_thread_.joinable()) inc_thread_.join();
  // A spare host may carry a stale Completed/Crashed from an earlier
  // incarnation; reset before the thread spawns so the controller's
  // status peeks can never read the old outcome as this one's.
  status_.store(static_cast<int>(ShardStatus::Idle), std::memory_order_release);
  inc_thread_ = std::thread([this, a = std::move(a)] { run_assignment(a); });
}

void ShardHost::wait_idle() {
  std::lock_guard<std::mutex> lock(inc_mu_);
  if (inc_thread_.joinable()) inc_thread_.join();
}

bool ShardHost::set_stream_degraded(const std::string& name, bool on) {
  std::lock_guard<std::mutex> lock(live_mu_);
  if (!live_) return false;
  for (std::size_t i = 0; i < live_->stream_count(); ++i) {
    if (live_->stream(i).config().name == name) {
      live_->stream(i).set_live_degraded(on);
      return true;
    }
  }
  return false;
}

void ShardHost::start_agent() {
  if (agent_thread_.joinable()) return;
  agent_stop_.store(false, std::memory_order_release);
  agent_thread_ = std::thread([this] { agent_loop(); });
}

void ShardHost::stop_agent() {
  if (!agent_thread_.joinable()) return;
  agent_stop_.store(true, std::memory_order_release);
  agent_thread_.join();
}

void ShardHost::enqueue_local(FleetMsg msg) {
  std::lock_guard<std::mutex> lock(local_mu_);
  local_q_.push_back(std::move(msg));
}

void ShardHost::handle_msg(const FleetMsg& msg) {
  switch (msg.type) {
    case FleetMsgType::PlacementCmd: {
      // Ack every copy — the previous ack may have been eaten by the
      // fabric — but execute at most once per req_id.
      if (transport_) {
        FleetMsg ack;
        ack.type = FleetMsgType::PlacementAck;
        ack.req_id = msg.req_id;
        ack.shard = id_;
        transport_->uplink(id_).send(std::move(ack));
      }
      if (msg.req_id != 0 && !seen_reqs_.insert(msg.req_id).second) return;
      if (msg.assignment) dispatch_assignment(*msg.assignment);
      return;
    }
    case FleetMsgType::DrainRequest: {
      // DrainComplete (retransmitted until DrainAck) is the ack.
      if (msg.req_id != 0 && !seen_reqs_.insert(msg.req_id).second) return;
      PendingDrain d;
      d.req_id = msg.req_id;
      d.streams = msg.drain_streams;
      drains_.push_back(std::move(d));
      return;
    }
    case FleetMsgType::DrainAck:
      acked_drains_.insert(msg.req_id);
      return;
    default:
      return;  // controller-bound types never arrive here
  }
}

void ShardHost::agent_loop() {
  const runtime::RpcPolicy rpc;  // DrainComplete retransmit cadence
  while (!agent_stop_.load(std::memory_order_acquire)) {
    // 1. Pump buffered heartbeats onto the (faulty) uplink.
    if (transport_) {
      while (auto hb = channel_.take()) {
        FleetMsg m;
        m.type = FleetMsgType::Heartbeat;
        m.shard = id_;
        m.beat = *hb;
        transport_->uplink(id_).send(std::move(m));
      }
    }
    // 2. Service the downlink; the short block is the loop's pacing.
    if (transport_) {
      if (auto msg = transport_->downlink(id_).recv(std::chrono::milliseconds(1))) {
        handle_msg(*msg);
      }
      while (auto msg = transport_->downlink(id_).try_recv()) handle_msg(*msg);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // 3. The reliable local queue (console cable) — same handler.
    std::vector<FleetMsg> local;
    {
      std::lock_guard<std::mutex> lock(local_mu_);
      local.swap(local_q_);
    }
    for (const FleetMsg& m : local) handle_msg(m);
    // 4. Drive in-flight drains: execute against the live server, collect
    // the hand-offs at drain_ready, retransmit until the controller acks.
    for (PendingDrain& d : drains_) {
      if (acked_drains_.count(d.req_id)) continue;
      if (!d.executed) {
        std::lock_guard<std::mutex> lock(live_mu_);
        if (live_) {
          live_->request_drain(d.streams);
          d.executed = true;
        }
      }
      if (d.executed && !d.collected) {
        std::lock_guard<std::mutex> lock(live_mu_);
        if (live_ && live_->drain_ready()) {
          d.handoffs = live_->take_drained();
          d.collected = true;
        } else if (!live_ && !orphan_handoffs_.empty()) {
          // The incarnation ended between execution and collection; the
          // sweep in run_assignment preserved the hand-offs.
          d.handoffs = std::move(orphan_handoffs_);
          orphan_handoffs_.clear();
          d.collected = true;
        }
      }
      if (d.collected && transport_) {
        const auto now = std::chrono::steady_clock::now();
        const auto resend = std::chrono::duration<double, std::milli>(rpc.timeout_ms);
        if (d.last_send == std::chrono::steady_clock::time_point{} ||
            now - d.last_send >= resend) {
          FleetMsg m;
          m.type = FleetMsgType::DrainComplete;
          m.req_id = d.req_id;
          m.shard = id_;
          m.handoffs = d.handoffs;
          transport_->uplink(id_).send(std::move(m));
          d.last_send = now;
        }
      }
    }
  }
}

}  // namespace safecross::fleet
