#include "fleet/shard.h"

#include <thread>

#include "models/slowfast.h"

namespace safecross::fleet {

const char* shard_status_name(ShardStatus s) {
  switch (s) {
    case ShardStatus::Idle: return "idle";
    case ShardStatus::Running: return "running";
    case ShardStatus::Completed: return "completed";
    case ShardStatus::Crashed: return "crashed";
  }
  return "?";
}

ShardHost::ShardHost(std::size_t id, const ShardSpec& spec, ShardServingConfig serving)
    : id_(id), serving_(std::move(serving)) {
  engine_ = std::make_unique<core::SafeCross>(spec.engine);
  for (dataset::Weather w : spec.weathers) {
    models::SlowFastConfig mc = spec.engine.model;
    mc.init_seed = spec.model_init_seed_base + static_cast<std::uint64_t>(w);
    engine_->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
}

serving::StreamServerConfig ShardHost::server_config(const ShardAssignment& a) const {
  serving::StreamServerConfig cfg;
  cfg.streams = a.streams;
  cfg.frames = serving_.frames;
  cfg.batcher = serving_.batcher;
  cfg.queue_capacity = serving_.queue_capacity;
  cfg.push_timeout_ms = serving_.push_timeout_ms;
  // Degrade-before-drop: the fleet's only pressure valves are admission
  // degradation and producer backpressure — a window silently shed at a
  // wall-clock-dependent instant could never reconcile, nor recover.
  cfg.shed_on_overload = false;
  cfg.record_traces = serving_.record_traces;
  if (!a.durability_dir.empty()) {
    cfg.durability.dir = a.durability_dir;
    cfg.durability.snapshot_every_decisions = serving_.snapshot_every_decisions;
    cfg.durability.keep_snapshots = serving_.keep_snapshots;
    cfg.durability.crash = a.crash;
  }
  return cfg;
}

bool ShardHost::run_assignment(const ShardAssignment& a) {
  auto server = std::make_unique<serving::StreamServer>(*engine_, server_config(a));
  for (std::size_t i = 0; i < a.handoffs.size(); ++i) {
    if (!a.handoffs[i].state.empty()) server->adopt_stream(i, a.handoffs[i]);
  }
  status_.store(static_cast<int>(ShardStatus::Running), std::memory_order_release);

  // Heartbeat sidecar: liveness + progress + watermarks on a fixed
  // cadence, for as long as the serving loop is on-CPU. publish() never
  // blocks; the controller's silence-based detection does the rest.
  std::atomic<bool> stop{false};
  const auto interval = std::chrono::duration<double, std::milli>(
      serving_.heartbeat_interval_ms > 0.0 ? serving_.heartbeat_interval_ms : 1.0);
  std::thread beater([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      runtime::Heartbeat hb;
      hb.shard = id_;
      hb.seq = seq++;
      hb.decisions = server->decisions_applied();
      hb.queue_depth = server->live_queue_depth();
      hb.latency_watermark_ms = server->latency_watermark_ms();
      channel_.publish(hb);
      std::this_thread::sleep_for(interval);
    }
  });

  bool ok = false;
  std::string what;
  try {
    if (serving_.batched) {
      server->run();
    } else {
      server->run_sequential();
    }
    ok = true;
  } catch (const runtime::CrashInjected&) {
    // The scripted kill: on-disk state is exactly what a SIGKILL at the
    // armed crash point would leave.
  } catch (const std::exception& e) {
    what = e.what();
  }
  stop.store(true, std::memory_order_release);
  beater.join();

  if (ok) {
    std::vector<std::string> names;
    names.reserve(a.streams.size());
    for (const serving::StreamConfig& sc : a.streams) names.push_back(sc.name);
    incarnations_.push_back({a.wave, std::move(names), std::move(server)});
    status_.store(static_cast<int>(ShardStatus::Completed), std::memory_order_release);
  } else {
    server.reset();  // a dead process keeps no in-memory state
    crashed_at_ = std::chrono::steady_clock::now();
    crash_what_ = std::move(what);
    status_.store(static_cast<int>(ShardStatus::Crashed), std::memory_order_release);
  }
  return ok;
}

}  // namespace safecross::fleet
