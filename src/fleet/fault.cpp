#include "fleet/fault.h"

#include "common/rng.h"

namespace safecross::fleet {

ShardFaultInjector::ShardFaultInjector(ShardFaultConfig config) : config_(config) {
  if (!config_.enabled) return;
  Rng rng(config_.seed);
  for (std::size_t k = 0; k < config_.kills; ++k) {
    ShardKill kill;
    kill.wave = k;
    kill.victim = static_cast<std::size_t>(rng.next_u64());  // reduced at arm time
    kill.point = static_cast<runtime::CrashPoint>(
        rng.uniform_int(static_cast<std::uint64_t>(runtime::kDurabilityCrashPointCount)));
    // Journal points are hit once per decision — any small ordinal fires
    // early in the run. Snapshot points only fire on the snapshot
    // cadence, so keep their ordinal tiny or the run completes first.
    switch (kill.point) {
      case runtime::CrashPoint::BeforeSnapshotWrite:
      case runtime::CrashPoint::MidSnapshotWrite:
      case runtime::CrashPoint::BeforeSnapshotRename:
      case runtime::CrashPoint::AfterSnapshotRename:
        kill.nth = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{2}));
        break;
      default:
        kill.nth = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{12}));
        break;
    }
    plan_.push_back(kill);
  }
  injectors_.resize(plan_.size());
}

runtime::CrashInjector* ShardFaultInjector::injector_for(std::size_t wave,
                                                         std::size_t launched_slot,
                                                         std::size_t launched_count) {
  if (launched_count == 0) return nullptr;
  for (std::size_t k = 0; k < plan_.size(); ++k) {
    if (plan_[k].wave != wave) continue;
    if (plan_[k].victim % launched_count != launched_slot) continue;
    injectors_[k].arm(plan_[k].point, plan_[k].nth);
    return &injectors_[k];
  }
  return nullptr;
}

const ShardKill* ShardFaultInjector::planned_for(std::size_t wave, std::size_t launched_slot,
                                                 std::size_t launched_count) const {
  if (launched_count == 0) return nullptr;
  for (const ShardKill& kill : plan_) {
    if (kill.wave == wave && kill.victim % launched_count == launched_slot) return &kill;
  }
  return nullptr;
}

std::size_t ShardFaultInjector::kills_fired() const {
  std::size_t fired = 0;
  for (const runtime::CrashInjector& inj : injectors_) {
    if (inj.fired()) ++fired;
  }
  return fired;
}

}  // namespace safecross::fleet
