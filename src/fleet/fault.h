#pragma once
// Seeded shard-kill injection for the fleet chaos harness.
//
// A ShardFaultInjector turns one fleet seed into a deterministic kill
// plan: which wave, which victim shard, which runtime::CrashPoint inside
// the victim's durable write paths, and which hit of that point. The
// controller arms the injector into the victim incarnation's
// DurabilityConfig; when the scheduled hit is reached the shard dies
// exactly as the single-server chaos harness dies — torn journal tail,
// half-written snapshot temp, or a clean post-rename state — and the
// controller's missed-heartbeat detection takes over.
//
// One CrashInjector per planned kill, so a double-failover plan (kill
// the primary, then kill a failover wave) is just a two-entry plan.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/crash_point.h"

namespace safecross::fleet {

struct ShardKill {
  std::size_t wave = 0;   // 0 = primary serving wave, 1 = first failover wave…
  std::size_t victim = 0; // index into that wave's *launched* shard list
  runtime::CrashPoint point = runtime::CrashPoint::MidJournalAppend;
  std::size_t nth = 1;    // 1-based hit of `point` that fires
};

struct ShardFaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xDEAD5EEDull;
  std::size_t kills = 1;  // consecutive waves to kill, starting at wave 0
};

class ShardFaultInjector {
 public:
  /// Derive the kill plan from the seed: kill k targets wave k, a
  /// uniform victim slot, a uniform crash point, and an nth matched to
  /// the point's hit rate (journal points fire every decision, snapshot
  /// points only on cadence).
  explicit ShardFaultInjector(ShardFaultConfig config);

  /// Replace the seeded plan (targeted chaos tests). Invalidates any
  /// injector pointer previously handed out.
  void set_plan(std::vector<ShardKill> plan) {
    plan_ = std::move(plan);
    injectors_.assign(plan_.size(), runtime::CrashInjector{});
  }
  const std::vector<ShardKill>& plan() const { return plan_; }

  /// The armed injector for slot `launched_slot` of `wave`'s launched
  /// shard list (the victim index is reduced modulo `launched_count`, so
  /// a plan never targets a shard with nothing to kill). nullptr when no
  /// kill is scheduled there.
  runtime::CrashInjector* injector_for(std::size_t wave, std::size_t launched_slot,
                                       std::size_t launched_count);

  /// The plan entry that targets slot `launched_slot` of `wave`'s
  /// launched list (same reduction as injector_for), or nullptr.
  const ShardKill* planned_for(std::size_t wave, std::size_t launched_slot,
                               std::size_t launched_count) const;

  /// Kills whose armed injector actually fired.
  std::size_t kills_fired() const;

 private:
  ShardFaultConfig config_;
  std::vector<ShardKill> plan_;
  std::vector<runtime::CrashInjector> injectors_;  // parallel to plan_
};

}  // namespace safecross::fleet
