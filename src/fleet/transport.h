#pragma once
// The fleet control plane's wire format and link fabric.
//
// Every FleetController ↔ ShardHost exchange rides a FleetMsg over a
// runtime::MessageChannel pair per shard (uplink shard→controller,
// downlink controller→shard), all sharing one FaultFabric so a seeded
// NetFaultPlan perturbs the whole control plane coherently. With the
// default (all-zero) plan the fabric is perfect and the fleet behaves
// exactly as the pre-transport in-process implementation did.
//
// Reliability discipline (datagram fabric — see message_channel.h):
//   * commands (PlacementCmd, DrainRequest) carry a req_id; the receiver
//     acks (PlacementAck / DrainComplete) and dedupes re-sends;
//   * the controller retries unacked commands per RpcPolicy and, after
//     max_attempts, falls back to the shard agent's local queue — the
//     "console cable": in a real deployment this is the operator path
//     that bypasses the flaky fabric; here it guarantees liveness under
//     a total permanent partition so a chaos run always terminates;
//   * DrainComplete (which carries stream hand-off state) is
//     retransmitted by the shard agent until a DrainAck lands; the
//     controller dedupes by req_id and discards duplicated hand-offs by
//     ownership epoch — at-most-once adoption under duplication and
//     reordering.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/heartbeat.h"
#include "runtime/message_channel.h"
#include "serving/stream_server.h"

namespace safecross::fleet {

struct ShardAssignment;  // fleet/shard.h (which includes this header)

enum class FleetMsgType : std::uint8_t {
  Heartbeat = 0,      // shard → controller: liveness + progress + watermarks
  PlacementCmd = 1,   // controller → shard: run this assignment
  PlacementAck = 2,   // shard → controller: assignment accepted (req_id)
  DrainRequest = 3,   // controller → shard: hand these streams off live
  DrainComplete = 4,  // shard → controller: the drained hand-offs (req_id)
  DrainAck = 5,       // controller → shard: hand-offs received, stop resending
};

const char* fleet_msg_type_name(FleetMsgType t);

/// One control-plane datagram. Copyable by design: the fault fabric
/// duplicates and the rpc layer retransmits. Only the fields relevant to
/// `type` are populated.
struct FleetMsg {
  FleetMsgType type = FleetMsgType::Heartbeat;
  std::uint64_t req_id = 0;  // command/ack pairing + receiver-side dedupe
  std::size_t shard = 0;     // sender (uplink) or addressee (downlink)
  runtime::Heartbeat beat;                            // Heartbeat
  std::shared_ptr<const ShardAssignment> assignment;  // PlacementCmd (immutable payload)
  std::vector<std::size_t> drain_streams;             // DrainRequest (local indices)
  std::vector<serving::StreamHandoff> handoffs;       // DrainComplete
};

/// The star: one uplink + one downlink per shard, one shared fabric.
class FleetTransport {
 public:
  using Channel = runtime::MessageChannel<FleetMsg>;

  FleetTransport(runtime::NetFaultPlan plan, std::size_t shards);

  Channel& uplink(std::size_t shard) { return *up_[shard]; }
  Channel& downlink(std::size_t shard) { return *down_[shard]; }
  runtime::FaultFabric& fabric() { return fabric_; }

  /// Close every channel (wakes blocked receivers; sends become no-ops).
  void close_all();
  /// Delivery accounting summed over every link, both directions.
  runtime::LinkStats total_stats() const;

 private:
  runtime::FaultFabric fabric_;
  std::vector<std::unique_ptr<Channel>> up_;
  std::vector<std::unique_ptr<Channel>> down_;
};

}  // namespace safecross::fleet
