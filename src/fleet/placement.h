#pragma once
// Deterministic stream → shard placement for the fleet layer.
//
// Two policies, both pure functions of (seed, stream name, live shard
// set [, accumulated load]) so a fleet run — and its same-seed reference
// run, and any failover re-placement — always maps the same stream to
// the same shard given the same inputs:
//
//   * Rendezvous (highest-random-weight) hashing: each (stream, shard)
//     pair gets a seeded 64-bit score; the live shard with the highest
//     score wins. Removing a shard moves *only* that shard's streams
//     (minimal disruption), which is exactly what failover re-placement
//     wants.
//   * LeastLoaded: the live shard with the smallest accumulated stream
//     weight wins, rendezvous score as the deterministic tie-break.
//     Balances skewed traffic at initial placement.
//
// Placement decides *where work runs*, never *what the work decides*:
// stream verdicts are a function of per-stream seeded state and the
// (bit-identical) per-shard engines, so moving a stream cannot change a
// single verdict — the property the fleet parity oracle pins.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serving/stream.h"

namespace safecross::fleet {

enum class PlacementPolicy { Rendezvous = 0, LeastLoaded = 1 };

const char* placement_policy_name(PlacementPolicy p);

struct PlacementConfig {
  PlacementPolicy policy = PlacementPolicy::Rendezvous;
  std::uint64_t seed = 0xF1EE7u;
};

/// Relative serving cost of one stream: decisions per frame scale with
/// 1/decision_stride, which is how the bench skews traffic. Always > 0.
double stream_weight(const serving::StreamConfig& sc);

class Placer {
 public:
  explicit Placer(PlacementConfig config) : config_(config) {}

  const PlacementConfig& config() const { return config_; }

  /// Seeded rendezvous score for (stream name, shard).
  std::uint64_t score(const std::string& name, std::size_t shard) const;

  /// Choose a shard for `name` among the `live` shard ids. `load` is the
  /// accumulated weight per shard id (indexed by shard id, may be larger
  /// than live.size()); only consulted by LeastLoaded. `live` must be
  /// non-empty.
  std::size_t place(const std::string& name, const std::vector<std::size_t>& live,
                    const std::vector<double>& load) const;

  /// Place every stream onto shards {0..shard_count-1}, accumulating
  /// weight as it goes (so LeastLoaded balances). Returns stream index →
  /// shard id.
  std::vector<std::size_t> place_all(const std::vector<serving::StreamConfig>& streams,
                                     std::size_t shard_count) const;

 private:
  PlacementConfig config_;
};

}  // namespace safecross::fleet
