#pragma once
// ShardHost: one simulated camera-serving host in the fleet.
//
// A shard owns its own SafeCross engine — built from the fleet-shared
// ShardSpec, whose seeded model init makes every shard's weights
// bit-identical, which is what makes streams *portable*: a stream's
// verdicts depend only on its own seeded state plus the (identical)
// models, so failover re-placement can move it anywhere without changing
// a single decision.
//
// run_assignment() is one server incarnation: build a StreamServer over
// the assignment's streams (adopting hand-offs when the assignment is a
// failover wave), run it synchronously on the calling thread, and
// publish heartbeats from a sidecar thread for the duration. A crash
// (the fault injector's CrashInjected, or any real exception) destroys
// the incarnation — a dead process keeps no in-memory state; what the
// durable dir holds is what failover gets. The same host can then run a
// later wave: hosts survive their incarnations.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/safecross.h"
#include "runtime/crash_point.h"
#include "runtime/heartbeat.h"
#include "serving/stream_server.h"

namespace safecross::fleet {

/// The fleet-shared engine recipe. Every shard builds the same models
/// from the same seeds; a fleet is only correct if this is identical
/// across shards (and across the reference run the parity oracle uses).
struct ShardSpec {
  core::SafeCrossConfig engine;
  std::vector<dataset::Weather> weathers = {dataset::Weather::Daytime};
  /// Per-weather model init seed = base + static_cast<uint>(weather),
  /// the same recipe the serving chaos harness uses.
  std::uint64_t model_init_seed_base = 100;
};

/// Server knobs shared by every incarnation a host runs.
struct ShardServingConfig {
  std::size_t frames = 30 * 60;
  bool batched = true;  // batched serving loop vs sequential reference
  serving::BatcherConfig batcher;
  std::size_t queue_capacity = 4;
  double push_timeout_ms = 250.0;
  bool record_traces = true;
  std::size_t snapshot_every_decisions = 16;
  std::size_t keep_snapshots = 2;
  double heartbeat_interval_ms = 4.0;
};

/// One incarnation's worth of work: which streams, resuming from which
/// hand-offs (empty for the primary wave), journaling into which dir.
struct ShardAssignment {
  std::size_t wave = 0;
  std::vector<serving::StreamConfig> streams;
  /// Parallel to `streams` on failover waves (handoffs[i].config is
  /// streams[i]); empty for a fresh primary assignment.
  std::vector<serving::StreamHandoff> handoffs;
  std::filesystem::path durability_dir;  // empty → not durable, no failover
  runtime::CrashInjector* crash = nullptr;  // armed by the fault injector
};

enum class ShardStatus { Idle = 0, Running = 1, Completed = 2, Crashed = 3 };

const char* shard_status_name(ShardStatus s);

class ShardHost {
 public:
  ShardHost(std::size_t id, const ShardSpec& spec, ShardServingConfig serving);

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  std::size_t id() const { return id_; }
  const ShardServingConfig& serving() const { return serving_; }
  core::SafeCross& engine() { return *engine_; }

  /// Cross-thread status: Running while an incarnation is on-CPU; the
  /// release store at the transition publishes crashed_at()/crash_what()
  /// to a controller that acquire-loads Crashed.
  ShardStatus status() const {
    return static_cast<ShardStatus>(status_.load(std::memory_order_acquire));
  }
  runtime::HeartbeatChannel& channel() { return channel_; }
  std::chrono::steady_clock::time_point crashed_at() const { return crashed_at_; }
  /// Non-CrashInjected death reason (empty for the simulated kill).
  const std::string& crash_what() const { return crash_what_; }

  /// Run one incarnation synchronously; returns true on clean
  /// completion, false on a crash. See file header.
  bool run_assignment(const ShardAssignment& a);

  /// The exact server config an assignment runs under — also what a
  /// recovery server must be built from, so controller-side recovery can
  /// never drift from what the dead incarnation journaled against.
  serving::StreamServerConfig server_config(const ShardAssignment& a) const;

  /// Completed incarnations, oldest first. Crashed incarnations are not
  /// here — their state lives in the durable dir.
  struct Incarnation {
    std::size_t wave = 0;
    std::vector<std::string> stream_names;
    std::unique_ptr<serving::StreamServer> server;
  };
  const std::vector<Incarnation>& incarnations() const { return incarnations_; }

 private:
  std::size_t id_;
  ShardServingConfig serving_;
  std::unique_ptr<core::SafeCross> engine_;
  runtime::HeartbeatChannel channel_;
  std::atomic<int> status_{static_cast<int>(ShardStatus::Idle)};
  std::chrono::steady_clock::time_point crashed_at_{};
  std::string crash_what_;
  std::vector<Incarnation> incarnations_;
};

}  // namespace safecross::fleet
