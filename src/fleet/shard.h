#pragma once
// ShardHost: one simulated camera-serving host in the fleet.
//
// A shard owns its own SafeCross engine — built from the fleet-shared
// ShardSpec, whose seeded model init makes every shard's weights
// bit-identical, which is what makes streams *portable*: a stream's
// verdicts depend only on its own seeded state plus the (identical)
// models, so failover re-placement can move it anywhere without changing
// a single decision.
//
// run_assignment() is one server incarnation: build a StreamServer over
// the assignment's streams (adopting hand-offs when the assignment is a
// failover wave), run it synchronously on the calling thread, and
// publish heartbeats from a sidecar thread for the duration. A crash
// (the fault injector's CrashInjected, or any real exception) destroys
// the incarnation — a dead process keeps no in-memory state; what the
// durable dir holds is what failover gets. The same host can then run a
// later wave: hosts survive their incarnations.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/safecross.h"
#include "fleet/transport.h"
#include "runtime/crash_point.h"
#include "runtime/heartbeat.h"
#include "serving/stream_server.h"

namespace safecross::fleet {

/// The fleet-shared engine recipe. Every shard builds the same models
/// from the same seeds; a fleet is only correct if this is identical
/// across shards (and across the reference run the parity oracle uses).
struct ShardSpec {
  core::SafeCrossConfig engine;
  std::vector<dataset::Weather> weathers = {dataset::Weather::Daytime};
  /// Per-weather model init seed = base + static_cast<uint>(weather),
  /// the same recipe the serving chaos harness uses.
  std::uint64_t model_init_seed_base = 100;
};

/// Server knobs shared by every incarnation a host runs.
struct ShardServingConfig {
  std::size_t frames = 30 * 60;
  bool batched = true;  // batched serving loop vs sequential reference
  serving::BatcherConfig batcher;
  std::size_t queue_capacity = 4;
  double push_timeout_ms = 250.0;
  bool record_traces = true;
  std::size_t snapshot_every_decisions = 16;
  std::size_t keep_snapshots = 2;
  double heartbeat_interval_ms = 4.0;
  /// Weathers every incarnation pre-warms into its model cache at boot
  /// (forwarded to StreamServerConfig::prewarm; non-Legacy modes only).
  std::vector<dataset::Weather> prewarm;
};

/// One incarnation's worth of work: which streams, resuming from which
/// hand-offs (empty for the primary wave), journaling into which dir.
struct ShardAssignment {
  std::size_t wave = 0;
  std::vector<serving::StreamConfig> streams;
  /// Parallel to `streams` on failover waves (handoffs[i].config is
  /// streams[i]); empty for a fresh primary assignment.
  std::vector<serving::StreamHandoff> handoffs;
  std::filesystem::path durability_dir;  // empty → not durable, no failover
  runtime::CrashInjector* crash = nullptr;  // armed by the fault injector
  /// Artificial per-batch inference delay (gray-failure drill: a 10×
  /// slowdown makes a shard slow-but-alive, never dead). 0 off.
  double decide_delay_ms = 0.0;
};

enum class ShardStatus { Idle = 0, Running = 1, Completed = 2, Crashed = 3 };

const char* shard_status_name(ShardStatus s);

class ShardHost {
 public:
  ShardHost(std::size_t id, const ShardSpec& spec, ShardServingConfig serving);
  ~ShardHost();  // stops the agent and joins any incarnation thread

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  std::size_t id() const { return id_; }
  const ShardServingConfig& serving() const { return serving_; }
  core::SafeCross& engine() { return *engine_; }

  /// Cross-thread status: Running while an incarnation is on-CPU; the
  /// release store at the transition publishes crashed_at()/crash_what()
  /// to a controller that acquire-loads Crashed.
  ShardStatus status() const {
    return static_cast<ShardStatus>(status_.load(std::memory_order_acquire));
  }
  runtime::HeartbeatChannel& channel() { return channel_; }
  std::chrono::steady_clock::time_point crashed_at() const { return crashed_at_; }
  /// Non-CrashInjected death reason (empty for the simulated kill).
  const std::string& crash_what() const { return crash_what_; }

  /// Run one incarnation synchronously; returns true on clean
  /// completion, false on a crash. See file header.
  bool run_assignment(const ShardAssignment& a);

  // --- fleet agent (transport-driven control plane) ---
  // The agent is the shard-side half of the control plane: a sidecar
  // thread that services the downlink (placement commands, drain
  // requests — deduped by req_id, acked over the uplink), pumps the
  // host's heartbeat ring onto the uplink, executes cooperative drains
  // against the live server, and retransmits DrainComplete until the
  // controller acks. enqueue_local() is the reliable bypass ("console
  // cable") the controller falls back to when the faulty fabric has
  // eaten max_attempts of a command.

  void attach_transport(FleetTransport* transport) { transport_ = transport; }
  void start_agent();
  void stop_agent();
  /// Reliable local delivery into the agent's command queue, bypassing
  /// the fault fabric. Same handler as downlink messages.
  void enqueue_local(FleetMsg msg);

  /// Clear a stale Completed/Crashed left by an earlier incarnation.
  /// The controller calls this *before* sending a PlacementCmd over the
  /// faulty fabric: until the command lands and dispatch_assignment runs,
  /// the old outcome would otherwise be readable as the new one's.
  void reset_status() {
    status_.store(static_cast<int>(ShardStatus::Idle), std::memory_order_release);
  }

  /// Dispatch an assignment onto a host-owned incarnation thread (joins
  /// the previous incarnation first; callers only dispatch to hosts they
  /// believe idle). Resets status to Idle until the new incarnation is
  /// on-CPU, so a stale Completed/Crashed from an earlier incarnation
  /// can never be mistaken for this one's outcome.
  void dispatch_assignment(ShardAssignment a);
  /// Join the current incarnation thread, if any (wave epilogue).
  void wait_idle();

  /// Flip the live (watermark-driven) admission degrade on one of the
  /// current incarnation's streams, by name. Safe from any thread; a
  /// no-op when no incarnation is on-CPU or the name is not here.
  /// Returns whether a stream was flipped.
  bool set_stream_degraded(const std::string& name, bool on);

  /// The exact server config an assignment runs under — also what a
  /// recovery server must be built from, so controller-side recovery can
  /// never drift from what the dead incarnation journaled against.
  serving::StreamServerConfig server_config(const ShardAssignment& a) const;

  /// Completed incarnations, oldest first. Crashed incarnations are not
  /// here — their state lives in the durable dir.
  struct Incarnation {
    std::size_t wave = 0;
    std::vector<std::string> stream_names;
    std::unique_ptr<serving::StreamServer> server;
  };
  const std::vector<Incarnation>& incarnations() const { return incarnations_; }

 private:
  /// One control message plus where it came from (the faulty downlink or
  /// the reliable local queue — acks only go back for the former).
  void handle_msg(const FleetMsg& msg);
  void agent_loop();

  std::size_t id_;
  ShardServingConfig serving_;
  std::unique_ptr<core::SafeCross> engine_;
  runtime::HeartbeatChannel channel_;
  std::atomic<int> status_{static_cast<int>(ShardStatus::Idle)};
  std::chrono::steady_clock::time_point crashed_at_{};
  std::string crash_what_;
  std::vector<Incarnation> incarnations_;
  std::uint64_t incarnations_started_ = 0;  // heartbeat incarnation tag

  // Live-server registry: set once the incarnation's server exists,
  // cleared before a crashed incarnation's server is destroyed, so
  // cross-thread pokes never touch a dying server.
  std::mutex live_mu_;
  serving::StreamServer* live_ = nullptr;
  /// Hand-offs a cooperative drain produced that the agent had not yet
  /// collected when the incarnation ended — swept here (under live_mu_)
  /// so a completed or crashed server never takes collected drains with
  /// it. The agent claims them for its pending drain.
  std::vector<serving::StreamHandoff> orphan_handoffs_;

  // Incarnation thread (dispatch_assignment / wait_idle).
  std::mutex inc_mu_;
  std::thread inc_thread_;

  // Agent state (agent thread only, except the local queue).
  FleetTransport* transport_ = nullptr;
  std::thread agent_thread_;
  std::atomic<bool> agent_stop_{false};
  std::mutex local_mu_;
  std::vector<FleetMsg> local_q_;  // reliable bypass, drained by the agent
  std::unordered_set<std::uint64_t> seen_reqs_;  // command dedupe
  /// In-flight drain: executed against the live server, its hand-offs
  /// retransmitted as DrainComplete until the controller's DrainAck.
  struct PendingDrain {
    std::uint64_t req_id = 0;
    std::vector<std::size_t> streams;  // local indices to hand off
    bool executed = false;   // request_drain issued to the live server
    bool collected = false;  // hand-offs taken, retransmitting
    std::vector<serving::StreamHandoff> handoffs;
    std::chrono::steady_clock::time_point last_send{};
  };
  std::vector<PendingDrain> drains_;
  std::unordered_set<std::uint64_t> acked_drains_;
};

}  // namespace safecross::fleet
