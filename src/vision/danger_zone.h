#pragma once
// Danger-zone geometry (Fig. 2 of the paper).
//
// When a blocking vehicle waits to turn left on the opposite side, the
// lane area behind it — from which a straight-going vehicle would emerge —
// is invisible to the turning driver. The zone is an axis-aligned
// rectangle in *ground* (top-down) coordinates anchored at the blocker's
// rear and extending upstream along the oncoming lane.
//
// Weather scales the zone: stopping distance grows on wet/icy roads, so
// the zone must reach further upstream for the same safety margin
// (DangerZoneModel::for_weather).

#include <vector>

#include "vision/image.h"

namespace safecross::vision {

struct Rect {
  float min_x = 0.0f, min_y = 0.0f, max_x = 0.0f, max_y = 0.0f;

  bool contains(float x, float y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
  float width() const { return max_x - min_x; }
  float height() const { return max_y - min_y; }
  float area() const { return width() * height(); }
};

/// The paper's three conditions plus the two "extreme scenes" its
/// future-work section calls for (Night, Fog).
enum class Weather { Daytime, Rain, Snow, Night, Fog };

constexpr int kNumWeathers = 5;

const char* weather_name(Weather w);

struct DangerZoneParams {
  float oncoming_speed = 13.9f;      // m/s (~50 km/h) assumed approach speed
  float reaction_time = 1.0f;        // s, turning driver reaction
  float turn_clear_time = 3.0f;      // s to clear the intersection
  float friction = 0.7f;             // road/tyre friction coefficient
  float lane_width = 3.7f;           // m
};

/// Computes the upstream reach (metres) a vehicle travelling at
/// `oncoming_speed` covers during reaction + turn, plus its braking
/// distance at the given friction: the zone any threat must be outside of.
float danger_zone_reach_m(const DangerZoneParams& params);

class DangerZoneModel {
 public:
  /// Zone parameters appropriate for the weather (friction drops in rain
  /// and further in snow, so the zone grows).
  static DangerZoneParams for_weather(Weather weather);

  /// The zone rectangle in ground coordinates, given the blocking
  /// vehicle's rear bumper position. `oncoming_dir` is the sign of the
  /// oncoming lane's direction of travel along x; the zone extends
  /// *against* it (upstream), where unseen threats come from.
  static Rect zone_rect(float blocker_rear_x, float lane_center_y, const DangerZoneParams& params,
                        int oncoming_dir = 1);
};

/// True if any set pixel of the top-down occupancy mask falls inside the
/// zone rectangle (mask pixel (x,y) == ground cell (x,y) scaled by
/// metres_per_pixel).
bool zone_occupied(const Image& topdown_mask, const Rect& zone, float metres_per_pixel);

}  // namespace safecross::vision
