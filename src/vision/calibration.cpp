#include "vision/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace safecross::vision {

namespace {

// 4 distinct indices in [0, n) for a minimal homography sample.
void sample4(Rng& rng, int n, int out[4]) {
  for (int k = 0; k < 4; ++k) {
    bool fresh = false;
    while (!fresh) {
      out[k] = rng.uniform_int(0, n - 1);
      fresh = true;
      for (int j = 0; j < k; ++j) fresh = fresh && out[j] != out[k];
    }
  }
}

}  // namespace

CalibrationEstimator::CalibrationEstimator(Image reference, CalibrationConfig config)
    : config_(config),
      reference_(std::move(reference)),
      reference_smooth_(reference_.box_blur3()) {}

CalibrationEstimate CalibrationEstimator::estimate(const Image& current,
                                                   const Homography& guess) const {
  CalibrationEstimate est;
  const int w = reference_.width();
  const int h = reference_.height();
  const double margin = config_.border_margin_px;
  Rng rng(config_.seed);  // per-call stream: the estimator stays stateless

  // LK only sees small motion, so iterate: align the live view with the
  // current estimate, track the residual motion, fold it in, repeat.
  // With estimate P, aligned(x) = current(P(x)); a track r -> r+u then
  // means current(P(r+u)) ≈ reference(r), i.e. P ∘ Q (Q: r ↦ r+u) is the
  // improved perturbation.
  Homography p = guess;
  FitReport fit;
  for (int iter = 0; iter < std::max(1, config_.refine_iters); ++iter) {
    Homography p_inv;
    try {
      p_inv = p.inverse();
    } catch (const std::exception&) {
      est.error = "perturbation estimate not invertible";
      return est;
    }
    // Track on pre-smoothed images: the single-level LK linearization is
    // badly biased on razor-sharp rendered edges (and the bilinear warp
    // smooths `aligned` but not the reference, which reads as phantom
    // brightness change). Blurring both sides equalizes frequency content
    // and cuts the correlated sub-pixel bias that otherwise puts a
    // ~0.5-1.5 px floor under the whole estimate.
    const Image aligned = p_inv.warp(current, w, h).box_blur3();
    const std::vector<FlowVector> flows =
        sparse_optical_flow(reference_smooth_, aligned, config_.flow);

    std::vector<Point2> src, dst;
    src.reserve(flows.size());
    dst.reserve(flows.size());
    for (const FlowVector& f : flows) {
      const Point2 to{static_cast<double>(f.x) + f.u, static_cast<double>(f.y) + f.v};
      if (to.x < margin || to.y < margin || to.x > w - 1 - margin || to.y > h - 1 - margin) {
        continue;  // tracked off the frame
      }
      const Point2 in_current = p.apply(to);
      if (in_current.x < 0 || in_current.y < 0 || in_current.x > w - 1 ||
          in_current.y > h - 1) {
        continue;  // content warped in from outside the live frame (black border)
      }
      src.push_back({static_cast<double>(f.x), static_cast<double>(f.y)});
      dst.push_back(to);
    }
    est.tracked = static_cast<int>(src.size());
    if (est.tracked < 4) {
      est.error = "too few corner tracks";
      return est;
    }

    // RANSAC over minimal samples: the static scene votes together,
    // corners sitting on moving vehicles disagree with each other.
    const double thresh_sq = config_.ransac_thresh_px * config_.ransac_thresh_px;
    std::vector<int> best;
    for (int it = 0; it < config_.ransac_iters; ++it) {
      int idx[4];
      sample4(rng, est.tracked, idx);
      const std::vector<Point2> s4 = {src[idx[0]], src[idx[1]], src[idx[2]], src[idx[3]]};
      const std::vector<Point2> d4 = {dst[idx[0]], dst[idx[1]], dst[idx[2]], dst[idx[3]]};
      const FitReport cand = Homography::fit_report(s4, d4);
      if (!cand.ok) continue;
      const Homography hc = cand.homography();
      std::vector<int> inliers;
      for (int i = 0; i < est.tracked; ++i) {
        const Point2 m = hc.apply(src[i]);
        const double dx = m.x - dst[i].x, dy = m.y - dst[i].y;
        if (dx * dx + dy * dy < thresh_sq) inliers.push_back(i);
      }
      if (inliers.size() > best.size()) best = std::move(inliers);
    }
    est.inliers = static_cast<int>(best.size());
    if (est.inliers < config_.min_inliers) {
      est.error = "too few RANSAC inliers";
      return est;
    }

    std::vector<Point2> src_in, dst_in;
    src_in.reserve(best.size());
    dst_in.reserve(best.size());
    double motion = 0.0;
    for (int i : best) {
      src_in.push_back(src[i]);
      dst_in.push_back(dst[i]);
      motion += std::hypot(dst[i].x - src[i].x, dst[i].y - src[i].y);
    }
    motion /= static_cast<double>(best.size());

    fit = Homography::fit_report(src_in, dst_in);
    if (!fit.ok) {
      est.error = "degenerate inlier fit: " + fit.error;
      return est;
    }
    p = p * fit.homography();
    if (motion < 0.05) break;  // converged: residual track motion sub-noise
  }

  est.residual_rms = fit.residual_rms;
  est.condition = fit.condition;
  if (fit.residual_rms > config_.max_residual_rms_px) {
    est.error = "residual RMS above sanity threshold";
    return est;
  }
  if (!(fit.condition <= config_.max_condition)) {
    est.error = "condition number above sanity threshold";
    return est;
  }
  est.view = p;
  est.ok = true;
  return est;
}

}  // namespace safecross::vision
