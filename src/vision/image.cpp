#include "vision/image.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safecross::vision {

Image::Image(int width, int height, float fill) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Image dimensions must be positive");
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill);
}

float Image::at_clamped(int x, int y, float outside) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return outside;
  return at(x, y);
}

float Image::sample_bilinear(float x, float y) const {
  x = std::clamp(x, 0.0f, static_cast<float>(width_ - 1));
  y = std::clamp(y, 0.0f, static_cast<float>(height_ - 1));
  const int x0 = static_cast<int>(x);
  const int y0 = static_cast<int>(y);
  const int x1 = std::min(x0 + 1, width_ - 1);
  const int y1 = std::min(y0 + 1, height_ - 1);
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  const float top = at(x0, y0) * (1 - fx) + at(x1, y0) * fx;
  const float bot = at(x0, y1) * (1 - fx) + at(x1, y1) * fx;
  return top * (1 - fy) + bot * fy;
}

void Image::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Image Image::absdiff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("absdiff: dimension mismatch");
  }
  Image out(a.width(), a.height());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = std::fabs(a.data()[i] - b.data()[i]);
  }
  return out;
}

Image Image::threshold(float thresh) const {
  Image out(width_, height_);
  for (std::size_t i = 0; i < size(); ++i) {
    out.data()[i] = data_[i] > thresh ? 1.0f : 0.0f;
  }
  return out;
}

std::size_t Image::count_above(float thresh) const {
  std::size_t n = 0;
  for (const float v : data_) {
    if (v > thresh) ++n;
  }
  return n;
}

float Image::mean() const {
  if (data_.empty()) return 0.0f;
  double sum = 0.0;
  for (const float v : data_) sum += v;
  return static_cast<float>(sum / static_cast<double>(data_.size()));
}

Image Image::resized_nearest(int new_width, int new_height) const {
  Image out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int sy = std::min(height_ - 1, y * height_ / new_height);
    for (int x = 0; x < new_width; ++x) {
      const int sx = std::min(width_ - 1, x * width_ / new_width);
      out.at(x, y) = at(sx, sy);
    }
  }
  return out;
}

Image Image::resized_area(int new_width, int new_height) const {
  Image out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int y0 = y * height_ / new_height;
    const int y1 = std::max(y0 + 1, (y + 1) * height_ / new_height);
    for (int x = 0; x < new_width; ++x) {
      const int x0 = x * width_ / new_width;
      const int x1 = std::max(x0 + 1, (x + 1) * width_ / new_width);
      double sum = 0.0;
      for (int sy = y0; sy < y1; ++sy) {
        for (int sx = x0; sx < x1; ++sx) sum += at(sx, sy);
      }
      out.at(x, y) = static_cast<float>(sum / ((y1 - y0) * (x1 - x0)));
    }
  }
  return out;
}

Image Image::box_blur3() const {
  Image out(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      float sum = 0.0f;
      int n = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int sx = x + dx;
          const int sy = y + dy;
          if (sx < 0 || sy < 0 || sx >= width_ || sy >= height_) continue;
          sum += at(sx, sy);
          ++n;
        }
      }
      out.at(x, y) = sum / static_cast<float>(n);
    }
  }
  return out;
}

std::string Image::to_ascii(int max_cols) const {
  static const char ramp[] = " .:-=+*#%@";
  constexpr int ramp_len = 10;
  if (empty()) return "";
  const int cols = std::min(max_cols, width_);
  // Terminal cells are ~2x taller than wide; halve the row density.
  const int rows = std::max(1, height_ * cols / width_ / 2);
  const Image small = resized_area(cols, rows);
  std::string out;
  out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      const float v = std::clamp(small.at(x, y), 0.0f, 1.0f);
      const int idx = std::min(ramp_len - 1, static_cast<int>(v * ramp_len));
      out.push_back(ramp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

void Image::save_state(common::StateWriter& w) const {
  w.i32(width_);
  w.i32(height_);
  w.raw(data_.data(), data_.size() * sizeof(float));
}

void Image::load_state(common::StateReader& r) {
  const std::int32_t w = r.i32();
  const std::int32_t h = r.i32();
  if (w < 0 || h < 0) throw common::StateError("image: negative dimensions");
  const std::size_t pixels = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  if (pixels * sizeof(float) > r.remaining()) {
    throw common::StateError("image: pixel data truncated");
  }
  width_ = w;
  height_ = h;
  data_.resize(pixels);
  r.raw(data_.data(), pixels * sizeof(float));
}

}  // namespace safecross::vision
