#pragma once
// Grayscale float image. The whole VP pipeline (Fig. 3 of the paper)
// operates on single-channel images: raw camera luminance in, binary
// foreground masks and top-down occupancy maps out.
//
// Pixel values are conventionally in [0, 1]; binary masks use {0, 1}.

#include <cstddef>
#include <string>
#include <vector>

#include "common/state_io.h"

namespace safecross::vision {

class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  float& at(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  float at(int x, int y) const { return data_[static_cast<std::size_t>(y) * width_ + x]; }

  /// Bounds-checked read; returns `outside` for out-of-range coordinates.
  float at_clamped(int x, int y, float outside = 0.0f) const;

  /// Bilinear sample at fractional coordinates (clamped to the border).
  float sample_bilinear(float x, float y) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v);

  /// Elementwise |a - b|. Images must have identical dimensions.
  static Image absdiff(const Image& a, const Image& b);

  /// Binary mask: 1 where pixel > threshold, else 0.
  Image threshold(float thresh) const;

  /// Count of pixels strictly greater than `thresh`.
  std::size_t count_above(float thresh) const;

  /// Mean pixel value (0 for an empty image).
  float mean() const;

  /// Nearest-neighbour resize.
  Image resized_nearest(int new_width, int new_height) const;

  /// Area-averaging downscale (used to shrink camera frames to DNN input).
  Image resized_area(int new_width, int new_height) const;

  /// 3x3 box blur (border pixels use the available neighbourhood).
  Image box_blur3() const;

  /// Multi-line ASCII rendering (" .:-=+*#%@" ramp), one row per scanline,
  /// downsampled to at most `max_cols` columns. For examples/diagnostics.
  std::string to_ascii(int max_cols = 96) const;

  /// Checkpoint serialization (dims + raw pixels). load_state throws
  /// common::StateError on implausible dimensions or short input.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

}  // namespace safecross::vision
