#include "vision/blobs.h"

#include <algorithm>
#include <utility>

namespace safecross::vision {

std::vector<Blob> find_blobs(const Image& mask, int min_area) {
  const int w = mask.width();
  const int h = mask.height();
  std::vector<char> visited(static_cast<std::size_t>(w) * h, 0);
  std::vector<Blob> blobs;
  std::vector<std::pair<int, int>> stack;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * w + x;
      if (visited[idx] || mask.at(x, y) <= 0.5f) continue;
      // Flood fill one component.
      Blob blob;
      blob.min_x = blob.max_x = x;
      blob.min_y = blob.max_y = y;
      double sum_x = 0.0, sum_y = 0.0;
      stack.clear();
      stack.emplace_back(x, y);
      visited[idx] = 1;
      while (!stack.empty()) {
        const auto [cx, cy] = stack.back();
        stack.pop_back();
        ++blob.area;
        sum_x += cx;
        sum_y += cy;
        blob.min_x = std::min(blob.min_x, cx);
        blob.max_x = std::max(blob.max_x, cx);
        blob.min_y = std::min(blob.min_y, cy);
        blob.max_y = std::max(blob.max_y, cy);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int nx = cx + dx;
            const int ny = cy + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            const std::size_t nidx = static_cast<std::size_t>(ny) * w + nx;
            if (visited[nidx] || mask.at(nx, ny) <= 0.5f) continue;
            visited[nidx] = 1;
            stack.emplace_back(nx, ny);
          }
        }
      }
      if (blob.area >= min_area) {
        blob.centroid_x = static_cast<float>(sum_x / blob.area);
        blob.centroid_y = static_cast<float>(sum_y / blob.area);
        blobs.push_back(blob);
      }
    }
  }
  std::sort(blobs.begin(), blobs.end(),
            [](const Blob& a, const Blob& b) { return a.area > b.area; });
  return blobs;
}

}  // namespace safecross::vision
