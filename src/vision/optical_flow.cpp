#include "vision/optical_flow.h"

#include <algorithm>
#include <cmath>

namespace safecross::vision {

float FlowVector::magnitude() const { return std::sqrt(u * u + v * v); }

namespace {

// Central-difference gradients with clamped borders.
void gradients(const Image& img, Image& gx, Image& gy) {
  const int w = img.width();
  const int h = img.height();
  gx = Image(w, h);
  gy = Image(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      gx.at(x, y) = 0.5f * (img.at_clamped(x + 1, y, img.at(x, y)) -
                            img.at_clamped(x - 1, y, img.at(x, y)));
      gy.at(x, y) = 0.5f * (img.at_clamped(x, y + 1, img.at(x, y)) -
                            img.at_clamped(x, y - 1, img.at(x, y)));
    }
  }
}

}  // namespace

std::vector<FlowVector> good_features(const Image& frame, const SparseFlowConfig& config) {
  Image gx, gy;
  gradients(frame, gx, gy);
  const int w = frame.width();
  const int h = frame.height();
  const int r = config.window / 2;

  // Shi–Tomasi response: min eigenvalue of [[Sxx,Sxy],[Sxy,Syy]].
  Image response(w, h, 0.0f);
  float best = 0.0f;
  for (int y = r; y < h - r; ++y) {
    for (int x = r; x < w - r; ++x) {
      float sxx = 0, syy = 0, sxy = 0;
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          const float ix = gx.at(x + dx, y + dy);
          const float iy = gy.at(x + dx, y + dy);
          sxx += ix * ix;
          syy += iy * iy;
          sxy += ix * iy;
        }
      }
      const float trace = sxx + syy;
      const float det = sxx * syy - sxy * sxy;
      const float disc = std::sqrt(std::max(0.0f, trace * trace / 4.0f - det));
      const float min_eig = trace / 2.0f - disc;
      response.at(x, y) = min_eig;
      best = std::max(best, min_eig);
    }
  }

  // Collect candidates above the quality threshold, strongest first.
  struct Candidate {
    float score;
    int x, y;
  };
  std::vector<Candidate> candidates;
  const float cutoff = best * config.quality_level;
  for (int y = r; y < h - r; ++y) {
    for (int x = r; x < w - r; ++x) {
      if (response.at(x, y) > cutoff) candidates.push_back({response.at(x, y), x, y});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.score > b.score; });

  // Greedy min-distance suppression.
  std::vector<FlowVector> corners;
  const int min_d2 = config.min_distance * config.min_distance;
  for (const auto& c : candidates) {
    if (static_cast<int>(corners.size()) >= config.max_corners) break;
    bool ok = true;
    for (const auto& k : corners) {
      const float dx = k.x - static_cast<float>(c.x);
      const float dy = k.y - static_cast<float>(c.y);
      if (dx * dx + dy * dy < static_cast<float>(min_d2)) {
        ok = false;
        break;
      }
    }
    if (ok) corners.push_back({static_cast<float>(c.x), static_cast<float>(c.y), 0, 0});
  }
  return corners;
}

std::vector<FlowVector> sparse_optical_flow(const Image& prev, const Image& next,
                                            const SparseFlowConfig& config) {
  std::vector<FlowVector> corners = good_features(prev, config);
  Image gx, gy;
  gradients(prev, gx, gy);
  const int r = config.window / 2;

  for (auto& c : corners) {
    // Single-level Lucas–Kanade: solve the 2x2 normal equations of
    // I_x u + I_y v = -I_t over the window.
    float sxx = 0, syy = 0, sxy = 0, sxt = 0, syt = 0;
    const int cx = static_cast<int>(c.x);
    const int cy = static_cast<int>(c.y);
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const int px = cx + dx;
        const int py = cy + dy;
        const float ix = gx.at_clamped(px, py);
        const float iy = gy.at_clamped(px, py);
        const float it = next.at_clamped(px, py) - prev.at_clamped(px, py);
        sxx += ix * ix;
        syy += iy * iy;
        sxy += ix * iy;
        sxt += ix * it;
        syt += iy * it;
      }
    }
    const float det = sxx * syy - sxy * sxy;
    if (std::fabs(det) < 1e-9f) {
      c.u = c.v = 0.0f;  // aperture problem: untrackable
      continue;
    }
    c.u = (-syy * sxt + sxy * syt) / det;
    c.v = (sxy * sxt - sxx * syt) / det;
  }
  return corners;
}

DenseFlowField dense_optical_flow(const Image& prev, const Image& next,
                                  const DenseFlowConfig& config) {
  const int w = prev.width();
  const int h = prev.height();
  Image ix, iy;
  gradients(prev, ix, iy);
  Image it(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) it.at(x, y) = next.at(x, y) - prev.at(x, y);
  }

  DenseFlowField flow{Image(w, h, 0.0f), Image(w, h, 0.0f)};
  const float a2 = config.alpha * config.alpha;
  Image ubar(w, h), vbar(w, h);
  for (int iter = 0; iter < config.iterations; ++iter) {
    // 4-neighbour averages of the current flow estimate.
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ubar.at(x, y) = 0.25f * (flow.u.at_clamped(x - 1, y) + flow.u.at_clamped(x + 1, y) +
                                 flow.u.at_clamped(x, y - 1) + flow.u.at_clamped(x, y + 1));
        vbar.at(x, y) = 0.25f * (flow.v.at_clamped(x - 1, y) + flow.v.at_clamped(x + 1, y) +
                                 flow.v.at_clamped(x, y - 1) + flow.v.at_clamped(x, y + 1));
      }
    }
    // Horn–Schunck update.
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float gxv = ix.at(x, y);
        const float gyv = iy.at(x, y);
        const float num = gxv * ubar.at(x, y) + gyv * vbar.at(x, y) + it.at(x, y);
        const float den = a2 + gxv * gxv + gyv * gyv;
        const float s = num / den;
        flow.u.at(x, y) = ubar.at(x, y) - gxv * s;
        flow.v.at(x, y) = vbar.at(x, y) - gyv * s;
      }
    }
  }
  return flow;
}

Image DenseFlowField::magnitude_mask(float thresh) const {
  Image out(u.width(), u.height());
  for (int y = 0; y < u.height(); ++y) {
    for (int x = 0; x < u.width(); ++x) {
      const float uu = u.at(x, y);
      const float vv = v.at(x, y);
      out.at(x, y) = std::sqrt(uu * uu + vv * vv) > thresh ? 1.0f : 0.0f;
    }
  }
  return out;
}

}  // namespace safecross::vision
