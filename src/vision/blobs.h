#pragma once
// Connected-component labeling of binary foreground masks.
//
// Produces one Blob per 8-connected foreground region: bounding box,
// pixel count, and centroid. The detection benchmarks use blob centroids
// to decide whether a method "detected the vehicle in the danger zone".

#include <vector>

#include "vision/image.h"

namespace safecross::vision {

struct Blob {
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;  // inclusive bounding box
  int area = 0;                                     // foreground pixel count
  float centroid_x = 0.0f;
  float centroid_y = 0.0f;

  int width() const { return max_x - min_x + 1; }
  int height() const { return max_y - min_y + 1; }
  bool contains(float x, float y) const {
    return x >= static_cast<float>(min_x) && x <= static_cast<float>(max_x) &&
           y >= static_cast<float>(min_y) && y <= static_cast<float>(max_y);
  }
};

/// Extract 8-connected components with at least `min_area` pixels,
/// sorted by decreasing area.
std::vector<Blob> find_blobs(const Image& mask, int min_area = 1);

}  // namespace safecross::vision
