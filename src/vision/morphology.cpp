#include "vision/morphology.h"

#include <stdexcept>

namespace safecross::vision {

namespace {

enum class Op { Erode, Dilate };

Image morph(const Image& mask, int kernel, Op op) {
  if (kernel < 1 || kernel % 2 == 0) throw std::invalid_argument("kernel must be odd and >= 1");
  const int r = kernel / 2;
  Image out(mask.width(), mask.height());
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      bool value = (op == Op::Erode);
      for (int dy = -r; dy <= r && (op == Op::Erode ? value : !value); ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          // Outside the frame counts as background (0).
          const bool set = mask.at_clamped(x + dx, y + dy, 0.0f) > 0.5f;
          if (op == Op::Erode && !set) {
            value = false;
            break;
          }
          if (op == Op::Dilate && set) {
            value = true;
            break;
          }
        }
      }
      out.at(x, y) = value ? 1.0f : 0.0f;
    }
  }
  return out;
}

}  // namespace

Image erode(const Image& mask, int kernel) { return morph(mask, kernel, Op::Erode); }

Image dilate(const Image& mask, int kernel) { return morph(mask, kernel, Op::Dilate); }

Image opening(const Image& mask, int kernel) { return dilate(erode(mask, kernel), kernel); }

Image closing(const Image& mask, int kernel) { return erode(dilate(mask, kernel), kernel); }

}  // namespace safecross::vision
