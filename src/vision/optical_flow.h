#pragma once
// Optical flow baselines for the detection comparison (Table II, Fig. 8).
//
//  * Sparse: Shi–Tomasi corner selection + pyramidal-free Lucas–Kanade.
//    Fast, but tracks only strong corners — on a noisy far-field camera
//    it latches onto background texture and misses low-contrast vehicles
//    (the paper's Fig. 8b failure).
//  * Dense: Horn–Schunck global smoothness flow. Finds coherent motion
//    everywhere (Fig. 8c success) at ~2 orders of magnitude higher cost.

#include <vector>

#include "vision/image.h"

namespace safecross::vision {

struct FlowVector {
  float x = 0.0f;   // sample location
  float y = 0.0f;
  float u = 0.0f;   // displacement
  float v = 0.0f;

  float magnitude() const;
};

struct SparseFlowConfig {
  int max_corners = 200;
  float quality_level = 0.05f;  // fraction of the best corner response
  int min_distance = 5;         // pixels between accepted corners
  int window = 7;               // LK window side (odd)
};

/// Shi–Tomasi "good features to track": minimum eigenvalue of the
/// structure tensor over a window, non-maximum suppressed.
std::vector<FlowVector> good_features(const Image& frame, const SparseFlowConfig& config = {});

/// Lucas–Kanade flow at the given corner locations between prev and next.
std::vector<FlowVector> sparse_optical_flow(const Image& prev, const Image& next,
                                            const SparseFlowConfig& config = {});

struct DenseFlowConfig {
  int iterations = 60;
  float alpha = 1.0f;  // smoothness weight
};

struct DenseFlowField {
  Image u;  // x displacement per pixel
  Image v;  // y displacement per pixel

  /// Binary mask of pixels whose flow magnitude exceeds `thresh`.
  Image magnitude_mask(float thresh) const;
};

/// Horn–Schunck dense optical flow.
DenseFlowField dense_optical_flow(const Image& prev, const Image& next,
                                  const DenseFlowConfig& config = {});

}  // namespace safecross::vision
