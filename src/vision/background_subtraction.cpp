#include "vision/background_subtraction.h"

#include "vision/morphology.h"

namespace safecross::vision {

namespace {

Image make_mask(const Image& frame, const Image& background,
                const BackgroundSubtractionConfig& config) {
  Image mask = Image::absdiff(frame, background).threshold(config.threshold);
  if (config.apply_opening) mask = opening(mask);
  return mask;
}

}  // namespace

RunningAverageBackground::RunningAverageBackground(BackgroundSubtractionConfig config)
    : config_(config) {}

Image RunningAverageBackground::apply(const Image& frame) {
  if (background_.empty()) {
    background_ = frame;
    frames_seen_ = 1;
    return Image(frame.width(), frame.height(), 0.0f);
  }
  // Update first so stationary objects melt into the background over time
  // ("we do not need information from vehicles that are not moving").
  const float a = config_.learning_rate;
  for (std::size_t i = 0; i < background_.size(); ++i) {
    background_.data()[i] = (1.0f - a) * background_.data()[i] + a * frame.data()[i];
  }
  ++frames_seen_;
  if (frames_seen_ <= config_.warmup_frames) {
    return Image(frame.width(), frame.height(), 0.0f);
  }
  return make_mask(frame, background_, config_);
}

void RunningAverageBackground::reset() {
  background_ = Image();
  frames_seen_ = 0;
}

StaticBackground::StaticBackground(BackgroundSubtractionConfig config) : config_(config) {}

Image StaticBackground::apply(const Image& frame) {
  if (background_.empty()) {
    background_ = frame;
    frames_seen_ = 1;
    return Image(frame.width(), frame.height(), 0.0f);
  }
  ++frames_seen_;
  if (frames_seen_ <= config_.warmup_frames) {
    // Average the warm-up frames into the frozen background.
    const float w = 1.0f / static_cast<float>(frames_seen_);
    for (std::size_t i = 0; i < background_.size(); ++i) {
      background_.data()[i] = (1.0f - w) * background_.data()[i] + w * frame.data()[i];
    }
    return Image(frame.width(), frame.height(), 0.0f);
  }
  return make_mask(frame, background_, config_);
}

void StaticBackground::reset() {
  background_ = Image();
  frames_seen_ = 0;
}

}  // namespace safecross::vision
