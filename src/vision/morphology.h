#pragma once
// Binary mathematical morphology on {0,1} masks (§III-B: "opening
// morphology, erosion then dilation, on the entire scene").
//
// The structuring element is a square of odd side `kernel` (default 3x3).

#include "vision/image.h"

namespace safecross::vision {

/// A pixel survives erosion only if every pixel under the kernel is set.
Image erode(const Image& mask, int kernel = 3);

/// A pixel is set after dilation if any pixel under the kernel is set.
Image dilate(const Image& mask, int kernel = 3);

/// Opening = erode then dilate: removes speckle noise smaller than the
/// kernel while (mostly) preserving larger structures.
Image opening(const Image& mask, int kernel = 3);

/// Closing = dilate then erode: fills small holes inside structures.
Image closing(const Image& mask, int kernel = 3);

}  // namespace safecross::vision
