#pragma once
// Online camera calibration estimation from tracked static features.
//
// The whole VP pipeline hangs off one fixed-camera assumption: the
// foreground mask is remapped top-down through a homography calibrated
// once (Fig. 3c). A camera that drifts, shakes or gets bumped silently
// invalidates that remap. CalibrationEstimator re-estimates the view
// perturbation online: Shi–Tomasi corners on a static reference frame
// are tracked into the live view with Lucas–Kanade flow
// (vision/optical_flow), a RANSAC loop over Hartley-normalized
// Homography::fit_report picks the static-scene inlier set (moving
// vehicles land on the outlier side), and residual / condition-number
// sanity checks reject degenerate solves instead of trusting them.
//
// Determinism contract: estimate() is const and self-contained — the
// RANSAC RNG is re-seeded from the config on every call, so an estimator
// carries no mutable state and needs nothing in a checkpoint.

#include <cstdint>
#include <string>
#include <vector>

#include "vision/homography.h"
#include "vision/image.h"
#include "vision/optical_flow.h"

namespace safecross::vision {

struct CalibrationConfig {
  SparseFlowConfig flow;        // corner selection + LK tracking knobs
  int refine_iters = 6;         // warp-and-retrack rounds (LK is small-motion)
  int ransac_iters = 64;        // minimal-sample draws per round
  double ransac_thresh_px = 1.5;     // inlier reprojection radius
  int min_inliers = 12;              // below this the solve is rejected
  double max_residual_rms_px = 1.5;  // inlier-fit residual ceiling
  double max_condition = 1e7;        // singular-value condition ceiling
  double border_margin_px = 2.0;     // ignore tracks warped off the frame
  std::uint64_t seed = 0xCA11B7A7EULL;  // RANSAC sampling stream (per call)
};

struct CalibrationEstimate {
  bool ok = false;
  Homography view;          // ideal pixel -> current (perturbed) pixel
  double residual_rms = 0.0;  // RMS reprojection error over the inlier set
  double condition = 0.0;     // condition estimate of the inlier fit
  int inliers = 0;
  int tracked = 0;            // usable corner tracks in the final round
  std::string error;          // empty when ok
};

class CalibrationEstimator {
 public:
  /// `reference` is a clean view of the static scene from the *ideal*
  /// (calibrated) camera pose — e.g. CameraModel::reference_view().
  explicit CalibrationEstimator(Image reference, CalibrationConfig config = {});

  const CalibrationConfig& config() const { return config_; }
  const Image& reference() const { return reference_; }

  /// Estimate the perturbation P with current(P(r)) ≈ reference(r).
  /// `guess` seeds the iteration (pass the last accepted estimate so LK
  /// only has to recover the drift since then). Never throws: failures
  /// come back as ok == false with a reason.
  CalibrationEstimate estimate(const Image& current, const Homography& guess = {}) const;

 private:
  CalibrationConfig config_;
  Image reference_;
  Image reference_smooth_;  // pre-smoothed tracking target (see estimate())
};

}  // namespace safecross::vision
