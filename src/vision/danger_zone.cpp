#include "vision/danger_zone.h"

#include <algorithm>
#include <cmath>

namespace safecross::vision {

const char* weather_name(Weather w) {
  switch (w) {
    case Weather::Daytime: return "daytime";
    case Weather::Rain: return "rain";
    case Weather::Snow: return "snow";
    case Weather::Night: return "night";
    case Weather::Fog: return "fog";
  }
  return "?";
}

float danger_zone_reach_m(const DangerZoneParams& params) {
  constexpr float g = 9.81f;
  const float exposure = params.reaction_time + params.turn_clear_time;
  const float travel = params.oncoming_speed * exposure;
  // v^2 / (2 mu g): distance the threat needs to stop if the turner is
  // committed — it must be outside travel + braking for the turn to be safe.
  const float braking = params.oncoming_speed * params.oncoming_speed /
                        (2.0f * params.friction * g);
  return travel + braking;
}

DangerZoneParams DangerZoneModel::for_weather(Weather weather) {
  DangerZoneParams p;
  switch (weather) {
    case Weather::Daytime:
      p.friction = 0.7f;
      break;
    case Weather::Rain:
      p.friction = 0.4f;   // wet asphalt
      break;
    case Weather::Snow:
      p.friction = 0.25f;  // packed snow
      break;
    case Weather::Night:
      p.friction = 0.65f;  // cold, dry asphalt; the problem is seeing, not stopping
      break;
    case Weather::Fog:
      p.friction = 0.55f;  // damp road under fog
      break;
  }
  return p;
}

Rect DangerZoneModel::zone_rect(float blocker_rear_x, float lane_center_y,
                                const DangerZoneParams& params, int oncoming_dir) {
  const float reach = danger_zone_reach_m(params);
  Rect r;
  // Threats emerge from behind the blocker, i.e. upstream of the
  // oncoming lane's direction of travel.
  if (oncoming_dir >= 0) {
    r.min_x = blocker_rear_x - reach;
    r.max_x = blocker_rear_x;
  } else {
    r.min_x = blocker_rear_x;
    r.max_x = blocker_rear_x + reach;
  }
  r.min_y = lane_center_y - params.lane_width * 0.75f;
  r.max_y = lane_center_y + params.lane_width * 0.75f;
  return r;
}

bool zone_occupied(const Image& topdown_mask, const Rect& zone, float metres_per_pixel) {
  if (metres_per_pixel <= 0.0f) return false;
  const int x0 = std::max(0, static_cast<int>(std::floor(zone.min_x / metres_per_pixel)));
  const int x1 = std::min(topdown_mask.width() - 1,
                          static_cast<int>(std::ceil(zone.max_x / metres_per_pixel)));
  const int y0 = std::max(0, static_cast<int>(std::floor(zone.min_y / metres_per_pixel)));
  const int y1 = std::min(topdown_mask.height() - 1,
                          static_cast<int>(std::ceil(zone.max_y / metres_per_pixel)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (topdown_mask.at(x, y) > 0.5f) return true;
    }
  }
  return false;
}

}  // namespace safecross::vision
