#pragma once
// Background subtraction — the paper's chosen detection method (§III-B).
//
// Two models are provided:
//  * RunningAverageBackground — the "dynamic background" the paper uses:
//    B_t = (1-alpha) * B_{t-1} + alpha * F_t, foreground where
//    |F_t - B_t| > threshold. Constantly updated, so slow illumination
//    drift (dawn/dusk, falling snow accumulating) is absorbed.
//  * StaticBackground — ablation baseline: background frozen after a
//    warm-up period (bench_ablation_bgsub contrasts the two).
//
// apply() optionally runs morphological opening (erosion then dilation)
// to suppress single-pixel sensor noise, exactly as described in §III-B.

#include "vision/image.h"

namespace safecross::vision {

struct BackgroundSubtractionConfig {
  float learning_rate = 0.05f;   // alpha for the running average
  float threshold = 0.12f;       // |frame - background| foreground cutoff
  bool apply_opening = true;     // erosion-then-dilation noise removal
  int warmup_frames = 10;        // frames before foreground is emitted
};

class BackgroundSubtractor {
 public:
  virtual ~BackgroundSubtractor() = default;

  /// Feed one frame; returns the binary foreground mask (all zeros during
  /// warm-up).
  virtual Image apply(const Image& frame) = 0;

  /// Current background estimate (empty before the first frame).
  virtual const Image& background() const = 0;

  virtual void reset() = 0;
};

class RunningAverageBackground final : public BackgroundSubtractor {
 public:
  explicit RunningAverageBackground(BackgroundSubtractionConfig config = {});

  Image apply(const Image& frame) override;
  const Image& background() const override { return background_; }
  void reset() override;

  int frames_seen() const { return frames_seen_; }

  /// Checkpoint serialization: the learned background plus its age.
  void save_state(common::StateWriter& w) const {
    background_.save_state(w);
    w.i32(frames_seen_);
  }
  void load_state(common::StateReader& r) {
    background_.load_state(r);
    frames_seen_ = r.i32();
  }

 private:
  BackgroundSubtractionConfig config_;
  Image background_;
  int frames_seen_ = 0;
};

/// Background frozen after `warmup_frames` averaged frames.
class StaticBackground final : public BackgroundSubtractor {
 public:
  explicit StaticBackground(BackgroundSubtractionConfig config = {});

  Image apply(const Image& frame) override;
  const Image& background() const override { return background_; }
  void reset() override;

 private:
  BackgroundSubtractionConfig config_;
  Image background_;
  int frames_seen_ = 0;
};

}  // namespace safecross::vision
