#include "vision/homography.h"

#include <cmath>
#include <stdexcept>

namespace safecross::vision {

namespace {

// Solve the square system A x = b in place via Gaussian elimination with
// partial pivoting. A is n x n row-major.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b, int n) {
  for (int col = 0; col < n; ++col) {
    // Pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      throw std::runtime_error("Homography fit: degenerate point configuration");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (int r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      for (int c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[r];
    for (int c = r + 1; c < n; ++c) sum -= a[r * n + c] * x[c];
    x[r] = sum / a[r * n + r];
  }
  return x;
}

}  // namespace

Homography::Homography() : h_{1, 0, 0, 0, 1, 0, 0, 0, 1} {}

Homography Homography::fit(const std::vector<Point2>& src, const std::vector<Point2>& dst) {
  if (src.size() != dst.size() || src.size() < 4) {
    throw std::invalid_argument("Homography::fit needs >= 4 matched point pairs");
  }
  // DLT with h33 fixed to 1: each pair gives two rows of an
  // over-determined 8-unknown system; solve the normal equations.
  const int n = static_cast<int>(src.size());
  std::vector<double> ata(64, 0.0);
  std::vector<double> atb(8, 0.0);
  for (int i = 0; i < n; ++i) {
    const double x = src[i].x, y = src[i].y;
    const double u = dst[i].x, v = dst[i].y;
    const double row1[8] = {x, y, 1, 0, 0, 0, -u * x, -u * y};
    const double row2[8] = {0, 0, 0, x, y, 1, -v * x, -v * y};
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        ata[r * 8 + c] += row1[r] * row1[c] + row2[r] * row2[c];
      }
      atb[r] += row1[r] * u + row2[r] * v;
    }
  }
  const std::vector<double> h8 = solve_linear(std::move(ata), std::move(atb), 8);
  return Homography({h8[0], h8[1], h8[2], h8[3], h8[4], h8[5], h8[6], h8[7], 1.0});
}

Point2 Homography::apply(const Point2& p) const {
  const double w = h_[6] * p.x + h_[7] * p.y + h_[8];
  if (std::fabs(w) < 1e-12) return {0.0, 0.0};
  return {(h_[0] * p.x + h_[1] * p.y + h_[2]) / w,
          (h_[3] * p.x + h_[4] * p.y + h_[5]) / w};
}

Homography Homography::inverse() const {
  // Adjugate / determinant of the 3x3.
  const auto& m = h_;
  std::array<double, 9> inv{};
  inv[0] = m[4] * m[8] - m[5] * m[7];
  inv[1] = m[2] * m[7] - m[1] * m[8];
  inv[2] = m[1] * m[5] - m[2] * m[4];
  inv[3] = m[5] * m[6] - m[3] * m[8];
  inv[4] = m[0] * m[8] - m[2] * m[6];
  inv[5] = m[2] * m[3] - m[0] * m[5];
  inv[6] = m[3] * m[7] - m[4] * m[6];
  inv[7] = m[1] * m[6] - m[0] * m[7];
  inv[8] = m[0] * m[4] - m[1] * m[3];
  const double det = m[0] * inv[0] + m[1] * inv[3] + m[2] * inv[6];
  if (std::fabs(det) < 1e-15) throw std::runtime_error("Homography not invertible");
  for (auto& v : inv) v /= det;
  return Homography(inv);
}

Homography operator*(const Homography& a, const Homography& b) {
  std::array<double, 9> m{};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += a.h_[r * 3 + k] * b.h_[k * 3 + c];
      m[r * 3 + c] = sum;
    }
  }
  return Homography(m);
}

Image Homography::warp(const Image& src, int dst_width, int dst_height) const {
  const Homography inv = inverse();
  Image out(dst_width, dst_height, 0.0f);
  for (int y = 0; y < dst_height; ++y) {
    for (int x = 0; x < dst_width; ++x) {
      const Point2 s = inv.apply({static_cast<double>(x), static_cast<double>(y)});
      if (s.x < 0 || s.y < 0 || s.x > src.width() - 1 || s.y > src.height() - 1) continue;
      out.at(x, y) = src.sample_bilinear(static_cast<float>(s.x), static_cast<float>(s.y));
    }
  }
  return out;
}

}  // namespace safecross::vision
