#include "vision/homography.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace safecross::vision {

namespace {

// Solve the square system A x = b in place via Gaussian elimination with
// partial pivoting. A is n x n row-major. Returns false on a degenerate
// (rank-deficient) system.
bool solve_linear(std::vector<double> a, std::vector<double> b, int n,
                  std::vector<double>& x) {
  for (int col = 0; col < n; ++col) {
    // Pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (int r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      for (int c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[r];
    for (int c = r + 1; c < n; ++c) sum -= a[r * n + c] * x[c];
    x[r] = sum / a[r * n + r];
  }
  return true;
}

// Hartley normalization: translate the centroid to the origin and scale
// so the mean distance from it is sqrt(2). Returns false when the points
// are (near-)coincident and no finite scale exists.
bool hartley_transform(const std::vector<Point2>& pts, std::array<double, 9>& t,
                       std::vector<Point2>& out) {
  const double n = static_cast<double>(pts.size());
  double cx = 0.0, cy = 0.0;
  for (const Point2& p : pts) {
    cx += p.x;
    cy += p.y;
  }
  cx /= n;
  cy /= n;
  double mean_dist = 0.0;
  for (const Point2& p : pts) {
    mean_dist += std::hypot(p.x - cx, p.y - cy);
  }
  mean_dist /= n;
  if (mean_dist < 1e-12) return false;
  const double s = std::sqrt(2.0) / mean_dist;
  t = {s, 0, -s * cx, 0, s, -s * cy, 0, 0, 1};
  out.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out[i] = {s * (pts[i].x - cx), s * (pts[i].y - cy)};
  }
  return true;
}

// Condition estimate of a 3x3 matrix: ratio of extreme singular values,
// computed as sqrt(lambda_max / lambda_min) of HᵀH via cyclic Jacobi
// rotations (the matrix is symmetric positive semi-definite).
double condition_estimate(const std::array<double, 9>& h) {
  double a[3][3] = {};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      for (int k = 0; k < 3; ++k) a[r][c] += h[k * 3 + r] * h[k * 3 + c];
    }
  }
  for (int sweep = 0; sweep < 32; ++sweep) {
    double off = std::fabs(a[0][1]) + std::fabs(a[0][2]) + std::fabs(a[1][2]);
    if (off < 1e-15) break;
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        if (std::fabs(a[p][q]) < 1e-18) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double sign = theta >= 0.0 ? 1.0 : -1.0;
        const double t = sign / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < 3; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (int k = 0; k < 3; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
      }
    }
  }
  const double lmax = std::max({a[0][0], a[1][1], a[2][2]});
  const double lmin = std::min({a[0][0], a[1][1], a[2][2]});
  if (lmin <= 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(lmax / lmin);
}

}  // namespace

Homography::Homography() : h_{1, 0, 0, 0, 1, 0, 0, 0, 1} {}

Homography FitReport::homography() const { return Homography(h); }

Homography Homography::fit(const std::vector<Point2>& src, const std::vector<Point2>& dst) {
  if (src.size() != dst.size() || src.size() < 4) {
    throw std::invalid_argument("Homography::fit needs >= 4 matched point pairs");
  }
  const FitReport report = fit_report(src, dst);
  if (!report.ok) {
    throw std::runtime_error("Homography fit: " + report.error);
  }
  return report.homography();
}

FitReport Homography::fit_report(const std::vector<Point2>& src,
                                 const std::vector<Point2>& dst) {
  FitReport report;
  if (src.size() != dst.size() || src.size() < 4) {
    report.error = "needs >= 4 matched point pairs";
    return report;
  }
  std::array<double, 9> t_src{}, t_dst{};
  std::vector<Point2> nsrc, ndst;
  if (!hartley_transform(src, t_src, nsrc) || !hartley_transform(dst, t_dst, ndst)) {
    report.error = "degenerate point configuration";
    return report;
  }
  // DLT with h33 fixed to 1 on the normalized points: each pair gives two
  // rows of an over-determined 8-unknown system; solve the normal equations.
  const int n = static_cast<int>(nsrc.size());
  std::vector<double> ata(64, 0.0);
  std::vector<double> atb(8, 0.0);
  for (int i = 0; i < n; ++i) {
    const double x = nsrc[i].x, y = nsrc[i].y;
    const double u = ndst[i].x, v = ndst[i].y;
    const double row1[8] = {x, y, 1, 0, 0, 0, -u * x, -u * y};
    const double row2[8] = {0, 0, 0, x, y, 1, -v * x, -v * y};
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        ata[r * 8 + c] += row1[r] * row1[c] + row2[r] * row2[c];
      }
      atb[r] += row1[r] * u + row2[r] * v;
    }
  }
  std::vector<double> h8;
  if (!solve_linear(std::move(ata), std::move(atb), 8, h8)) {
    report.error = "degenerate point configuration";
    return report;
  }
  // Denormalize: H = T_dst^-1 * Hn * T_src, rescaled to the h33 == 1
  // convention the rest of the code assumes.
  const Homography hn({h8[0], h8[1], h8[2], h8[3], h8[4], h8[5], h8[6], h8[7], 1.0});
  Homography denorm = Homography(t_dst).inverse() * hn * Homography(t_src);
  std::array<double, 9> h = denorm.matrix();
  if (std::fabs(h[8]) < 1e-15) {
    report.error = "degenerate point configuration";
    return report;
  }
  for (double& v : h) v /= h[8];
  report.h = h;
  const Homography fitted(h);
  double sq_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const Point2 p = fitted.apply(src[i]);
    const double dx = p.x - dst[i].x, dy = p.y - dst[i].y;
    sq_sum += dx * dx + dy * dy;
  }
  report.residual_rms = std::sqrt(sq_sum / n);
  report.condition = condition_estimate(h);
  report.ok = true;
  return report;
}

Point2 Homography::apply(const Point2& p) const {
  const double w = h_[6] * p.x + h_[7] * p.y + h_[8];
  if (std::fabs(w) < 1e-12) return {0.0, 0.0};
  return {(h_[0] * p.x + h_[1] * p.y + h_[2]) / w,
          (h_[3] * p.x + h_[4] * p.y + h_[5]) / w};
}

Homography Homography::inverse() const {
  // Adjugate / determinant of the 3x3.
  const auto& m = h_;
  std::array<double, 9> inv{};
  inv[0] = m[4] * m[8] - m[5] * m[7];
  inv[1] = m[2] * m[7] - m[1] * m[8];
  inv[2] = m[1] * m[5] - m[2] * m[4];
  inv[3] = m[5] * m[6] - m[3] * m[8];
  inv[4] = m[0] * m[8] - m[2] * m[6];
  inv[5] = m[2] * m[3] - m[0] * m[5];
  inv[6] = m[3] * m[7] - m[4] * m[6];
  inv[7] = m[1] * m[6] - m[0] * m[7];
  inv[8] = m[0] * m[4] - m[1] * m[3];
  const double det = m[0] * inv[0] + m[1] * inv[3] + m[2] * inv[6];
  if (std::fabs(det) < 1e-15) throw std::runtime_error("Homography not invertible");
  for (auto& v : inv) v /= det;
  return Homography(inv);
}

Homography operator*(const Homography& a, const Homography& b) {
  std::array<double, 9> m{};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += a.h_[r * 3 + k] * b.h_[k * 3 + c];
      m[r * 3 + c] = sum;
    }
  }
  return Homography(m);
}

Image Homography::warp(const Image& src, int dst_width, int dst_height) const {
  const Homography inv = inverse();
  Image out(dst_width, dst_height, 0.0f);
  for (int y = 0; y < dst_height; ++y) {
    for (int x = 0; x < dst_width; ++x) {
      const Point2 s = inv.apply({static_cast<double>(x), static_cast<double>(y)});
      if (s.x < 0 || s.y < 0 || s.x > src.width() - 1 || s.y > src.height() - 1) continue;
      out.at(x, y) = src.sample_bilinear(static_cast<float>(s.x), static_cast<float>(s.y));
    }
  }
  return out;
}

}  // namespace safecross::vision
