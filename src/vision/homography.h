#pragma once
// Planar homography estimation and warping.
//
// The VP pipeline's last stage (Fig. 3c) remaps the camera view onto a
// top-down 2-D representation of the intersection. The road surface is a
// plane, so a 3x3 homography maps camera pixels to ground coordinates.
// We estimate it from >= 4 point correspondences via the normalized DLT
// and solve the linear system with Gaussian elimination.

#include <array>
#include <string>
#include <vector>

#include "vision/image.h"

namespace safecross::vision {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

class Homography;

/// Outcome of a homography fit, with the numerical health indicators a
/// caller needs to reject an unusable solve instead of trusting it:
/// RMS reprojection residual over all input pairs (pixels, in dst units)
/// and a singular-value condition estimate of the fitted matrix.
struct FitReport {
  bool ok = false;
  std::array<double, 9> h{1, 0, 0, 0, 1, 0, 0, 0, 1};
  double residual_rms = 0.0;
  double condition = 0.0;
  std::string error;  // empty when ok

  Homography homography() const;
};

/// Row-major 3x3 projective transform.
class Homography {
 public:
  Homography();  // identity

  explicit Homography(const std::array<double, 9>& h) : h_(h) {}

  /// Least-squares DLT fit from point correspondences (src -> dst).
  /// Requires at least 4 non-degenerate pairs; throws otherwise.
  static Homography fit(const std::vector<Point2>& src, const std::vector<Point2>& dst);

  /// Non-throwing fit with Hartley normalization (points translated to
  /// their centroid and scaled to mean distance sqrt(2) before the solve,
  /// the standard conditioning step for the DLT) plus residual/condition
  /// diagnostics. `fit` delegates here and throws on failure.
  static FitReport fit_report(const std::vector<Point2>& src, const std::vector<Point2>& dst);

  Point2 apply(const Point2& p) const;

  Homography inverse() const;

  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  friend Homography operator*(const Homography& a, const Homography& b);

  const std::array<double, 9>& matrix() const { return h_; }

  /// Warp `src` into a dst_width x dst_height image: for each destination
  /// pixel, apply the *inverse* mapping and bilinearly sample the source.
  /// `this` must map src coordinates to dst coordinates.
  Image warp(const Image& src, int dst_width, int dst_height) const;

 private:
  std::array<double, 9> h_;
};

}  // namespace safecross::vision
