#include "core/monitor.h"

namespace safecross::core {

RealtimeMonitor::RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                                 const sim::CameraModel& camera, MonitorConfig config,
                                 std::uint64_t seed)
    : safecross_(safecross),
      sim_(sim),
      config_(config),
      collector_(sim, camera, config.vp, seed) {
  safecross_.on_scene_change(sim.weather().weather);
}

RealtimeMonitor::Tick RealtimeMonitor::step() {
  collector_.step();
  ++frames_since_decision_;

  Tick tick;
  tick.sim_time = sim_.time();
  tick.blind_area = sim_.blind_area_present(config_.vp.approach);
  tick.danger_truth = sim_.dangerous_to_turn(config_.vp.approach);

  const sim::Vehicle* subject = sim_.subject(config_.vp.approach);
  tick.subject_waiting =
      subject != nullptr && subject->state == sim::DriverState::HoldingAtStop;

  const bool window_full =
      collector_.window().size() >= static_cast<std::size_t>(config_.vp.frames_per_segment);
  const bool warmed_up =
      collector_.frames_processed() >= static_cast<std::size_t>(config_.warmup_frames);
  if (tick.subject_waiting && window_full && warmed_up &&
      frames_since_decision_ >= config_.decision_stride) {
    frames_since_decision_ = 0;
    const std::vector<vision::Image> window(collector_.window().begin(),
                                            collector_.window().end());
    tick.decision = safecross_.classify(window);
    tick.decision_made = true;

    ++decisions_;
    if (tick.decision.warn) ++warnings_;
    const bool said_danger = tick.decision.predicted_class == 0;
    if (said_danger == tick.danger_truth) {
      ++correct_;
    } else if (tick.danger_truth) {
      ++missed_threats_;
    } else {
      ++false_warnings_;
    }
  }
  return tick;
}

}  // namespace safecross::core
