#include "core/monitor.h"

#include "common/timer.h"

namespace safecross::core {

using runtime::DecisionSource;
using runtime::FrameFault;

RealtimeMonitor::RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                                 const sim::CameraModel& camera, MonitorConfig config,
                                 std::uint64_t seed, runtime::FaultInjector* injector)
    : safecross_(safecross),
      sim_(sim),
      config_(config),
      collector_(sim, camera, config.vp, seed),
      health_(config.health),
      injector_(injector) {
  if (injector_ != nullptr) {
    collector_.set_frame_hook([this](vision::Image& frame) { injector_->perturb(frame); });
    safecross_.switcher().set_failure_hook(
        [this](const std::string&) { return injector_->next_switch_fails(); });
  }
  if (config_.fail_safe_policy) {
    const auto change = safecross_.try_on_scene_change(sim.weather().weather);
    if (change.ok) {
      if (change.delay_ms > 0.0) health_.switch_started(change.delay_ms);
    } else {
      // No model could be made to serve: every decision runs fail-safe
      // until a later switch succeeds.
      health_.switch_failed();
    }
  } else {
    safecross_.on_scene_change(sim.weather().weather);
  }
}

RealtimeMonitor::~RealtimeMonitor() {
  if (injector_ != nullptr) safecross_.switcher().set_failure_hook(nullptr);
}

RealtimeMonitor::Tick RealtimeMonitor::step() {
  FrameFault fault = FrameFault::None;
  if (injector_ != nullptr) fault = injector_->next_frame_fault();
  switch (fault) {
    case FrameFault::Dropped:
      collector_.step(dataset::FrameStatus::Dropped);
      health_.frame_missing();
      break;
    case FrameFault::Frozen:
      collector_.step(dataset::FrameStatus::Frozen);
      health_.frame_degraded();
      break;
    case FrameFault::Blackout:
      collector_.step(dataset::FrameStatus::Corrupted);  // the hook zeroed it
      health_.frame_missing();  // the slot is filled but its content is gone
      break;
    case FrameFault::NoiseBurst:
      collector_.step(dataset::FrameStatus::Corrupted);
      health_.frame_degraded();
      break;
    case FrameFault::None:
      collector_.step();
      health_.frame_ok();
      break;
  }
  ++frames_since_decision_;

  Tick tick;
  tick.sim_time = sim_.time();
  tick.frame_fault = fault;
  tick.blind_area = sim_.blind_area_present(config_.vp.approach);
  tick.danger_truth = sim_.dangerous_to_turn(config_.vp.approach);

  const sim::Vehicle* subject = sim_.subject(config_.vp.approach);
  tick.subject_waiting =
      subject != nullptr && subject->state == sim::DriverState::HoldingAtStop;

  const bool window_full =
      collector_.window().size() >= static_cast<std::size_t>(config_.vp.frames_per_segment);
  const bool warmed_up =
      collector_.frames_processed() >= static_cast<std::size_t>(config_.warmup_frames);
  const bool due = tick.subject_waiting && warmed_up &&
                   frames_since_decision_ >= config_.decision_stride;
  if (due) ++decision_opportunities_;

  if (!config_.fail_safe_policy) {
    // Fail-silent baseline: exactly the pre-robustness behaviour — only a
    // full window gates the classifier, even if it is gapped or stale.
    if (due && window_full) {
      frames_since_decision_ = 0;
      const std::vector<vision::Image> window(collector_.window().begin(),
                                              collector_.window().end());
      tick.decision = safecross_.classify(window);
      tick.decision_made = true;
      score(tick, tick.decision);
    }
    return tick;
  }

  if (!due) return tick;
  frames_since_decision_ = 0;
  tick.decision = decide();
  tick.decision_made = true;
  score(tick, tick.decision);
  return tick;
}

SafeCross::Decision RealtimeMonitor::decide() {
  // Conservative gates, most severe first. Any hit means the model's
  // verdict cannot be trusted right now: warn instead of guessing.
  if (health_.switch_failure_latched() || health_.switch_in_flight()) {
    return SafeCross::fail_safe_decision(DecisionSource::FailSafeSwitchInFlight);
  }
  const bool window_full =
      collector_.window().size() >= static_cast<std::size_t>(config_.vp.frames_per_segment);
  if (!window_full || !collector_.window_contiguous()) {
    return SafeCross::fail_safe_decision(DecisionSource::FailSafeIncompleteWindow);
  }
  if (health_.window_stale(collector_.fresh_in_window(), collector_.window().size())) {
    return SafeCross::fail_safe_decision(DecisionSource::FailSafeStaleWindow);
  }
  if (health_.state() == runtime::HealthState::FailSafe) {
    // Sustained stream faults (e.g. a blackout short enough to slip past
    // the per-window gates) — the watchdog says the feed is not trustworthy.
    return SafeCross::fail_safe_decision(DecisionSource::FailSafeStaleWindow);
  }

  const std::vector<vision::Image> window(collector_.window().begin(),
                                          collector_.window().end());
  Timer deadline;
  SafeCross::Decision decision = safecross_.classify(window);
  if (health_.deadline_blown(deadline.elapsed_ms())) {
    // The verdict arrived too late to act on: deliver it as a warning.
    decision.warn = true;
    decision.predicted_class = 0;
    decision.source = DecisionSource::FailSafeDeadline;
  }
  return decision;
}

void RealtimeMonitor::score(const Tick& tick, const SafeCross::Decision& decision) {
  ++decisions_;
  if (decision.warn) ++warnings_;
  if (runtime::is_fail_safe(decision.source)) ++fail_safe_decisions_;
  ++by_source_[static_cast<int>(decision.source)];
  const bool said_danger = decision.predicted_class == 0;
  if (said_danger == tick.danger_truth) {
    ++correct_;
  } else if (tick.danger_truth) {
    ++missed_threats_;
  } else {
    ++false_warnings_;
  }
}

}  // namespace safecross::core
