#include "core/monitor.h"

#include <atomic>
#include <utility>

#include "common/timer.h"
#include "runtime/bounded_queue.h"
#include "runtime/supervisor.h"

namespace safecross::core {

using runtime::DecisionSource;
using runtime::FrameFault;
using runtime::StageId;

RealtimeMonitor::RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                                 const sim::CameraModel& camera, MonitorConfig config,
                                 std::uint64_t seed, runtime::FaultInjector* injector)
    : safecross_(safecross),
      sim_(sim),
      camera_(camera),
      config_(config),
      collector_(sim, camera, config.vp, seed),
      health_(config.health),
      injector_(injector) {
  if (injector_ != nullptr) {
    collector_.set_frame_hook([this](vision::Image& frame) { injector_->perturb(frame); });
    safecross_.switcher().set_failure_hook(
        [this](const std::string&) { return injector_->next_switch_fails(); });
    if (injector_->plan().geometry.enabled()) {
      // The geometric fault family needs frame dimensions (the perturbation
      // rotates about the image centre), and the collector must preprocess
      // through the live perturbation so the rendered view really moves.
      injector_->set_frame_size(camera.config().width, camera.config().height);
      collector_.set_view_perturbation(&injector_->view_perturbation());
    }
  }
  if (config_.recalib.enabled) {
    config_.recalib.frame_width = camera.config().width;
    config_.recalib.frame_height = camera.config().height;
    estimator_ = std::make_unique<vision::CalibrationEstimator>(camera.reference_view(sim),
                                                                config_.recalib.estimator);
    recalib_ = std::make_unique<runtime::RecalibrationLoop>(
        config_.recalib, camera.image_to_grid(config_.vp.grid_w, config_.vp.grid_h), &health_,
        [this](const vision::Homography& guess) {
          const vision::Homography* view =
              injector_ != nullptr && injector_->geometry_active()
                  ? &injector_->view_perturbation()
                  : nullptr;
          return estimator_->estimate(camera_.render_view(sim_, view), guess);
        },
        [this](const vision::Homography& h) { collector_.set_image_to_grid(h); });
  }
  if (config_.fail_safe_policy) {
    const auto change = safecross_.try_on_scene_change(sim.weather().weather);
    if (change.ok) {
      if (change.delay_ms > 0.0) health_.switch_started(change.delay_ms);
    } else {
      // No model could be made to serve: every decision runs fail-safe
      // until a later switch succeeds.
      health_.switch_failed();
    }
  } else {
    safecross_.on_scene_change(sim.weather().weather);
  }
}

RealtimeMonitor::~RealtimeMonitor() {
  if (injector_ != nullptr) safecross_.switcher().set_failure_hook(nullptr);
}

RealtimeMonitor::Tick RealtimeMonitor::ingest(FrameFault fault, bool& due) {
  apply_frame_fault(collector_, health_, fault);
  // The recalibration loop ticks on the thread that owns the collector
  // and the simulator (the caller in synchronous mode, the collect stage
  // in pipelined mode), so its estimate/apply callbacks race with nothing.
  if (recalib_) recalib_->on_frame(collector_.frames_processed());
  ++frames_since_decision_;

  Tick tick;
  tick.sim_time = sim_.time();
  tick.frame_fault = fault;
  tick.blind_area = sim_.blind_area_present(config_.vp.approach);
  tick.danger_truth = sim_.dangerous_to_turn(config_.vp.approach);

  const sim::Vehicle* subject = sim_.subject(config_.vp.approach);
  tick.subject_waiting =
      subject != nullptr && subject->state == sim::DriverState::HoldingAtStop;

  const bool warmed_up =
      collector_.frames_processed() >= static_cast<std::size_t>(config_.warmup_frames);
  due = tick.subject_waiting && warmed_up &&
        frames_since_decision_ >= config_.decision_stride;
  if (due) scorecard_.count_opportunity();
  return tick;
}

RealtimeMonitor::Tick RealtimeMonitor::step() {
  FrameFault fault = FrameFault::None;
  if (injector_ != nullptr) fault = injector_->next_frame_fault();
  bool due = false;
  Tick tick = ingest(fault, due);

  const bool window_full =
      collector_.window().size() >= static_cast<std::size_t>(config_.vp.frames_per_segment);

  if (!config_.fail_safe_policy) {
    // Fail-silent baseline: exactly the pre-robustness behaviour — only a
    // full window gates the classifier, even if it is gapped or stale.
    if (due && window_full) {
      frames_since_decision_ = 0;
      const std::vector<vision::Image> window(collector_.window().begin(),
                                              collector_.window().end());
      Timer latency;
      tick.decision = safecross_.classify(window);
      tick.decision_latency_ms = latency.elapsed_ms();
      tick.decision_made = true;
      record_latency(tick.decision_latency_ms);
      score(tick, tick.decision);
    }
    return tick;
  }

  if (!due) return tick;
  frames_since_decision_ = 0;
  Timer latency;
  tick.decision = decide();
  tick.decision_latency_ms = latency.elapsed_ms();
  tick.decision_made = true;
  record_latency(tick.decision_latency_ms);
  score(tick, tick.decision);
  return tick;
}

void RealtimeMonitor::run(std::size_t frames) {
  if (!config_.pipelined) {
    for (std::size_t i = 0; i < frames; ++i) step();
    return;
  }
  run_pipelined(frames);
}

SafeCross::Decision RealtimeMonitor::decide() {
  const DecisionSource reason = gate_reason(health_, collector_, config_.vp.frames_per_segment);
  if (reason != DecisionSource::Model) return SafeCross::fail_safe_decision(reason);

  const std::vector<vision::Image> window(collector_.window().begin(),
                                          collector_.window().end());
  Timer deadline;
  SafeCross::Decision decision = safecross_.classify(window);
  if (health_.deadline_blown(deadline.elapsed_ms())) {
    // The verdict arrived too late to act on: deliver it as a warning.
    decision.warn = true;
    decision.predicted_class = 0;
    decision.source = DecisionSource::FailSafeDeadline;
  }
  return decision;
}

void RealtimeMonitor::score(const Tick& tick, const SafeCross::Decision& decision) {
  scorecard_.score(tick.danger_truth, decision.predicted_class, decision.warn, decision.source);
}

void RealtimeMonitor::run_pipelined(std::size_t frames) {
  const runtime::PipelineConfig& pcfg = config_.pipeline;
  const auto push_timeout =
      std::chrono::milliseconds(static_cast<long long>(pcfg.push_timeout_ms));
  const auto pop_timeout =
      std::chrono::milliseconds(static_cast<long long>(pcfg.pop_timeout_ms));

  // One camera frame slot handed from capture to collect. `degraded`
  // marks slots produced by the capture fallback (camera front end gave
  // up): they carry no content and land as dropped frames, but they keep
  // the frame clock — and therefore the decision cadence — alive.
  struct FrameJob {
    std::size_t index = 0;
    bool degraded = false;
    Clock::time_point captured;
  };

  runtime::BoundedQueue<FrameJob> frame_q(pcfg.frame_queue_capacity);
  runtime::BoundedQueue<PendingDecision> decision_q(pcfg.decision_queue_capacity);
  runtime::StageFaultInjector stage_faults(pcfg);
  runtime::Supervisor supervisor(pcfg.backoff, pcfg.fault_seed);
  supervisor.set_give_up_hook([this](const std::string&) { health_.latch_fail_safe(); });

  // Stage state lives out here: a restarted stage incarnation resumes
  // where the crashed one left off instead of replaying work.
  std::atomic<std::size_t> next_frame{0};  // capture: next slot to produce
  std::size_t next_expected = 0;           // collect: next slot not yet accounted

  // --- capture: camera pacing + the start of each deadline budget ---
  auto capture_loop = [&](bool degraded) {
    for (;;) {
      if (supervisor.stop_requested()) return;
      const std::size_t index = next_frame.load(std::memory_order_relaxed);
      if (index >= frames) return;
      if (!degraded) stage_faults.on_item(StageId::Capture);
      next_frame.store(index + 1, std::memory_order_relaxed);
      FrameJob job{index, degraded, Clock::now()};
      // Backpressure first; past the timeout the oldest queued frame is
      // shed — in a live feed the newest frame is the valuable one.
      if (!frame_q.push(job, push_timeout)) frame_q.push_drop_oldest(job);
    }
  };

  // Shared by collect and its degraded fallback: ingest one frame slot
  // and, when a decision is due, hand the resolved gates (and the window,
  // if the model may run) to the decide stage.
  auto collect_frame = [&](FrameFault fault) {
    bool due = false;
    Tick tick = ingest(fault, due);
    const bool window_full =
        collector_.window().size() >= static_cast<std::size_t>(config_.vp.frames_per_segment);
    PendingDecision pd;
    if (config_.fail_safe_policy) {
      if (!due) return;
      frames_since_decision_ = 0;
      pd.gate = gate_reason(health_, collector_, config_.vp.frames_per_segment);
    } else {
      // Fail-silent baseline, pipelined: same gate as the synchronous
      // baseline — a full window is classified even if gapped or stale.
      if (!(due && window_full)) return;
      frames_since_decision_ = 0;
      pd.gate = DecisionSource::Model;
    }
    pd.tick = tick;
    pd.captured = Clock::now();
    if (pd.gate == DecisionSource::Model) {
      pd.window.assign(collector_.window().begin(), collector_.window().end());
    }
    if (!decision_q.push_ref(pd, push_timeout)) {
      // Decide is wedged: shed the *oldest* pending decision — stale
      // safety advice is worth less than fresh advice.
      decision_q.push_drop_oldest(std::move(pd));
    }
  };

  // --- collect: fault fate, VP preprocessing, window assembly, gates ---
  auto collect_loop = [&](bool degraded) {
    for (;;) {
      if (supervisor.stop_requested()) return;
      auto job = frame_q.pop(pop_timeout);
      if (!job) {
        if (frame_q.drained()) return;
        continue;
      }
      // Slots lost upstream — shed from the frame queue, or popped by a
      // collect incarnation that crashed before processing them — surface
      // as index gaps. Account each as a dropped frame so the sim clock
      // and the window-contiguity tracking stay aligned with the cadence.
      while (next_expected < job->index) {
        ++next_expected;
        collect_frame(FrameFault::Dropped);
      }
      if (job->index < next_expected) continue;  // stale duplicate; defensive
      if (!degraded) stage_faults.on_item(StageId::Collect);  // crash → slot gap-fills
      next_expected = job->index + 1;
      FrameFault fault = FrameFault::Dropped;
      if (!degraded && !job->degraded) {
        fault = injector_ != nullptr ? injector_->next_frame_fault() : FrameFault::None;
      }
      collect_frame(fault);
    }
  };

  // --- decide: classifier (or the tagged conservative warn) + scoring ---
  auto decide_loop = [&](bool degraded) {
    for (;;) {
      if (supervisor.stop_requested()) return;
      auto pd = decision_q.pop(pop_timeout);
      if (!pd) {
        if (decision_q.drained()) return;
        continue;
      }
      if (!degraded) stage_faults.on_item(StageId::Decide);  // crash → decision lost
      SafeCross::Decision decision;
      if (degraded) {
        decision = SafeCross::fail_safe_decision(DecisionSource::FailSafeStageDown);
      } else if (pd->gate != DecisionSource::Model) {
        decision = SafeCross::fail_safe_decision(pd->gate);
      } else {
        decision = safecross_.classify(pd->window);
      }
      // The deadline budget spans the pipeline: it started when the frame
      // slot was captured, not when the classifier began.
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - pd->captured).count();
      if (decision.source == DecisionSource::Model && health_.deadline_blown(latency_ms)) {
        decision.warn = true;
        decision.predicted_class = 0;
        decision.source = DecisionSource::FailSafeDeadline;
      }
      pd->tick.decision = decision;
      pd->tick.decision_made = true;
      pd->tick.decision_latency_ms = latency_ms;
      record_latency(latency_ms);
      score(pd->tick, decision);
    }
  };

  supervisor.add_stage(
      "capture", [&] { capture_loop(false); }, [&] { capture_loop(true); },
      [&] { frame_q.close(); });
  supervisor.add_stage(
      "collect", [&] { collect_loop(false); }, [&] { collect_loop(true); },
      [&] { decision_q.close(); });
  supervisor.add_stage(
      "decide", [&] { decide_loop(false); }, [&] { decide_loop(true); });

  supervisor.start();
  supervisor.join();  // normal completion: queues drain, stages exit

  frames_shed_ += frame_q.shed();
  decisions_shed_ += decision_q.shed();
  stage_restarts_ += supervisor.total_restarts();
  stages_gave_up_ += supervisor.stages_gave_up();
  stage_crashes_ += stage_faults.total_crashes();
}

}  // namespace safecross::core
