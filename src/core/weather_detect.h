#pragma once
// Heuristic weather detection from camera frames — the trigger for the
// MS module (the paper switches models "when the scene changes" but
// leaves the change detector to the deployment; this is ours).
//
// Rain streaks and snow flakes are *transient*: they appear in one frame
// and are gone in the next, unlike vehicles which move coherently.
// Frame-differencing + morphological opening isolates the transient
// speckle; its density separates clear weather from precipitation, and
// the speckle blobs' elongation (streaks are tall, flakes are round)
// separates rain from snow.

#include "vision/danger_zone.h"  // Weather
#include "vision/image.h"

namespace safecross::core {

struct WeatherDetectorConfig {
  float diff_threshold = 0.055f;  // |f_t - f_{t-1}| transient cutoff
  float density_precip = 0.0015f; // speckle density above => precipitation
  float rain_blob_height = 3.3f;  // mean speckle blob height (px) above => rain
                                  // (streaks are tall; flakes are compact)
  float night_brightness = 0.30f; // mean frame brightness below => night
  float fog_brightness = 0.42f;   // mean brightness above (with no speckle)
                                  // => fog: the grey veil lifts the whole
                                  // frame toward its albedo
  int min_frames = 5;             // frames required before estimating
};

struct WeatherEstimate {
  vision::Weather weather = vision::Weather::Daytime;
  double speckle_density = 0.0;  // fraction of pixels that are transient speckle
  double mean_elongation = 1.0;  // mean blob height/width among speckle blobs
  double mean_blob_height = 0.0;  // mean speckle blob height in pixels
  double mean_brightness = 0.0;   // mean pixel intensity (night signature)
  double mean_contrast = 0.0;     // mean per-frame intensity stddev (fog kills it)
  bool confident = false;        // enough frames observed
};

class WeatherDetector {
 public:
  explicit WeatherDetector(WeatherDetectorConfig config = {});

  /// Feed one camera frame (call once per frame, in order).
  void observe(const vision::Image& frame);

  WeatherEstimate estimate() const;
  void reset();

 private:
  WeatherDetectorConfig config_;
  vision::Image prev_;
  int frames_ = 0;
  double density_sum_ = 0.0;
  double elongation_sum_ = 0.0;
  double height_sum_ = 0.0;
  double brightness_sum_ = 0.0;
  double contrast_sum_ = 0.0;
  int brightness_samples_ = 0;
  int elongation_samples_ = 0;
};

}  // namespace safecross::core
