#pragma once
// Throughput accounting for the paper's §V-D experiment.
//
// In scenes WITH a blind area, a driver without assistance must wait for
// the view to clear regardless of whether the zone is actually empty.
// SafeCross lets the judged-safe fraction turn immediately, so the
// left-turn throughput gain over the no-assistance baseline is
// (segments judged safe) / (blind segments). The paper reports 32/63 ≈ +50%.

#include <vector>

#include "core/safecross.h"

namespace safecross::core {

struct ThroughputReport {
  std::size_t blind_segments = 0;   // evaluated scenes (all have blind areas)
  std::size_t class0 = 0;           // truth: vehicle hidden, must wait
  std::size_t class1 = 0;           // truth: zone empty, may turn
  std::size_t judged_safe = 0;      // SafeCross verdict: turn now
  std::size_t correct = 0;
  std::size_t missed_threats = 0;   // judged safe but a vehicle was hidden (safety!)

  double accuracy() const {
    return blind_segments ? static_cast<double>(correct) / blind_segments : 0.0;
  }
  /// Fraction of blind scenes that no longer wait = throughput gain.
  double throughput_gain() const {
    return blind_segments ? static_cast<double>(judged_safe) / blind_segments : 0.0;
  }
};

/// Classify every blind-area segment with its weather's model and account
/// safety + throughput.
ThroughputReport throughput_experiment(SafeCross& safecross,
                                       const std::vector<const VideoSegment*>& blind_segments);

/// As throughput_experiment, but feed the segments to the engine in
/// weather-grouped (N, 1, T, H, W) batches of at most `max_batch` — one
/// model switch per weather group instead of one per weather change in
/// segment order. The per-segment verdicts (and therefore the report) are
/// bit-identical to the sequential experiment; batching only changes how
/// the GEMM backend is fed and how often the MS module swaps models.
ThroughputReport throughput_experiment_batched(
    SafeCross& safecross, const std::vector<const VideoSegment*>& blind_segments,
    std::size_t max_batch = 8);

/// Utility: pick segments with blind areas, up to per-class caps
/// (the paper's test set: 32 of class 0 and 31 of class 1).
std::vector<const VideoSegment*> select_blind_test_set(
    const std::vector<const VideoSegment*>& pool, std::size_t class0_cap, std::size_t class1_cap);

}  // namespace safecross::core
