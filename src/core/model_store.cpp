#include "core/model_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/logging.h"
#include "nn/serialize.h"

namespace safecross::core {

namespace {

constexpr dataset::Weather kAllWeathers[] = {
    dataset::Weather::Daytime, dataset::Weather::Rain, dataset::Weather::Snow,
    dataset::Weather::Night, dataset::Weather::Fog};

}  // namespace

ModelStore::ModelStore(std::filesystem::path directory) : dir_(std::move(directory)) {}

std::filesystem::path ModelStore::path_for(dataset::Weather weather) const {
  return dir_ / (std::string(vision::weather_name(weather)) + ".safecross");
}

void ModelStore::save(SafeCross& safecross) const {
  std::filesystem::create_directories(dir_);
  for (const auto weather : kAllWeathers) {
    if (!safecross.has_model(weather)) continue;
    models::VideoClassifier& model = safecross.model_for(weather);
    // Serialize the nn blocks in memory first so the integrity footer can
    // cover every byte that precedes it.
    std::ostringstream blocks;
    nn::save_params(blocks, model.params());
    nn::save_tensors(blocks, model.buffers());
    const std::string bytes = blocks.str();
    const std::uint32_t crc = common::crc32(bytes);
    std::ofstream os(path_for(weather), std::ios::binary);
    if (!os) throw std::runtime_error("ModelStore: cannot write " + path_for(weather).string());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.write(reinterpret_cast<const char*>(&kFooterMagic), sizeof(kFooterMagic));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!os) throw std::runtime_error("ModelStore: short write to " + path_for(weather).string());
    log_info() << "model-store: saved " << vision::weather_name(weather) << " ("
               << nn::param_count(model.params()) << " params)";
  }
}

std::vector<dataset::Weather> ModelStore::available() const {
  std::vector<dataset::Weather> out;
  for (const auto weather : kAllWeathers) {
    if (std::filesystem::exists(path_for(weather))) out.push_back(weather);
  }
  return out;
}

std::vector<dataset::Weather> ModelStore::warm_manifest(std::size_t max_models) const {
  struct Candidate {
    dataset::Weather weather;
    std::uintmax_t bytes;
  };
  std::vector<Candidate> candidates;
  for (const auto weather : available()) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_for(weather), ec);
    candidates.push_back({weather, ec ? 0 : size});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) { return a.bytes > b.bytes; });
  if (max_models > 0 && candidates.size() > max_models) candidates.resize(max_models);
  std::vector<dataset::Weather> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) out.push_back(c.weather);
  return out;
}

namespace {

/// Structural + integrity validation before any tensor data is parsed:
/// the file must exist, be non-empty, start with the checkpoint magic,
/// and — when it carries the ModelStore footer — its CRC32 must cover
/// every byte before the footer. Footer-less legacy files pass on the
/// structural checks alone. Returns an empty string when the file is
/// acceptable.
std::string validate_checkpoint(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return "cannot stat checkpoint: " + ec.message();
  // Smallest well-formed file: magic + count for params and buffers blocks.
  constexpr std::uintmax_t kMinBytes = 2 * (sizeof(std::uint32_t) + sizeof(std::uint64_t));
  if (size == 0) return "checkpoint is empty (0 bytes)";
  if (size < kMinBytes) return "checkpoint truncated (" + std::to_string(size) + " bytes)";
  std::string bytes;
  try {
    bytes = common::read_file(path);
  } catch (const std::exception&) {
    return "cannot open checkpoint";
  }
  if (bytes.size() < sizeof(std::uint32_t)) return "cannot read checkpoint header";
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != nn::kCheckpointMagic) return "bad checkpoint magic";
  constexpr std::size_t kFooterBytes = 2 * sizeof(std::uint32_t);
  if (bytes.size() >= kMinBytes + kFooterBytes) {
    std::uint32_t footer_magic = 0;
    std::uint32_t stored_crc = 0;
    std::memcpy(&footer_magic, bytes.data() + bytes.size() - kFooterBytes,
                sizeof(footer_magic));
    std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
                sizeof(stored_crc));
    if (footer_magic == ModelStore::kFooterMagic &&
        common::crc32(bytes.data(), bytes.size() - kFooterBytes) != stored_crc) {
      return "checkpoint checksum mismatch";
    }
  }
  return {};
}

}  // namespace

ModelStore::LoadReport ModelStore::load_report(SafeCross& safecross,
                                               const SafeCrossConfig& config) const {
  LoadReport report;
  for (const auto weather : available()) {
    const auto path = path_for(weather);
    std::string error;
    const auto attempt_once = [&]() -> bool {
      error = validate_checkpoint(path);
      if (!error.empty()) return false;
      // The model is only registered once the whole file deserialized:
      // a half-loaded graph must never serve.
      auto model = std::make_unique<models::SlowFast>(config.model);
      try {
        std::ifstream is(path, std::ios::binary);
        if (!is) throw std::runtime_error("cannot read checkpoint");
        nn::load_params(is, model->params());
        nn::load_tensors(is, model->buffers());
        safecross.set_model(weather, std::move(model));
        return true;
      } catch (const std::exception& e) {
        error = e.what();
        return false;
      }
    };
    // A failure here may be transient (stat/open on flaky storage, a
    // concurrent writer mid-save): retry with bounded backoff before
    // declaring the checkpoint bad. The jitter seed is fixed per weather
    // so a load's retry timing is reproducible.
    const auto retry = runtime::retry_with_backoff(
        retry_policy_, 0x10ADull ^ static_cast<std::uint64_t>(weather), attempt_once);
    if (retry.ok) {
      report.loaded.push_back(weather);
      continue;
    }
    log_warn() << "model-store: skipping " << vision::weather_name(weather) << " ("
               << path.string() << ") after " << retry.attempts << " attempt(s): " << error;
    report.errors.push_back({weather, std::move(error), retry.attempts});
  }
  return report;
}

std::vector<dataset::Weather> ModelStore::load(SafeCross& safecross,
                                               const SafeCrossConfig& config) const {
  return load_report(safecross, config).loaded;
}

}  // namespace safecross::core
