#include "core/model_store.h"

#include <fstream>

#include "common/logging.h"
#include "nn/serialize.h"

namespace safecross::core {

namespace {

constexpr dataset::Weather kAllWeathers[] = {
    dataset::Weather::Daytime, dataset::Weather::Rain, dataset::Weather::Snow,
    dataset::Weather::Night, dataset::Weather::Fog};

}  // namespace

ModelStore::ModelStore(std::filesystem::path directory) : dir_(std::move(directory)) {}

std::filesystem::path ModelStore::path_for(dataset::Weather weather) const {
  return dir_ / (std::string(vision::weather_name(weather)) + ".safecross");
}

void ModelStore::save(SafeCross& safecross) const {
  std::filesystem::create_directories(dir_);
  for (const auto weather : kAllWeathers) {
    if (!safecross.has_model(weather)) continue;
    models::VideoClassifier& model = safecross.model_for(weather);
    std::ofstream os(path_for(weather), std::ios::binary);
    if (!os) throw std::runtime_error("ModelStore: cannot write " + path_for(weather).string());
    nn::save_params(os, model.params());
    nn::save_tensors(os, model.buffers());
    log_info() << "model-store: saved " << vision::weather_name(weather) << " ("
               << nn::param_count(model.params()) << " params)";
  }
}

std::vector<dataset::Weather> ModelStore::available() const {
  std::vector<dataset::Weather> out;
  for (const auto weather : kAllWeathers) {
    if (std::filesystem::exists(path_for(weather))) out.push_back(weather);
  }
  return out;
}

std::vector<dataset::Weather> ModelStore::load(SafeCross& safecross,
                                               const SafeCrossConfig& config) const {
  std::vector<dataset::Weather> loaded;
  for (const auto weather : available()) {
    auto model = std::make_unique<models::SlowFast>(config.model);
    std::ifstream is(path_for(weather), std::ios::binary);
    if (!is) throw std::runtime_error("ModelStore: cannot read " + path_for(weather).string());
    nn::load_params(is, model->params());
    nn::load_tensors(is, model->buffers());
    safecross.set_model(weather, std::move(model));
    loaded.push_back(weather);
  }
  return loaded;
}

}  // namespace safecross::core
