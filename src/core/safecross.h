#pragma once
// The SafeCross framework (paper §III): the four modules wired together.
//
//   VP — video pre-processing: handled upstream by
//        dataset::SegmentCollector / the vision library (bg-sub +
//        morphology + top-down remap). SafeCross consumes the resulting
//        32-frame occupancy windows.
//   VC — video classification: a SlowFast basic model trained on the
//        data-rich scene (daytime).
//   FL — few-shot learning: rare-weather models adapted from the basic
//        model's weights (fewshot::fewshot_transfer / MAML).
//   MS — model switching: a switching::ModelSwitcher accounts the
//        latency of swapping per-weather models on the shared GPU.
//
// The object owns one model per weather condition and answers the only
// question that matters at the intersection: "is it safe to turn left
// right now?"

#include <map>
#include <memory>

#include "dataset/segment.h"
#include "fewshot/maml.h"
#include "fewshot/trainer.h"
#include "models/slowfast.h"
#include "runtime/health_monitor.h"
#include "switching/switcher.h"

namespace safecross::core {

using dataset::VideoSegment;
using dataset::Weather;

struct SafeCrossConfig {
  models::SlowFastConfig model;     // basic model architecture
  fewshot::TrainConfig basic_train; // daytime training schedule
  fewshot::TrainConfig fsl_train;   // few-shot adaptation schedule
  switching::GpuModelConfig gpu;
  switching::SwitchPolicy policy = switching::SwitchPolicy::PipeSwitch;
  float warn_threshold = 0.5f;      // P(danger) above which we warn

  SafeCrossConfig() {
    fsl_train.epochs = 8;
    fsl_train.lr = 0.01f;  // gentle fine-tuning from the basic weights
  }
};

class SafeCross {
 public:
  explicit SafeCross(SafeCrossConfig config = {});

  /// VC module: train the basic model from scratch on the data-rich
  /// scene. Returns the final training loss.
  float train_basic(const std::vector<const VideoSegment*>& daytime_train);

  /// FL module: derive a weather model from the basic model with a small
  /// sample pool. Requires train_basic() first.
  void adapt_weather(Weather weather, const std::vector<const VideoSegment*>& few_samples);

  /// Optional FL refinement (paper Fig. 6): improve the basic model as a
  /// MAML meta-initialization over a distribution of scene tasks before
  /// adapting to rare weathers. Requires train_basic() first. Returns the
  /// final mean query loss.
  float meta_train(const std::vector<fewshot::Task>& tasks, const fewshot::MamlConfig& config);

  /// Register an externally trained model for a weather condition (used
  /// by ablations, e.g. "without few-shot learning").
  void set_model(Weather weather, std::unique_ptr<models::VideoClassifier> model);

  bool has_model(Weather weather) const;
  models::VideoClassifier& model_for(Weather weather);

  /// MS module: the scene changed — switch the active model. Returns the
  /// simulated switching delay in ms (0 if already active). Throws on a
  /// missing model or a failed switch (fatal-error contract; the live
  /// path uses try_on_scene_change instead).
  double on_scene_change(Weather weather);

  /// Outcome of a non-throwing scene change.
  struct SceneChangeStatus {
    bool ok = false;          // some model is serving after the call
    bool fell_back = false;   // the basic daytime model substituted
    double delay_ms = 0.0;
    Weather active = Weather::Daytime;  // meaningful when ok
    std::string error;        // why the requested model is not serving
  };

  /// Non-throwing scene change with graceful degradation: if the
  /// requested weather's model is missing or its switch fails, fall back
  /// to the basic daytime model (the paper's always-available VC module)
  /// rather than leaving the intersection unguarded. ok=false only when
  /// no model could be made to serve at all.
  SceneChangeStatus try_on_scene_change(Weather weather);

  Weather active_weather() const { return active_; }
  const switching::ModelSwitcher& switcher() const { return switcher_; }
  switching::ModelSwitcher& switcher() { return switcher_; }

  struct Decision {
    int predicted_class = 0;   // 0 danger / 1 safe
    float prob_danger = 1.0f;
    bool warn = true;          // deliver a blind-area warning
    // Model for a trusted classifier verdict; any other value means this
    // is a conservative fail-safe warning (warn is forced true).
    runtime::DecisionSource source = runtime::DecisionSource::Model;
  };

  /// The conservative decision the live path emits when the model cannot
  /// be trusted: warn, assume danger, tagged with the reason.
  static Decision fail_safe_decision(runtime::DecisionSource reason);

  /// Classify a 32-frame occupancy window with the active model.
  Decision classify(const std::vector<vision::Image>& window);

  /// Classify with a specific weather's model (evaluation helpers).
  Decision classify_as(Weather weather, const std::vector<vision::Image>& window);

  /// Classify several windows with one weather's model in a single
  /// (N, 1, T, H, W) forward pass. The per-window math is identical to
  /// classify_as — every layer treats batch samples independently, so
  /// result[i] is bit-identical to classify_as(weather, *windows[i]).
  /// This is the multi-stream serving layer's inference entry point; the
  /// caller guarantees all windows want the same weather (a batch must
  /// never straddle a model switch).
  std::vector<Decision> classify_batch_as(
      Weather weather, const std::vector<const std::vector<vision::Image>*>& windows);

 private:
  void register_profile(Weather weather);

  SafeCrossConfig config_;
  std::map<Weather, std::unique_ptr<models::VideoClassifier>> models_;
  switching::ModelSwitcher switcher_;
  Weather active_ = Weather::Daytime;
  bool any_active_ = false;
};

}  // namespace safecross::core
