#include "core/safecross.h"

#include <stdexcept>

#include "models/tensor_ops.h"
#include "nn/loss.h"

namespace safecross::core {

SafeCross::SafeCross(SafeCrossConfig config)
    : config_(config), switcher_(config.gpu, config.policy) {}

void SafeCross::register_profile(Weather weather) {
  // The MS module reasons about the deployment-scale backbone the paper
  // runs (SlowFast R50), not our scaled-down trainer — all weather models
  // share the architecture, so they share the transfer/compute profile.
  switching::ModelProfile profile = switching::slowfast_r50_profile();
  profile.name = std::string("safecross-") + vision::weather_name(weather);
  switcher_.register_model(vision::weather_name(weather), std::move(profile));
}

float SafeCross::train_basic(const std::vector<const VideoSegment*>& daytime_train) {
  auto model = std::make_unique<models::SlowFast>(config_.model);
  const float loss = fewshot::train_classifier(*model, daytime_train, config_.basic_train);
  models_[Weather::Daytime] = std::move(model);
  register_profile(Weather::Daytime);
  return loss;
}

void SafeCross::adapt_weather(Weather weather,
                              const std::vector<const VideoSegment*>& few_samples) {
  const auto it = models_.find(Weather::Daytime);
  if (it == models_.end()) {
    throw std::logic_error("SafeCross: train_basic() before adapt_weather()");
  }
  models_[weather] = fewshot::fewshot_transfer(*it->second, few_samples, config_.fsl_train);
  register_profile(weather);
}

float SafeCross::meta_train(const std::vector<fewshot::Task>& tasks,
                            const fewshot::MamlConfig& config) {
  const auto it = models_.find(Weather::Daytime);
  if (it == models_.end()) {
    throw std::logic_error("SafeCross: train_basic() before meta_train()");
  }
  fewshot::Maml maml(config);
  return maml.meta_train(*it->second, tasks);
}

void SafeCross::set_model(Weather weather, std::unique_ptr<models::VideoClassifier> model) {
  models_[weather] = std::move(model);
  register_profile(weather);
}

bool SafeCross::has_model(Weather weather) const { return models_.count(weather) > 0; }

models::VideoClassifier& SafeCross::model_for(Weather weather) {
  const auto it = models_.find(weather);
  if (it == models_.end()) {
    throw std::invalid_argument(std::string("SafeCross: no model for ") +
                                vision::weather_name(weather));
  }
  return *it->second;
}

double SafeCross::on_scene_change(Weather weather) {
  model_for(weather);  // validate
  if (any_active_ && weather == active_) return 0.0;
  const double delay = switcher_.switch_to(vision::weather_name(weather));
  active_ = weather;
  any_active_ = true;
  return delay;
}

SafeCross::SceneChangeStatus SafeCross::try_on_scene_change(Weather weather) {
  SceneChangeStatus status;
  if (any_active_ && weather == active_ && has_model(weather)) {
    status.ok = true;
    status.active = active_;
    return status;
  }
  if (has_model(weather)) {
    const auto attempt = switcher_.try_switch_to(vision::weather_name(weather));
    if (attempt.ok) {
      active_ = weather;
      any_active_ = true;
      status.ok = true;
      status.delay_ms = attempt.delay_ms;
      status.active = active_;
      return status;
    }
    status.error = attempt.error;
  } else {
    status.error = std::string("no model for ") + vision::weather_name(weather);
  }

  // Requested model unavailable: fall back to the basic daytime model so
  // the intersection is guarded by *something* rather than nothing.
  if (weather != Weather::Daytime && has_model(Weather::Daytime)) {
    if (any_active_ && active_ == Weather::Daytime) {
      status.ok = true;
      status.fell_back = true;
      status.active = active_;
      return status;
    }
    const auto fallback = switcher_.try_switch_to(vision::weather_name(Weather::Daytime));
    if (fallback.ok) {
      active_ = Weather::Daytime;
      any_active_ = true;
      status.ok = true;
      status.fell_back = true;
      status.delay_ms = fallback.delay_ms;
      status.active = active_;
      return status;
    }
    status.error += "; daytime fallback failed: " + fallback.error;
  }
  return status;
}

SafeCross::Decision SafeCross::fail_safe_decision(runtime::DecisionSource reason) {
  Decision d;
  d.predicted_class = 0;  // assume danger
  d.prob_danger = 1.0f;
  d.warn = true;
  d.source = reason;
  return d;
}

namespace {

/// One decision from one softmax row — shared by the single-window and
/// batched paths so they cannot drift.
SafeCross::Decision decision_from_probs(const float* probs, float warn_threshold) {
  SafeCross::Decision d;
  d.prob_danger = probs[0];  // class 0 = danger
  d.predicted_class = probs[1] > probs[0] ? 1 : 0;
  d.warn = d.prob_danger >= warn_threshold;
  return d;
}

}  // namespace

SafeCross::Decision SafeCross::classify_as(Weather weather,
                                           const std::vector<vision::Image>& window) {
  models::VideoClassifier& model = model_for(weather);
  const nn::Tensor clip = models::clip_to_tensor(window);
  const nn::Tensor scores = model.forward(clip, /*training=*/false);
  const nn::Tensor probs = nn::softmax(scores);
  return decision_from_probs(probs.data(), config_.warn_threshold);
}

std::vector<SafeCross::Decision> SafeCross::classify_batch_as(
    Weather weather, const std::vector<const std::vector<vision::Image>*>& windows) {
  if (windows.empty()) return {};
  models::VideoClassifier& model = model_for(weather);
  const nn::Tensor batch = models::clips_to_batch(windows);
  const nn::Tensor scores = model.forward(batch, /*training=*/false);
  const nn::Tensor probs = nn::softmax(scores);
  const int k = probs.dim(1);
  std::vector<Decision> decisions;
  decisions.reserve(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    decisions.push_back(
        decision_from_probs(probs.data() + i * static_cast<std::size_t>(k),
                            config_.warn_threshold));
  }
  return decisions;
}

SafeCross::Decision SafeCross::classify(const std::vector<vision::Image>& window) {
  if (!any_active_) throw std::logic_error("SafeCross: no active model; call on_scene_change()");
  return classify_as(active_, window);
}

}  // namespace safecross::core
