#include "core/throughput.h"

namespace safecross::core {

ThroughputReport throughput_experiment(SafeCross& safecross,
                                       const std::vector<const VideoSegment*>& blind_segments) {
  ThroughputReport report;
  for (const VideoSegment* seg : blind_segments) {
    ++report.blind_segments;
    const int truth = seg->binary_label();
    if (truth == 0) {
      ++report.class0;
    } else {
      ++report.class1;
    }
    safecross.on_scene_change(seg->weather);
    const SafeCross::Decision d = safecross.classify(seg->frames);
    if (d.predicted_class == 1) ++report.judged_safe;
    if (d.predicted_class == truth) ++report.correct;
    if (d.predicted_class == 1 && truth == 0) ++report.missed_threats;
  }
  return report;
}

std::vector<const VideoSegment*> select_blind_test_set(
    const std::vector<const VideoSegment*>& pool, std::size_t class0_cap, std::size_t class1_cap) {
  std::vector<const VideoSegment*> out;
  std::size_t c0 = 0, c1 = 0;
  for (const VideoSegment* seg : pool) {
    if (!seg->blind_area) continue;
    if (seg->binary_label() == 0 && c0 < class0_cap) {
      out.push_back(seg);
      ++c0;
    } else if (seg->binary_label() == 1 && c1 < class1_cap) {
      out.push_back(seg);
      ++c1;
    }
    if (c0 >= class0_cap && c1 >= class1_cap) break;
  }
  return out;
}

}  // namespace safecross::core
