#include "core/throughput.h"

#include <algorithm>
#include <map>

namespace safecross::core {

ThroughputReport throughput_experiment(SafeCross& safecross,
                                       const std::vector<const VideoSegment*>& blind_segments) {
  ThroughputReport report;
  for (const VideoSegment* seg : blind_segments) {
    ++report.blind_segments;
    const int truth = seg->binary_label();
    if (truth == 0) {
      ++report.class0;
    } else {
      ++report.class1;
    }
    safecross.on_scene_change(seg->weather);
    const SafeCross::Decision d = safecross.classify(seg->frames);
    if (d.predicted_class == 1) ++report.judged_safe;
    if (d.predicted_class == truth) ++report.correct;
    if (d.predicted_class == 1 && truth == 0) ++report.missed_threats;
  }
  return report;
}

ThroughputReport throughput_experiment_batched(
    SafeCross& safecross, const std::vector<const VideoSegment*>& blind_segments,
    std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  // Group by weather, preserving segment order within a group — one
  // switch per group keeps the weather-grouping invariant: a batch never
  // straddles a model switch.
  std::map<Weather, std::vector<const VideoSegment*>> by_weather;
  for (const VideoSegment* seg : blind_segments) by_weather[seg->weather].push_back(seg);

  ThroughputReport report;
  for (const auto& [weather, segs] : by_weather) {
    safecross.on_scene_change(weather);
    for (std::size_t begin = 0; begin < segs.size(); begin += max_batch) {
      const std::size_t end = std::min(segs.size(), begin + max_batch);
      std::vector<const std::vector<vision::Image>*> windows;
      windows.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) windows.push_back(&segs[i]->frames);
      const auto decisions = safecross.classify_batch_as(weather, windows);
      for (std::size_t i = begin; i < end; ++i) {
        const VideoSegment* seg = segs[i];
        const SafeCross::Decision& d = decisions[i - begin];
        ++report.blind_segments;
        const int truth = seg->binary_label();
        if (truth == 0) {
          ++report.class0;
        } else {
          ++report.class1;
        }
        if (d.predicted_class == 1) ++report.judged_safe;
        if (d.predicted_class == truth) ++report.correct;
        if (d.predicted_class == 1 && truth == 0) ++report.missed_threats;
      }
    }
  }
  return report;
}

std::vector<const VideoSegment*> select_blind_test_set(
    const std::vector<const VideoSegment*>& pool, std::size_t class0_cap, std::size_t class1_cap) {
  std::vector<const VideoSegment*> out;
  std::size_t c0 = 0, c1 = 0;
  for (const VideoSegment* seg : pool) {
    if (!seg->blind_area) continue;
    if (seg->binary_label() == 0 && c0 < class0_cap) {
      out.push_back(seg);
      ++c0;
    } else if (seg->binary_label() == 1 && c1 < class1_cap) {
      out.push_back(seg);
      ++c1;
    }
    if (c0 >= class0_cap && c1 >= class1_cap) break;
  }
  return out;
}

}  // namespace safecross::core
