#pragma once
// RealtimeMonitor: SafeCross deployed over a live intersection feed.
//
// Each step advances the simulator one frame, runs the VP path (via the
// SegmentCollector's rolling window), and — whenever a subject vehicle is
// waiting with a full window available — asks the active model for a
// turn/no-turn decision at a fixed stride. Decisions are scored against
// the simulator's ground truth, giving online precision/recall for the
// warning service.
//
// Robustness: an optional runtime::FaultInjector perturbs the frame
// stream (drops, freezes, noise bursts, blackouts) and the model-switch
// path; a runtime::HealthMonitor watchdog tracks staleness, window
// completeness and the per-decision deadline. With the fail-safe policy
// enabled (default) the monitor *fails conservative*: whenever the window
// is gapped/stale, a switch is in flight or failed, or the classifier
// blows its deadline, it emits a warn=true decision tagged with a
// runtime::DecisionSource reason code instead of trusting the model.
// With no injector and no faults, decisions are bit-identical to the
// policy-free path.

#include "core/safecross.h"
#include "dataset/collector.h"
#include "runtime/fault_injector.h"
#include "runtime/health_monitor.h"

namespace safecross::core {

struct MonitorConfig {
  dataset::CollectorConfig vp;  // vp.approach selects which turners to guard
  int decision_stride = 8;  // frames between decisions while a subject waits
  // No decisions until this many frames have streamed: the background
  // model and the traffic state need a moment before windows are
  // representative (vehicles "appear" at the world edge during the first
  // seconds, which reads as threats materializing from nowhere).
  int warmup_frames = 90;
  // Fail-conservative decision policy (see header comment). Disable to get
  // the pre-robustness fail-silent behaviour (the bench's baseline arm).
  bool fail_safe_policy = true;
  runtime::HealthConfig health;
};

class RealtimeMonitor {
 public:
  /// `injector` (optional, not owned, may be nullptr) perturbs the frame
  /// stream and the model-switch path for robustness evaluation.
  RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                  const sim::CameraModel& camera, MonitorConfig config, std::uint64_t seed,
                  runtime::FaultInjector* injector = nullptr);

  /// Uninstalls the switch-failure hook it installed (if any).
  ~RealtimeMonitor();

  struct Tick {
    double sim_time = 0.0;
    bool subject_waiting = false;
    bool decision_made = false;
    SafeCross::Decision decision;
    bool danger_truth = false;
    bool blind_area = false;
    runtime::FrameFault frame_fault = runtime::FrameFault::None;
  };

  /// Advance one frame; returns what happened.
  Tick step();

  // --- online scorecard ---
  std::size_t decisions() const { return decisions_; }
  std::size_t warnings() const { return warnings_; }
  std::size_t correct() const { return correct_; }
  std::size_t missed_threats() const { return missed_threats_; }    // said safe, was danger
  std::size_t false_warnings() const { return false_warnings_; }    // said danger, was safe
  double accuracy() const {
    return decisions_ ? static_cast<double>(correct_) / decisions_ : 0.0;
  }

  // Fail-safe decisions are tallied separately from model verdicts so the
  // scorecard can report how often the service ran conservative.
  std::size_t fail_safe_decisions() const { return fail_safe_decisions_; }
  std::size_t model_decisions() const { return decisions_ - fail_safe_decisions_; }
  std::size_t fail_safe_by_source(runtime::DecisionSource s) const {
    return by_source_[static_cast<int>(s)];
  }
  /// Ticks where a decision was due (subject waiting, warmed up, stride
  /// elapsed) — the denominator for warning availability.
  std::size_t decision_opportunities() const { return decision_opportunities_; }
  double availability() const {
    return decision_opportunities_
               ? static_cast<double>(decisions_) / decision_opportunities_
               : 1.0;
  }

  const runtime::HealthMonitor& health() const { return health_; }
  const dataset::SegmentCollector& collector() const { return collector_; }

 private:
  SafeCross::Decision decide();
  void score(const Tick& tick, const SafeCross::Decision& decision);

  SafeCross& safecross_;
  sim::TrafficSimulator& sim_;
  MonitorConfig config_;
  dataset::SegmentCollector collector_;
  runtime::HealthMonitor health_;
  runtime::FaultInjector* injector_ = nullptr;
  int frames_since_decision_ = 0;

  std::size_t decisions_ = 0;
  std::size_t warnings_ = 0;
  std::size_t correct_ = 0;
  std::size_t missed_threats_ = 0;
  std::size_t false_warnings_ = 0;
  std::size_t fail_safe_decisions_ = 0;
  std::size_t decision_opportunities_ = 0;
  std::size_t by_source_[runtime::kDecisionSourceCount] = {};
};

}  // namespace safecross::core
