#pragma once
// RealtimeMonitor: SafeCross deployed over a live intersection feed.
//
// Each step advances the simulator one frame, runs the VP path (via the
// SegmentCollector's rolling window), and — whenever a subject vehicle is
// waiting with a full window available — asks the active model for a
// turn/no-turn decision at a fixed stride. Decisions are scored against
// the simulator's ground truth, giving online precision/recall for the
// warning service.
//
// Robustness: an optional runtime::FaultInjector perturbs the frame
// stream (drops, freezes, noise bursts, blackouts) and the model-switch
// path; a runtime::HealthMonitor watchdog tracks staleness, window
// completeness and the per-decision deadline. With the fail-safe policy
// enabled (default) the monitor *fails conservative*: whenever the window
// is gapped/stale, a switch is in flight or failed, or the classifier
// blows its deadline, it emits a warn=true decision tagged with a
// runtime::DecisionSource reason code instead of trusting the model.
// With no injector and no faults, decisions are bit-identical to the
// policy-free path.
//
// Execution modes:
//   * synchronous (default) — step() runs capture, collection and the
//     decision in one call on the caller's thread; bit-identical to the
//     pre-pipeline monitor.
//   * pipelined (MonitorConfig::pipelined) — run() decomposes the loop
//     into three supervised stage threads connected by bounded queues:
//
//       capture ──frame slots──▶ collect ──decision jobs──▶ decide
//       (camera pacing,          (fault fate, bg-sub/remap   (classifier +
//        deadline clock)          window assembly, gates)     scoring)
//
//     Queues apply backpressure first and shed oldest-first when a stage
//     stalls past the push timeout; a runtime::Supervisor restarts a
//     crashed stage with capped exponential backoff, and a stage that
//     exhausts its retry budget latches the HealthMonitor into FailSafe
//     while a degraded fallback keeps conservative warnings flowing.

#include <chrono>
#include <memory>
#include <vector>

#include "core/safecross.h"
#include "core/stream_policy.h"
#include "dataset/collector.h"
#include "runtime/fault_injector.h"
#include "runtime/health_monitor.h"
#include "runtime/pipeline.h"
#include "runtime/recalibration.h"
#include "vision/calibration.h"

namespace safecross::core {

struct MonitorConfig {
  dataset::CollectorConfig vp;  // vp.approach selects which turners to guard
  int decision_stride = 8;  // frames between decisions while a subject waits
  // No decisions until this many frames have streamed: the background
  // model and the traffic state need a moment before windows are
  // representative (vehicles "appear" at the world edge during the first
  // seconds, which reads as threats materializing from nowhere).
  int warmup_frames = 90;
  // Fail-conservative decision policy (see header comment). Disable to get
  // the pre-robustness fail-silent behaviour (the bench's baseline arm).
  bool fail_safe_policy = true;
  runtime::HealthConfig health;
  // Threaded staged pipeline (see header comment). Off by default: the
  // synchronous path stays bit-identical to pre-pipeline behaviour.
  bool pipelined = false;
  runtime::PipelineConfig pipeline;
  // Online self-healing calibration (see runtime/recalibration.h). Off by
  // default: with it disabled no estimator is built and every frame runs
  // the exact legacy code path.
  runtime::RecalibrationConfig recalib;
};

class RealtimeMonitor {
 public:
  /// `injector` (optional, not owned, may be nullptr) perturbs the frame
  /// stream and the model-switch path for robustness evaluation.
  RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                  const sim::CameraModel& camera, MonitorConfig config, std::uint64_t seed,
                  runtime::FaultInjector* injector = nullptr);

  /// Uninstalls the switch-failure hook it installed (if any).
  ~RealtimeMonitor();

  struct Tick {
    double sim_time = 0.0;
    bool subject_waiting = false;
    bool decision_made = false;
    SafeCross::Decision decision;
    bool danger_truth = false;
    bool blind_area = false;
    runtime::FrameFault frame_fault = runtime::FrameFault::None;
    // Wall-clock cost of the decision, when one was made: classifier time
    // in synchronous mode, capture-to-verdict time in pipelined mode (the
    // whole deadline budget the stages consumed).
    double decision_latency_ms = 0.0;
  };

  /// Advance one frame synchronously; returns what happened. Only valid
  /// in synchronous mode (the pipelined stages own the frame clock).
  Tick step();

  /// Drive `frames` frame slots to completion: a step() loop in
  /// synchronous mode, the supervised staged pipeline in pipelined mode
  /// (per-tick results are not surfaced there — read the scorecard).
  void run(std::size_t frames);

  // --- online scorecard (delegates to the shared StreamScorecard) ---
  std::size_t decisions() const { return scorecard_.decisions(); }
  std::size_t warnings() const { return scorecard_.warnings(); }
  std::size_t correct() const { return scorecard_.correct(); }
  std::size_t missed_threats() const { return scorecard_.missed_threats(); }
  std::size_t false_warnings() const { return scorecard_.false_warnings(); }
  double accuracy() const { return scorecard_.accuracy(); }

  // Fail-safe decisions are tallied separately from model verdicts so the
  // scorecard can report how often the service ran conservative.
  std::size_t fail_safe_decisions() const { return scorecard_.fail_safe_decisions(); }
  std::size_t model_decisions() const { return scorecard_.model_decisions(); }
  std::size_t fail_safe_by_source(runtime::DecisionSource s) const {
    return scorecard_.fail_safe_by_source(s);
  }
  /// Ticks where a decision was due (subject waiting, warmed up, stride
  /// elapsed) — the denominator for warning availability.
  std::size_t decision_opportunities() const { return scorecard_.decision_opportunities(); }
  double availability() const { return scorecard_.availability(); }

  // --- decision-latency scorecard (ms; 0 when no decisions were made) ---
  double decision_latency_p50() const { return scorecard_.latency_p50(); }
  double decision_latency_p99() const { return scorecard_.latency_p99(); }

  const StreamScorecard& scorecard() const { return scorecard_; }

  // --- pipeline scorecard (all zero in synchronous mode) ---
  std::size_t frames_shed() const { return frames_shed_; }        // capture→collect shedding
  std::size_t decisions_shed() const { return decisions_shed_; }  // collect→decide shedding
  std::size_t stage_restarts() const { return stage_restarts_; }
  std::size_t stages_gave_up() const { return stages_gave_up_; }
  std::size_t stage_crashes_injected() const { return stage_crashes_; }

  const runtime::HealthMonitor& health() const { return health_; }
  const dataset::SegmentCollector& collector() const { return collector_; }

  /// The self-healing calibration loop, or nullptr when recalib.enabled
  /// is false (counters, state, lineage — see runtime/recalibration.h).
  const runtime::RecalibrationLoop* recalibration() const { return recalib_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// One decision hand-off between the collect and decide stages. The
  /// collect stage resolves every state-dependent gate while it still
  /// owns the collector/health state; the decide stage only runs the
  /// classifier (gate == Model) or emits the tagged conservative warn.
  struct PendingDecision {
    Tick tick;
    runtime::DecisionSource gate = runtime::DecisionSource::Model;
    std::vector<vision::Image> window;  // populated only when gate == Model
    Clock::time_point captured;         // start of the deadline budget
  };

  /// Shared per-frame bookkeeping: collector step + health events + tick
  /// assembly + due/opportunity accounting. Identical in both modes.
  Tick ingest(runtime::FrameFault fault, bool& due);
  SafeCross::Decision decide();
  void score(const Tick& tick, const SafeCross::Decision& decision);
  void record_latency(double ms) { scorecard_.record_latency(ms); }

  void run_pipelined(std::size_t frames);

  SafeCross& safecross_;
  sim::TrafficSimulator& sim_;
  const sim::CameraModel& camera_;
  MonitorConfig config_;
  dataset::SegmentCollector collector_;
  runtime::HealthMonitor health_;
  runtime::FaultInjector* injector_ = nullptr;
  std::unique_ptr<vision::CalibrationEstimator> estimator_;
  std::unique_ptr<runtime::RecalibrationLoop> recalib_;
  int frames_since_decision_ = 0;

  StreamScorecard scorecard_;

  std::size_t frames_shed_ = 0;
  std::size_t decisions_shed_ = 0;
  std::size_t stage_restarts_ = 0;
  std::size_t stages_gave_up_ = 0;
  std::size_t stage_crashes_ = 0;
};

}  // namespace safecross::core
