#pragma once
// RealtimeMonitor: SafeCross deployed over a live intersection feed.
//
// Each step advances the simulator one frame, runs the VP path (via the
// SegmentCollector's rolling window), and — whenever a subject vehicle is
// waiting with a full window available — asks the active model for a
// turn/no-turn decision at a fixed stride. Decisions are scored against
// the simulator's ground truth, giving online precision/recall for the
// warning service.

#include "core/safecross.h"
#include "dataset/collector.h"

namespace safecross::core {

struct MonitorConfig {
  dataset::CollectorConfig vp;  // vp.approach selects which turners to guard
  int decision_stride = 8;  // frames between decisions while a subject waits
  // No decisions until this many frames have streamed: the background
  // model and the traffic state need a moment before windows are
  // representative (vehicles "appear" at the world edge during the first
  // seconds, which reads as threats materializing from nowhere).
  int warmup_frames = 90;
};

class RealtimeMonitor {
 public:
  RealtimeMonitor(SafeCross& safecross, sim::TrafficSimulator& sim,
                  const sim::CameraModel& camera, MonitorConfig config, std::uint64_t seed);

  struct Tick {
    double sim_time = 0.0;
    bool subject_waiting = false;
    bool decision_made = false;
    SafeCross::Decision decision;
    bool danger_truth = false;
    bool blind_area = false;
  };

  /// Advance one frame; returns what happened.
  Tick step();

  // --- online scorecard ---
  std::size_t decisions() const { return decisions_; }
  std::size_t warnings() const { return warnings_; }
  std::size_t correct() const { return correct_; }
  std::size_t missed_threats() const { return missed_threats_; }    // said safe, was danger
  std::size_t false_warnings() const { return false_warnings_; }    // said danger, was safe
  double accuracy() const {
    return decisions_ ? static_cast<double>(correct_) / decisions_ : 0.0;
  }

 private:
  SafeCross& safecross_;
  sim::TrafficSimulator& sim_;
  MonitorConfig config_;
  dataset::SegmentCollector collector_;
  int frames_since_decision_ = 0;

  std::size_t decisions_ = 0;
  std::size_t warnings_ = 0;
  std::size_t correct_ = 0;
  std::size_t missed_threats_ = 0;
  std::size_t false_warnings_ = 0;
};

}  // namespace safecross::core
