#include "core/weather_detect.h"

#include <cmath>

#include "vision/blobs.h"
#include "vision/morphology.h"

namespace safecross::core {

WeatherDetector::WeatherDetector(WeatherDetectorConfig config) : config_(config) {}

void WeatherDetector::reset() {
  prev_ = vision::Image();
  frames_ = 0;
  density_sum_ = 0.0;
  elongation_sum_ = 0.0;
  height_sum_ = 0.0;
  brightness_sum_ = 0.0;
  contrast_sum_ = 0.0;
  brightness_samples_ = 0;
  elongation_samples_ = 0;
}

void WeatherDetector::observe(const vision::Image& frame) {
  // Photometric features are per-frame (no pair needed).
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    sum += frame.data()[i];
    sq += static_cast<double>(frame.data()[i]) * frame.data()[i];
  }
  const double mean = sum / static_cast<double>(frame.size());
  brightness_sum_ += mean;
  contrast_sum_ += std::sqrt(std::max(0.0, sq / static_cast<double>(frame.size()) - mean * mean));
  ++brightness_samples_;

  if (prev_.empty()) {
    prev_ = frame;
    return;
  }
  const vision::Image raw =
      vision::Image::absdiff(frame, prev_).threshold(config_.diff_threshold);
  prev_ = frame;
  // Opening keeps coherent motion (vehicles); what it REMOVES is the
  // transient speckle we are after.
  const vision::Image opened = vision::opening(raw);
  vision::Image speckle(raw.width(), raw.height());
  std::size_t speckle_px = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const bool s = raw.data()[i] > 0.5f && opened.data()[i] <= 0.5f;
    speckle.data()[i] = s ? 1.0f : 0.0f;
    if (s) ++speckle_px;
  }
  ++frames_;
  density_sum_ += static_cast<double>(speckle_px) / static_cast<double>(raw.size());

  for (const vision::Blob& b : vision::find_blobs(speckle, /*min_area=*/2)) {
    elongation_sum_ += static_cast<double>(b.height()) / static_cast<double>(b.width());
    height_sum_ += b.height();
    ++elongation_samples_;
  }
}

WeatherEstimate WeatherDetector::estimate() const {
  WeatherEstimate e;
  if (brightness_samples_ > 0) {
    e.mean_brightness = brightness_sum_ / brightness_samples_;
    e.mean_contrast = contrast_sum_ / brightness_samples_;
  }
  if (frames_ == 0) return e;
  e.speckle_density = density_sum_ / frames_;
  e.mean_elongation =
      elongation_samples_ > 0 ? elongation_sum_ / elongation_samples_ : 1.0;
  e.mean_blob_height = elongation_samples_ > 0 ? height_sum_ / elongation_samples_ : 0.0;
  e.confident = frames_ >= config_.min_frames;
  // Decision ladder: darkness first (nothing else looks like night), then
  // transient speckle (precipitation), then washed-out contrast (fog).
  if (e.mean_brightness < config_.night_brightness) {
    e.weather = vision::Weather::Night;
  } else if (e.speckle_density >= config_.density_precip) {
    e.weather = e.mean_blob_height >= config_.rain_blob_height ? vision::Weather::Rain
                                                               : vision::Weather::Snow;
  } else if (e.mean_brightness > config_.fog_brightness) {
    e.weather = vision::Weather::Fog;
  } else {
    e.weather = vision::Weather::Daytime;
  }
  return e;
}

}  // namespace safecross::core
