#pragma once
// On-disk persistence for a SafeCross deployment: one checkpoint file per
// weather model (parameters + BatchNorm running statistics), so a
// roadside unit can reboot without retraining and new intersections can
// start from a shipped model set.
//
// Layout: <dir>/<weather>.safecross, each file = params block + buffers
// block in the nn checkpoint format. All weather models share the
// deployment's SlowFast architecture, so the SafeCrossConfig provided at
// load time reconstructs the graphs.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/safecross.h"
#include "runtime/supervisor.h"

namespace safecross::core {

class ModelStore {
 public:
  /// Trailing integrity footer appended after the nn blocks on save():
  /// [u32 kFooterMagic][u32 crc32 of every preceding byte]. Validation
  /// verifies the CRC before any tensor data is parsed, so a mid-file
  /// bit flip (which keeps the leading magic intact) is caught instead of
  /// silently deserializing garbage weights. Footer-less files written by
  /// older builds are still accepted (magic/size checks only).
  static constexpr std::uint32_t kFooterMagic = 0x5AFEF007u;

  explicit ModelStore(std::filesystem::path directory);

  /// Persist every model the framework currently holds. Creates the
  /// directory if needed; overwrites existing checkpoints.
  void save(SafeCross& safecross) const;

  /// One checkpoint that failed validation or deserialization, even after
  /// the transient-read retries: `attempts` records how many times it was
  /// tried before being declared bad.
  struct LoadError {
    dataset::Weather weather;
    std::string message;
    int attempts = 1;
  };

  /// Full outcome of a load: which weathers are now serving and which
  /// checkpoints were skipped, with reasons.
  struct LoadReport {
    std::vector<dataset::Weather> loaded;
    std::vector<LoadError> errors;
    bool all_ok() const { return errors.empty(); }
  };

  /// Load every checkpoint present in the directory into a fresh
  /// framework built from `config`. A bad file — zero-byte, truncated,
  /// corrupted magic, or architecture mismatch — is skipped with a
  /// structured error (and a warning log) instead of aborting the whole
  /// load: a rebooting roadside unit must come up with every healthy
  /// model it has rather than none.
  LoadReport load_report(SafeCross& safecross, const SafeCrossConfig& config) const;

  /// Convenience wrapper over load_report(): returns the loaded weathers,
  /// silently skipping bad checkpoints.
  std::vector<dataset::Weather> load(SafeCross& safecross,
                                     const SafeCrossConfig& config) const;

  /// Weathers with a checkpoint on disk.
  std::vector<dataset::Weather> available() const;

  /// Cache warm-up order: available checkpoints sorted by on-disk size
  /// descending, so the costliest cold loads are resident before traffic
  /// arrives. `max_models` > 0 truncates to the cache capacity; 0 keeps
  /// every available checkpoint. Equal sizes keep the stable
  /// kAllWeathers enumeration order, so the manifest is deterministic.
  std::vector<dataset::Weather> warm_manifest(std::size_t max_models = 0) const;

  std::filesystem::path path_for(dataset::Weather weather) const;

  /// Retry policy for transient read failures during load: a checkpoint
  /// that fails to stat/open/deserialize is re-attempted with bounded
  /// exponential backoff (shared runtime::retry_with_backoff machinery)
  /// before being declared bad — an NFS blip or a concurrent writer must
  /// not cost a rebooting unit one of its weather models. The default is
  /// deliberately tight (a few short retries) so a genuinely corrupt file
  /// still fails fast.
  void set_retry_policy(runtime::BackoffPolicy policy) { retry_policy_ = policy; }
  const runtime::BackoffPolicy& retry_policy() const { return retry_policy_; }

 private:
  std::filesystem::path dir_;
  runtime::BackoffPolicy retry_policy_{/*initial_ms=*/2.0, /*multiplier=*/2.0,
                                       /*max_ms=*/50.0, /*jitter_frac=*/0.2,
                                       /*max_restarts=*/2};
};

}  // namespace safecross::core
