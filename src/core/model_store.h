#pragma once
// On-disk persistence for a SafeCross deployment: one checkpoint file per
// weather model (parameters + BatchNorm running statistics), so a
// roadside unit can reboot without retraining and new intersections can
// start from a shipped model set.
//
// Layout: <dir>/<weather>.safecross, each file = params block + buffers
// block in the nn checkpoint format. All weather models share the
// deployment's SlowFast architecture, so the SafeCrossConfig provided at
// load time reconstructs the graphs.

#include <filesystem>
#include <vector>

#include "core/safecross.h"

namespace safecross::core {

class ModelStore {
 public:
  explicit ModelStore(std::filesystem::path directory);

  /// Persist every model the framework currently holds. Creates the
  /// directory if needed; overwrites existing checkpoints.
  void save(SafeCross& safecross) const;

  /// Load every checkpoint present in the directory into a fresh
  /// framework built from `config` (architectures must match the saved
  /// ones). Returns the loaded weathers.
  std::vector<dataset::Weather> load(SafeCross& safecross,
                                     const SafeCrossConfig& config) const;

  /// Weathers with a checkpoint on disk.
  std::vector<dataset::Weather> available() const;

  std::filesystem::path path_for(dataset::Weather weather) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace safecross::core
