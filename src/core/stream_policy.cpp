#include "core/stream_policy.h"

#include "common/stats.h"

namespace safecross::core {

using runtime::DecisionSource;
using runtime::FrameFault;

const char* stream_priority_name(StreamPriority p) {
  switch (p) {
    case StreamPriority::Critical: return "critical";
    case StreamPriority::Standard: return "standard";
    case StreamPriority::BestEffort: return "best-effort";
  }
  return "?";
}

void apply_frame_fault(dataset::SegmentCollector& collector, runtime::HealthMonitor& health,
                       FrameFault fault) {
  switch (fault) {
    case FrameFault::Dropped:
      collector.step(dataset::FrameStatus::Dropped);
      health.frame_missing();
      break;
    case FrameFault::Frozen:
      collector.step(dataset::FrameStatus::Frozen);
      health.frame_degraded();
      break;
    case FrameFault::Blackout:
      collector.step(dataset::FrameStatus::Corrupted);  // the hook zeroed it
      health.frame_missing();  // the slot is filled but its content is gone
      break;
    case FrameFault::NoiseBurst:
      collector.step(dataset::FrameStatus::Corrupted);
      health.frame_degraded();
      break;
    case FrameFault::None:
      collector.step();
      health.frame_ok();
      break;
  }
}

DecisionSource gate_reason(const runtime::HealthMonitor& health,
                           const dataset::SegmentCollector& collector, int frames_per_segment) {
  // Conservative gates, most severe first. Any hit means the model's
  // verdict cannot be trusted right now: warn instead of guessing.
  if (health.fail_safe_latched()) {
    // A supervised worker exhausted its crash-restart budget: nothing
    // downstream of it is trustworthy until the latch clears.
    return DecisionSource::FailSafeStageDown;
  }
  if (health.switch_failure_latched() || health.switch_in_flight()) {
    return DecisionSource::FailSafeSwitchInFlight;
  }
  if (health.miscalibrated()) {
    // The camera moved and the top-down remap no longer lands where the
    // classifier was trained to look: the window may be complete and fresh
    // yet geometrically wrong, so warn until the recalibration loop swaps
    // a corrected remap in.
    return DecisionSource::FailSafeMiscalibrated;
  }
  const bool window_full =
      collector.window().size() >= static_cast<std::size_t>(frames_per_segment);
  if (!window_full || !collector.window_contiguous()) {
    return DecisionSource::FailSafeIncompleteWindow;
  }
  if (health.window_stale(collector.fresh_in_window(), collector.window().size())) {
    return DecisionSource::FailSafeStaleWindow;
  }
  if (health.state() == runtime::HealthState::FailSafe) {
    // Sustained stream faults (e.g. a blackout short enough to slip past
    // the per-window gates) — the watchdog says the feed is not trustworthy.
    return DecisionSource::FailSafeStaleWindow;
  }
  return DecisionSource::Model;
}

void StreamScorecard::score(bool danger_truth, int predicted_class, bool warn,
                            DecisionSource source) {
  ++decisions_;
  if (warn) ++warnings_;
  if (runtime::is_fail_safe(source)) ++fail_safe_decisions_;
  ++by_source_[static_cast<int>(source)];
  const bool said_danger = predicted_class == 0;
  if (said_danger == danger_truth) {
    ++correct_;
  } else if (danger_truth) {
    ++missed_threats_;
  } else {
    ++false_warnings_;
  }
}

double StreamScorecard::latency_percentile(double p) const {
  if (latencies_.empty()) return 0.0;
  return percentile(latencies_, p);
}

void StreamScorecard::save_state(common::StateWriter& w) const {
  w.u64(decisions_);
  w.u64(warnings_);
  w.u64(correct_);
  w.u64(missed_threats_);
  w.u64(false_warnings_);
  w.u64(fail_safe_decisions_);
  w.u64(decision_opportunities_);
  for (std::size_t n : by_source_) w.u64(n);
  w.u64(latencies_.size());
  for (double ms : latencies_) w.f64(ms);
}

void StreamScorecard::load_state(common::StateReader& r) {
  decisions_ = static_cast<std::size_t>(r.u64());
  warnings_ = static_cast<std::size_t>(r.u64());
  correct_ = static_cast<std::size_t>(r.u64());
  missed_threats_ = static_cast<std::size_t>(r.u64());
  false_warnings_ = static_cast<std::size_t>(r.u64());
  fail_safe_decisions_ = static_cast<std::size_t>(r.u64());
  decision_opportunities_ = static_cast<std::size_t>(r.u64());
  for (std::size_t& n : by_source_) n = static_cast<std::size_t>(r.u64());
  const std::uint64_t n_lat = r.u64();
  latencies_.clear();
  latencies_.reserve(static_cast<std::size_t>(n_lat));
  for (std::uint64_t i = 0; i < n_lat; ++i) latencies_.push_back(r.f64());
}

}  // namespace safecross::core
