#pragma once
// Shared per-stream decision policy for the live warning paths.
//
// The synchronous RealtimeMonitor and the multi-stream serving layer
// (serving::StreamServer) must agree *exactly* on three things, or their
// verdicts drift apart and the batched-equals-sequential parity contract
// breaks:
//
//   * how a frame slot's fate (drop/freeze/noise/blackout) maps onto the
//     SegmentCollector step and the HealthMonitor event stream;
//   * which fail-safe gate fires for a due decision (most severe first);
//   * how a delivered decision is scored against the simulator's ground
//     truth.
//
// This header is the single home of that policy. RealtimeMonitor and the
// serving StreamContext both call these functions, so a change here moves
// every live path in lockstep — and the golden-trace suite pins the
// combined behaviour.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/collector.h"
#include "runtime/fault_injector.h"
#include "runtime/health_monitor.h"

namespace safecross::core {

/// Admission-control tier for a stream. Placement assigns every stream a
/// class; when a shard is oversubscribed the fleet layer degrades its
/// lowest classes to conservative warns (DecisionSource::FleetDegraded)
/// rather than dropping windows — degrade-before-drop. Lower enum value =
/// more important.
enum class StreamPriority : std::uint8_t {
  Critical = 0,    // never degraded by admission control
  Standard = 1,    // degraded only after every BestEffort stream is
  BestEffort = 2,  // first to give up model inference under pressure
};

const char* stream_priority_name(StreamPriority p);

/// Apply one frame slot's fate: exactly one collector step plus one
/// health event per slot. Dropped and blacked-out slots count as missing
/// (the content is gone); frozen and noise-burst slots count as degraded
/// (content present but untrustworthy).
void apply_frame_fault(dataset::SegmentCollector& collector, runtime::HealthMonitor& health,
                       runtime::FrameFault fault);

/// Fail-safe gates for a due decision, most severe first; Model means the
/// classifier's verdict may be trusted.
runtime::DecisionSource gate_reason(const runtime::HealthMonitor& health,
                                    const dataset::SegmentCollector& collector,
                                    int frames_per_segment);

/// Online per-stream scorecard: decisions vs ground truth, fail-safe
/// tallies by reason, warning availability, and decision latency
/// percentiles. Owned by one stream; not thread-safe — in the serving
/// layer only the batcher thread scores.
class StreamScorecard {
 public:
  /// A decision was due this tick (the availability denominator).
  void count_opportunity() { ++decision_opportunities_; }

  /// Account one delivered decision against the tick's ground truth.
  void score(bool danger_truth, int predicted_class, bool warn, runtime::DecisionSource source);

  void record_latency(double ms) { latencies_.push_back(ms); }

  std::size_t decisions() const { return decisions_; }
  std::size_t warnings() const { return warnings_; }
  std::size_t correct() const { return correct_; }
  std::size_t missed_threats() const { return missed_threats_; }  // said safe, was danger
  std::size_t false_warnings() const { return false_warnings_; }  // said danger, was safe
  double accuracy() const {
    return decisions_ ? static_cast<double>(correct_) / decisions_ : 0.0;
  }

  std::size_t fail_safe_decisions() const { return fail_safe_decisions_; }
  std::size_t model_decisions() const { return decisions_ - fail_safe_decisions_; }
  std::size_t fail_safe_by_source(runtime::DecisionSource s) const {
    return by_source_[static_cast<int>(s)];
  }

  std::size_t decision_opportunities() const { return decision_opportunities_; }
  double availability() const {
    return decision_opportunities_
               ? static_cast<double>(decisions_) / decision_opportunities_
               : 1.0;
  }

  // Latency percentiles in ms; 0 when no latencies were recorded.
  double latency_p50() const { return latency_percentile(50.0); }
  double latency_p99() const { return latency_percentile(99.0); }
  double latency_percentile(double p) const;

  // --- checkpoint serialization (all tallies incl. recorded latencies) ---
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  std::size_t decisions_ = 0;
  std::size_t warnings_ = 0;
  std::size_t correct_ = 0;
  std::size_t missed_threats_ = 0;
  std::size_t false_warnings_ = 0;
  std::size_t fail_safe_decisions_ = 0;
  std::size_t decision_opportunities_ = 0;
  std::size_t by_source_[runtime::kDecisionSourceCount] = {};
  std::vector<double> latencies_;
};

}  // namespace safecross::core
