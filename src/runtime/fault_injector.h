#pragma once
// Deterministic fault injection for the live warning pipeline.
//
// SafeCross is a safety-critical roadside service: the interesting failure
// modes are not clean shutdowns but a camera feed that stutters, an encoder
// that repeats frames, a lens that whites out in a storm, and a GPU worker
// whose model swap dies mid-transfer. A seeded FaultInjector perturbs the
// frame stream and the switching infrastructure according to a FaultPlan so
// the robustness bench can *measure* availability, missed-threat rate and
// false-warning rate under controlled fault rates instead of crashing.
//
// Determinism contract: the injector owns its own Rng; the same plan and
// seed always produce the same fault sequence, independent of the rest of
// the pipeline. With the default (all-zero) plan it reports no faults and
// never touches a frame, so a wired-but-idle injector leaves the pipeline
// bit-identical to a build without one.

#include <cstddef>
#include <cstdint>
#include <filesystem>

#include "common/rng.h"
#include "vision/homography.h"
#include "vision/image.h"

namespace safecross::runtime {

/// The fate of one frame slot in the 30 Hz stream.
enum class FrameFault {
  None,        // frame delivered intact
  Dropped,     // frame lost in transit — the slot is empty
  Frozen,      // encoder repeated the previous frame
  NoiseBurst,  // frame delivered but a fraction of cells flipped
  Blackout,    // camera blind (storm/glare/power) — frame is all zeros
};

const char* frame_fault_name(FrameFault f);

/// Geometric (extrinsic) camera faults. Unlike the frame-level faults,
/// these do not damage individual frames — they move the camera, which
/// silently invalidates the calibrated top-down remap and the danger
/// zone. The injector accumulates them into a per-frame perturbation
/// homography (`view_perturbation()`) that maps the *ideal* camera's
/// pixel coordinates to the perturbed camera's, composed about the image
/// centre. All magnitudes are in pixels / radians at the image plane.
struct GeometricFaultPlan {
  // Gradual extrinsic drift: a slow constant-rate translation+rotation
  // ramp in a seeded random direction, active on frames in
  // [drift_start_frame, drift_stop_frame); the accumulated offset is
  // held after the ramp stops (the mount settled, still mis-aimed).
  double drift_px_per_frame = 0.0;
  double drift_rot_per_frame = 0.0;  // radians per frame about the centre
  std::size_t drift_start_frame = 0;
  std::size_t drift_stop_frame = static_cast<std::size_t>(-1);
  // Wind shake: bounded sinusoidal sway with seeded phases; oscillates,
  // never accumulates.
  double shake_amp_px = 0.0;
  double shake_period_frames = 45.0;
  // Bump re-aim: a per-frame probability of a step change that persists
  // (someone or something knocked the mount).
  double bump_prob = 0.0;
  double bump_max_px = 4.0;
  double bump_max_rot = 0.02;

  bool enabled() const {
    return drift_px_per_frame > 0.0 || drift_rot_per_frame > 0.0 ||
           shake_amp_px > 0.0 || bump_prob > 0.0;
  }
};

/// Per-frame fault probabilities plus infrastructure failure rates. All
/// zero by default: a FaultInjector with a default plan is a no-op.
struct FaultPlan {
  double drop_prob = 0.0;     // P(frame lost) per frame
  double freeze_prob = 0.0;   // P(frame duplicated) per frame
  double noise_prob = 0.0;    // P(noise burst) per frame
  float noise_density = 0.25f;  // fraction of cells flipped in a burst
  double blackout_prob = 0.0;   // P(a blackout interval starts) per frame
  int blackout_frames = 30;     // blackout length once started (~1 s)
  double switch_failure_prob = 0.0;  // P(a model switch attempt fails)
  GeometricFaultPlan geometry;       // extrinsic camera faults

  bool enabled() const {
    return drop_prob > 0.0 || freeze_prob > 0.0 || noise_prob > 0.0 ||
           blackout_prob > 0.0 || switch_failure_prob > 0.0 || geometry.enabled();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }

  /// Decide the fate of the next frame slot. At most one fault per frame;
  /// an in-progress blackout overrides the per-frame draws until it ends.
  FrameFault next_frame_fault();

  /// The fault most recently returned by next_frame_fault().
  FrameFault current_frame_fault() const { return current_; }

  /// Apply the current fault's image-level effect in place. NoiseBurst
  /// flips a noise_density fraction of cells (binary occupancy stays
  /// binary); Blackout zeroes the frame. Drop/Freeze are stream-level
  /// (the collector handles them) and None leaves the frame untouched.
  void perturb(vision::Image& frame);

  /// Should the pending model-switch attempt fail? Wire this into
  /// switching::ModelSwitcher's failure hook.
  bool next_switch_fails();

  // --- geometric faults ---
  // Geometric faults draw from their own named RNG stream (seed ^ salt),
  // never from the frame-fault stream: enabling a drift plan must not
  // shift the drop/freeze/noise sequence an existing golden trace pins.

  /// Arm the geometric fault family: the perturbation rotates about the
  /// centre of a width x height image. Until this is called the geometry
  /// is inert and view_perturbation() stays identity even when the plan
  /// has geometric faults.
  void set_frame_size(int width, int height);

  /// True when the plan has geometric faults and set_frame_size was called.
  bool geometry_active() const { return plan_.geometry.enabled() && frame_width_ > 0; }

  /// The current ideal-pixel -> perturbed-pixel homography, advanced once
  /// per next_frame_fault() call while geometry is active. The reference
  /// is stable: callers may hold a pointer for per-frame reads.
  const vision::Homography& view_perturbation() const { return view_; }

  /// Mean image-corner displacement (px) of the current perturbation —
  /// the injector-side ground truth the drift bench sweeps against.
  double perturbation_drift_px() const;

  std::size_t bumps() const { return bumps_; }

  // --- counters (for the bench report) ---
  std::size_t frames_seen() const { return frames_seen_; }
  std::size_t frames_dropped() const { return frames_dropped_; }
  std::size_t frames_frozen() const { return frames_frozen_; }
  std::size_t noise_bursts() const { return noise_bursts_; }
  std::size_t blackout_frames_total() const { return blackout_frames_total_; }
  std::size_t switch_failures() const { return switch_failures_; }

  // --- checkpoint corruption helpers (deterministic, file-level) ---
  // Thin forwards to common/checksum.h so the model-store tests, the fault
  // bench and the kill–recover chaos harness all damage files through the
  // same primitives. Kept here for source compatibility.

  /// Truncate a file to its first `keep_bytes` bytes (0 → empty file).
  static void truncate_file(const std::filesystem::path& path, std::size_t keep_bytes);

  /// Flip every bit of the first 4 bytes (destroys the checkpoint magic).
  static void corrupt_magic(const std::filesystem::path& path);

  /// Overwrite the whole file with `bytes` seeded garbage bytes.
  static void write_garbage(const std::filesystem::path& path, std::size_t bytes,
                            std::uint64_t seed);

  // --- checkpoint serialization ---
  // RNG stream + blackout countdown + counters, so a restored injector
  // deals the same fault sequence the killed one would have.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  void step_geometry();

  FaultPlan plan_;
  Rng rng_;
  FrameFault current_ = FrameFault::None;
  int blackout_left_ = 0;

  std::size_t frames_seen_ = 0;
  std::size_t frames_dropped_ = 0;
  std::size_t frames_frozen_ = 0;
  std::size_t noise_bursts_ = 0;
  std::size_t blackout_frames_total_ = 0;
  std::size_t switch_failures_ = 0;

  // Geometric fault state. geo_rng_ is the isolated named stream; the
  // drift direction / rotation sign / shake phases are drawn lazily on
  // the first active frame so an unarmed injector consumes nothing.
  Rng geo_rng_;
  int frame_width_ = 0;
  int frame_height_ = 0;
  bool geo_seeded_ = false;
  double drift_dir_x_ = 0.0;
  double drift_dir_y_ = 0.0;
  double drift_rot_sign_ = 1.0;
  double shake_phase_x_ = 0.0;
  double shake_phase_y_ = 0.0;
  double bump_dx_ = 0.0;
  double bump_dy_ = 0.0;
  double bump_rot_ = 0.0;
  std::size_t geo_frames_ = 0;
  std::size_t bumps_ = 0;
  vision::Homography view_;  // identity until geometry advances
};

}  // namespace safecross::runtime
