#pragma once
// Crash-restart supervision for the staged monitor pipeline.
//
// A stage thread that dies must degrade the warning service, never kill
// it. The Supervisor owns one thread per registered stage and implements
// the classic supervision loop:
//
//   run body ──throws──▶ restart after capped exponential backoff + jitter
//        │                     │ (attempt <= max_restarts)
//        │ returns             │ attempt > max_restarts
//        ▼                     ▼
//   clean exit            give up: fire the give-up hook (the monitor
//                         latches HealthMonitor into FailSafe) and run
//                         the stage's degraded fallback body, so
//                         conservative warnings keep flowing
//
// The backoff policy (initial delay, multiplier, cap, jitter, retry
// budget) is shared infrastructure: backoff_delay_ms() and
// retry_with_backoff() are also used by ModelStore's transient-read
// retries, so every retry loop in the system ages the same way.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace safecross::runtime {

/// Capped exponential backoff with jitter. The retry budget bounds how
/// many times a failing operation is re-attempted before the caller
/// declares it dead (a supervisor gives up; a loader reports the file bad).
struct BackoffPolicy {
  double initial_ms = 1.0;   // delay before the first retry
  double multiplier = 2.0;   // delay growth per consecutive failure
  double max_ms = 200.0;     // delay cap (keeps recovery probes flowing)
  double jitter_frac = 0.2;  // +/- uniform fraction applied to each delay
  int max_restarts = 5;      // retry budget; exceeding it means giving up
};

/// Delay in ms before retry number `attempt` (1-based): initial_ms *
/// multiplier^(attempt-1), capped at max_ms, jittered by +/- jitter_frac.
double backoff_delay_ms(const BackoffPolicy& policy, int attempt, Rng& rng);

/// Outcome of retry_with_backoff: whether `attempt` eventually returned
/// true, and how many times it ran (1 = first try succeeded).
struct RetryResult {
  bool ok = false;
  int attempts = 0;
};

/// Run `attempt` up to 1 + policy.max_restarts times, sleeping the policy
/// backoff between failures. `sleep_ms` overrides the real sleep (tests,
/// or callers that must remain responsive); pass nullptr for
/// std::this_thread::sleep_for.
RetryResult retry_with_backoff(const BackoffPolicy& policy, std::uint64_t seed,
                               const std::function<bool()>& attempt,
                               const std::function<void(double)>& sleep_ms = nullptr);

class Supervisor {
 public:
  /// A stage body runs the stage's whole consume/produce loop and returns
  /// normally on clean shutdown. Throwing is a crash.
  using Body = std::function<void()>;

  explicit Supervisor(BackoffPolicy policy = {}, std::uint64_t seed = 0x5AFEC805u);
  /// Stops and joins any still-running stages.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Register a stage before start().
  ///   body     — the supervised loop; restarted with backoff on throw.
  ///   fallback — degraded-mode body run after the retry budget is
  ///              exhausted (exceptions inside it are swallowed; it is
  ///              the last line of defence, not a restart candidate).
  ///   on_exit  — always runs when the stage thread terminates, whatever
  ///              the path (clean, gave-up, stop): close downstream
  ///              queues here so consumers never wait on a dead producer.
  void add_stage(std::string name, Body body, Body fallback = nullptr, Body on_exit = nullptr);

  /// Fired (from the failing stage's own thread) when a stage exhausts
  /// its retry budget. Must be thread-safe; set before start().
  void set_give_up_hook(std::function<void(const std::string&)> hook);

  void start();
  /// Wait for every stage thread to finish on its own (normal pipeline
  /// completion: sources exhaust, queues drain, sinks exit).
  void join();
  /// Abnormal termination: raise the stop flag (visible to bodies via
  /// stop_requested()), interrupt any backoff sleep, and join.
  void stop_and_join();

  bool stop_requested() const { return stop_.load(std::memory_order_acquire); }

  // --- scorecard (exact once joined) ---
  std::size_t stage_count() const { return stages_.size(); }
  const std::string& stage_name(std::size_t i) const { return stages_[i]->name; }
  std::size_t restarts(std::size_t i) const { return stages_[i]->restarts.load(); }
  bool gave_up(std::size_t i) const { return stages_[i]->gave_up.load(); }
  std::size_t total_restarts() const;
  std::size_t stages_gave_up() const;

 private:
  struct Stage {
    std::string name;
    Body body;
    Body fallback;
    Body on_exit;
    std::thread thread;
    std::atomic<std::size_t> restarts{0};
    std::atomic<bool> gave_up{false};
  };

  void run_stage(Stage& stage, std::uint64_t seed);
  /// Sleep `ms`, waking early if stop is requested; false on early wake.
  bool interruptible_sleep(double ms);

  BackoffPolicy policy_;
  std::uint64_t seed_;
  std::function<void(const std::string&)> give_up_hook_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
};

}  // namespace safecross::runtime
