#include "runtime/recalibration.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace safecross::runtime {

const char* calibration_state_name(CalibrationState s) {
  switch (s) {
    case CalibrationState::Calibrated: return "calibrated";
    case CalibrationState::Miscalibrated: return "miscalibrated";
    case CalibrationState::Recalibrating: return "recalibrating";
  }
  return "?";
}

double view_drift_px(const vision::Homography& a, const vision::Homography& b, int width,
                     int height) {
  const double w = width - 1, h = height - 1;
  const vision::Point2 corners[4] = {{0, 0}, {w, 0}, {0, h}, {w, h}};
  double sum = 0.0;
  for (const vision::Point2& c : corners) {
    const vision::Point2 pa = a.apply(c);
    const vision::Point2 pb = b.apply(c);
    sum += std::hypot(pa.x - pb.x, pa.y - pb.y);
  }
  return sum / 4.0;
}

RecalibrationLoop::RecalibrationLoop(RecalibrationConfig config,
                                     vision::Homography ideal_image_to_grid,
                                     HealthMonitor* health, EstimateFn estimate, ApplyFn apply)
    : config_(std::move(config)),
      ideal_grid_(ideal_image_to_grid),
      health_(health),
      estimate_(std::move(estimate)),
      apply_(std::move(apply)) {}

bool RecalibrationLoop::start_solve(const vision::CalibrationEstimate& est,
                                    std::uint32_t attempts) {
  vision::Homography view_inv;
  try {
    view_inv = est.view.inverse();
  } catch (const std::exception&) {
    ++estimates_rejected_;
    return false;  // stay Miscalibrated; retry at the next check
  }
  pending_view_ = est.view;
  // Corrected remap: send a live pixel back to its ideal position first,
  // then through the calibrated image->grid map.
  pending_grid_ = ideal_grid_ * view_inv;
  pending_record_ = RecalibrationEntry{};
  pending_record_.residual_rms = est.residual_rms;
  pending_record_.drift_px = last_drift_px_;
  pending_record_.attempts = attempts;
  countdown_ = std::max<std::size_t>(1, config_.solve_latency_frames);
  state_ = CalibrationState::Recalibrating;
  return true;
}

void RecalibrationLoop::on_frame(std::uint64_t frame) {
  if (!config_.enabled) return;
  if (state_ == CalibrationState::Recalibrating) {
    --countdown_;
    if (countdown_ > 0) return;
    // Solve landed: atomically swap the corrected calibration in and
    // release the conservative-warn latch.
    applied_view_ = pending_view_;
    apply_(pending_grid_);
    health_->set_miscalibrated(false);
    state_ = CalibrationState::Calibrated;
    pending_record_.frame = frame;
    pending_record_.image_to_grid = pending_grid_.matrix();
    completed_.push_back(pending_record_);
    ++recalibrations_;
    return;
  }
  if (config_.check_every_frames == 0 || frame % config_.check_every_frames != 0) return;
  ++checks_run_;

  if (state_ == CalibrationState::Calibrated) {
    // Drift check: a single estimate attempt — an occasional failed check
    // on a healthy stream is not evidence of miscalibration.
    const vision::CalibrationEstimate est = estimate_(applied_view_);
    if (!est.ok) {
      ++estimates_rejected_;
      return;
    }
    last_drift_px_ =
        view_drift_px(est.view, applied_view_, config_.frame_width, config_.frame_height);
    if (last_drift_px_ <= config_.drift_threshold_px) return;
    ++episodes_;
    health_->set_miscalibrated(true);
    state_ = CalibrationState::Miscalibrated;
    // The detecting estimate doubles as the first solve candidate.
    start_solve(est, 1);
    return;
  }

  // Miscalibrated: the previous candidate was rejected; retry the solve
  // under the backoff budget. The sleep hook is a no-op so the retries
  // stay frame-clocked (deterministic), matching the rest of the runtime.
  vision::CalibrationEstimate est;
  const RetryResult result = retry_with_backoff(
      config_.backoff, frame,
      [&] {
        est = estimate_(applied_view_);
        return est.ok;
      },
      [](double) {});
  if (!result.ok) {
    ++estimates_rejected_;
    return;  // conservative warns persist until a solve is accepted
  }
  last_drift_px_ =
      view_drift_px(est.view, applied_view_, config_.frame_width, config_.frame_height);
  start_solve(est, static_cast<std::uint32_t>(result.attempts));
}

std::vector<RecalibrationEntry> RecalibrationLoop::take_completed() {
  std::vector<RecalibrationEntry> out;
  out.swap(completed_);
  return out;
}

void RecalibrationLoop::write_homography(common::StateWriter& w,
                                         const vision::Homography& h) const {
  for (double v : h.matrix()) w.f64(v);
}

vision::Homography RecalibrationLoop::read_homography(common::StateReader& r) const {
  std::array<double, 9> m{};
  for (double& v : m) v = r.f64();
  return vision::Homography(m);
}

void RecalibrationLoop::save_state(common::StateWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  write_homography(w, applied_view_);
  write_homography(w, pending_view_);
  write_homography(w, pending_grid_);
  w.u32(pending_record_.stream);
  w.u64(pending_record_.frame);
  for (double v : pending_record_.image_to_grid) w.f64(v);
  w.f64(pending_record_.residual_rms);
  w.f64(pending_record_.drift_px);
  w.u32(pending_record_.attempts);
  w.u64(countdown_);
  w.u64(completed_.size());
  for (const RecalibrationEntry& e : completed_) {
    w.u32(e.stream);
    w.u64(e.frame);
    for (double v : e.image_to_grid) w.f64(v);
    w.f64(e.residual_rms);
    w.f64(e.drift_px);
    w.u32(e.attempts);
  }
  w.u64(checks_run_);
  w.u64(episodes_);
  w.u64(recalibrations_);
  w.u64(estimates_rejected_);
  w.f64(last_drift_px_);
}

void RecalibrationLoop::load_state(common::StateReader& r) {
  state_ = static_cast<CalibrationState>(r.u8());
  applied_view_ = read_homography(r);
  pending_view_ = read_homography(r);
  pending_grid_ = read_homography(r);
  pending_record_.stream = r.u32();
  pending_record_.frame = r.u64();
  for (double& v : pending_record_.image_to_grid) v = r.f64();
  pending_record_.residual_rms = r.f64();
  pending_record_.drift_px = r.f64();
  pending_record_.attempts = r.u32();
  countdown_ = static_cast<std::size_t>(r.u64());
  completed_.resize(static_cast<std::size_t>(r.u64()));
  for (RecalibrationEntry& e : completed_) {
    e.stream = r.u32();
    e.frame = r.u64();
    for (double& v : e.image_to_grid) v = r.f64();
    e.residual_rms = r.f64();
    e.drift_px = r.f64();
    e.attempts = r.u32();
  }
  checks_run_ = static_cast<std::size_t>(r.u64());
  episodes_ = static_cast<std::size_t>(r.u64());
  recalibrations_ = static_cast<std::size_t>(r.u64());
  estimates_rejected_ = static_cast<std::size_t>(r.u64());
  last_drift_px_ = r.f64();
}

}  // namespace safecross::runtime
