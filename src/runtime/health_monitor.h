#pragma once
// Watchdog + graceful-degradation state machine for the live warning path.
//
// The pipeline must *fail conservative*, never fail silent: when the frame
// stream stalls, the rolling window is gapped or frozen, a model switch is
// in flight (or died), or the classifier blows its per-decision deadline,
// the service should keep answering — with a conservative "do not turn"
// warning tagged with the reason — rather than crash or trust stale data.
//
// The HealthMonitor consumes per-frame stream events and switching events
// and drives a three-state machine:
//
//     Nominal ──fault──▶ Degraded ──worse──▶ FailSafe
//        ▲                  │ ▲                 │
//        └── healthy streak ┘ └─ healthy streak ┘
//
// Escalation is immediate; de-escalation is one level per sustained
// healthy streak, and a failed model switch latches FailSafe until the
// switcher reports recovery. All thresholds live in HealthConfig.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/state_io.h"

namespace safecross::runtime {

enum class HealthState { Nominal = 0, Degraded = 1, FailSafe = 2 };

const char* health_state_name(HealthState s);

/// Why a live decision came out the way it did. Model means the active
/// classifier's verdict was delivered; every other value is a conservative
/// fail-safe warning (warn = true) emitted without trusting the model.
enum class DecisionSource {
  Model = 0,
  FailSafeIncompleteWindow,  // rolling window gapped by drops, or short
  FailSafeStaleWindow,       // too many frozen/duplicated frames in window
  FailSafeSwitchInFlight,    // model swap in progress or latched failure
  FailSafeDeadline,          // classifier blew the per-decision deadline
  FailSafeStageDown,         // a pipeline stage exhausted its retry budget
  FailSafeMiscalibrated,     // camera drifted past the calibration threshold
  FleetDegraded,             // admission control degraded a low-priority
                             // stream on a hot shard to conservative warns
};

constexpr int kDecisionSourceCount = 8;

const char* decision_source_name(DecisionSource s);

inline bool is_fail_safe(DecisionSource s) { return s != DecisionSource::Model; }

struct HealthConfig {
  int degraded_after_missing = 2;   // consecutive missing frames → Degraded
  int failsafe_after_missing = 8;   // consecutive missing frames → FailSafe
  int recover_after_healthy = 30;   // healthy frames to step down one state
  // Window freshness floor: below this fraction of genuine (non-frozen,
  // non-blacked-out) frames, a full window is still considered stale.
  double min_fresh_fraction = 0.75;
  // Per-decision latency budget in ms; 0 disables the deadline check (the
  // default, so that wall-clock jitter can never perturb offline runs).
  double decision_deadline_ms = 0.0;
  double frame_interval_ms = 1000.0 / 30.0;  // 30 Hz stream
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  const HealthConfig& config() const { return config_; }

  // --- frame-stream events (exactly one per frame slot) ---
  void frame_ok();        // fresh frame delivered intact
  void frame_missing();   // slot empty (drop) or content gone (blackout)
  void frame_degraded();  // frame present but untrustworthy (freeze/noise)

  // --- switching events ---
  /// A model swap started; its simulated latency translates into
  /// ceil(delay_ms / frame_interval_ms) frames of planned unavailability.
  void switch_started(double delay_ms);
  /// The swap failed: latch FailSafe until switch_recovered().
  void switch_failed();
  /// A later swap succeeded: release the latch (state recovers via the
  /// normal healthy-streak path).
  void switch_recovered();

  bool switch_in_flight() const { return switch_frames_left_ > 0; }
  bool switch_failure_latched() const { return switch_failure_latched_; }

  // --- calibration events ---
  /// Latch/clear the miscalibration cause: the recalibration loop detected
  /// residual camera drift past its threshold (on) or swapped a fresh
  /// homography in (off). While latched the monitor holds at least
  /// Degraded and decisions gate to conservative warns
  /// (DecisionSource::FailSafeMiscalibrated). Called from the same thread
  /// that drives the frame events — the tick/collect thread — so this is
  /// a plain bool, not an atomic.
  void set_miscalibrated(bool on) {
    miscalibrated_ = on;
    if (on) escalate(HealthState::Degraded);
  }
  bool miscalibrated() const { return miscalibrated_; }

  // --- supervisor latch ---
  /// Pin FailSafe from outside the frame stream: a pipeline stage
  /// exhausted its crash-restart budget, so no amount of healthy frames
  /// makes the service trustworthy until an operator (or a rebuilt
  /// pipeline) clears the latch. Thread-safe — the supervisor fires this
  /// from a stage thread while the collect stage keeps feeding frame
  /// events; the state machine itself escalates on the next frame event,
  /// keeping `state_` single-writer.
  void latch_fail_safe() { external_latch_.store(true, std::memory_order_release); }
  void clear_fail_safe_latch() { external_latch_.store(false, std::memory_order_release); }
  bool fail_safe_latched() const { return external_latch_.load(std::memory_order_acquire); }

  /// True when the deadline check is enabled and `elapsed_ms` exceeds it.
  bool deadline_blown(double elapsed_ms) const {
    return config_.decision_deadline_ms > 0.0 && elapsed_ms > config_.decision_deadline_ms;
  }

  /// True when `fresh` out of `total` window frames is below the
  /// configured freshness floor (a window of frozen frames reads stale).
  bool window_stale(std::size_t fresh, std::size_t total) const {
    if (total == 0) return true;
    return static_cast<double>(fresh) <
           config_.min_fresh_fraction * static_cast<double>(total);
  }

  HealthState state() const { return state_; }

  // --- scorecard ---
  std::size_t transitions() const { return transitions_; }
  std::size_t frames_in(HealthState s) const { return frames_in_[static_cast<int>(s)]; }
  int missing_streak() const { return missing_streak_; }

  // --- checkpoint serialization ---
  // The full state machine (including the external supervisor latch), so
  // a restored monitor gates the next decision exactly as the killed one
  // would have. Single-threaded context only — recovery runs before any
  // stage threads exist.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  void escalate(HealthState target);
  void on_frame_event();  // shared per-frame bookkeeping (time passes)

  HealthConfig config_;
  std::atomic<bool> external_latch_{false};
  HealthState state_ = HealthState::Nominal;
  int missing_streak_ = 0;
  int healthy_streak_ = 0;
  int switch_frames_left_ = 0;
  bool switch_failure_latched_ = false;
  bool miscalibrated_ = false;
  std::size_t transitions_ = 0;
  std::size_t frames_in_[3] = {0, 0, 0};
};

}  // namespace safecross::runtime
