#include "runtime/health_monitor.h"

#include <cmath>

namespace safecross::runtime {

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::Nominal: return "nominal";
    case HealthState::Degraded: return "degraded";
    case HealthState::FailSafe: return "fail-safe";
  }
  return "?";
}

const char* decision_source_name(DecisionSource s) {
  switch (s) {
    case DecisionSource::Model: return "model";
    case DecisionSource::FailSafeIncompleteWindow: return "failsafe-incomplete-window";
    case DecisionSource::FailSafeStaleWindow: return "failsafe-stale-window";
    case DecisionSource::FailSafeSwitchInFlight: return "failsafe-switch-in-flight";
    case DecisionSource::FailSafeDeadline: return "failsafe-deadline";
    case DecisionSource::FailSafeStageDown: return "failsafe-stage-down";
    case DecisionSource::FailSafeMiscalibrated: return "failsafe-miscalibrated";
    case DecisionSource::FleetDegraded: return "fleet-degraded";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {}

void HealthMonitor::escalate(HealthState target) {
  if (static_cast<int>(target) <= static_cast<int>(state_)) return;
  state_ = target;
  healthy_streak_ = 0;
  ++transitions_;
}

void HealthMonitor::on_frame_event() {
  // The supervisor latch is raised from another thread; the state machine
  // only reacts here, on the frame clock, so state_ stays single-writer.
  if (fail_safe_latched()) escalate(HealthState::FailSafe);
  if (switch_frames_left_ > 0) --switch_frames_left_;
  ++frames_in_[static_cast<int>(state_)];
}

void HealthMonitor::frame_ok() {
  missing_streak_ = 0;
  ++healthy_streak_;
  // De-escalate one level at a time after a sustained healthy streak; a
  // latched switch failure pins FailSafe regardless of stream health.
  if (healthy_streak_ >= config_.recover_after_healthy && state_ != HealthState::Nominal &&
      !switch_failure_latched_ && !miscalibrated_ && !fail_safe_latched() &&
      switch_frames_left_ == 0) {
    state_ = static_cast<HealthState>(static_cast<int>(state_) - 1);
    healthy_streak_ = 0;
    ++transitions_;
  }
  on_frame_event();
}

void HealthMonitor::frame_missing() {
  ++missing_streak_;
  healthy_streak_ = 0;
  if (missing_streak_ >= config_.failsafe_after_missing) {
    escalate(HealthState::FailSafe);
  } else if (missing_streak_ >= config_.degraded_after_missing) {
    escalate(HealthState::Degraded);
  }
  on_frame_event();
}

void HealthMonitor::frame_degraded() {
  // Present-but-untrustworthy frames end any healthy streak and are
  // degraded-grade evidence, but never escalate all the way to FailSafe
  // on their own (the stale-window check guards decisions directly).
  missing_streak_ = 0;
  healthy_streak_ = 0;
  escalate(HealthState::Degraded);
  on_frame_event();
}

void HealthMonitor::switch_started(double delay_ms) {
  const double frames = delay_ms / config_.frame_interval_ms;
  switch_frames_left_ = static_cast<int>(std::ceil(frames));
  if (switch_frames_left_ > 0) escalate(HealthState::Degraded);
}

void HealthMonitor::switch_failed() {
  switch_failure_latched_ = true;
  escalate(HealthState::FailSafe);
}

void HealthMonitor::switch_recovered() { switch_failure_latched_ = false; }

void HealthMonitor::save_state(common::StateWriter& w) const {
  w.boolean(external_latch_.load(std::memory_order_acquire));
  w.u8(static_cast<std::uint8_t>(state_));
  w.i32(missing_streak_);
  w.i32(healthy_streak_);
  w.i32(switch_frames_left_);
  w.boolean(switch_failure_latched_);
  w.boolean(miscalibrated_);
  w.u64(transitions_);
  for (std::size_t n : frames_in_) w.u64(n);
}

void HealthMonitor::load_state(common::StateReader& r) {
  external_latch_.store(r.boolean(), std::memory_order_release);
  state_ = static_cast<HealthState>(r.u8());
  missing_streak_ = r.i32();
  healthy_streak_ = r.i32();
  switch_frames_left_ = r.i32();
  switch_failure_latched_ = r.boolean();
  miscalibrated_ = r.boolean();
  transitions_ = static_cast<std::size_t>(r.u64());
  for (std::size_t& n : frames_in_) n = static_cast<std::size_t>(r.u64());
}

}  // namespace safecross::runtime
