#pragma once
// Online self-healing calibration loop.
//
// Closes the loop between the geometric fault family (FaultInjector) and
// the CalibrationEstimator: on a frame-clocked cadence the loop
// re-estimates the camera's view perturbation against the last applied
// calibration; residual drift past the threshold latches HealthMonitor's
// Miscalibrated cause (decisions degrade to conservative warns through
// the existing DecisionSource gating), a re-estimate runs under
// retry_with_backoff, and after a modeled solve latency the corrected
// image->grid homography atomically swaps into the collector and the
// danger zone is re-derived by the owner's apply callback. Every accepted
// recalibration is surfaced as a RecalibrationRecord for write-ahead
// journaling, so recovery can verify the replayed calibration lineage
// bit-identically.
//
//          drift ≤ threshold            estimate fails
//        ┌─────────────────┐          ┌──────────────┐
//        ▼                 │          ▼              │
//   Calibrated ──drift──▶ Miscalibrated ──estimate──▶ Recalibrating
//        ▲                 (health latched)            │ solve-latency
//        └────────────── swap applied ─────────────────┘ countdown
//
// Determinism contract: everything is frame-clocked — the solve latency
// is counted in frames (like HealthMonitor::switch_started), the retry
// backoff's sleep is a no-op, and the estimator is stateless — so the
// same stream replays the same calibration lineage bit-identically,
// which is what makes kill–recover work.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/state_io.h"
#include "runtime/health_monitor.h"
#include "runtime/journal.h"
#include "runtime/supervisor.h"
#include "vision/calibration.h"
#include "vision/homography.h"

namespace safecross::runtime {

struct RecalibrationConfig {
  bool enabled = false;
  std::size_t check_every_frames = 30;  // drift-check cadence (~1 s at 30 Hz)
  double drift_threshold_px = 0.75;     // mean corner displacement that latches
  std::size_t solve_latency_frames = 30;  // modeled background-solve latency
  int frame_width = 256;   // camera frame dims: the drift metric averages
  int frame_height = 144;  // corner displacement over this rectangle
  BackoffPolicy backoff;                  // estimate retry budget per check
  vision::CalibrationConfig estimator;
};

enum class CalibrationState {
  Calibrated = 0,     // last estimate within threshold
  Miscalibrated = 1,  // drift latched, no accepted solve candidate yet
  Recalibrating = 2,  // candidate accepted, solve latency counting down
};

const char* calibration_state_name(CalibrationState s);

class RecalibrationLoop {
 public:
  /// `estimate` re-estimates the view perturbation from the live frame,
  /// seeded with the last applied estimate (so the estimator only has to
  /// recover drift since the last swap); `apply` swaps the corrected
  /// image->grid homography into the pipeline (collector + danger zone).
  /// Both run on the tick/collect thread inside on_frame().
  using EstimateFn = std::function<vision::CalibrationEstimate(const vision::Homography&)>;
  using ApplyFn = std::function<void(const vision::Homography&)>;

  RecalibrationLoop(RecalibrationConfig config, vision::Homography ideal_image_to_grid,
                    HealthMonitor* health, EstimateFn estimate, ApplyFn apply);

  const RecalibrationConfig& config() const { return config_; }

  /// Advance the loop one frame (call once per frame with the 1-based
  /// frame ordinal, after the frame's fault fate has been applied).
  void on_frame(std::uint64_t frame);

  CalibrationState state() const { return state_; }
  const vision::Homography& applied_view() const { return applied_view_; }

  /// Accepted recalibrations since the last take (for write-ahead
  /// journaling). Records come out in application order.
  std::vector<RecalibrationEntry> take_completed();

  // --- counters / diagnostics ---
  std::size_t checks_run() const { return checks_run_; }
  std::size_t miscalibration_episodes() const { return episodes_; }
  std::size_t recalibrations() const { return recalibrations_; }
  std::size_t estimates_rejected() const { return estimates_rejected_; }
  double last_drift_px() const { return last_drift_px_; }

  // --- checkpoint serialization ---
  // The full loop state (including the pending solve and its countdown),
  // so a restored stream re-detects and re-applies the same calibration
  // lineage the killed one would have. The estimator itself is stateless
  // and needs nothing here.
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  bool start_solve(const vision::CalibrationEstimate& est, std::uint32_t attempts);
  void write_homography(common::StateWriter& w, const vision::Homography& h) const;
  vision::Homography read_homography(common::StateReader& r) const;

  RecalibrationConfig config_;
  vision::Homography ideal_grid_;  // the calibrated-camera image->grid map
  HealthMonitor* health_;
  EstimateFn estimate_;
  ApplyFn apply_;

  CalibrationState state_ = CalibrationState::Calibrated;
  vision::Homography applied_view_;   // identity: perfectly calibrated
  vision::Homography pending_view_;
  vision::Homography pending_grid_;
  RecalibrationEntry pending_record_;
  std::size_t countdown_ = 0;

  std::vector<RecalibrationEntry> completed_;
  std::size_t checks_run_ = 0;
  std::size_t episodes_ = 0;
  std::size_t recalibrations_ = 0;
  std::size_t estimates_rejected_ = 0;
  double last_drift_px_ = 0.0;
};

/// Mean image-corner displacement (px) between two ideal->perturbed view
/// estimates over a width x height frame — the loop's drift metric.
double view_drift_px(const vision::Homography& a, const vision::Homography& b, int width,
                     int height);

}  // namespace safecross::runtime
