#include "runtime/journal.h"

#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/checksum.h"
#include "common/state_io.h"

namespace safecross::runtime {

namespace {

void fsync_file(std::FILE* file) {
  // In-process kills cannot lose user-space buffers, but a machine-level
  // crash can lose the OS cache; fsync is what the policy knob actually
  // buys. Failure here is a real durability violation, not a soft error.
  if (::fsync(::fileno(file)) != 0) {
    throw std::runtime_error("journal: fsync failed");
  }
}

std::string encode_header() {
  common::StateWriter w;
  w.u32(Journal::kMagic);
  w.u32(Journal::kVersion);
  return w.take();
}

bool decode_body(common::StateReader& r, JournalRecord& out) {
  const std::uint8_t type = r.u8();
  if (type == static_cast<std::uint8_t>(JournalRecordType::Decision)) {
    out.type = JournalRecordType::Decision;
    DecisionEntry& d = out.decision;
    d.stream = r.u32();
    d.seq = r.u64();
    d.frame = r.u64();
    d.danger_truth = r.boolean();
    d.predicted_class = r.i32();
    d.prob_danger = r.f32();
    d.warn = r.boolean();
    d.source = r.u8();
    d.latency_ms = r.f64();
    d.owner_epoch = r.u64();
  } else if (type == static_cast<std::uint8_t>(JournalRecordType::ModelSwitch)) {
    out.type = JournalRecordType::ModelSwitch;
    SwitchEntry& s = out.model_switch;
    s.weather = r.u8();
    s.delay_ms = r.f64();
    s.at_decision = r.u64();
  } else if (type == static_cast<std::uint8_t>(JournalRecordType::Recalibration)) {
    out.type = JournalRecordType::Recalibration;
    RecalibrationEntry& c = out.recalibration;
    c.stream = r.u32();
    c.frame = r.u64();
    for (double& v : c.image_to_grid) v = r.f64();
    c.residual_rms = r.f64();
    c.drift_px = r.f64();
    c.attempts = r.u32();
  } else if (type == static_cast<std::uint8_t>(JournalRecordType::ModelSwitchBegin) ||
             type == static_cast<std::uint8_t>(JournalRecordType::ModelSwitchCommit) ||
             type == static_cast<std::uint8_t>(JournalRecordType::ModelSwitchAbort)) {
    out.type = static_cast<JournalRecordType>(type);
    SwitchPhaseEntry& p = out.switch_phase;
    p.switch_id = r.u64();
    p.weather = r.u8();
    p.mode = r.u8();
    p.reason = r.u8();
    p.wall_ms = r.f64();
    p.at_decision = r.u64();
  } else {
    return false;
  }
  // A payload with bytes left over passed the CRC but does not match any
  // record layout we ever wrote — treat as corruption, not as a record.
  return r.at_end();
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::None: return "none";
    case FsyncPolicy::EveryN: return "every-n";
    case FsyncPolicy::Every: return "every";
  }
  return "?";
}

void Journal::open(const std::filesystem::path& path, JournalConfig config,
                   CrashInjector* crash) {
  close();
  config_ = config;
  crash_ = crash;
  records_appended_ = 0;
  records_since_sync_ = 0;

  std::error_code ec;
  const bool fresh =
      !std::filesystem::exists(path, ec) ||
      std::filesystem::file_size(path, ec) == 0;

  file_ = std::fopen(path.string().c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open " + path.string());
  }
  if (fresh) {
    write_bytes(encode_header());
    if (std::fflush(file_) != 0) {
      throw std::runtime_error("journal: header flush failed");
    }
    fsync_file(file_);
  }
}

std::string Journal::encode(const JournalRecord& record) {
  common::StateWriter payload;
  payload.u8(static_cast<std::uint8_t>(record.type));
  if (record.type == JournalRecordType::Decision) {
    const DecisionEntry& d = record.decision;
    payload.u32(d.stream);
    payload.u64(d.seq);
    payload.u64(d.frame);
    payload.boolean(d.danger_truth);
    payload.i32(d.predicted_class);
    payload.f32(d.prob_danger);
    payload.boolean(d.warn);
    payload.u8(d.source);
    payload.f64(d.latency_ms);
    payload.u64(d.owner_epoch);
  } else if (record.type == JournalRecordType::ModelSwitch) {
    const SwitchEntry& s = record.model_switch;
    payload.u8(s.weather);
    payload.f64(s.delay_ms);
    payload.u64(s.at_decision);
  } else if (record.type == JournalRecordType::ModelSwitchBegin ||
             record.type == JournalRecordType::ModelSwitchCommit ||
             record.type == JournalRecordType::ModelSwitchAbort) {
    const SwitchPhaseEntry& p = record.switch_phase;
    payload.u64(p.switch_id);
    payload.u8(p.weather);
    payload.u8(p.mode);
    payload.u8(p.reason);
    payload.f64(p.wall_ms);
    payload.u64(p.at_decision);
  } else {
    const RecalibrationEntry& c = record.recalibration;
    payload.u32(c.stream);
    payload.u64(c.frame);
    for (double v : c.image_to_grid) payload.f64(v);
    payload.f64(c.residual_rms);
    payload.f64(c.drift_px);
    payload.u32(c.attempts);
  }

  common::StateWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.bytes().size()));
  frame.raw(payload.bytes().data(), payload.bytes().size());
  frame.u32(common::crc32(payload.bytes()));
  return frame.take();
}

void Journal::append(const JournalRecord& record) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal: append on closed journal");
  }
  if (crash_ != nullptr) crash_->maybe_crash(CrashPoint::BeforeJournalAppend);

  const std::string bytes = encode(record);

  if (crash_ != nullptr && crash_->fire_now(CrashPoint::MidJournalAppend)) {
    // Simulate a kill half-way through the frame write: flush a genuine
    // torn tail to disk, then die. Replay must drop exactly this frame.
    const std::size_t half = bytes.size() / 2;
    write_bytes(bytes.substr(0, half));
    std::fflush(file_);
    throw CrashInjected{CrashPoint::MidJournalAppend,
                        crash_->hits(CrashPoint::MidJournalAppend)};
  }

  write_bytes(bytes);
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("journal: flush failed");
  }
  ++records_appended_;
  ++records_since_sync_;
  switch (config_.fsync) {
    case FsyncPolicy::None:
      break;
    case FsyncPolicy::EveryN:
      if (records_since_sync_ >= config_.fsync_every) {
        fsync_file(file_);
        records_since_sync_ = 0;
      }
      break;
    case FsyncPolicy::Every:
      fsync_file(file_);
      records_since_sync_ = 0;
      break;
  }
  if (crash_ != nullptr) crash_->maybe_crash(CrashPoint::AfterJournalAppend);
}

void Journal::sync() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("journal: flush failed");
  }
  fsync_file(file_);
  records_since_sync_ = 0;
}

void Journal::close() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

void Journal::write_bytes(const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("journal: short write");
  }
}

Journal::ReplayReport Journal::replay(const std::filesystem::path& path) {
  ReplayReport report;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return report;
  report.missing = false;

  const std::string bytes = common::read_file(path);
  report.file_bytes = bytes.size();

  if (bytes.size() < kHeaderBytes) {
    report.bad_header = true;
    report.tail_error = "journal shorter than header";
    return report;
  }
  {
    common::StateReader header(bytes.data(), kHeaderBytes);
    if (header.u32() != kMagic || header.u32() != kVersion) {
      report.bad_header = true;
      report.tail_error = "bad journal magic/version";
      return report;
    }
  }

  std::size_t pos = kHeaderBytes;
  report.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < 4) {
      report.tail_error = "torn length word";
      break;
    }
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    if (len == 0 || len > kMaxRecordBytes) {
      report.tail_error = "implausible record length";
      break;
    }
    if (remaining < 4u + len + 4u) {
      report.tail_error = "torn record body";
      break;
    }
    const char* payload = bytes.data() + pos + 4;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, payload + len, 4);
    if (common::crc32(payload, len) != stored_crc) {
      report.tail_error = "record checksum mismatch";
      break;
    }
    JournalRecord record;
    bool ok = false;
    try {
      common::StateReader body(payload, len);
      ok = decode_body(body, record);
    } catch (const common::StateError&) {
      ok = false;
    }
    if (!ok) {
      report.tail_error = "record body does not decode";
      break;
    }
    report.records.push_back(record);
    pos += 4u + len + 4u;
    report.valid_bytes = pos;
  }
  report.torn_tail = report.valid_bytes < report.file_bytes;
  return report;
}

}  // namespace safecross::runtime
