#pragma once
// Deterministic process-kill injection for the durability layer.
//
// A roadside unit dies at the worst possible instants: half-way through
// appending a journal record, with a snapshot temp file fully written but
// not yet renamed, right after a rename with the old generations still on
// disk. The chaos harness reproduces those instants *in-process*: the
// durable write paths call CrashInjector::maybe_crash(point) at every
// named crash point, and an armed injector throws CrashInjected at the
// scheduled hit — leaving the on-disk state exactly as a real SIGKILL at
// that instant would (torn tails included, because the "mid" points
// flush a deliberate partial write before throwing).
//
// The exception is the simulated kill: the harness catches it at the top
// of the run, destroys the server, and drives StreamServer::recover()
// against the damaged directory. One injector arms at most one kill, so
// a schedule is a sequence of (point, nth-hit) pairs consumed one crash
// per server incarnation.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace safecross::runtime {

enum class CrashPoint {
  BeforeJournalAppend = 0,  // decision made, nothing durable yet
  MidJournalAppend,         // half the record's frame bytes on disk (torn tail)
  AfterJournalAppend,       // record durable, not yet applied to the scorecard
  BeforeSnapshotWrite,      // snapshot due, nothing written
  MidSnapshotWrite,         // partial snapshot temp file on disk
  BeforeSnapshotRename,     // complete temp file, rename not issued
  AfterSnapshotRename,      // new generation durable, old ones not yet pruned
  // Serving-path model-switch instants (DESIGN.md §14). These fire only in
  // StreamServer runs with a realized switch mode (stop-and-start or
  // pipelined); the legacy discrete-event path never reaches them.
  AfterSwitchBegin,         // SwitchBegin durable, load not started
  MidModelLoad,             // some layer groups transferred, load incomplete
  MidCacheEviction,         // a resident model released, replacement not placed
};

constexpr int kCrashPointCount = 10;

/// The durability-layer subset (journal/snapshot) — points every durable
/// run reaches regardless of serving mode. Harnesses that pick random
/// points for arbitrary runs (the fleet fault injector) draw from this
/// range; the switch points only fire under a realized switch mode.
constexpr int kDurabilityCrashPointCount = 7;

const char* crash_point_name(CrashPoint p);

/// The simulated kill. Deliberately NOT derived from std::exception: the
/// durable paths' defensive catch(const std::exception&) blocks must not
/// swallow a kill, exactly as no handler survives a real SIGKILL.
struct CrashInjected {
  CrashPoint point;
  std::size_t hit = 0;  // which hit of `point` fired (1-based)
};

class CrashInjector {
 public:
  CrashInjector() = default;
  // Copyable for container storage in harness setup code (non-atomic
  // member-wise copy; never copy an injector that live threads are using).
  CrashInjector(const CrashInjector& other) { *this = other; }
  CrashInjector& operator=(const CrashInjector& other) {
    if (this == &other) return *this;
    point_ = other.point_;
    nth_ = other.nth_;
    armed_.store(other.armed_.load(std::memory_order_acquire), std::memory_order_release);
    fired_.store(other.fired_.load(std::memory_order_acquire), std::memory_order_release);
    for (int i = 0; i < kCrashPointCount; ++i) {
      hits_[i].store(other.hits_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    return *this;
  }

  /// Arm the injector: the `nth` (1-based) time execution reaches `point`,
  /// maybe_crash()/fire_now() fires. Re-arming resets the fired latch;
  /// hit counters keep accumulating across arms.
  void arm(CrashPoint point, std::size_t nth);

  /// Disarm without firing (the harness's "let this incarnation live").
  void disarm() { armed_ = false; }

  /// Throw CrashInjected when the armed point's scheduled hit is reached.
  void maybe_crash(CrashPoint point);

  /// As maybe_crash(), but returns true instead of throwing so the call
  /// site can stage a deliberate partial write first ("mid" points).
  /// Fires at most once per arm().
  bool fire_now(CrashPoint point);

  bool fired() const { return fired_.load(std::memory_order_acquire); }
  std::size_t hits(CrashPoint point) const {
    return hits_[static_cast<int>(point)].load(std::memory_order_relaxed);
  }

 private:
  // Atomics because the pipelined serving path fires switch crash points
  // from a loader thread while the deciding thread fires journal/snapshot
  // points; arm()/disarm() remain single-threaded (harness setup).
  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  CrashPoint point_ = CrashPoint::BeforeJournalAppend;
  std::size_t nth_ = 0;
  std::atomic<std::size_t> hits_[kCrashPointCount] = {};
};

}  // namespace safecross::runtime
