#pragma once
// Deterministic process-kill injection for the durability layer.
//
// A roadside unit dies at the worst possible instants: half-way through
// appending a journal record, with a snapshot temp file fully written but
// not yet renamed, right after a rename with the old generations still on
// disk. The chaos harness reproduces those instants *in-process*: the
// durable write paths call CrashInjector::maybe_crash(point) at every
// named crash point, and an armed injector throws CrashInjected at the
// scheduled hit — leaving the on-disk state exactly as a real SIGKILL at
// that instant would (torn tails included, because the "mid" points
// flush a deliberate partial write before throwing).
//
// The exception is the simulated kill: the harness catches it at the top
// of the run, destroys the server, and drives StreamServer::recover()
// against the damaged directory. One injector arms at most one kill, so
// a schedule is a sequence of (point, nth-hit) pairs consumed one crash
// per server incarnation.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace safecross::runtime {

enum class CrashPoint {
  BeforeJournalAppend = 0,  // decision made, nothing durable yet
  MidJournalAppend,         // half the record's frame bytes on disk (torn tail)
  AfterJournalAppend,       // record durable, not yet applied to the scorecard
  BeforeSnapshotWrite,      // snapshot due, nothing written
  MidSnapshotWrite,         // partial snapshot temp file on disk
  BeforeSnapshotRename,     // complete temp file, rename not issued
  AfterSnapshotRename,      // new generation durable, old ones not yet pruned
};

constexpr int kCrashPointCount = 7;

const char* crash_point_name(CrashPoint p);

/// The simulated kill. Deliberately NOT derived from std::exception: the
/// durable paths' defensive catch(const std::exception&) blocks must not
/// swallow a kill, exactly as no handler survives a real SIGKILL.
struct CrashInjected {
  CrashPoint point;
  std::size_t hit = 0;  // which hit of `point` fired (1-based)
};

class CrashInjector {
 public:
  /// Arm the injector: the `nth` (1-based) time execution reaches `point`,
  /// maybe_crash()/fire_now() fires. Re-arming resets the fired latch;
  /// hit counters keep accumulating across arms.
  void arm(CrashPoint point, std::size_t nth);

  /// Disarm without firing (the harness's "let this incarnation live").
  void disarm() { armed_ = false; }

  /// Throw CrashInjected when the armed point's scheduled hit is reached.
  void maybe_crash(CrashPoint point);

  /// As maybe_crash(), but returns true instead of throwing so the call
  /// site can stage a deliberate partial write first ("mid" points).
  /// Fires at most once per arm().
  bool fire_now(CrashPoint point);

  bool fired() const { return fired_; }
  std::size_t hits(CrashPoint point) const {
    return hits_[static_cast<int>(point)];
  }

 private:
  bool armed_ = false;
  bool fired_ = false;
  CrashPoint point_ = CrashPoint::BeforeJournalAppend;
  std::size_t nth_ = 0;
  std::size_t hits_[kCrashPointCount] = {};
};

}  // namespace safecross::runtime
