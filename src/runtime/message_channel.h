#pragma once
// Fault-injectable point-to-point transport for the fleet control plane.
//
// Every FleetController ↔ ShardHost exchange (heartbeats, placement
// commands, drain requests, hand-off transfers) flows through a
// MessageChannel instead of a direct function call, so the control plane
// can be tested against the failure modes a real multi-machine
// deployment faces: lost, delayed, duplicated and reordered messages,
// one-way and full partitions — all *seeded* through a NetFaultPlan so a
// chaos run is reproducible bit-for-bit.
//
// Topology is a star: the controller sits on one end of every link, a
// shard on the other. A link is identified by (shard id, direction);
// FaultFabric derives each message's fate deterministically from
// (plan.seed, shard, direction, per-link send ordinal), never from wall
// clock — except partitions, which are *windows* on the fabric clock
// (ms since the fabric was built) and/or scoped to a fleet wave, because
// a partition is a condition of the world, not of a message.
//
// Delivery semantics mirror a UDP-ish datagram fabric:
//   * send() never blocks and never fails visibly — fate is applied
//     silently (the sender cannot know a packet died);
//   * recv()/try_recv() deliver in deliver_at order, so a delayed or
//     reordered message genuinely arrives late / out of order;
//   * duplication re-enqueues a copy with its own (slightly later)
//     delivery time, the classic retransmit-ghost shape.
//
// Reliability is therefore the *caller's* job: the fleet layer wraps
// every command in request-id + ack + retry-with-backoff (RpcPolicy),
// and every consumer dedupes by request id — exactly the discipline a
// socket transport would force. With a default (all-zero) plan the
// fabric is perfect: every message delivers immediately, in order,
// exactly once — which is how the non-chaos fleet paths run.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

namespace safecross::runtime {

/// One partition window: messages on the matching link(s) in the blocked
/// direction(s) are dropped while the window is open. `shard` narrows to
/// one controller↔shard link (kAllLinks = every link); `wave` narrows to
/// one fleet wave (kAnyWave = any). The window is [from_ms, until_ms) on
/// the fabric clock.
struct NetPartition {
  static constexpr std::size_t kAllLinks = std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kAnyWave = std::numeric_limits<std::size_t>::max();
  enum class Direction : std::uint8_t {
    Both = 0,          // full partition
    ToController = 1,  // one-way: shard→controller blocked (beats lost)
    ToShard = 2,       // one-way: controller→shard blocked (commands lost)
  };

  std::size_t shard = kAllLinks;
  Direction direction = Direction::Both;
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
  std::size_t wave = kAnyWave;
};

/// Seeded per-message fault mix plus partition windows. All-zero (the
/// default) means a perfect network.
struct NetFaultPlan {
  std::uint64_t seed = 0x9E7F1A57ull;
  double drop_prob = 0.0;     // message silently lost
  double dup_prob = 0.0;      // message delivered twice
  double delay_prob = 0.0;    // message held for delay_min..delay_max ms
  double reorder_prob = 0.0;  // message held just long enough to be overtaken
  double delay_min_ms = 1.0;
  double delay_max_ms = 8.0;
  std::vector<NetPartition> partitions;

  bool enabled() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
           reorder_prob > 0.0 || !partitions.empty();
  }
};

/// Per-link delivery accounting, aggregated into the fleet report so a
/// chaos run shows what the transport did to it.
struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;  // envelopes enqueued for the receiver
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partitioned = 0;  // drops owed to an open partition window

  LinkStats& operator+=(const LinkStats& o) {
    sent += o.sent;
    delivered += o.delivered;
    dropped += o.dropped;
    duplicated += o.duplicated;
    delayed += o.delayed;
    reordered += o.reordered;
    partitioned += o.partitioned;
    return *this;
  }
};

/// The seeded fate oracle shared by every channel of one fleet. Owns the
/// fabric clock (epoch = construction) and the current wave (set by the
/// controller at each wave launch; partitions may be wave-scoped).
/// fate() is thread-safe; each call consumes one per-link ordinal.
class FaultFabric {
 public:
  enum class Direction : std::uint8_t { ToController = 0, ToShard = 1 };

  struct Fate {
    bool drop = false;
    bool partitioned = false;  // implies drop
    bool duplicate = false;
    bool reorder = false;
    double delay_ms = 0.0;      // applied to the primary copy
    double dup_delay_ms = 0.0;  // applied to the duplicate copy
  };

  explicit FaultFabric(NetFaultPlan plan);

  /// Current wave for wave-scoped partitions (controller side).
  void set_wave(std::size_t wave) { wave_.store(wave, std::memory_order_relaxed); }
  std::size_t wave() const { return wave_.load(std::memory_order_relaxed); }

  /// Milliseconds since the fabric was built (partition-window clock).
  double now_ms() const;

  /// Decide the fate of the next message on (shard, direction).
  Fate fate(std::size_t shard, Direction direction);

  const NetFaultPlan& plan() const { return plan_; }

 private:
  bool partitioned_now(std::size_t shard, Direction direction, double now) const;

  NetFaultPlan plan_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::size_t> wave_{0};
  std::mutex mu_;  // guards counters_
  // Per-(shard, direction) send ordinals; grown on demand.
  std::vector<std::array<std::uint64_t, 2>> counters_;
};

/// One direction of one controller↔shard link. M must be copyable
/// (duplication and retransmission both copy).
template <typename M>
class MessageChannel {
 public:
  using Clock = std::chrono::steady_clock;

  /// `fabric` may be null → perfect link (no fault plan at all).
  MessageChannel(FaultFabric* fabric, std::size_t shard, FaultFabric::Direction direction)
      : fabric_(fabric), shard_(shard), direction_(direction) {}

  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  /// Fire-and-forget datagram send; fate applied here. Never blocks.
  void send(M msg) {
    FaultFabric::Fate fate;
    if (fabric_ != nullptr) fate = fabric_->fate(shard_, direction_);
    const auto now = Clock::now();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.sent;
    if (closed_) return;
    if (fate.drop) {
      ++stats_.dropped;
      if (fate.partitioned) ++stats_.partitioned;
      return;
    }
    if (fate.delay_ms > 0.0) ++stats_.delayed;
    if (fate.reorder) ++stats_.reordered;
    if (fate.duplicate) {
      ++stats_.duplicated;
      enqueue_locked(msg, now, fate.dup_delay_ms);
    }
    enqueue_locked(std::move(msg), now, fate.delay_ms);
    cv_.notify_all();
  }

  /// Deliver the earliest message whose delivery time has arrived;
  /// nullopt when nothing is deliverable yet (messages still in flight
  /// are NOT waited for — the receiver polls on its own cadence, like a
  /// non-blocking socket read).
  std::optional<M> try_recv() {
    std::lock_guard<std::mutex> lk(mu_);
    return pop_due_locked(Clock::now());
  }

  /// As try_recv(), but waits up to `timeout` for something to become
  /// deliverable.
  std::optional<M> recv(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      if (auto m = pop_due_locked(Clock::now())) return m;
      if (closed_) return std::nullopt;
      const auto now = Clock::now();
      if (now >= deadline) return std::nullopt;
      auto wait_until = deadline;
      if (!q_.empty() && q_.front().deliver_at < wait_until) {
        wait_until = q_.front().deliver_at;
      }
      cv_.wait_until(lk, wait_until);
    }
  }

  /// Messages queued but not yet deliverable (in flight).
  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  LinkStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  struct Envelope {
    M msg;
    Clock::time_point deliver_at;
    std::uint64_t order = 0;  // FIFO tie-break for equal delivery times
  };

  void enqueue_locked(M msg, Clock::time_point now, double delay_ms) {
    Envelope e{std::move(msg),
               now + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(delay_ms)),
               order_++};
    // Sorted insert by (deliver_at, order): delivery order IS the faulted
    // order, so a delayed message is genuinely overtaken.
    auto it = q_.begin();
    while (it != q_.end() && (it->deliver_at < e.deliver_at ||
                              (it->deliver_at == e.deliver_at && it->order < e.order))) {
      ++it;
    }
    q_.insert(it, std::move(e));
    ++stats_.delivered;
  }

  std::optional<M> pop_due_locked(Clock::time_point now) {
    if (q_.empty() || q_.front().deliver_at > now) return std::nullopt;
    M msg = std::move(q_.front().msg);
    q_.erase(q_.begin());
    return msg;
  }

  FaultFabric* fabric_;
  std::size_t shard_;
  FaultFabric::Direction direction_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Envelope> q_;
  std::uint64_t order_ = 0;
  bool closed_ = false;
  LinkStats stats_;
};

/// Retry-with-backoff policy for control-plane RPCs (command + ack over
/// two MessageChannels). The fleet layer resends an unacked command every
/// time its deadline lapses, doubling the wait up to max_timeout_ms;
/// after max_attempts the caller falls back to its reliable path (in
/// this in-process simulation, direct delivery — the "console cable").
struct RpcPolicy {
  double timeout_ms = 8.0;
  double max_timeout_ms = 64.0;
  std::size_t max_attempts = 8;

  double timeout_for_attempt(std::size_t attempt) const {
    double t = timeout_ms;
    for (std::size_t i = 1; i < attempt && t < max_timeout_ms; ++i) t *= 2.0;
    return t < max_timeout_ms ? t : max_timeout_ms;
  }
};

}  // namespace safecross::runtime
