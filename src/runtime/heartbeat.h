#pragma once
// Per-shard health channel for the fleet layer.
//
// Each shard host publishes a small Heartbeat record on a fixed cadence
// while its serving run is on-CPU; the fleet controller drains every
// shard's channel on its own watch cadence and feeds the result into a
// per-shard HealthMonitor (fresh beat → frame_ok, silent interval →
// frame_missing, watermark breach → frame_degraded). Death is therefore
// *inferred from silence* through the existing Nominal→Degraded→FailSafe
// state machine, not signalled — a crashed shard cannot be relied on to
// say goodbye.
//
// Both directions are wait-free with respect to the other side:
//   * publish() uses BoundedQueue::try_push and, when the controller has
//     fallen behind and the channel is full, evicts the oldest beat via
//     push_drop_oldest — the freshest beat is the only one that matters
//     for liveness, and a wedged controller must never stall a shard;
//   * the controller drains with pop(0ms) — it must never block on a
//     sick shard's queue.
//
// Close semantics (pinned by test_heartbeat_close.cpp): close() is a
// *publisher-side* seal. Beats already buffered at close survive and
// remain drainable — the controller's last look at a finished shard must
// see the final beats, not an empty channel — while publish() after
// close is a silent no-op: it returns false, buffers nothing, and counts
// nothing (neither beats_published() nor beats_evicted() moves). A late
// beat from a shard's dying breath must not masquerade as an eviction.
//
// Heartbeats are observability-only: nothing decision-bearing flows
// through this channel, so wall-clock jitter here can never perturb the
// deterministic verdict streams.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "runtime/bounded_queue.h"

namespace safecross::runtime {

struct Heartbeat {
  std::size_t shard = 0;            // publishing shard's index
  std::uint64_t incarnation = 0;    // host-monotonic incarnation ordinal
  std::uint64_t seq = 0;            // beat ordinal, monotonic per incarnation
  std::uint64_t decisions = 0;      // decisions applied so far (progress)
  std::size_t queue_depth = 0;      // inflight windows across stream queues
  double latency_watermark_ms = 0;  // max capture→verdict latency seen
};

class HeartbeatChannel {
 public:
  explicit HeartbeatChannel(std::size_t capacity = 8) : q_(capacity) {}

  /// Shard side. Never blocks: try_push first, evict-oldest when the
  /// controller has fallen behind. Returns false when a stale beat was
  /// evicted or the channel is closed — purely informational. After
  /// close() this is a pure no-op: nothing buffered, nothing counted.
  bool publish(Heartbeat hb) {
    if (q_.closed()) return false;
    if (q_.try_push(hb)) return true;
    q_.push_drop_oldest(hb);
    return false;
  }

  /// Controller side: non-blocking single take, oldest first.
  std::optional<Heartbeat> take() { return q_.pop(std::chrono::milliseconds(0)); }

  /// Controller side: drain everything queued and return only the newest
  /// beat (nullopt when the shard was silent since the last drain).
  std::optional<Heartbeat> drain_latest() {
    std::optional<Heartbeat> latest;
    while (auto hb = take()) latest = hb;
    return latest;
  }

  /// Seal the publisher side. Buffered beats stay drainable via take().
  void close() { q_.close(); }
  bool closed() const { return q_.closed(); }
  std::size_t beats_published() const { return q_.pushed(); }
  std::size_t beats_evicted() const { return q_.shed(); }

 private:
  BoundedQueue<Heartbeat> q_;
};

}  // namespace safecross::runtime
