#pragma once
// Write-ahead decision journal: the durable record of everything the
// stream server has told the intersection.
//
// An append-only log of emitted decisions and engine model-switch events.
// Each record is framed [u32 payload_len][payload][u32 crc32(payload)]
// behind a fixed file header, appended *before* the decision is applied
// to any in-memory scorecard (write-ahead), and flushed according to the
// configured fsync policy. After a process death the journal is the
// ground truth: replay() walks the frames front to back and returns the
// longest valid prefix, tolerating every torn-tail shape a kill can
// leave — a half-written length word, a record cut mid-payload, a bad
// CRC, trailing garbage — without ever throwing or inventing a record
// that was never fully appended.
//
// Recovery contract (used by serving::StreamServer::recover):
//   * a record in the valid prefix was definitely emitted — replaying it
//     instead of re-deciding dedupes the decision (exactly-once);
//   * a record lost to the torn tail was never applied anywhere durable;
//     the deterministic stream re-produces the same window and re-decides
//     it bit-identically, so losing the tail loses no information.
//
// The fsync policy trades steady-state overhead against the amount of
// *OS-buffered* (not torn) tail at risk on a machine-level crash;
// bench_recovery sweeps it. In-process kills (the chaos harness) always
// see every flushed byte.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/crash_point.h"

namespace safecross::runtime {

enum class FsyncPolicy {
  None = 0,     // flush to the OS, never fsync (fastest, risk = OS cache)
  EveryN = 1,   // fsync every fsync_every records
  Every = 2,    // fsync after every record (safest, slowest)
};

const char* fsync_policy_name(FsyncPolicy p);

struct JournalConfig {
  FsyncPolicy fsync = FsyncPolicy::Every;
  std::size_t fsync_every = 32;  // used by FsyncPolicy::EveryN
};

enum class JournalRecordType : std::uint8_t {
  Decision = 1,
  ModelSwitch = 2,
  Recalibration = 3,
  // Serving-path switch protocol (DESIGN.md §14): a switch is write-ahead
  // as Begin, then exactly one terminal record — Commit when the pipelined
  // load lands, Abort when the load fails or recovery finds the Begin
  // dangling after a mid-switch kill.
  ModelSwitchBegin = 4,
  ModelSwitchCommit = 5,
  ModelSwitchAbort = 6,
};

/// One emitted decision. Weather/source enums travel as raw bytes so the
/// journal stays below the serving layer. latency_ms is wall-clock and
/// excluded from the bit-identical stream contract — it is persisted only
/// so a recovered scorecard's latency tallies match the killed run's.
struct DecisionEntry {
  std::uint32_t stream = 0;
  std::uint64_t seq = 0;    // per-stream decision ordinal (0-based)
  std::uint64_t frame = 0;  // 1-based frame ordinal that produced it
  bool danger_truth = false;
  std::int32_t predicted_class = 0;
  float prob_danger = 1.0f;
  bool warn = true;
  std::uint8_t source = 0;  // runtime::DecisionSource
  double latency_ms = 0.0;
  // Ownership epoch the serving incarnation held when it decided (fleet
  // split-brain fencing, DESIGN.md §16). 0 = pre-fleet standalone serving;
  // the fleet mints epochs starting at 1. The post-run epoch audit walks
  // journals and rejects any decision recorded under a stale epoch.
  std::uint64_t owner_epoch = 0;
};

/// One actual engine model swap (audit trail for the switch-amortisation
/// story; not consulted by recovery dedupe).
struct SwitchEntry {
  std::uint8_t weather = 0;  // Weather the engine switched to
  double delay_ms = 0.0;
  std::uint64_t at_decision = 0;  // decisions journaled before the swap
};

/// One accepted online recalibration: the image->grid homography the
/// recalibration loop swapped in, with the diagnostics that justified it.
/// Recovery replays these against the re-derived calibration lineage and
/// requires bit-identical matrices — the calibration history is part of
/// the deterministic stream contract, not advisory metadata.
struct RecalibrationEntry {
  std::uint32_t stream = 0;
  std::uint64_t frame = 0;           // 1-based frame the swap landed on
  std::array<double, 9> image_to_grid{};
  double residual_rms = 0.0;
  double drift_px = 0.0;             // detected drift that triggered it
  std::uint32_t attempts = 0;        // estimate attempts (retry_with_backoff)
};

/// One phase transition of a serving-path model switch. All three phase
/// record types (Begin/Commit/Abort) share this body; `switch_id` pairs a
/// Begin with its terminal record so recovery can audit exactly-once.
/// `reason` is meaningful on Abort only: 0 = unused, 1 = dangling Begin
/// closed by recovery after a mid-switch kill, 2 = load failure at run time.
struct SwitchPhaseEntry {
  std::uint64_t switch_id = 0;
  std::uint8_t weather = 0;   // Weather the switch targets (raw byte)
  std::uint8_t mode = 0;      // serving::SwitchMode the server ran under
  std::uint8_t reason = 0;
  double wall_ms = 0.0;       // load wall time (Commit only; 0 otherwise)
  std::uint64_t at_decision = 0;  // decisions journaled before this phase
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::Decision;
  DecisionEntry decision;
  SwitchEntry model_switch;
  RecalibrationEntry recalibration;
  SwitchPhaseEntry switch_phase;
};

class Journal {
 public:
  static constexpr std::uint32_t kMagic = 0x4C4A5853u;  // "SXJL"
  static constexpr std::uint32_t kVersion = 2;  // v2: DecisionEntry.owner_epoch
  static constexpr std::size_t kHeaderBytes = 8;
  static constexpr std::size_t kMaxRecordBytes = 1u << 20;

  Journal() = default;
  ~Journal() { close(); }

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open for appending, creating the file (with header) when absent or
  /// empty. The caller is responsible for truncating a torn tail first
  /// (recover does: replay, then truncate to valid_bytes, then open) —
  /// appending after an unvalidated tail would bury good records behind
  /// garbage.
  void open(const std::filesystem::path& path, JournalConfig config,
            CrashInjector* crash = nullptr);

  bool is_open() const { return file_ != nullptr; }

  /// Append one record (write-ahead: call this BEFORE applying the
  /// decision). Flushes to the OS always; fsyncs per policy. Crash
  /// points: BeforeJournalAppend, MidJournalAppend (flushes a deliberate
  /// half-record then throws CrashInjected), AfterJournalAppend.
  void append(const JournalRecord& record);

  /// Flush + fsync regardless of policy (end of run).
  void sync();

  void close();

  std::uint64_t records_appended() const { return records_appended_; }

  /// Framed on-disk bytes of one record (exposed for the property suite).
  static std::string encode(const JournalRecord& record);

  struct ReplayReport {
    std::vector<JournalRecord> records;  // longest valid prefix, in order
    std::uint64_t valid_bytes = 0;       // header + intact frames
    std::uint64_t file_bytes = 0;
    bool missing = true;      // no file at all (fresh start)
    bool bad_header = false;  // file exists but magic/version wrong
    bool torn_tail = false;   // bytes past the valid prefix were dropped
    std::string tail_error;   // why the walk stopped, when it did
  };

  /// Torn-write-tolerant replay: never throws on file content, returns
  /// the longest valid prefix plus a structured account of what (if
  /// anything) was dropped.
  static ReplayReport replay(const std::filesystem::path& path);

 private:
  void write_bytes(const std::string& bytes);

  std::FILE* file_ = nullptr;
  JournalConfig config_;
  CrashInjector* crash_ = nullptr;
  std::uint64_t records_appended_ = 0;
  std::size_t records_since_sync_ = 0;
};

}  // namespace safecross::runtime
