#include "runtime/message_channel.h"

namespace safecross::runtime {

namespace {

/// splitmix64: the per-message fate generator. Statelessly mixes
/// (seed, link, ordinal) so fates are reproducible regardless of thread
/// interleaving — two runs with the same plan fault the same ordinals.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
}

}  // namespace

FaultFabric::FaultFabric(NetFaultPlan plan)
    : plan_(std::move(plan)), epoch_(std::chrono::steady_clock::now()) {}

double FaultFabric::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

bool FaultFabric::partitioned_now(std::size_t shard, Direction direction,
                                  double now) const {
  for (const NetPartition& p : plan_.partitions) {
    if (p.shard != NetPartition::kAllLinks && p.shard != shard) continue;
    if (p.wave != NetPartition::kAnyWave && p.wave != wave()) continue;
    if (now < p.from_ms || now >= p.until_ms) continue;
    if (p.direction == NetPartition::Direction::Both) return true;
    if (p.direction == NetPartition::Direction::ToController &&
        direction == Direction::ToController) {
      return true;
    }
    if (p.direction == NetPartition::Direction::ToShard &&
        direction == Direction::ToShard) {
      return true;
    }
  }
  return false;
}

FaultFabric::Fate FaultFabric::fate(std::size_t shard, Direction direction) {
  Fate f;
  std::uint64_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shard >= counters_.size()) counters_.resize(shard + 1, {0, 0});
    ordinal = counters_[shard][static_cast<std::size_t>(direction)]++;
  }
  if (partitioned_now(shard, direction, now_ms())) {
    f.drop = true;
    f.partitioned = true;
    return f;
  }
  const std::uint64_t h = mix64(plan_.seed ^ mix64((shard << 2) |
                                                   static_cast<std::uint64_t>(direction)) ^
                                mix64(ordinal));
  // Independent sub-draws from one hash: disjoint bit lanes re-mixed.
  const double u_drop = unit(mix64(h ^ 0x1ull));
  const double u_dup = unit(mix64(h ^ 0x2ull));
  const double u_delay = unit(mix64(h ^ 0x3ull));
  const double u_reorder = unit(mix64(h ^ 0x4ull));
  const double u_amount = unit(mix64(h ^ 0x5ull));
  if (u_drop < plan_.drop_prob) {
    f.drop = true;
    return f;
  }
  const double span = plan_.delay_max_ms > plan_.delay_min_ms
                          ? plan_.delay_max_ms - plan_.delay_min_ms
                          : 0.0;
  if (u_delay < plan_.delay_prob) {
    f.delay_ms = plan_.delay_min_ms + u_amount * span;
  }
  if (u_reorder < plan_.reorder_prob) {
    // Hold just long enough for the next message(s) to overtake.
    f.reorder = true;
    f.delay_ms += plan_.delay_min_ms > 0.0 ? plan_.delay_min_ms : 1.0;
  }
  if (u_dup < plan_.dup_prob) {
    f.duplicate = true;
    // The ghost copy lands after the primary, like a late retransmit.
    f.dup_delay_ms = f.delay_ms + (plan_.delay_min_ms > 0.0 ? plan_.delay_min_ms : 1.0);
  }
  return f;
}

}  // namespace safecross::runtime
