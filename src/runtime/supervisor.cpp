#include "runtime/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace safecross::runtime {

double backoff_delay_ms(const BackoffPolicy& policy, int attempt, Rng& rng) {
  const double exponent = std::max(0, attempt - 1);
  double delay = policy.initial_ms * std::pow(policy.multiplier, exponent);
  delay = std::min(policy.max_ms, delay);
  if (policy.jitter_frac > 0.0) {
    delay *= 1.0 + policy.jitter_frac * (2.0 * rng.uniform() - 1.0);
  }
  return std::max(0.0, delay);
}

RetryResult retry_with_backoff(const BackoffPolicy& policy, std::uint64_t seed,
                               const std::function<bool()>& attempt,
                               const std::function<void(double)>& sleep_ms) {
  Rng rng(seed);
  RetryResult result;
  const int max_attempts = 1 + std::max(0, policy.max_restarts);
  for (int a = 1; a <= max_attempts; ++a) {
    result.attempts = a;
    if (attempt()) {
      result.ok = true;
      return result;
    }
    if (a < max_attempts) {
      const double delay = backoff_delay_ms(policy, a, rng);
      if (sleep_ms) {
        sleep_ms(delay);
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
      }
    }
  }
  return result;
}

Supervisor::Supervisor(BackoffPolicy policy, std::uint64_t seed)
    : policy_(policy), seed_(seed) {}

Supervisor::~Supervisor() { stop_and_join(); }

void Supervisor::add_stage(std::string name, Body body, Body fallback, Body on_exit) {
  auto stage = std::make_unique<Stage>();
  stage->name = std::move(name);
  stage->body = std::move(body);
  stage->fallback = std::move(fallback);
  stage->on_exit = std::move(on_exit);
  stages_.push_back(std::move(stage));
}

void Supervisor::set_give_up_hook(std::function<void(const std::string&)> hook) {
  give_up_hook_ = std::move(hook);
}

void Supervisor::start() {
  started_ = true;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Stage& stage = *stages_[i];
    // Per-stage rng seed: jitter sequences must not correlate across
    // stages or restarts would synchronize into thundering herds.
    const std::uint64_t seed = seed_ ^ (0x9E3779B97F4A7C15ull * (i + 1));
    stage.thread = std::thread([this, &stage, seed] { run_stage(stage, seed); });
  }
}

void Supervisor::join() {
  for (auto& stage : stages_) {
    if (stage->thread.joinable()) stage->thread.join();
  }
  started_ = false;
}

void Supervisor::stop_and_join() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
  join();
}

std::size_t Supervisor::total_restarts() const {
  std::size_t total = 0;
  for (const auto& stage : stages_) total += stage->restarts.load();
  return total;
}

std::size_t Supervisor::stages_gave_up() const {
  std::size_t total = 0;
  for (const auto& stage : stages_) total += stage->gave_up.load() ? 1 : 0;
  return total;
}

bool Supervisor::interruptible_sleep(double ms) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  return !stop_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                            [this] { return stop_.load(std::memory_order_acquire); });
}

void Supervisor::run_stage(Stage& stage, std::uint64_t seed) {
  Rng rng(seed);
  int attempt = 0;
  bool clean_exit = false;
  while (!stop_requested()) {
    try {
      stage.body();
      clean_exit = true;
      break;
    } catch (const std::exception& e) {
      ++attempt;
      if (attempt > policy_.max_restarts) {
        log_warn() << "supervisor: stage '" << stage.name << "' exhausted its retry budget ("
                   << policy_.max_restarts << "): " << e.what();
        break;
      }
      stage.restarts.fetch_add(1, std::memory_order_relaxed);
      log_warn() << "supervisor: stage '" << stage.name << "' crashed (" << e.what()
                 << "), restart " << attempt << "/" << policy_.max_restarts;
      if (!interruptible_sleep(backoff_delay_ms(policy_, attempt, rng))) break;
    } catch (...) {
      ++attempt;
      if (attempt > policy_.max_restarts) {
        log_warn() << "supervisor: stage '" << stage.name
                   << "' exhausted its retry budget (non-std exception)";
        break;
      }
      stage.restarts.fetch_add(1, std::memory_order_relaxed);
      if (!interruptible_sleep(backoff_delay_ms(policy_, attempt, rng))) break;
    }
  }
  if (!clean_exit && !stop_requested() && attempt > policy_.max_restarts) {
    stage.gave_up.store(true, std::memory_order_release);
    if (give_up_hook_) give_up_hook_(stage.name);
    if (stage.fallback) {
      // Degraded mode: the fallback keeps the pipeline's contract alive
      // (conservative output, queues still moving). It gets no restarts —
      // if it dies too, on_exit still poisons the downstream queue so the
      // rest of the pipeline can wind down instead of deadlocking.
      try {
        stage.fallback();
      } catch (...) {
        log_warn() << "supervisor: fallback for stage '" << stage.name << "' failed";
      }
    }
  }
  if (stage.on_exit) {
    try {
      stage.on_exit();
    } catch (...) {
    }
  }
}

}  // namespace safecross::runtime
