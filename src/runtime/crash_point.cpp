#include "runtime/crash_point.h"

namespace safecross::runtime {

const char* crash_point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::BeforeJournalAppend: return "before-journal-append";
    case CrashPoint::MidJournalAppend: return "mid-journal-append";
    case CrashPoint::AfterJournalAppend: return "after-journal-append";
    case CrashPoint::BeforeSnapshotWrite: return "before-snapshot-write";
    case CrashPoint::MidSnapshotWrite: return "mid-snapshot-write";
    case CrashPoint::BeforeSnapshotRename: return "before-snapshot-rename";
    case CrashPoint::AfterSnapshotRename: return "after-snapshot-rename";
  }
  return "?";
}

void CrashInjector::arm(CrashPoint point, std::size_t nth) {
  armed_ = true;
  fired_ = false;
  point_ = point;
  nth_ = nth == 0 ? 1 : nth;
}

bool CrashInjector::fire_now(CrashPoint point) {
  const std::size_t hit = ++hits_[static_cast<int>(point)];
  if (!armed_ || fired_ || point != point_ || hit != nth_) return false;
  fired_ = true;
  return true;
}

void CrashInjector::maybe_crash(CrashPoint point) {
  if (fire_now(point)) throw CrashInjected{point, nth_};
}

}  // namespace safecross::runtime
