#include "runtime/crash_point.h"

namespace safecross::runtime {

const char* crash_point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::BeforeJournalAppend: return "before-journal-append";
    case CrashPoint::MidJournalAppend: return "mid-journal-append";
    case CrashPoint::AfterJournalAppend: return "after-journal-append";
    case CrashPoint::BeforeSnapshotWrite: return "before-snapshot-write";
    case CrashPoint::MidSnapshotWrite: return "mid-snapshot-write";
    case CrashPoint::BeforeSnapshotRename: return "before-snapshot-rename";
    case CrashPoint::AfterSnapshotRename: return "after-snapshot-rename";
    case CrashPoint::AfterSwitchBegin: return "after-switch-begin";
    case CrashPoint::MidModelLoad: return "mid-model-load";
    case CrashPoint::MidCacheEviction: return "mid-cache-eviction";
  }
  return "?";
}

void CrashInjector::arm(CrashPoint point, std::size_t nth) {
  point_ = point;
  nth_ = nth == 0 ? 1 : nth;
  fired_.store(false, std::memory_order_release);
  armed_.store(true, std::memory_order_release);
}

bool CrashInjector::fire_now(CrashPoint point) {
  const std::size_t hit =
      hits_[static_cast<int>(point)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (!armed_.load(std::memory_order_acquire) || point != point_ || hit != nth_) {
    return false;
  }
  // At most one kill per arm(), even if two threads hit the point together.
  bool expected = false;
  return fired_.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
}

void CrashInjector::maybe_crash(CrashPoint point) {
  if (fire_now(point)) throw CrashInjected{point, nth_};
}

}  // namespace safecross::runtime
