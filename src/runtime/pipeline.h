#pragma once
// Configuration + deterministic fault injection for the staged monitor
// pipeline (capture → collect → decide).
//
// The three stages are connected by BoundedQueues and run under a
// Supervisor; PipelineConfig gathers everything the runtime needs to
// size, pace and supervise them. StageFaultInjector is the pipeline-level
// sibling of FaultInjector: where FaultInjector perturbs the *data*
// (frames, switches, checkpoints), StageFaultInjector perturbs the
// *compute* — a stage thread that crashes mid-item or an overloaded stage
// that takes too long per item — so the robustness bench can measure what
// supervision and load shedding actually buy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "runtime/supervisor.h"

namespace safecross::runtime {

enum class StageId { Capture = 0, Collect = 1, Decide = 2 };
constexpr int kStageCount = 3;

const char* pipeline_stage_name(StageId stage);

/// Compute-level faults for one stage, applied once per item processed.
struct StageFaultPlan {
  double crash_prob = 0.0;  // P(the stage throws) per item
  double delay_ms = 0.0;    // artificial per-item latency (overload)
  // Deterministic crash schedule for tests: the stage throws on exactly
  // these 1-based item ordinals (in addition to any crash_prob draws).
  std::vector<std::size_t> crash_items;

  bool enabled() const {
    return crash_prob > 0.0 || delay_ms > 0.0 || !crash_items.empty();
  }
};

struct PipelineConfig {
  // Queue sizing. The frame queue absorbs capture/collect jitter (a few
  // frames is plenty at 30 Hz); the decision queue is deliberately small:
  // a decision that waits behind three others is stale safety advice.
  std::size_t frame_queue_capacity = 8;
  std::size_t decision_queue_capacity = 4;
  // How long a producer leans on backpressure before shedding the oldest
  // queued item. Large enough to ride out a stage restart (backoff is
  // capped at BackoffPolicy::max_ms), small enough to bound latency.
  double push_timeout_ms = 250.0;
  // Consumer poll quantum: bounds how long a stage can be blind to
  // shutdown/poisoning while its input is idle.
  double pop_timeout_ms = 20.0;
  BackoffPolicy backoff;           // supervisor restart policy
  std::uint64_t fault_seed = 0x57A6EFA17u;
  StageFaultPlan faults[kStageCount];  // indexed by StageId
};

/// The exception an injected stage crash throws.
struct StageCrash : std::runtime_error {
  explicit StageCrash(StageId stage)
      : std::runtime_error(std::string("injected crash in stage '") +
                           pipeline_stage_name(stage) + "'"),
        stage(stage) {}
  StageId stage;
};

/// Deterministic per-stage compute-fault injector. Each stage draws from
/// its own seeded Rng, so one stage's crash schedule is independent of
/// the others and of thread interleaving. Thread-safe as used by the
/// pipeline: each stage's state is touched only by that stage's thread;
/// the crash counters are atomic so the scorecard may read them anywhere.
class StageFaultInjector {
 public:
  explicit StageFaultInjector(const PipelineConfig& config);

  /// Call once per item a stage processes: applies the configured
  /// overload delay, then throws StageCrash on a scheduled ordinal or a
  /// crash_prob draw. The item counter advances and the crash counter
  /// ticks *before* the throw — a crashed item is still a processed item.
  void on_item(StageId stage);

  std::size_t items(StageId stage) const {
    return per_stage_[static_cast<int>(stage)].items.load();
  }
  std::size_t crashes(StageId stage) const {
    return per_stage_[static_cast<int>(stage)].crashes.load();
  }
  std::size_t total_crashes() const;

 private:
  struct PerStage {
    StageFaultPlan plan;
    Rng rng{0};
    std::atomic<std::size_t> items{0};
    std::atomic<std::size_t> crashes{0};
  };
  PerStage per_stage_[kStageCount];
};

}  // namespace safecross::runtime
