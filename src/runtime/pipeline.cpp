#include "runtime/pipeline.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace safecross::runtime {

const char* pipeline_stage_name(StageId stage) {
  switch (stage) {
    case StageId::Capture: return "capture";
    case StageId::Collect: return "collect";
    case StageId::Decide: return "decide";
  }
  return "?";
}

StageFaultInjector::StageFaultInjector(const PipelineConfig& config) {
  for (int s = 0; s < kStageCount; ++s) {
    per_stage_[s].plan = config.faults[s];
    per_stage_[s].rng = Rng(config.fault_seed ^ (0xC0FFEEull * (s + 1)));
  }
}

std::size_t StageFaultInjector::total_crashes() const {
  std::size_t total = 0;
  for (int s = 0; s < kStageCount; ++s) total += per_stage_[s].crashes.load();
  return total;
}

void StageFaultInjector::on_item(StageId stage) {
  PerStage& ps = per_stage_[static_cast<int>(stage)];
  if (!ps.plan.enabled()) {
    ps.items.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t ordinal = ps.items.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ps.plan.delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ps.plan.delay_ms));
  }
  const bool scheduled = std::find(ps.plan.crash_items.begin(), ps.plan.crash_items.end(),
                                   ordinal) != ps.plan.crash_items.end();
  if (scheduled || (ps.plan.crash_prob > 0.0 && ps.rng.bernoulli(ps.plan.crash_prob))) {
    ps.crashes.fetch_add(1, std::memory_order_relaxed);
    throw StageCrash(stage);
  }
}

}  // namespace safecross::runtime
