#pragma once
// Suspicion-based failure detection (phi-accrual style, simplified).
//
// The hard-threshold detector the fleet shipped with (N consecutive
// missed watch ticks → dead) cannot tell *dead* from *partitioned or
// slow*: a network partition a few ticks long looks exactly like a
// crash, and the controller pays a full failover for a shard that was
// about to come back. The accrual detector instead tracks the largest
// heartbeat inter-arrival gap it has ever observed on the link and
// scales its suspicion to it:
//
//   phi(now) = elapsed_since_last_beat / max(observed_max_gap × slack,
//                                            bootstrap_floor)
//
// A link that has already survived jittery delivery (delays, short
// partitions that healed) has a large observed_max_gap, so the same
// silence accrues suspicion more slowly — a healed partition *teaches*
// the detector, which is what lets the fleet ride out gray weather
// without false failovers. A genuinely dead shard stays silent forever,
// phi grows without bound, and the declaration still happens — just at
// a threshold scaled to the link's demonstrated worst case.
//
// suspected() additionally requires `confirm_ticks` consecutive
// over-threshold polls, so one slow watch-loop iteration (scheduler
// hiccup on the controller side) never declares anything by itself.
//
// Wall-clock based and observability-only, like every liveness verdict
// in the fleet: suspicion decides *where work runs*, never what a
// stream decides, so the parity oracle is untouched.

#include <chrono>
#include <cstddef>

namespace safecross::runtime {

struct SuspicionConfig {
  /// Declare when phi stays at/above this for confirm_ticks polls.
  double threshold = 4.0;
  /// Assumed max inter-arrival before anything was observed (ms); also
  /// the floor under the learned gap so early noise cannot collapse the
  /// scale to ~0.
  double bootstrap_gap_ms = 10.0;
  /// Headroom multiplier on the learned max gap.
  double slack = 1.5;
  /// Consecutive over-threshold polls required to declare.
  std::size_t confirm_ticks = 2;
};

class SuspicionDetector {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SuspicionDetector(SuspicionConfig config) : config_(config) {}

  /// A heartbeat arrived. Learns the inter-arrival gap and clears any
  /// accrued suspicion streak.
  void on_beat(Clock::time_point now) {
    if (seen_any_) {
      const double gap = ms_between(last_beat_, now);
      if (gap > max_gap_ms_) max_gap_ms_ = gap;
    }
    last_beat_ = now;
    seen_any_ = true;
    streak_ = 0;
  }

  /// Current accrued suspicion. 0 until the first beat (startup is not
  /// silence — the shard may simply not be on-CPU yet).
  double phi(Clock::time_point now) const {
    if (!seen_any_) return 0.0;
    const double elapsed = ms_between(last_beat_, now);
    return elapsed / expected_gap_ms();
  }

  /// One watch-loop poll with no fresh beat: accrue, and report whether
  /// the confirm streak is complete.
  bool poll_silent(Clock::time_point now) {
    if (phi(now) >= config_.threshold) {
      ++streak_;
    } else {
      streak_ = 0;
    }
    return streak_ >= config_.confirm_ticks;
  }

  /// The silence scale currently in force (ms).
  double expected_gap_ms() const {
    const double learned = max_gap_ms_ * config_.slack;
    return learned > config_.bootstrap_gap_ms ? learned : config_.bootstrap_gap_ms;
  }
  double max_observed_gap_ms() const { return max_gap_ms_; }

 private:
  static double ms_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  }

  SuspicionConfig config_;
  Clock::time_point last_beat_{};
  bool seen_any_ = false;
  double max_gap_ms_ = 0.0;
  std::size_t streak_ = 0;
};

}  // namespace safecross::runtime
