#pragma once
// Bounded MPMC queue connecting the staged monitor pipeline.
//
// The live warning path must never let one wedged stage grow an unbounded
// backlog (memory) or stall the whole service (latency). Every hand-off
// between pipeline stages therefore goes through a BoundedQueue with three
// pressure-relief behaviours, all observable through counters:
//
//   * backpressure — push(item, timeout) blocks while the queue is full,
//     so a briefly slow consumer throttles its producer instead of losing
//     work;
//   * load shedding — push_drop_oldest(item) never blocks: when the queue
//     is full the *oldest* queued item is evicted (the newest data is the
//     most valuable in a real-time feed) and the shed counter ticks;
//   * poisoning — close() wakes every blocked producer and consumer.
//     Producers fail fast after close; consumers drain the remaining
//     items and then see drained() == true, their signal to exit.
//
// Thread-safe for any number of producers and consumers. Counters are
// read under the same mutex, so they are exact whenever the queue is
// quiescent (e.g. after the stage threads have been joined).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace safecross::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocking push with backpressure: waits up to `timeout` for space.
  /// Returns false (item discarded) on timeout or when the queue is
  /// closed — a producer that sees false under load should either retry
  /// or shed via push_drop_oldest().
  bool push(T item, std::chrono::milliseconds timeout) { return push_ref(item, timeout); }

  /// As push(), but on failure `item` is left intact in the caller's
  /// variable instead of being consumed — so an expensive-to-rebuild item
  /// can be handed to push_drop_oldest() without a defensive copy.
  bool push_ref(T& item, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_space_.wait_for(lock, timeout,
                            [this] { return closed_ || items_.size() < capacity_; })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    cv_item_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed. Unlike
  /// push(item, 0ms) this never touches the space condition variable's
  /// wait path, so a caller that must not stall — the fleet controller
  /// probing a sick shard's channel, a heartbeat publisher on the shard
  /// side — pays one uncontended lock and nothing else. The rejected
  /// item is NOT counted as shed: the caller kept it and decides what
  /// the refusal means (retry, drop-oldest, give up).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      ++pushed_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    cv_item_.notify_one();
    return true;
  }

  /// Load-shedding push: never blocks. When full, evicts the oldest
  /// queued item to make room (newest data wins in a real-time stream).
  /// Returns the number of items shed by this call: 1 when an old item
  /// was evicted or the queue is closed (the new item is discarded and
  /// counted as shed — it was load the pipeline could not carry), else 0.
  std::size_t push_drop_oldest(T item) {
    std::size_t shed = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        ++shed_;
        return 1;
      }
      if (items_.size() >= capacity_) {
        items_.pop_front();
        ++shed_;
        shed = 1;
      }
      items_.push_back(std::move(item));
      ++pushed_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    cv_item_.notify_one();
    return shed;
  }

  /// Blocking pop: waits up to `timeout` for an item. Returns nullopt on
  /// timeout, or when the queue is closed and fully drained. A consumer
  /// loop distinguishes the two via drained().
  std::optional<T> pop(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_item_.wait_for(lock, timeout, [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    cv_space_.notify_one();
    return item;
  }

  /// Poison the queue: producers fail from now on, blocked callers wake,
  /// consumers drain what is already queued and then stop.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Closed and empty: the consumer's signal that no item will ever come.
  bool drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // --- counters (scorecard) ---
  std::size_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }
  std::size_t popped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return popped_;
  }
  /// Items lost to load shedding (evicted or refused while closed).
  std::size_t shed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shed_;
  }
  /// Largest queue depth ever observed — how close the stage came to
  /// shedding; useful for sizing capacities.
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_item_;
  std::condition_variable cv_space_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  std::size_t popped_ = 0;
  std::size_t shed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace safecross::runtime
