#include "runtime/fault_injector.h"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace safecross::runtime {

const char* frame_fault_name(FrameFault f) {
  switch (f) {
    case FrameFault::None: return "none";
    case FrameFault::Dropped: return "dropped";
    case FrameFault::Frozen: return "frozen";
    case FrameFault::NoiseBurst: return "noise-burst";
    case FrameFault::Blackout: return "blackout";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {}

FrameFault FaultInjector::next_frame_fault() {
  ++frames_seen_;
  if (!plan_.enabled()) {
    current_ = FrameFault::None;
    return current_;
  }
  if (blackout_left_ > 0) {
    --blackout_left_;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  // One draw per fault class per frame, first match wins: blackouts are
  // rare interval events, then the per-frame stream faults.
  if (plan_.blackout_prob > 0.0 && rng_.bernoulli(plan_.blackout_prob)) {
    blackout_left_ = plan_.blackout_frames > 0 ? plan_.blackout_frames - 1 : 0;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  if (plan_.drop_prob > 0.0 && rng_.bernoulli(plan_.drop_prob)) {
    ++frames_dropped_;
    current_ = FrameFault::Dropped;
    return current_;
  }
  if (plan_.freeze_prob > 0.0 && rng_.bernoulli(plan_.freeze_prob)) {
    ++frames_frozen_;
    current_ = FrameFault::Frozen;
    return current_;
  }
  if (plan_.noise_prob > 0.0 && rng_.bernoulli(plan_.noise_prob)) {
    ++noise_bursts_;
    current_ = FrameFault::NoiseBurst;
    return current_;
  }
  current_ = FrameFault::None;
  return current_;
}

void FaultInjector::perturb(vision::Image& frame) {
  switch (current_) {
    case FrameFault::Blackout:
      frame.fill(0.0f);
      break;
    case FrameFault::NoiseBurst:
      for (std::size_t i = 0; i < frame.size(); ++i) {
        if (rng_.bernoulli(plan_.noise_density)) {
          float& cell = frame.data()[i];
          cell = cell > 0.5f ? 0.0f : 1.0f;
        }
      }
      break;
    default:
      break;  // None/Dropped/Frozen have no image-level effect
  }
}

bool FaultInjector::next_switch_fails() {
  if (plan_.switch_failure_prob <= 0.0) return false;
  const bool fails = rng_.bernoulli(plan_.switch_failure_prob);
  if (fails) ++switch_failures_;
  return fails;
}

void FaultInjector::truncate_file(const std::filesystem::path& path, std::size_t keep_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, keep_bytes, ec);
  if (ec) {
    throw std::runtime_error("FaultInjector: cannot truncate " + path.string() + ": " +
                             ec.message());
  }
}

void FaultInjector::corrupt_magic(const std::filesystem::path& path) {
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!fs) throw std::runtime_error("FaultInjector: cannot open " + path.string());
  char head[4] = {};
  fs.read(head, sizeof(head));
  if (!fs) throw std::runtime_error("FaultInjector: " + path.string() + " shorter than 4 bytes");
  for (char& b : head) b = static_cast<char>(~b);
  fs.seekp(0);
  fs.write(head, sizeof(head));
}

void FaultInjector::write_garbage(const std::filesystem::path& path, std::size_t bytes,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> garbage(bytes);
  for (char& b : garbage) b = static_cast<char>(rng.next_u64() & 0xFF);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("FaultInjector: cannot write " + path.string());
  os.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
}

}  // namespace safecross::runtime
