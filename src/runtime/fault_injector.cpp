#include "runtime/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/checksum.h"

namespace safecross::runtime {

namespace {

// Named-stream salt for the geometric fault RNG. The geometric stream is
// seeded as (seed ^ salt) rather than forked from the frame-fault stream:
// Rng::fork() consumes a draw from the parent, which would shift every
// existing drop/freeze/noise sequence the golden traces pin.
constexpr std::uint64_t kGeometryStreamSalt = 0x6E0FA175D21F7C3BULL;

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Rigid 2-D motion about the image centre as a homography: translate the
// centre to the origin, rotate, translate back plus the offset.
vision::Homography about_centre(double cx, double cy, double dx, double dy, double rot) {
  const double c = std::cos(rot), s = std::sin(rot);
  return vision::Homography({c, -s, cx + dx - c * cx + s * cy,
                             s, c, cy + dy - s * cx - c * cy,
                             0.0, 0.0, 1.0});
}

}  // namespace

const char* frame_fault_name(FrameFault f) {
  switch (f) {
    case FrameFault::None: return "none";
    case FrameFault::Dropped: return "dropped";
    case FrameFault::Frozen: return "frozen";
    case FrameFault::NoiseBurst: return "noise-burst";
    case FrameFault::Blackout: return "blackout";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), rng_(seed), geo_rng_(seed ^ kGeometryStreamSalt) {}

void FaultInjector::set_frame_size(int width, int height) {
  frame_width_ = width;
  frame_height_ = height;
}

void FaultInjector::step_geometry() {
  const GeometricFaultPlan& g = plan_.geometry;
  if (!geo_seeded_) {
    const double angle = geo_rng_.uniform(0.0, kTwoPi);
    drift_dir_x_ = std::cos(angle);
    drift_dir_y_ = std::sin(angle);
    drift_rot_sign_ = geo_rng_.bernoulli(0.5) ? 1.0 : -1.0;
    shake_phase_x_ = geo_rng_.uniform(0.0, kTwoPi);
    shake_phase_y_ = geo_rng_.uniform(0.0, kTwoPi);
    geo_seeded_ = true;
  }
  ++geo_frames_;
  if (g.bump_prob > 0.0 && geo_rng_.bernoulli(g.bump_prob)) {
    bump_dx_ += geo_rng_.uniform(-g.bump_max_px, g.bump_max_px);
    bump_dy_ += geo_rng_.uniform(-g.bump_max_px, g.bump_max_px);
    bump_rot_ += geo_rng_.uniform(-g.bump_max_rot, g.bump_max_rot);
    ++bumps_;
  }
  double ramp = 0.0;
  if (geo_frames_ > g.drift_start_frame) {
    ramp = static_cast<double>(std::min(geo_frames_, g.drift_stop_frame) -
                               g.drift_start_frame);
  }
  double dx = g.drift_px_per_frame * ramp * drift_dir_x_ + bump_dx_;
  double dy = g.drift_px_per_frame * ramp * drift_dir_y_ + bump_dy_;
  const double rot = g.drift_rot_per_frame * ramp * drift_rot_sign_ + bump_rot_;
  if (g.shake_amp_px > 0.0 && g.shake_period_frames > 0.0) {
    const double phase = kTwoPi * static_cast<double>(geo_frames_) / g.shake_period_frames;
    dx += g.shake_amp_px * std::sin(phase + shake_phase_x_);
    dy += g.shake_amp_px * std::sin(phase + shake_phase_y_);
  }
  const double cx = (frame_width_ - 1) / 2.0;
  const double cy = (frame_height_ - 1) / 2.0;
  view_ = about_centre(cx, cy, dx, dy, rot);
}

double FaultInjector::perturbation_drift_px() const {
  if (frame_width_ <= 0) return 0.0;
  const double w = frame_width_ - 1, h = frame_height_ - 1;
  const vision::Point2 corners[4] = {{0, 0}, {w, 0}, {0, h}, {w, h}};
  double sum = 0.0;
  for (const vision::Point2& c : corners) {
    const vision::Point2 p = view_.apply(c);
    sum += std::hypot(p.x - c.x, p.y - c.y);
  }
  return sum / 4.0;
}

FrameFault FaultInjector::next_frame_fault() {
  ++frames_seen_;
  if (!plan_.enabled()) {
    current_ = FrameFault::None;
    return current_;
  }
  // The camera keeps moving through blackouts and stream faults, so the
  // geometry advances before the per-frame fate is decided.
  if (geometry_active()) step_geometry();
  if (blackout_left_ > 0) {
    --blackout_left_;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  // One draw per fault class per frame, first match wins: blackouts are
  // rare interval events, then the per-frame stream faults.
  if (plan_.blackout_prob > 0.0 && rng_.bernoulli(plan_.blackout_prob)) {
    blackout_left_ = plan_.blackout_frames > 0 ? plan_.blackout_frames - 1 : 0;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  if (plan_.drop_prob > 0.0 && rng_.bernoulli(plan_.drop_prob)) {
    ++frames_dropped_;
    current_ = FrameFault::Dropped;
    return current_;
  }
  if (plan_.freeze_prob > 0.0 && rng_.bernoulli(plan_.freeze_prob)) {
    ++frames_frozen_;
    current_ = FrameFault::Frozen;
    return current_;
  }
  if (plan_.noise_prob > 0.0 && rng_.bernoulli(plan_.noise_prob)) {
    ++noise_bursts_;
    current_ = FrameFault::NoiseBurst;
    return current_;
  }
  current_ = FrameFault::None;
  return current_;
}

void FaultInjector::perturb(vision::Image& frame) {
  switch (current_) {
    case FrameFault::Blackout:
      frame.fill(0.0f);
      break;
    case FrameFault::NoiseBurst:
      for (std::size_t i = 0; i < frame.size(); ++i) {
        if (rng_.bernoulli(plan_.noise_density)) {
          float& cell = frame.data()[i];
          cell = cell > 0.5f ? 0.0f : 1.0f;
        }
      }
      break;
    default:
      break;  // None/Dropped/Frozen have no image-level effect
  }
}

bool FaultInjector::next_switch_fails() {
  if (plan_.switch_failure_prob <= 0.0) return false;
  const bool fails = rng_.bernoulli(plan_.switch_failure_prob);
  if (fails) ++switch_failures_;
  return fails;
}

void FaultInjector::truncate_file(const std::filesystem::path& path, std::size_t keep_bytes) {
  common::truncate_file(path, keep_bytes);
}

void FaultInjector::corrupt_magic(const std::filesystem::path& path) {
  common::corrupt_magic(path);
}

void FaultInjector::write_garbage(const std::filesystem::path& path, std::size_t bytes,
                                  std::uint64_t seed) {
  common::write_garbage(path, bytes, seed);
}

void FaultInjector::save_state(common::StateWriter& w) const {
  rng_.save_state(w);
  w.u8(static_cast<std::uint8_t>(current_));
  w.i32(blackout_left_);
  w.u64(frames_seen_);
  w.u64(frames_dropped_);
  w.u64(frames_frozen_);
  w.u64(noise_bursts_);
  w.u64(blackout_frames_total_);
  w.u64(switch_failures_);
  geo_rng_.save_state(w);
  w.i32(frame_width_);
  w.i32(frame_height_);
  w.boolean(geo_seeded_);
  w.f64(drift_dir_x_);
  w.f64(drift_dir_y_);
  w.f64(drift_rot_sign_);
  w.f64(shake_phase_x_);
  w.f64(shake_phase_y_);
  w.f64(bump_dx_);
  w.f64(bump_dy_);
  w.f64(bump_rot_);
  w.u64(geo_frames_);
  w.u64(bumps_);
  for (double v : view_.matrix()) w.f64(v);
}

void FaultInjector::load_state(common::StateReader& r) {
  rng_.load_state(r);
  current_ = static_cast<FrameFault>(r.u8());
  blackout_left_ = r.i32();
  frames_seen_ = static_cast<std::size_t>(r.u64());
  frames_dropped_ = static_cast<std::size_t>(r.u64());
  frames_frozen_ = static_cast<std::size_t>(r.u64());
  noise_bursts_ = static_cast<std::size_t>(r.u64());
  blackout_frames_total_ = static_cast<std::size_t>(r.u64());
  switch_failures_ = static_cast<std::size_t>(r.u64());
  geo_rng_.load_state(r);
  frame_width_ = r.i32();
  frame_height_ = r.i32();
  geo_seeded_ = r.boolean();
  drift_dir_x_ = r.f64();
  drift_dir_y_ = r.f64();
  drift_rot_sign_ = r.f64();
  shake_phase_x_ = r.f64();
  shake_phase_y_ = r.f64();
  bump_dx_ = r.f64();
  bump_dy_ = r.f64();
  bump_rot_ = r.f64();
  geo_frames_ = static_cast<std::size_t>(r.u64());
  bumps_ = static_cast<std::size_t>(r.u64());
  std::array<double, 9> m{};
  for (double& v : m) v = r.f64();
  view_ = vision::Homography(m);
}

}  // namespace safecross::runtime
