#include "runtime/fault_injector.h"

#include "common/checksum.h"

namespace safecross::runtime {

const char* frame_fault_name(FrameFault f) {
  switch (f) {
    case FrameFault::None: return "none";
    case FrameFault::Dropped: return "dropped";
    case FrameFault::Frozen: return "frozen";
    case FrameFault::NoiseBurst: return "noise-burst";
    case FrameFault::Blackout: return "blackout";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {}

FrameFault FaultInjector::next_frame_fault() {
  ++frames_seen_;
  if (!plan_.enabled()) {
    current_ = FrameFault::None;
    return current_;
  }
  if (blackout_left_ > 0) {
    --blackout_left_;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  // One draw per fault class per frame, first match wins: blackouts are
  // rare interval events, then the per-frame stream faults.
  if (plan_.blackout_prob > 0.0 && rng_.bernoulli(plan_.blackout_prob)) {
    blackout_left_ = plan_.blackout_frames > 0 ? plan_.blackout_frames - 1 : 0;
    ++blackout_frames_total_;
    current_ = FrameFault::Blackout;
    return current_;
  }
  if (plan_.drop_prob > 0.0 && rng_.bernoulli(plan_.drop_prob)) {
    ++frames_dropped_;
    current_ = FrameFault::Dropped;
    return current_;
  }
  if (plan_.freeze_prob > 0.0 && rng_.bernoulli(plan_.freeze_prob)) {
    ++frames_frozen_;
    current_ = FrameFault::Frozen;
    return current_;
  }
  if (plan_.noise_prob > 0.0 && rng_.bernoulli(plan_.noise_prob)) {
    ++noise_bursts_;
    current_ = FrameFault::NoiseBurst;
    return current_;
  }
  current_ = FrameFault::None;
  return current_;
}

void FaultInjector::perturb(vision::Image& frame) {
  switch (current_) {
    case FrameFault::Blackout:
      frame.fill(0.0f);
      break;
    case FrameFault::NoiseBurst:
      for (std::size_t i = 0; i < frame.size(); ++i) {
        if (rng_.bernoulli(plan_.noise_density)) {
          float& cell = frame.data()[i];
          cell = cell > 0.5f ? 0.0f : 1.0f;
        }
      }
      break;
    default:
      break;  // None/Dropped/Frozen have no image-level effect
  }
}

bool FaultInjector::next_switch_fails() {
  if (plan_.switch_failure_prob <= 0.0) return false;
  const bool fails = rng_.bernoulli(plan_.switch_failure_prob);
  if (fails) ++switch_failures_;
  return fails;
}

void FaultInjector::truncate_file(const std::filesystem::path& path, std::size_t keep_bytes) {
  common::truncate_file(path, keep_bytes);
}

void FaultInjector::corrupt_magic(const std::filesystem::path& path) {
  common::corrupt_magic(path);
}

void FaultInjector::write_garbage(const std::filesystem::path& path, std::size_t bytes,
                                  std::uint64_t seed) {
  common::write_garbage(path, bytes, seed);
}

void FaultInjector::save_state(common::StateWriter& w) const {
  rng_.save_state(w);
  w.u8(static_cast<std::uint8_t>(current_));
  w.i32(blackout_left_);
  w.u64(frames_seen_);
  w.u64(frames_dropped_);
  w.u64(frames_frozen_);
  w.u64(noise_bursts_);
  w.u64(blackout_frames_total_);
  w.u64(switch_failures_);
}

void FaultInjector::load_state(common::StateReader& r) {
  rng_.load_state(r);
  current_ = static_cast<FrameFault>(r.u8());
  blackout_left_ = r.i32();
  frames_seen_ = static_cast<std::size_t>(r.u64());
  frames_dropped_ = static_cast<std::size_t>(r.u64());
  frames_frozen_ = static_cast<std::size_t>(r.u64());
  noise_bursts_ = static_cast<std::size_t>(r.u64());
  blackout_frames_total_ = static_cast<std::size_t>(r.u64());
  switch_failures_ = static_cast<std::size_t>(r.u64());
}

}  // namespace safecross::runtime
