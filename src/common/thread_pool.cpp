#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace safecross {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (n < 4 || workers < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  const std::size_t submitted = (n + per - 1) / per;
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception across chunks, under done_mutex
  for (std::size_t c = 0; c < submitted; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    submit([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(done_mutex);
        if (!error) error = std::current_exception();
      }
      // The chunk always counts as done, error or not — a throwing task
      // must never leave the caller blocked on done_cv.
      if (done.fetch_add(1) + 1 == submitted) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == submitted; });
  if (error) {
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not escape the worker thread (that would
    // std::terminate the process): capture the first exception for
    // wait_idle() to rethrow, and always run the in-flight bookkeeping.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace safecross
