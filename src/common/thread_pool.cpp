#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace safecross {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

namespace {

// Shared state of one parallel_for: a bag of chunks claimed via an atomic
// cursor. Heap-held (shared_ptr) so helper tasks that fire after the call
// returned — every chunk already executed — can still touch it safely.
struct ParallelForJob {
  const std::function<void(std::size_t)>* fn = nullptr;  // caller-owned
  std::size_t n = 0;
  std::size_t per = 0;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception across chunks, under mutex

  // Claim and run chunks until the bag is empty. Safe to call from any
  // thread, any number of times.
  void drain() {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) return;
      const std::size_t begin = c * per;
      const std::size_t end = std::min(n, begin + per);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      // The chunk always counts as done, error or not — a throwing chunk
      // must never leave the caller blocked on cv.
      if (done.fetch_add(1) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (n < 4 || workers < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The caller drains chunks alongside the workers instead of blocking.
  // That makes parallel_for re-entrant: a worker that calls it (e.g. a
  // GEMM invoked from inside an outer parallel_for) finishes the whole
  // job itself even if every other worker is similarly occupied, so
  // nested use can never deadlock the pool — helpers are pure bonus.
  auto job = std::make_shared<ParallelForJob>();
  job->fn = &fn;
  job->n = n;
  job->chunks = std::min(n, workers * 4);
  job->per = (n + job->chunks - 1) / job->chunks;
  job->chunks = (n + job->per - 1) / job->per;
  const std::size_t helpers = std::min(job->chunks - 1, workers);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([job] { job->drain(); });
  }
  job->drain();
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] { return job->done.load() == job->chunks; });
  // All chunks finished: late-firing helpers see an empty bag and exit
  // without touching fn, so returning (and destroying fn) is safe.
  if (job->error) {
    lock.unlock();
    std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not escape the worker thread (that would
    // std::terminate the process): capture the first exception for
    // wait_idle() to rethrow, and always run the in-flight bookkeeping.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace safecross
