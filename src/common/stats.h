#pragma once
// Small statistics helpers: running mean/stddev (Welford), percentiles,
// and confusion-matrix based classification metrics shared by the model
// evaluation code and the benchmark harnesses.

#include <cstddef>
#include <vector>

namespace safecross {

/// Welford online accumulator for mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p in [0,100]; linear interpolation between order statistics.
/// Sorts a copy; fine for benchmark-sized vectors.
double percentile(std::vector<double> values, double p);

/// Confusion matrix for an n-class classifier.
/// rows = true class, cols = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t true_class, std::size_t predicted_class);
  std::size_t num_classes() const { return k_; }
  std::size_t total() const { return total_; }
  std::size_t at(std::size_t t, std::size_t p) const { return cells_[t * k_ + p]; }

  /// Overall fraction correct (paper's "Top1 acc").
  double top1_accuracy() const;

  /// Mean of per-class recalls (paper's "Mean_class_acc"). Classes with
  /// no samples are skipped.
  double mean_class_accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 if the row is empty.
  double recall(std::size_t cls) const;

  /// Precision of one class (diagonal / column sum); 0 if the column is empty.
  double precision(std::size_t cls) const;

 private:
  std::size_t k_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;
};

}  // namespace safecross
