#pragma once
// Binary state (de)serialization for checkpoint/restore.
//
// Every component with resumable state (RNG streams, the traffic
// simulator, the segment collector, health/fault state machines, the
// per-stream scorecard) exposes save_state(StateWriter&) /
// load_state(StateReader&) built on these two helpers, so a server
// snapshot is one flat byte string assembled field by field in a fixed
// order. The format is deliberately dumb: fixed-width host-order scalars
// (this is a single-machine reproduction, matching the nn checkpoint
// convention) with explicit lengths for containers — no framing, no
// schema. Integrity is the *container's* job: the snapshot store and the
// journal wrap these bytes in magic + CRC32 frames, so a StateReader only
// ever parses bytes that already passed a checksum. Reads are still
// bounds-checked and throw StateError on underrun — a defence-in-depth
// backstop, never the primary corruption detector.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace safecross::common {

struct StateError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class StateWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class StateReader {
 public:
  StateReader(const void* data, std::size_t len)
      : p_(static_cast<const char*>(data)), len_(len) {}
  explicit StateReader(const std::string& bytes) : StateReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int32_t i32() { return scalar<std::int32_t>(); }
  float f32() { return scalar<float>(); }
  double f64() { return scalar<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t n = u64();
    std::string s(checked(n), static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  void raw(void* out, std::size_t len) {
    std::memcpy(out, checked(len), len);
    pos_ += len;
  }

  std::size_t remaining() const { return len_ - pos_; }
  bool at_end() const { return pos_ == len_; }

 private:
  template <typename T>
  T scalar() {
    T v;
    std::memcpy(&v, checked(sizeof(T)), sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const char* checked(std::uint64_t len) const {
    if (len > len_ - pos_) throw StateError("state underrun");
    return p_ + pos_;
  }

  const char* p_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace safecross::common
