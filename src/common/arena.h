#pragma once
// Per-thread rewindable scratch arena for hot-path temporaries.
//
// The GEMM packing buffers and the inference im2col lowerings used to be
// either per-call allocations or per-layer member vectors; with dozens of
// layers times K streams that is a lot of resident, cold memory. The
// arena follows the switching/memory_pool playbook — allocate once, hand
// out regions, never free on the hot path — but specialised for scratch:
// a bump pointer over chunked blocks that only ever grows, with scoped
// rewind so nested users (a conv forward whose GEMM tiles pack panels on
// pool workers, each worker using its *own* thread-local arena) compose
// without stepping on each other.
//
// Pointers stay valid until the Scope that allocated them unwinds; blocks
// are kept across calls, so steady-state serving does zero allocation.

#include <cstddef>
#include <memory>
#include <vector>

namespace safecross {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// 64-byte-aligned scratch for `n` floats, valid until the enclosing
  /// Scope unwinds. Never zeroed — callers must fully overwrite.
  float* floats(std::size_t n) {
    return static_cast<float*>(raw(n * sizeof(float)));
  }

  /// 64-byte-aligned raw scratch of `bytes` bytes.
  void* raw(std::size_t bytes);

  /// Total bytes of backing blocks currently held (monotone per thread).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.bytes;
    return total;
  }

  /// RAII rewind mark: allocations made while a Scope is live are
  /// reclaimed (capacity retained) when it destructs. Scopes must nest
  /// LIFO, which falls out of stack discipline.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena), block_(arena.current_), used_(arena.used_) {}
    ~Scope() {
      arena_.current_ = block_;
      arena_.used_ = used_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// The calling thread's arena (one per thread, created on first use).
  static ScratchArena& local();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kMinBlock = 1 << 16;  // 64 KiB

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block index allocations go into
  std::size_t used_ = 0;     // bytes used in blocks_[current_]
};

}  // namespace safecross
