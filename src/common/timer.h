#pragma once
// Wall-clock timing helpers used by the detection benchmarks (Table II)
// and the switching engine's real pipelined executor.

#include <chrono>

namespace safecross {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction/reset.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds since construction/reset.
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace safecross
