#include "common/arena.h"

#include <algorithm>
#include <cstdint>

namespace safecross {

void* ScratchArena::raw(std::size_t bytes) {
  if (bytes == 0) bytes = kAlign;
  bytes = (bytes + kAlign - 1) / kAlign * kAlign;

  // Find a block with room, starting at the current one. Skipped blocks
  // (too small for this request) stay put; a later Scope rewind restores
  // current_ anyway.
  while (current_ < blocks_.size() && used_ + bytes > blocks_[current_].bytes) {
    ++current_;
    used_ = 0;
  }
  if (current_ == blocks_.size()) {
    // Geometric growth so N small requests allocate O(log N) blocks.
    std::size_t want = std::max(bytes, kMinBlock);
    if (!blocks_.empty()) want = std::max(want, blocks_.back().bytes * 2);
    Block b;
    // Over-allocate so the bump base can be rounded up to kAlign
    // regardless of what new[] returns.
    b.data = std::make_unique<std::byte[]>(want + kAlign);
    b.bytes = want;
    blocks_.push_back(std::move(b));
    used_ = 0;
  }
  Block& b = blocks_[current_];
  auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  base = (base + kAlign - 1) / kAlign * kAlign;
  void* p = reinterpret_cast<void*>(base + used_);
  used_ += bytes;
  return p;
}

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace safecross
