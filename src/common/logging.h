#pragma once
// Minimal leveled logger for SafeCross.
//
// Thread-safe (each log line is emitted under a mutex), cheap when the
// level is filtered out. Intended for human-readable diagnostics from the
// simulator, trainers and the switching engine; benchmark binaries set the
// level to Warn to keep their stdout machine-parsable.

#include <sstream>
#include <string>

namespace safecross {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold. Messages below this level are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line ("[LEVEL] message") to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (enabled()) log_line(level_, os_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (enabled()) os_ << v;
    return *this;
  }

 private:
  bool enabled() const { return level_ >= log_level(); }
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }

}  // namespace safecross
