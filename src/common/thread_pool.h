#pragma once
// Fixed-size worker pool with a parallel_for helper.
//
// Used by the nn library to parallelize convolutions across output
// channels/batch items, and by the switching engine's pipelined executor.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace safecross {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. A throwing task does NOT take
  /// the process down: the first exception is captured and rethrown from
  /// the next wait_idle() (later ones are dropped).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished. If any task threw
  /// since the last wait_idle(), rethrows the first captured exception
  /// (the pool itself stays usable).
  void wait_idle();

  /// Tasks submitted but not yet finished (queued + running). A snapshot:
  /// meaningful for backlog monitoring, exact only while no producer runs.
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
  }

  /// Run fn(i) for i in [0, n), partitioned across the pool, blocking
  /// until complete. Falls back to serial for tiny n. If any fn(i) threw,
  /// the first exception is rethrown here after all chunks finish
  /// (remaining indices in throwing chunks are skipped).
  ///
  /// Re-entrant: the caller helps drain its own chunk bag, so calling
  /// parallel_for from inside a task/another parallel_for (nested GEMMs,
  /// per-stream workers that hit the shared pool) always completes even
  /// with every worker busy — it degrades to serial, never deadlocks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by mutex_
};

}  // namespace safecross
