#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safecross {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty vector");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : k_(num_classes), cells_(num_classes * num_classes, 0) {
  if (num_classes == 0) throw std::invalid_argument("ConfusionMatrix needs >= 1 class");
}

void ConfusionMatrix::add(std::size_t true_class, std::size_t predicted_class) {
  if (true_class >= k_ || predicted_class >= k_) {
    throw std::out_of_range("ConfusionMatrix::add class out of range");
  }
  ++cells_[true_class * k_ + predicted_class];
  ++total_;
}

double ConfusionMatrix::top1_accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < k_; ++i) correct += at(i, i);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::size_t row = 0;
  for (std::size_t p = 0; p < k_; ++p) row += at(cls, p);
  return row ? static_cast<double>(at(cls, cls)) / static_cast<double>(row) : 0.0;
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::size_t col = 0;
  for (std::size_t t = 0; t < k_; ++t) col += at(t, cls);
  return col ? static_cast<double>(at(cls, cls)) / static_cast<double>(col) : 0.0;
}

double ConfusionMatrix::mean_class_accuracy() const {
  double sum = 0.0;
  std::size_t populated = 0;
  for (std::size_t c = 0; c < k_; ++c) {
    std::size_t row = 0;
    for (std::size_t p = 0; p < k_; ++p) row += at(c, p);
    if (row == 0) continue;
    sum += static_cast<double>(at(c, c)) / static_cast<double>(row);
    ++populated;
  }
  return populated ? sum / static_cast<double>(populated) : 0.0;
}

}  // namespace safecross
