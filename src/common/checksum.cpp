#include "common/checksum.h"

#include <array>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace safecross::common {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read " + path.string());
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return bytes;
}

void truncate_file(const std::filesystem::path& path, std::size_t keep_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, keep_bytes, ec);
  if (ec) {
    throw std::runtime_error("cannot truncate " + path.string() + ": " + ec.message());
  }
}

void corrupt_magic(const std::filesystem::path& path) {
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!fs) throw std::runtime_error("cannot open " + path.string());
  char head[4] = {};
  fs.read(head, sizeof(head));
  if (!fs) throw std::runtime_error(path.string() + " shorter than 4 bytes");
  for (char& b : head) b = static_cast<char>(~b);
  fs.seekp(0);
  fs.write(head, sizeof(head));
}

void write_garbage(const std::filesystem::path& path, std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> garbage(bytes);
  for (char& b : garbage) b = static_cast<char>(rng.next_u64() & 0xFF);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot write " + path.string());
  os.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
}

void flip_byte(const std::filesystem::path& path, std::size_t offset) {
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!fs) throw std::runtime_error("cannot open " + path.string());
  fs.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  fs.read(&b, 1);
  if (!fs) throw std::runtime_error(path.string() + " shorter than flip offset");
  b = static_cast<char>(~b);
  fs.seekp(static_cast<std::streamoff>(offset));
  fs.write(&b, 1);
}

}  // namespace safecross::common
