#pragma once
// Shared integrity toolkit: one CRC32 for every durable byte in the
// system, plus the deterministic file-corruption helpers the robustness
// suites use to fabricate on-disk failure modes.
//
// Everything that persists state across a process death — model-store
// checkpoints, the serving journal, server snapshots — frames its bytes
// with this CRC so a torn write, a bad sector, or a half-finished rename
// is *detected* at load time instead of silently deserialized. The
// corruption helpers are the adversary for those checks: the fault
// bench, the model-store tests and the kill–recover chaos harness all
// damage files through the same three primitives, so a new durable
// format inherits an attack suite for free.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace safecross::common {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `len` bytes.
/// Chainable: crc32(b, nb, crc32(a, na)) == crc32 of a||b, so framed
/// formats can checksum header and payload incrementally.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

inline std::uint32_t crc32(const std::string& bytes, std::uint32_t crc = 0) {
  return crc32(bytes.data(), bytes.size(), crc);
}

/// Whole file as bytes. Throws std::runtime_error when unreadable.
std::string read_file(const std::filesystem::path& path);

// --- deterministic corruption helpers (file-level) ---

/// Truncate a file to its first `keep_bytes` bytes (0 → empty file).
void truncate_file(const std::filesystem::path& path, std::size_t keep_bytes);

/// Flip every bit of the first 4 bytes (destroys a leading format magic).
void corrupt_magic(const std::filesystem::path& path);

/// Overwrite the whole file with `bytes` seeded garbage bytes.
void write_garbage(const std::filesystem::path& path, std::size_t bytes, std::uint64_t seed);

/// Invert one byte at `offset` in place (single-byte bit damage — the
/// smallest corruption a CRC frame must still catch).
void flip_byte(const std::filesystem::path& path, std::size_t offset);

}  // namespace safecross::common
