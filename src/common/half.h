#pragma once
// Software IEEE-754 binary16 conversion (round-to-nearest-even).
//
// Backs the GEMM reduced-precision path: operands are *stored* as fp16
// and accumulated in fp32, emulated portably so the numerics are
// identical on every ISA (no F16C dependency). The round-trip
// fp16_round() is the whole contract — it is exactly the value a real
// half-precision buffer would hold.

#include <bit>
#include <cstdint>

namespace safecross {

inline std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  std::uint32_t mant = x & 0x007FFFFFu;
  const int fexp = static_cast<int>((x >> 23) & 0xFFu);
  if (fexp == 0xFF) {  // inf / NaN (NaN keeps a payload bit so it stays NaN)
    return sign | 0x7C00u | (mant ? (0x0200u | (mant >> 13)) : 0u);
  }
  const int exp = fexp - 127 + 15;
  if (exp >= 0x1F) return sign | 0x7C00u;  // overflow -> inf
  if (exp <= 0) {
    if (exp < -10) return sign;  // too small for a subnormal -> +/-0
    mant |= 0x00800000u;         // restore the implicit bit
    const int shift = 14 - exp;
    std::uint32_t h = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  std::uint16_t h =
      static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13));
  const std::uint32_t rem = mant & 0x1FFFu;
  // Rounding carry can overflow the mantissa into the exponent; the bit
  // layout makes that increment exactly right (including carry to inf).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return h;
}

inline float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {  // subnormal: renormalize
      int e = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++e;
      }
      x = sign | (static_cast<std::uint32_t>(127 - 15 + 1 - e) << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    x = sign | 0x7F800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(x);
}

/// The value `f` would hold after a round trip through fp16 storage.
inline float fp16_round(float f) { return half_bits_to_float(float_to_half_bits(f)); }

}  // namespace safecross
