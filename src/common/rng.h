#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component in SafeCross (traffic generator, weight init,
// dataset shuffles, sensor noise) takes an explicit Rng so experiments are
// reproducible from a single seed. The engine is SplitMix64-seeded
// xoshiro256**, which is fast, high quality, and trivially portable.

#include <cstdint>
#include <cmath>
#include <numbers>

#include "common/state_io.h"

namespace safecross {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5AFEC705u) {
    // SplitMix64 expansion of the seed into the 4-word xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller.
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential inter-arrival draw with the given rate (events per unit time).
  double exponential(double rate) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Derive an independent child stream (for per-component determinism).
  Rng fork() { return Rng(next_u64() ^ 0xD3C0DEDBADC0FFEEULL); }

  /// Raw engine state, exposed so durable components can checkpoint a
  /// stream mid-sequence and resume it bit-exactly after a restart.
  struct State {
    std::uint64_t s[4] = {};
    double cached = 0.0;
    bool have_cached = false;
  };

  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.cached = cached_;
    st.have_cached = have_cached_;
    return st;
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_ = st.cached;
    have_cached_ = st.have_cached;
  }

  void save_state(common::StateWriter& w) const {
    for (int i = 0; i < 4; ++i) w.u64(state_[i]);
    w.f64(cached_);
    w.boolean(have_cached_);
  }

  void load_state(common::StateReader& r) {
    for (int i = 0; i < 4; ++i) state_[i] = r.u64();
    cached_ = r.f64();
    have_cached_ = r.boolean();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

/// Fisher–Yates shuffle of any random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace safecross
