#pragma once
// Deadline-aware, weather-grouped micro-batcher for the stream server.
//
// Ready windows from K streams are staged into per-(weather, switch-epoch)
// groups. A group fires as a Batch when it reaches max_batch items, or
// when its oldest item has waited max_batch_delay_ms — whichever comes
// first. The two rules bound both throughput loss (batches fill when load
// allows) and added latency (no window waits longer than the delay knob
// before the engine sees it).
//
// Invariants, pinned by the property suite:
//   * a batch never mixes weathers OR switch epochs — the engine runs one
//     model per forward pass, so a batch must never straddle a model
//     switch, even an A→B→A flip back to the same weather;
//   * a batch never exceeds max_batch items;
//   * no starvation — once staged, a *servable* window is emitted by
//     next_due() within max_batch_delay_ms (given the caller polls), or
//     by flush();
//   * conservation — every staged window appears in exactly one batch.
//
// Deadlines anchor at the window's CAPTURE time when the stream stamped
// one, not at arrival-at-batcher: under a stalled consumer, windows queue
// upstream of the batcher, and anchoring at stage() time would silently
// grant them a fresh delay budget on top of the time already lost
// (deadline drift). Windows without a capture stamp (the fake-clock
// property tests) fall back to the stage() clock.
//
// Servability: the server may install a predicate marking a weather
// temporarily unservable (its model is still loading in the warm cache).
// next_due()/ms_until_deadline() hold those groups back — the whole point
// of pipelined switching is that other weathers keep batching meanwhile —
// but flush() ignores the predicate so conservation survives shutdown.
//
// The batcher is deliberately threadless and clock-agnostic: callers
// pass `now` into stage()/next_due(), so the property tests drive it
// with a fake clock and assert deadline behaviour deterministically.
// The server's batcher thread is the only concurrent user and calls it
// from one thread; no locking is needed here.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "serving/stream.h"

namespace safecross::serving {

struct BatcherConfig {
  std::size_t max_batch = 8;        // fire a weather group at this size...
  double max_batch_delay_ms = 4.0;  // ...or when its oldest item is this old
};

/// One weather-uniform batch ready for a single (N,1,T,H,W) forward pass.
struct Batch {
  Weather weather = Weather::Daytime;
  std::uint32_t epoch = 0;  // switch epoch shared by every item
  std::vector<ReadyWindow> items;
  double max_wait_ms = 0.0;  // staging wait of the oldest item at fire time
  bool fired_by_deadline = false;
};

class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  using ServablePredicate = std::function<bool(Weather)>;

  explicit MicroBatcher(BatcherConfig config) : config_(config) {
    if (config_.max_batch == 0) config_.max_batch = 1;
  }

  const BatcherConfig& config() const { return config_; }

  /// Stage one model-gated window into its (weather, epoch) group.
  void stage(ReadyWindow w, Clock::time_point now);

  /// The next batch that must fire at `now`: a full servable group first
  /// (largest backlog wins, then key order — deterministic), else the
  /// servable group whose oldest item has exceeded the delay budget.
  /// nullopt when nothing is due yet.
  std::optional<Batch> next_due(Clock::time_point now);

  /// Drain one remaining group regardless of size/deadline/servability
  /// (end of run).
  std::optional<Batch> flush();

  bool empty() const { return staged_ == 0; }
  std::size_t staged() const { return staged_; }

  /// Staged windows whose model weather is `weather`, across all epochs.
  /// The server's eviction filter protects weathers with a backlog.
  std::size_t staged_for(Weather weather) const;

  /// Install (or clear, with {}) the weather-servability predicate.
  void set_servable(ServablePredicate servable) { servable_ = std::move(servable); }

  /// Milliseconds until the oldest servable staged item's deadline expires
  /// at `now` (<= 0 when already due); a very large value when empty or
  /// everything is held back. The server uses this to size its idle wait.
  double ms_until_deadline(Clock::time_point now) const;

 private:
  // Key order = weather enum order, then epoch — deterministic tie-break.
  using GroupKey = std::pair<Weather, std::uint32_t>;

  struct Staged {
    ReadyWindow w;
    Clock::time_point at;  // deadline anchor (capture time when stamped)
  };

  Batch fire(const GroupKey& key, std::size_t count, Clock::time_point now, bool by_deadline);
  bool servable(Weather weather) const { return !servable_ || servable_(weather); }

  BatcherConfig config_;
  std::map<GroupKey, std::deque<Staged>> groups_;
  ServablePredicate servable_;
  std::size_t staged_ = 0;
};

}  // namespace safecross::serving
