#pragma once
// Deadline-aware, weather-grouped micro-batcher for the stream server.
//
// Ready windows from K streams are staged into per-weather groups. A
// group fires as a Batch when it reaches max_batch items, or when its
// oldest item has waited max_batch_delay_ms — whichever comes first. The
// two rules bound both throughput loss (batches fill when load allows)
// and added latency (no window waits longer than the delay knob before
// the engine sees it).
//
// Invariants, pinned by the property suite:
//   * a batch never mixes weathers — the engine runs one model per
//     forward pass, so a batch must never straddle a model switch;
//   * a batch never exceeds max_batch items;
//   * no starvation — once staged, a window is emitted by next_due()
//     within max_batch_delay_ms (given the caller polls), or by flush();
//   * conservation — every staged window appears in exactly one batch.
//
// The batcher is deliberately threadless and clock-agnostic: callers
// pass `now` into stage()/next_due(), so the property tests drive it
// with a fake clock and assert deadline behaviour deterministically.
// The server's batcher thread is the only concurrent user and calls it
// from one thread; no locking is needed here.

#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "serving/stream.h"

namespace safecross::serving {

struct BatcherConfig {
  std::size_t max_batch = 8;        // fire a weather group at this size...
  double max_batch_delay_ms = 4.0;  // ...or when its oldest item is this old
};

/// One weather-uniform batch ready for a single (N,1,T,H,W) forward pass.
struct Batch {
  Weather weather = Weather::Daytime;
  std::vector<ReadyWindow> items;
  double max_wait_ms = 0.0;  // staging wait of the oldest item at fire time
  bool fired_by_deadline = false;
};

class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;

  explicit MicroBatcher(BatcherConfig config) : config_(config) {
    if (config_.max_batch == 0) config_.max_batch = 1;
  }

  const BatcherConfig& config() const { return config_; }

  /// Stage one model-gated window into its weather group.
  void stage(ReadyWindow w, Clock::time_point now);

  /// The next batch that must fire at `now`: a full group first (largest
  /// backlog wins, then enum order — deterministic), else the group whose
  /// oldest item has exceeded the delay budget. nullopt when nothing is
  /// due yet.
  std::optional<Batch> next_due(Clock::time_point now);

  /// Drain one remaining group regardless of size/deadline (end of run).
  std::optional<Batch> flush();

  bool empty() const { return staged_ == 0; }
  std::size_t staged() const { return staged_; }

  /// Milliseconds until the oldest staged item's deadline expires at
  /// `now` (<= 0 when already due); a very large value when empty. The
  /// server uses this to size its idle wait.
  double ms_until_deadline(Clock::time_point now) const;

 private:
  struct Staged {
    ReadyWindow w;
    Clock::time_point at;
  };

  Batch fire(Weather weather, std::size_t count, Clock::time_point now, bool by_deadline);

  BatcherConfig config_;
  std::map<Weather, std::deque<Staged>> groups_;
  std::size_t staged_ = 0;
};

}  // namespace safecross::serving
