#pragma once
// Crash-consistent snapshot store for the stream server.
//
// A snapshot is one opaque payload (the server serializes its resumable
// state into it with common::StateWriter) wrapped in a self-validating
// frame: magic, version, generation number, length-prefixed payload and
// a trailing CRC32 of everything before it. Generations are monotonically
// increasing and each lives in its own file (snap-00000001.bin, ...), so
// the store never modifies a published snapshot — it only adds new ones
// and prunes old ones.
//
// Atomicity: write() serializes to snap-XXXXXXXX.tmp, fflush + fsync,
// then renames to the final name (rename within a directory is atomic on
// POSIX) and fsyncs the directory so the new name itself is durable. A
// kill at any instant therefore leaves either (a) the previous good
// generations untouched plus an ignorable .tmp, or (b) those plus one
// complete new generation. load_newest_valid() walks generations newest
// to oldest, CRC-checking each, and returns the first intact one — a
// corrupt or torn newest snapshot falls back to the previous good
// generation with a structured list of what was rejected and why.
//
// Chaos hooks: BeforeSnapshotWrite / MidSnapshotWrite (flushes a genuine
// half-written temp file, then dies) / BeforeSnapshotRename /
// AfterSnapshotRename.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/crash_point.h"

namespace safecross::serving {

class SnapshotStore {
 public:
  static constexpr std::uint32_t kMagic = 0x4E535853u;  // "SXSN"
  static constexpr std::uint32_t kVersion = 2;  // v2: detached flags in the payload

  /// Opens (and creates) `dir`; scans existing generations so the next
  /// write() continues the sequence instead of reusing a burned number.
  /// Stale .tmp files from a killed writer are removed here.
  SnapshotStore(std::filesystem::path dir, std::size_t keep);

  /// Atomically publish `payload` as the next generation; returns its
  /// generation number. Prunes all but the newest `keep` generations
  /// after a successful publish (never before — the previous good
  /// snapshot must survive until the new one is durable).
  std::uint64_t write(const std::string& payload,
                      runtime::CrashInjector* crash = nullptr);

  std::uint64_t next_generation() const { return next_gen_; }
  const std::filesystem::path& dir() const { return dir_; }

  struct Loaded {
    bool found = false;
    std::uint64_t generation = 0;
    std::string payload;
    /// Newest-first "file: reason" lines for every generation that was
    /// present but failed validation (recovery report material).
    std::vector<std::string> rejected;
  };

  /// Newest intact generation, skipping (and recording) corrupt ones.
  /// Never throws on file *content*; missing directory → not found.
  static Loaded load_newest_valid(const std::filesystem::path& dir);

  static std::filesystem::path generation_path(const std::filesystem::path& dir,
                                               std::uint64_t generation);

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
  std::uint64_t next_gen_ = 1;
};

}  // namespace safecross::serving
