#pragma once
// StreamServer: K simulated intersections multiplexed onto one shared
// SafeCross inference engine.
//
// Batched mode (run()):
//
//   stream 0 producer ──q0──┐
//   stream 1 producer ──q1──┼──▶ batcher thread ──▶ one (N,1,T,H,W)
//   ...                     │    (weather-grouped,   forward pass per
//   stream K-1 ───────qK-1──┘     deadline-aware)    batch, verdicts
//                                                    scattered back
//
// Each stream runs as a supervised producer thread ticking its own
// StreamContext and pushing ReadyWindows into a per-stream BoundedQueue
// (backpressure first, oldest-first shedding past the push timeout when
// shed_on_overload is set). The calling thread drains all queues into a
// MicroBatcher, fires weather-uniform batches, runs one batched forward
// pass per batch, and scatters the verdicts back onto each stream's
// scorecard. Fail-safe-gated windows bypass the batcher — their verdict
// is already resolved and must not wait on batch formation.
//
// Sequential mode (run_sequential()): the reference implementation —
// each stream alone, in order, every model-gated decision classified
// N=1 the moment it is due (the same code path RealtimeMonitor uses).
//
// Correctness contract, pinned by tests/test_stream_server.cpp: with the
// deadline check disabled (the default), run() and run_sequential() over
// identically configured streams produce bit-identical per-stream
// verdict traces and scorecards. Batching changes only how the GEMM
// backend is fed and how often the engine swaps models — never a
// verdict. Producer crashes within the supervisor's retry budget replay
// the crashed frame and also change nothing.
//
// Fault isolation: a producer that exhausts its retry budget runs a
// degraded fallback that marks the stream down and latches its health
// monitor; its queue closes so the batcher never waits on it, and every
// other stream keeps producing and deciding.
//
// A server instance runs its streams exactly once (the contexts are
// consumed); build a fresh server to rerun a scenario.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/safecross.h"
#include "runtime/bounded_queue.h"
#include "runtime/journal.h"
#include "runtime/supervisor.h"
#include "serving/micro_batcher.h"
#include "serving/snapshot.h"
#include "serving/stream.h"
#include "switching/model_cache.h"

namespace safecross::serving {

/// How the batched server realizes model switches (DESIGN.md §14).
///
/// Legacy      — the engine's discrete-event switcher models the delay;
///               no warm cache, no real data movement (every pre-existing
///               behaviour, golden trace and parity assertion unchanged).
/// StopAndStart— a single-resident ModelCache; every batch whose weather
///               is not resident stalls the deciding thread for a real
///               sequential weight load (the paper's ablation arm).
/// Pipelined   — a dual-resident ModelCache; the old model keeps serving
///               batches while the incoming model loads layer-group by
///               layer-group through the switching executor on a loader
///               thread, with Begin/Commit/Abort write-ahead journaled.
///
/// All three modes produce bit-identical verdicts: residency is a latency
/// model, never verdict-bearing — a verdict depends only on the window
/// bytes and the target weather's weights.
enum class SwitchMode : std::uint8_t { Legacy = 0, StopAndStart = 1, Pipelined = 2 };

const char* switch_mode_name(SwitchMode m);

/// Crash-consistent durability for a server run. When `dir` is set the
/// server keeps a write-ahead journal of every emitted decision (appended
/// and flushed *before* the verdict touches a scorecard) plus periodic
/// atomic snapshots of all resumable stream state, so a killed run can be
/// resumed with recover() and produce the exact decision stream the
/// uninterrupted run would have.
///
/// Durable runs require shed_on_overload == false: a shed window is a
/// decision that never happens at a wall-clock-dependent point, which no
/// deterministic recovery can reproduce. The constructor enforces this.
struct DurabilityConfig {
  std::filesystem::path dir;  // empty → durability off
  /// Snapshot cadence in applied decisions; 0 → journal-only (recovery
  /// replays the whole run from genesis, deduping against the journal).
  std::size_t snapshot_every_decisions = 64;
  std::size_t keep_snapshots = 2;  // generations retained after each write
  runtime::JournalConfig journal;
  /// Chaos-harness hook; fires CrashInjected at armed crash points inside
  /// the journal-append and snapshot-write paths. Not owned.
  runtime::CrashInjector* crash = nullptr;

  bool enabled() const { return !dir.empty(); }
};

/// What recover() found on disk and what it did about it. Corruption is
/// never fatal: a torn journal tail is dropped (the lost decisions are
/// re-derived deterministically) and a corrupt newest snapshot falls back
/// to the previous good generation (or genesis).
struct RecoveryReport {
  bool recovered_from_snapshot = false;
  std::uint64_t snapshot_generation = 0;
  std::vector<std::string> snapshots_rejected;  // "file: reason", newest first
  std::uint64_t journal_records = 0;   // valid prefix length (all streams)
  std::uint64_t journal_pending = 0;   // journaled decisions newer than the snapshot
  // Journaled recalibrations newer than the snapshot: the re-run must
  // re-derive each one bit-identically (calibration lineage verification).
  std::uint64_t journal_pending_recalibrations = 0;
  std::uint64_t journal_bytes_dropped = 0;  // torn/corrupt tail bytes truncated
  bool journal_missing = false;
  bool journal_bad_header = false;
  bool journal_torn_tail = false;
  std::string journal_tail_error;
  // Serving-path switch protocol audit (ModelSwitch{Begin,Commit,Abort}).
  std::uint64_t journal_switch_begins = 0;
  std::uint64_t journal_switch_commits = 0;
  std::uint64_t journal_switch_aborts = 0;
  /// Begins with no terminal record — a mid-switch kill. The resumed run
  /// closes each with an Abort (reason = closed-by-recovery) as soon as
  /// the journal re-opens, so every switch_id ends exactly-once terminal.
  std::uint64_t switches_aborted_on_recovery = 0;
};

/// One stream's complete resumable identity, drained from a recovered
/// server for re-placement onto another server (fleet failover). Carries
/// the stream's config, its serialized StreamContext state (which
/// includes the per-seq verdict trace — the merged-decision-sequence
/// vehicle), and the journal replay sets newer than the snapshot, so the
/// adopting server continues the stream bit-identically: re-produced
/// windows dedupe against `pending` exactly as an in-place recovery
/// would.
struct StreamHandoff {
  StreamConfig config;
  std::string state;  // StreamContext::save_state payload
  bool down = false;  // gave up in the dead run; stays down after adoption
  std::map<std::uint64_t, runtime::DecisionEntry> pending;
  std::map<std::uint64_t, runtime::RecalibrationEntry> pending_recalib;
  std::size_t frames_run = 0;        // progress at the snapshot cut
  std::size_t windows_produced = 0;  // decision ordinal resume point
  // True when the hand-off left a *live* server through the cooperative
  // drain point (request_drain) rather than a post-mortem recovery.
  bool live_drain = false;
};

struct StreamServerConfig {
  std::vector<StreamConfig> streams;
  std::size_t frames = 30 * 60;  // frame slots per stream (~60 s at 30 Hz)
  BatcherConfig batcher;         // batcher.max_batch == 0 → streams.size()
  std::size_t queue_capacity = 16;  // per-stream ready-window queue depth
  double push_timeout_ms = 250.0;   // producer backpressure budget
  double pop_timeout_ms = 1.0;      // batcher idle-wait quantum
  // Past the push timeout: true sheds the oldest queued window (live
  // serving — freshest advice wins), false keeps pushing (pure
  // backpressure; parity runs lose nothing).
  bool shed_on_overload = true;
  // Artificial per-batch inference delay — the overload knob for the
  // shedding/starvation tests and the bench. 0 off.
  double decide_delay_ms = 0.0;
  runtime::BackoffPolicy backoff;      // producer crash-restart policy
  std::uint64_t supervisor_seed = 0x5EB7E55u;
  bool record_traces = false;          // keep per-seq verdict traces
  DurabilityConfig durability;         // checkpoint/journal layer (off by default)
  /// Serving-path switch realization; Legacy preserves every pre-existing
  /// behaviour bit-for-bit. Batched run() only — run_sequential() is the
  /// switch-free-equivalent oracle and always runs the Legacy path.
  SwitchMode switch_mode = SwitchMode::Legacy;
  /// Warm-cache geometry for StopAndStart/Pipelined (capacity is forced
  /// to 1 under StopAndStart — single residency IS the ablation).
  switching::ModelCacheConfig model_cache;
  /// Weathers to load into the cache at boot (non-Legacy modes), in
  /// order, before the first window is served — typically
  /// ModelStore::warm_manifest. Pre-warmed weathers are resident from
  /// decision one, so the first serving window never pays the
  /// servability holdback. Prewarm never evicts: it fills empty cache
  /// capacity and stops at the first weather that no longer fits.
  /// Unjournaled and deterministic, so recovered runs re-warm
  /// identically.
  std::vector<Weather> prewarm;
};

/// One fired batch, for the bench/tests to audit batching behaviour.
struct BatchRecord {
  Weather weather = Weather::Daytime;
  std::uint32_t epoch = 0;
  std::size_t size = 0;
  double max_wait_ms = 0.0;
  bool fired_by_deadline = false;
};

class StreamServer {
 public:
  /// The engine must already hold a model for every weather the streams
  /// (and their switch schedules) will request; a missing model degrades
  /// through SafeCross::try_on_scene_change's daytime fallback.
  StreamServer(core::SafeCross& engine, StreamServerConfig config);

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Batched serving: supervised producer threads + the micro-batching
  /// inference loop on the calling thread. Returns when every stream has
  /// run config.frames slots (or gone down) and all verdicts are scored.
  void run();

  /// Sequential reference: bit-identical verdicts to run(); see header.
  void run_sequential();

  /// Load the durable state a killed run left in config.durability.dir:
  /// newest valid snapshot (corrupt generations are skipped with reasons),
  /// then the journal's valid prefix; decisions journaled after the
  /// snapshot become the replay set that dedupes re-produced windows, and
  /// any torn journal tail is truncated (its decisions re-derive
  /// deterministically). Call before run()/run_sequential(); the
  /// subsequent run continues the killed run so that the concatenated
  /// decision stream is bit-identical to an uninterrupted run. Throws
  /// only on operator error (durability off, already ran, config
  /// fingerprint mismatch) — on-disk corruption degrades, never throws.
  RecoveryReport recover();

  bool recovered() const { return recovered_; }
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// Fleet failover, step 2 (after recover()): extract every stream's
  /// resumable state for re-placement onto surviving servers. Consumes
  /// this server — it can no longer run; the hand-off *is* the drain.
  /// Deterministic: two independent recover()+drain_streams() passes over
  /// the same durable dir yield byte-identical hand-offs (double-failover
  /// safe — the dir is read-mostly, only the torn tail is truncated).
  std::vector<StreamHandoff> drain_streams();

  /// Fleet failover, step 3: restore stream i from a hand-off drained
  /// from a dead server. Must be called before run()/run_sequential();
  /// config_.streams[i] must be the hand-off's config (name-checked).
  /// The adopting server picks up mid-stream: the context resumes at the
  /// snapshot cut, journaled-but-unsnapshotted verdicts replay via the
  /// pending set, and the producer-crash schedule fast-forwards past
  /// frames already lived. A durable adopting server journals the
  /// continuation into its *own* dir — the dead shard's dir plus the
  /// wave dirs together form the audit trail.
  void adopt_stream(std::size_t i, const StreamHandoff& h);

  // --- cooperative drain (fleet gray-failure path) ---
  // A slow-but-alive shard hands streams to idle peers *mid-run*, without
  // a crash or a recovery pass. request_drain() (any thread) marks the
  // wanted streams; the deciding thread honors it at its next drain
  // point: producers park at the snapshot barrier, every produced window
  // is decided (batcher fully flushed — parity-safe, verdicts are
  // batch-composition invariant), the drained streams' quiescent state
  // is packaged into StreamHandoffs exactly as a recovery drain would,
  // the streams are marked detached (their producers exit; a durable
  // server also snapshots, so a later crash cannot resurrect them), and
  // the rest of the server keeps serving. take_drained() (any thread)
  // collects the hand-offs once drain_ready() turns true.

  /// Ask the serving loop to hand off these streams at its next
  /// quiescent point. Batched run() only; indices out of range or
  /// already-detached are ignored.
  void request_drain(std::vector<std::size_t> streams);
  bool drain_ready() const { return drain_ready_.load(std::memory_order_acquire); }
  std::vector<StreamHandoff> take_drained();
  /// Streams handed off through the cooperative drain point so far.
  std::size_t streams_detached() const;
  bool stream_detached(std::size_t i) const { return detached_[i] != 0; }

  std::size_t stream_count() const { return streams_.size(); }
  const StreamContext& stream(std::size_t i) const { return *streams_[i]; }
  StreamContext& stream(std::size_t i) { return *streams_[i]; }

  /// Stream i's producer exhausted its retry budget (batched mode only).
  bool stream_down(std::size_t i) const { return down_[i] != 0; }
  /// Ready windows stream i lost to overload shedding (batched mode only).
  std::size_t windows_shed(std::size_t i) const { return shed_[i]; }
  std::size_t windows_shed_total() const;
  std::size_t queue_high_water(std::size_t i) const { return high_water_[i]; }

  std::size_t total_decisions() const;

  // --- live progress (fleet heartbeat observability) ---
  // Readable from another thread while run() is on-CPU: relaxed atomics,
  // single writer (the deciding thread). Never decision-bearing — a fleet
  // heartbeat samples these, and wall-clock jitter in when it looks can
  // never perturb a verdict.
  std::uint64_t decisions_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  /// Max capture→verdict latency seen so far (ms).
  double latency_watermark_ms() const {
    return latency_watermark_ms_.load(std::memory_order_relaxed);
  }
  /// Sum of ready-window queue depths at the consumer's last pass.
  std::size_t live_queue_depth() const {
    return live_queue_depth_.load(std::memory_order_relaxed);
  }

  // --- batched-mode scorecard ---
  const std::vector<BatchRecord>& batch_log() const { return batch_log_; }
  std::size_t windows_batched() const { return windows_batched_; }
  /// Actual engine model swaps performed (delay > 0) — batching amortises
  /// these versus the sequential reference.
  std::size_t engine_switches() const { return engine_switches_; }
  std::size_t stage_restarts() const { return stage_restarts_; }
  std::size_t streams_gave_up() const { return streams_gave_up_; }
  std::size_t crashes_injected() const {
    return crashes_injected_.load(std::memory_order_relaxed);
  }

  // --- serving-path switching (non-Legacy modes) ---
  /// The warm per-weather model cache, or nullptr under SwitchMode::Legacy
  /// (also null before run()). Loads/evictions/wall time in its stats.
  const switching::ModelCache* model_cache() const { return cache_.get(); }
  /// Switches committed / aborted at run time (recovery-closed aborts are
  /// counted in RecoveryReport::switches_aborted_on_recovery instead).
  std::size_t switches_committed() const { return switches_committed_; }
  std::size_t switches_aborted() const { return switches_aborted_; }
  /// Queued pipelined loads dropped because their weather's demand had
  /// already flipped away before the load started (switch-storm dedupe).
  std::size_t loads_dropped_stale() const { return loads_dropped_stale_; }
  /// Models loaded at boot from config.prewarm.
  std::size_t models_prewarmed() const { return models_prewarmed_; }
  /// Capture→verdict latency of every applied decision, in apply order
  /// (deciding thread only; the switch-storm bench reads p99 from this).
  const std::vector<double>& latency_log() const { return latency_log_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Producer body for stream i (runs under the supervisor).
  void produce(std::size_t i, runtime::BoundedQueue<ReadyWindow>& queue,
               runtime::Supervisor& supervisor);
  /// Route one popped window: replayed verdicts apply from the journal,
  /// fail-safe verdicts apply immediately, model-gated windows stage into
  /// the batcher.
  void accept(MicroBatcher& batcher, ReadyWindow w);
  void decide_fail_safe(const ReadyWindow& w);
  /// Progress + latency-watermark bookkeeping for every applied decision
  /// (deciding thread only; read by fleet heartbeats).
  void note_applied(double latency_ms) {
    applied_.fetch_add(1, std::memory_order_relaxed);
    if (latency_ms > latency_watermark_ms_.load(std::memory_order_relaxed)) {
      latency_watermark_ms_.store(latency_ms, std::memory_order_relaxed);
    }
    latency_log_.push_back(latency_ms);
  }
  /// One batched forward pass + scatter; appends to the batch log.
  void decide_batch(Batch& batch);
  /// Make `weather`'s model serve (engine switch accounting lives here);
  /// returns the weather actually serving, or nullopt when the engine is
  /// fully down. Shared by both modes so they cannot drift.
  std::optional<Weather> serve_weather(Weather weather);

  std::size_t effective_max_batch() const {
    return config_.batcher.max_batch == 0 ? streams_.size() : config_.batcher.max_batch;
  }

  // --- serving-path switching (non-Legacy modes; deciding thread only
  // unless noted) ---

  /// One in-flight pipelined load: the loader thread runs the cache
  /// transfer (real data movement) while the deciding thread keeps serving
  /// batches on the resident models. The destructor joins.
  struct LoadOp {
    Weather weather = Weather::Daytime;
    std::string scene;
    std::uint64_t switch_id = 0;
    std::atomic<bool> done{false};
    std::exception_ptr error;  // written before done; read after
    switching::ExecutorResult result;
    std::thread worker;
    ~LoadOp() {
      if (worker.joinable()) worker.join();
    }
  };

  /// Build + seed the cache from the engine's switcher registry (batched
  /// run() under non-Legacy modes).
  void setup_model_cache();
  /// Queue a (deduped) async load request for a non-resident weather.
  void request_load(Weather weather);
  /// Drive the async load machinery one step: finalize a finished load
  /// (commit + journal), then start the next wanted one that fits.
  void poll_load(MicroBatcher& batcher);
  void start_next_load(MicroBatcher& batcher);
  /// Join + commit (or abort) the in-flight load. A CrashInjected captured
  /// on the loader thread rethrows here, on the deciding thread.
  void finish_load();
  /// Synchronous residency for a batch about to be decided: finalize any
  /// in-flight load, then block-load if still not resident. The normal
  /// pipelined path never stalls here (servability held the batch until
  /// commit); flush/barrier edges and the whole StopAndStart mode do —
  /// under StopAndStart this stall IS the measured switch. Load failure
  /// journals an Abort and returns: residency is a latency model only,
  /// never verdict-bearing, so the batch is decided regardless.
  void ensure_resident_blocking(Weather weather);
  void journal_switch_phase(runtime::JournalRecordType type, std::uint64_t switch_id,
                            std::uint8_t weather, double wall_ms, std::uint8_t reason = 0);

  // --- durability layer ---
  bool durable() const { return config_.durability.enabled(); }
  /// Seeds/schedules/geometry the snapshot must match to be resumable.
  std::uint64_t config_fingerprint() const;
  /// Open the journal (and the snapshot store when absent). Refuses to
  /// append onto pre-existing durable state unless recover() ran first.
  void prepare_durability();
  void finish_durability();
  /// If the journal holds a verdict for (w.stream, w.seq), apply it —
  /// no inference, no re-append — and return true (exactly-once dedupe).
  bool apply_replayed(const ReadyWindow& w);
  /// Write-ahead append of one decision (no-op when durability is off).
  void journal_decision(const ReadyWindow& w, const core::SafeCross::Decision& d,
                        double latency_ms);
  /// Drain stream i's completed-recalibration outbox onto the deciding
  /// thread: journal each entry, except ones the recovered journal already
  /// holds — those are verified bit-exactly against the re-derived lineage
  /// (divergence throws) and skipped (exactly-once). Runs on the deciding
  /// thread only; a no-op for streams without a recalibration loop.
  void journal_recalibrations(std::size_t i);
  bool snapshot_due() const {
    return durable() && config_.durability.snapshot_every_decisions > 0 &&
           decisions_since_snapshot_ >= config_.durability.snapshot_every_decisions;
  }
  std::string snapshot_payload() const;
  void load_snapshot_payload(const std::string& payload);
  /// Serialize + atomically publish one snapshot generation. Caller must
  /// be at a quiescent point (every produced window applied).
  void write_snapshot_now();
  /// Batched-mode quiescent barrier: park all producers between ticks,
  /// drain every queue, flush the batcher (verdicts are batch-composition
  /// invariant, so early firing is parity-safe), snapshot, release.
  void barrier_snapshot(std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
                        MicroBatcher& batcher);
  /// Park everyone at the barrier and decide every produced window, then
  /// run `at_quiescence` before releasing — the shared skeleton of
  /// barrier_snapshot and the cooperative drain.
  template <typename Fn>
  void quiesce(std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
               MicroBatcher& batcher, Fn&& at_quiescence);
  /// Execute a pending request_drain at the deciding thread's drain point.
  void cooperative_drain(std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
                         MicroBatcher& batcher);
  /// Package stream i's quiescent state as a hand-off (shared by
  /// drain_streams and cooperative_drain).
  StreamHandoff package_handoff(std::size_t i);

  core::SafeCross& engine_;
  StreamServerConfig config_;
  std::vector<std::unique_ptr<StreamContext>> streams_;
  std::vector<std::size_t> crash_pos_;  // next crash_frames index, per stream
  std::vector<char> down_;
  std::vector<char> detached_;  // handed off mid-run via cooperative drain
  std::vector<std::size_t> shed_;
  std::vector<std::size_t> high_water_;
  std::vector<BatchRecord> batch_log_;
  std::size_t windows_batched_ = 0;
  std::size_t engine_switches_ = 0;
  std::size_t stage_restarts_ = 0;
  std::size_t streams_gave_up_ = 0;
  std::atomic<std::size_t> crashes_injected_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<double> latency_watermark_ms_{0.0};
  std::atomic<std::size_t> live_queue_depth_{0};
  std::vector<double> latency_log_;  // deciding thread only
  bool ran_ = false;

  // --- serving-path switching state (deciding thread only) ---
  std::unique_ptr<switching::ModelCache> cache_;  // null under Legacy
  std::unique_ptr<LoadOp> load_;                  // at most one in flight
  std::deque<Weather> want_;      // deduped async load requests, FIFO-ish
  std::string last_served_scene_;  // never evicted while a load runs
  /// Most recent window weather per stream (deciding thread) — the live
  /// demand signal the stale-load drop checks queued loads against.
  std::vector<Weather> last_window_weather_;
  std::uint64_t next_switch_id_ = 1;
  std::size_t switches_committed_ = 0;
  std::size_t switches_aborted_ = 0;
  std::size_t loads_dropped_stale_ = 0;
  std::size_t models_prewarmed_ = 0;
  /// Begin records recovery found without a terminal; closed with Abort
  /// (reason = closed-by-recovery) when the journal re-opens.
  struct DanglingSwitch {
    std::uint64_t switch_id = 0;
    std::uint8_t weather = 0;
  };
  std::vector<DanglingSwitch> dangling_switches_;

  // --- durability state ---
  runtime::Journal journal_;
  std::unique_ptr<SnapshotStore> snapshots_;
  /// Journaled-but-not-snapshotted verdicts awaiting their re-produced
  /// window, per stream, keyed by seq. Consumed on the deciding thread.
  std::vector<std::map<std::uint64_t, runtime::DecisionEntry>> pending_;
  /// Journaled-but-not-snapshotted recalibrations awaiting their
  /// re-derived twin, per stream, keyed by frame. Consumed on the
  /// deciding thread (journal_recalibrations).
  std::vector<std::map<std::uint64_t, runtime::RecalibrationEntry>> pending_recalib_;
  std::size_t decisions_since_snapshot_ = 0;
  bool recovered_ = false;
  RecoveryReport recovery_;

  // Batched-mode snapshot barrier: producers park between ticks while the
  // gate is up; the consumer drains, snapshots, then lowers the gate.
  std::atomic<bool> snapshot_gate_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::unique_ptr<std::atomic<char>[]> parked_;
  std::unique_ptr<std::atomic<char>[]> finished_;

  // Cooperative-drain rendezvous (request side: any thread; execution:
  // the deciding thread at its drain point).
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> drain_ready_{false};
  std::mutex drain_mu_;                 // guards drain_set_ / drained_out_
  std::vector<std::size_t> drain_set_;
  std::vector<StreamHandoff> drained_out_;
};

}  // namespace safecross::serving
