#include "serving/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/checksum.h"
#include "common/state_io.h"

namespace safecross::serving {

namespace {

constexpr const char* kPrefix = "snap-";
constexpr const char* kSuffix = ".bin";

/// Parse "snap-XXXXXXXX.bin" → generation; 0 when the name doesn't match.
std::uint64_t parse_generation(const std::string& name) {
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) return 0;
  std::uint64_t gen = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return gen;
}

void fsync_fd(int fd, const char* what) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error(std::string("snapshot: fsync failed on ") + what);
  }
}

void fsync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.string().c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw std::runtime_error("snapshot: cannot open dir " + dir.string());
  ::fsync(fd);  // best effort: some filesystems reject directory fsync
  ::close(fd);
}

std::vector<std::uint64_t> list_generations(const std::filesystem::path& dir) {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::uint64_t gen = parse_generation(entry.path().filename().string());
    if (gen > 0) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

}  // namespace

std::filesystem::path SnapshotStore::generation_path(const std::filesystem::path& dir,
                                                     std::uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return dir / name;
}

SnapshotStore::SnapshotStore(std::filesystem::path dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {
  std::filesystem::create_directories(dir_);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);  // a killed writer's debris
    }
  }
  const std::vector<std::uint64_t> gens = list_generations(dir_);
  next_gen_ = gens.empty() ? 1 : gens.back() + 1;
}

std::uint64_t SnapshotStore::write(const std::string& payload,
                                   runtime::CrashInjector* crash) {
  const std::uint64_t gen = next_gen_;

  common::StateWriter frame;
  frame.u32(kMagic);
  frame.u32(kVersion);
  frame.u64(gen);
  frame.str(payload);
  frame.u32(common::crc32(frame.bytes()));
  const std::string bytes = frame.take();

  const std::filesystem::path final_path = generation_path(dir_, gen);
  std::filesystem::path tmp_path = final_path;
  tmp_path.replace_extension(".tmp");

  if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::BeforeSnapshotWrite);

  std::FILE* file = std::fopen(tmp_path.string().c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("snapshot: cannot create " + tmp_path.string());
  }

  if (crash != nullptr && crash->fire_now(runtime::CrashPoint::MidSnapshotWrite)) {
    // A kill half-way through the temp-file write: half the bytes land,
    // the rename never happens, so recovery must never even look at it.
    const std::size_t half = bytes.size() / 2;
    std::fwrite(bytes.data(), 1, half, file);
    std::fflush(file);
    std::fclose(file);
    throw runtime::CrashInjected{runtime::CrashPoint::MidSnapshotWrite,
                                 crash->hits(runtime::CrashPoint::MidSnapshotWrite)};
  }

  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size() &&
                     std::fflush(file) == 0;
  if (!wrote) {
    std::fclose(file);
    throw std::runtime_error("snapshot: short write to " + tmp_path.string());
  }
  fsync_fd(::fileno(file), "temp snapshot");
  std::fclose(file);

  if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::BeforeSnapshotRename);

  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    throw std::runtime_error("snapshot: rename failed: " + ec.message());
  }
  fsync_dir(dir_);
  next_gen_ = gen + 1;

  if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::AfterSnapshotRename);

  // Prune only after the new generation is durable.
  const std::vector<std::uint64_t> gens = list_generations(dir_);
  if (gens.size() > keep_) {
    for (std::size_t i = 0; i + keep_ < gens.size(); ++i) {
      std::filesystem::remove(generation_path(dir_, gens[i]), ec);
    }
  }
  return gen;
}

SnapshotStore::Loaded SnapshotStore::load_newest_valid(const std::filesystem::path& dir) {
  Loaded out;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return out;

  std::vector<std::uint64_t> gens = list_generations(dir);
  std::reverse(gens.begin(), gens.end());  // newest first

  for (std::uint64_t gen : gens) {
    const std::filesystem::path path = generation_path(dir, gen);
    const std::string name = path.filename().string();
    std::string bytes;
    try {
      bytes = common::read_file(path);
    } catch (const std::exception& e) {
      out.rejected.push_back(name + ": unreadable");
      continue;
    }
    // Frame: magic u32, version u32, generation u64, payload (u64 len +
    // bytes), crc u32 over everything before it.
    if (bytes.size() < 4 + 4 + 8 + 8 + 4) {
      out.rejected.push_back(name + ": truncated frame");
      continue;
    }
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
    if (common::crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
      out.rejected.push_back(name + ": checksum mismatch");
      continue;
    }
    try {
      common::StateReader r(bytes.data(), bytes.size() - 4);
      if (r.u32() != kMagic || r.u32() != kVersion) {
        out.rejected.push_back(name + ": bad magic/version");
        continue;
      }
      const std::uint64_t file_gen = r.u64();
      if (file_gen != gen) {
        out.rejected.push_back(name + ": generation mismatch");
        continue;
      }
      std::string payload = r.str();
      if (!r.at_end()) {
        out.rejected.push_back(name + ": trailing bytes inside frame");
        continue;
      }
      out.found = true;
      out.generation = gen;
      out.payload = std::move(payload);
      return out;
    } catch (const common::StateError&) {
      out.rejected.push_back(name + ": frame does not decode");
      continue;
    }
  }
  return out;
}

}  // namespace safecross::serving
