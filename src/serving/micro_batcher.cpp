#include "serving/micro_batcher.h"

#include <limits>

namespace safecross::serving {

namespace {

double ms_between(MicroBatcher::Clock::time_point from, MicroBatcher::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

void MicroBatcher::stage(ReadyWindow w, Clock::time_point now) {
  // Anchor the delay budget at capture time when the stream stamped one:
  // time the window already spent queued upstream of the batcher counts
  // against its deadline (a stalled consumer must not grant staged
  // windows a fresh budget). Unstamped windows (fake-clock tests) and
  // clock skew (captured "after" now) fall back to the stage clock.
  const Clock::time_point at =
      (w.captured != Clock::time_point{} && w.captured < now) ? w.captured : now;
  const GroupKey key{w.model_weather, w.epoch};
  groups_[key].push_back(Staged{std::move(w), at});
  ++staged_;
}

Batch MicroBatcher::fire(const GroupKey& key, std::size_t count, Clock::time_point now,
                         bool by_deadline) {
  auto it = groups_.find(key);
  std::deque<Staged>& group = it->second;
  Batch batch;
  batch.weather = key.first;
  batch.epoch = key.second;
  batch.fired_by_deadline = by_deadline;
  batch.max_wait_ms = ms_between(group.front().at, now);
  batch.items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.items.push_back(std::move(group.front().w));
    group.pop_front();
  }
  staged_ -= count;
  if (group.empty()) groups_.erase(it);
  return batch;
}

std::optional<Batch> MicroBatcher::next_due(Clock::time_point now) {
  // Full groups first: the largest backlog, ties broken by key order so
  // the firing sequence is deterministic for a deterministic arrival
  // order (the fake-clock property tests rely on this). Groups whose
  // weather is mid-load are held back — their windows keep aging against
  // the capture-anchored deadline and fire as soon as the model lands.
  const GroupKey* fullest = nullptr;
  std::size_t fullest_size = 0;
  for (const auto& [key, group] : groups_) {
    if (!servable(key.first)) continue;
    if (group.size() >= config_.max_batch && group.size() > fullest_size) {
      fullest = &key;
      fullest_size = group.size();
    }
  }
  if (fullest != nullptr) return fire(*fullest, config_.max_batch, now, /*by_deadline=*/false);

  for (const auto& [key, group] : groups_) {
    if (!servable(key.first)) continue;
    if (!group.empty() && ms_between(group.front().at, now) >= config_.max_batch_delay_ms) {
      const std::size_t count = std::min(group.size(), config_.max_batch);
      return fire(key, count, now, /*by_deadline=*/true);
    }
  }
  return std::nullopt;
}

std::optional<Batch> MicroBatcher::flush() {
  // Conservation beats servability at shutdown: every staged window must
  // leave in some batch even if its model never finished loading (the
  // server resolves residency synchronously before deciding it).
  if (groups_.empty()) return std::nullopt;
  auto it = groups_.begin();
  const std::size_t count = std::min(it->second.size(), config_.max_batch);
  return fire(it->first, count, it->second.back().at, /*by_deadline=*/false);
}

std::size_t MicroBatcher::staged_for(Weather weather) const {
  std::size_t n = 0;
  for (const auto& [key, group] : groups_) {
    if (key.first == weather) n += group.size();
  }
  return n;
}

double MicroBatcher::ms_until_deadline(Clock::time_point now) const {
  double soonest = std::numeric_limits<double>::max();
  for (const auto& [key, group] : groups_) {
    if (group.empty() || !servable(key.first)) continue;
    const double left = config_.max_batch_delay_ms - ms_between(group.front().at, now);
    if (left < soonest) soonest = left;
  }
  return soonest;
}

}  // namespace safecross::serving
