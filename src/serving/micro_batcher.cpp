#include "serving/micro_batcher.h"

#include <limits>

namespace safecross::serving {

namespace {

double ms_between(MicroBatcher::Clock::time_point from, MicroBatcher::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

void MicroBatcher::stage(ReadyWindow w, Clock::time_point now) {
  groups_[w.model_weather].push_back(Staged{std::move(w), now});
  ++staged_;
}

Batch MicroBatcher::fire(Weather weather, std::size_t count, Clock::time_point now,
                         bool by_deadline) {
  auto it = groups_.find(weather);
  std::deque<Staged>& group = it->second;
  Batch batch;
  batch.weather = weather;
  batch.fired_by_deadline = by_deadline;
  batch.max_wait_ms = ms_between(group.front().at, now);
  batch.items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.items.push_back(std::move(group.front().w));
    group.pop_front();
  }
  staged_ -= count;
  if (group.empty()) groups_.erase(it);
  return batch;
}

std::optional<Batch> MicroBatcher::next_due(Clock::time_point now) {
  // Full groups first: the largest backlog, ties broken by enum order so
  // the firing sequence is deterministic for a deterministic arrival
  // order (the fake-clock property tests rely on this).
  const Weather* fullest = nullptr;
  std::size_t fullest_size = 0;
  for (const auto& [weather, group] : groups_) {
    if (group.size() >= config_.max_batch && group.size() > fullest_size) {
      fullest = &weather;
      fullest_size = group.size();
    }
  }
  if (fullest != nullptr) return fire(*fullest, config_.max_batch, now, /*by_deadline=*/false);

  for (const auto& [weather, group] : groups_) {
    if (!group.empty() && ms_between(group.front().at, now) >= config_.max_batch_delay_ms) {
      const std::size_t count = std::min(group.size(), config_.max_batch);
      return fire(weather, count, now, /*by_deadline=*/true);
    }
  }
  return std::nullopt;
}

std::optional<Batch> MicroBatcher::flush() {
  if (groups_.empty()) return std::nullopt;
  auto it = groups_.begin();
  const std::size_t count = std::min(it->second.size(), config_.max_batch);
  return fire(it->first, count, it->second.back().at, /*by_deadline=*/false);
}

double MicroBatcher::ms_until_deadline(Clock::time_point now) const {
  double soonest = std::numeric_limits<double>::max();
  for (const auto& [weather, group] : groups_) {
    if (group.empty()) continue;
    const double left = config_.max_batch_delay_ms - ms_between(group.front().at, now);
    if (left < soonest) soonest = left;
  }
  return soonest;
}

}  // namespace safecross::serving
