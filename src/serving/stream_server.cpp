#include "serving/stream_server.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.h"

namespace safecross::serving {

using runtime::DecisionSource;

namespace {

std::chrono::milliseconds to_ms(double ms) {
  if (ms < 0.0) ms = 0.0;
  return std::chrono::milliseconds(static_cast<long long>(ms));
}

}  // namespace

StreamServer::StreamServer(core::SafeCross& engine, StreamServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.streams.empty()) {
    throw std::invalid_argument("StreamServer: at least one stream required");
  }
  streams_.reserve(config_.streams.size());
  for (const StreamConfig& sc : config_.streams) {
    streams_.push_back(std::make_unique<StreamContext>(sc));
    streams_.back()->set_record_trace(config_.record_traces);
  }
  crash_pos_.assign(streams_.size(), 0);
  down_.assign(streams_.size(), 0);
  shed_.assign(streams_.size(), 0);
  high_water_.assign(streams_.size(), 0);
}

std::size_t StreamServer::windows_shed_total() const {
  std::size_t total = 0;
  for (std::size_t s : shed_) total += s;
  return total;
}

std::size_t StreamServer::total_decisions() const {
  std::size_t total = 0;
  for (const auto& ctx : streams_) total += ctx->scorecard().decisions();
  return total;
}

std::optional<Weather> StreamServer::serve_weather(Weather weather) {
  const auto status = engine_.try_on_scene_change(weather);
  if (!status.ok) return std::nullopt;
  // delay_ms > 0 means the switcher actually moved a model; 0 means the
  // request hit the already-resident one.
  if (status.delay_ms > 0.0) ++engine_switches_;
  return status.active;
}

void StreamServer::decide_fail_safe(const ReadyWindow& w) {
  const auto d = core::SafeCross::fail_safe_decision(w.gate);
  const double latency =
      std::chrono::duration<double, std::milli>(Clock::now() - w.captured).count();
  streams_[w.stream]->apply(w, d.predicted_class, d.prob_danger, d.warn, d.source, latency);
}

void StreamServer::decide_batch(Batch& batch) {
  if (config_.decide_delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.decide_delay_ms));
  }
  const std::optional<Weather> served = serve_weather(batch.weather);
  std::vector<const std::vector<vision::Image>*> windows;
  windows.reserve(batch.items.size());
  for (const ReadyWindow& item : batch.items) windows.push_back(&item.window);
  std::vector<core::SafeCross::Decision> decisions;
  if (served) decisions = engine_.classify_batch_as(*served, windows);

  const auto now = Clock::now();
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    const ReadyWindow& item = batch.items[i];
    core::SafeCross::Decision d =
        served ? decisions[i]
               : core::SafeCross::fail_safe_decision(DecisionSource::FailSafeSwitchInFlight);
    const double latency =
        std::chrono::duration<double, std::milli>(now - item.captured).count();
    StreamContext& ctx = *streams_[item.stream];
    // Deadline budget spans capture → verdict in batched mode (as in the
    // pipelined monitor); off by default so wall clocks never perturb
    // parity.
    if (d.source == DecisionSource::Model && ctx.health().deadline_blown(latency)) {
      d.warn = true;
      d.predicted_class = 0;
      d.source = DecisionSource::FailSafeDeadline;
    }
    ctx.apply(item, d.predicted_class, d.prob_danger, d.warn, d.source, latency);
  }
  windows_batched_ += batch.items.size();
  batch_log_.push_back(
      {batch.weather, batch.items.size(), batch.max_wait_ms, batch.fired_by_deadline});
}

void StreamServer::accept(MicroBatcher& batcher, ReadyWindow w) {
  if (w.gate != DecisionSource::Model) {
    decide_fail_safe(w);
    return;
  }
  batcher.stage(std::move(w), Clock::now());
}

void StreamServer::produce(std::size_t i, runtime::BoundedQueue<ReadyWindow>& queue,
                           runtime::Supervisor& supervisor) {
  StreamContext& ctx = *streams_[i];
  const auto push_timeout = to_ms(config_.push_timeout_ms);
  const std::vector<std::size_t>& crashes = ctx.config().crash_frames;
  while (ctx.frames_run() < config_.frames) {
    if (supervisor.stop_requested()) return;
    // Injected crash *before* the frame is processed: the restarted
    // incarnation resumes at this exact frame, so within-budget crashes
    // are invisible to the verdict stream.
    const std::size_t next_frame = ctx.frames_run() + 1;
    if (crash_pos_[i] < crashes.size() && crashes[crash_pos_[i]] == next_frame) {
      ++crash_pos_[i];
      crashes_injected_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("injected producer crash: " + ctx.config().name);
    }
    std::optional<ReadyWindow> w = ctx.tick();
    if (!w) continue;
    w->stream = i;
    if (queue.push_ref(*w, push_timeout)) continue;
    if (config_.shed_on_overload) {
      queue.push_drop_oldest(std::move(*w));  // the queue counts the shed
    } else {
      while (!supervisor.stop_requested() && !queue.push_ref(*w, push_timeout)) {
      }
    }
  }
}

void StreamServer::run() {
  if (ran_) throw std::logic_error("StreamServer: a server instance runs once");
  ran_ = true;

  const std::size_t k = streams_.size();
  std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>> queues;
  queues.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    queues.push_back(std::make_unique<runtime::BoundedQueue<ReadyWindow>>(
        config_.queue_capacity));
  }

  runtime::Supervisor supervisor(config_.backoff, config_.supervisor_seed);
  for (std::size_t i = 0; i < k; ++i) {
    runtime::BoundedQueue<ReadyWindow>& q = *queues[i];
    supervisor.add_stage(
        streams_[i]->config().name,
        [this, i, &q, &supervisor] { produce(i, q, supervisor); },
        [this, i] {
          // Retry budget exhausted: the stream is down. Latch its health
          // monitor so any window still in flight gates fail-safe; the
          // other K-1 streams are unaffected.
          down_[i] = 1;
          streams_[i]->health().latch_fail_safe();
        },
        [&q] { q.close(); });
  }
  supervisor.start();

  BatcherConfig bcfg = config_.batcher;
  bcfg.max_batch = effective_max_batch();
  MicroBatcher batcher(bcfg);

  std::size_t rr = 0;  // rotate which queue takes the idle block
  for (;;) {
    bool all_drained = true;
    bool progressed = false;
    for (std::size_t j = 0; j < k; ++j) {
      runtime::BoundedQueue<ReadyWindow>& q = *queues[(rr + j) % k];
      while (std::optional<ReadyWindow> w = q.pop(std::chrono::milliseconds(0))) {
        progressed = true;
        accept(batcher, std::move(*w));
      }
      if (!q.drained()) all_drained = false;
    }
    rr = (rr + 1) % k;

    const auto now = Clock::now();
    while (std::optional<Batch> batch = batcher.next_due(now)) {
      progressed = true;
      decide_batch(*batch);
    }

    if (all_drained && batcher.empty()) break;
    if (!progressed) {
      // Nothing arrived and nothing fired: block briefly on one queue,
      // but never past the oldest staged window's batch deadline.
      double wait = config_.pop_timeout_ms;
      const double deadline = batcher.ms_until_deadline(Clock::now());
      if (deadline < wait) wait = deadline;
      if (std::optional<ReadyWindow> w = queues[rr]->pop(to_ms(wait))) {
        accept(batcher, std::move(*w));
      }
    }
  }
  // The loop only exits with the batcher empty; flush defends against a
  // future policy change leaving a remainder.
  while (std::optional<Batch> batch = batcher.flush()) decide_batch(*batch);

  supervisor.join();
  for (std::size_t i = 0; i < k; ++i) {
    shed_[i] = queues[i]->shed();
    high_water_[i] = queues[i]->high_water();
  }
  stage_restarts_ = supervisor.total_restarts();
  streams_gave_up_ = supervisor.stages_gave_up();
}

void StreamServer::run_sequential() {
  if (ran_) throw std::logic_error("StreamServer: a server instance runs once");
  ran_ = true;

  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamContext& ctx = *streams_[i];
    while (ctx.frames_run() < config_.frames) {
      std::optional<ReadyWindow> w = ctx.tick();
      if (!w) continue;
      w->stream = i;
      if (w->gate != DecisionSource::Model) {
        decide_fail_safe(*w);
        continue;
      }
      const std::optional<Weather> served = serve_weather(w->model_weather);
      if (!served) {
        w->gate = DecisionSource::FailSafeSwitchInFlight;
        decide_fail_safe(*w);
        continue;
      }
      Timer latency;
      core::SafeCross::Decision d = engine_.classify_as(*served, w->window);
      const double ms = latency.elapsed_ms();
      // Classifier-time deadline, as in the synchronous monitor; off by
      // default.
      if (ctx.health().deadline_blown(ms)) {
        d.warn = true;
        d.predicted_class = 0;
        d.source = DecisionSource::FailSafeDeadline;
      }
      ctx.apply(*w, d.predicted_class, d.prob_danger, d.warn, d.source, ms);
    }
  }
}

}  // namespace safecross::serving
