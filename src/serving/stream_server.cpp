#include "serving/stream_server.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "common/checksum.h"
#include "common/state_io.h"
#include "common/timer.h"
#include "switching/grouping.h"
#include "vision/danger_zone.h"

namespace safecross::serving {

using runtime::DecisionSource;

namespace {

constexpr const char* kJournalFile = "journal.wal";

std::chrono::milliseconds to_ms(double ms) {
  if (ms < 0.0) ms = 0.0;
  return std::chrono::milliseconds(static_cast<long long>(ms));
}

constexpr Weather kCacheWeathers[] = {Weather::Daytime, Weather::Rain, Weather::Snow,
                                      Weather::Night, Weather::Fog};

std::string scene_name(Weather weather) { return vision::weather_name(weather); }

}  // namespace

const char* switch_mode_name(SwitchMode m) {
  switch (m) {
    case SwitchMode::Legacy: return "legacy";
    case SwitchMode::StopAndStart: return "stop-and-start";
    case SwitchMode::Pipelined: return "pipelined";
  }
  return "?";
}

StreamServer::StreamServer(core::SafeCross& engine, StreamServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.streams.empty()) {
    throw std::invalid_argument("StreamServer: at least one stream required");
  }
  if (config_.durability.enabled() && config_.shed_on_overload) {
    // A shed window is a decision that silently never happens at a
    // wall-clock-dependent instant; no deterministic recovery can
    // reproduce it, so durable runs must use pure backpressure.
    throw std::invalid_argument(
        "StreamServer: durability requires shed_on_overload = false");
  }
  streams_.reserve(config_.streams.size());
  for (const StreamConfig& sc : config_.streams) {
    streams_.push_back(std::make_unique<StreamContext>(sc));
    streams_.back()->set_record_trace(config_.record_traces);
  }
  const std::size_t k = streams_.size();
  crash_pos_.assign(k, 0);
  down_.assign(k, 0);
  detached_.assign(k, 0);
  shed_.assign(k, 0);
  last_window_weather_.reserve(k);
  for (const StreamConfig& sc : config_.streams) last_window_weather_.push_back(sc.weather);
  high_water_.assign(k, 0);
  pending_.resize(k);
  pending_recalib_.resize(k);
  parked_ = std::make_unique<std::atomic<char>[]>(k);
  finished_ = std::make_unique<std::atomic<char>[]>(k);
  for (std::size_t i = 0; i < k; ++i) {
    parked_[i].store(0, std::memory_order_relaxed);
    finished_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t StreamServer::windows_shed_total() const {
  std::size_t total = 0;
  for (std::size_t s : shed_) total += s;
  return total;
}

std::size_t StreamServer::total_decisions() const {
  std::size_t total = 0;
  for (const auto& ctx : streams_) total += ctx->scorecard().decisions();
  return total;
}

std::optional<Weather> StreamServer::serve_weather(Weather weather) {
  const auto status = engine_.try_on_scene_change(weather);
  if (!status.ok) return std::nullopt;
  // delay_ms > 0 means the switcher actually moved a model; 0 means the
  // request hit the already-resident one.
  if (status.delay_ms > 0.0) {
    ++engine_switches_;
    if (journal_.is_open()) {
      runtime::JournalRecord rec;
      rec.type = runtime::JournalRecordType::ModelSwitch;
      rec.model_switch.weather = static_cast<std::uint8_t>(status.active);
      rec.model_switch.delay_ms = status.delay_ms;
      rec.model_switch.at_decision = journal_.records_appended();
      journal_.append(rec);
    }
  }
  return status.active;
}

// --- durability helpers ---

std::uint64_t StreamServer::config_fingerprint() const {
  common::StateWriter w;
  w.u64(config_.frames);
  w.boolean(config_.shed_on_overload);
  w.u8(static_cast<std::uint8_t>(config_.switch_mode));
  w.u64(config_.model_cache.capacity_models);
  w.f64(config_.model_cache.bytes_scale);
  w.u64(config_.streams.size());
  for (const StreamConfig& sc : config_.streams) {
    w.str(sc.name);
    w.u8(static_cast<std::uint8_t>(sc.weather));
    w.u64(sc.sim_seed);
    w.u64(sc.collector_seed);
    w.u64(sc.fault_seed);
    w.i32(sc.decision_stride);
    w.i32(sc.warmup_frames);
    w.u8(static_cast<std::uint8_t>(sc.priority));
    w.boolean(sc.fleet_degraded);
    w.u64(sc.owner_epoch);
    w.i32(sc.vp.frames_per_segment);
    w.u8(static_cast<std::uint8_t>(sc.vp.approach));
    w.i32(sc.vp.grid_w);
    w.i32(sc.vp.grid_h);
    w.u8(static_cast<std::uint8_t>(sc.vp.mode));
    w.f64(sc.faults.drop_prob);
    w.f64(sc.faults.freeze_prob);
    w.f64(sc.faults.noise_prob);
    w.f64(sc.faults.blackout_prob);
    w.i32(sc.faults.blackout_frames);
    w.f64(sc.faults.switch_failure_prob);
    w.f64(sc.faults.geometry.drift_px_per_frame);
    w.f64(sc.faults.geometry.drift_rot_per_frame);
    w.u64(sc.faults.geometry.drift_start_frame);
    w.u64(sc.faults.geometry.drift_stop_frame);
    w.f64(sc.faults.geometry.shake_amp_px);
    w.f64(sc.faults.geometry.shake_period_frames);
    w.f64(sc.faults.geometry.bump_prob);
    w.f64(sc.faults.geometry.bump_max_px);
    w.f64(sc.faults.geometry.bump_max_rot);
    w.boolean(sc.recalib.enabled);
    w.u64(sc.recalib.check_every_frames);
    w.f64(sc.recalib.drift_threshold_px);
    w.u64(sc.recalib.solve_latency_frames);
    w.u64(sc.recalib.estimator.seed);
    w.u64(sc.model_schedule.size());
    for (const ModelSwitchEvent& ev : sc.model_schedule) {
      w.u64(ev.at_frame);
      w.u8(static_cast<std::uint8_t>(ev.to));
      w.f64(ev.delay_ms);
    }
    w.u64(sc.crash_frames.size());
    for (std::size_t f : sc.crash_frames) w.u64(f);
  }
  const std::string& bytes = w.bytes();
  return static_cast<std::uint64_t>(common::crc32(bytes)) |
         (static_cast<std::uint64_t>(bytes.size()) << 32);
}

std::string StreamServer::snapshot_payload() const {
  common::StateWriter w;
  w.u64(config_fingerprint());
  w.u8(static_cast<std::uint8_t>(engine_.active_weather()));
  w.u64(engine_switches_);
  w.u64(windows_batched_);
  w.u64(streams_.size());
  for (char d : down_) w.boolean(d != 0);
  // Detached flags are durable: a crash after a cooperative drain must
  // not resurrect streams that already moved to a peer.
  for (char d : detached_) w.boolean(d != 0);
  for (const auto& ctx : streams_) ctx->save_state(w);
  return w.take();
}

void StreamServer::load_snapshot_payload(const std::string& payload) {
  common::StateReader r(payload);
  const std::uint64_t fp = r.u64();
  if (fp != config_fingerprint()) {
    throw std::runtime_error(
        "StreamServer::recover: snapshot was taken under a different stream "
        "configuration (fingerprint mismatch)");
  }
  const Weather active = static_cast<Weather>(r.u8());
  engine_switches_ = static_cast<std::size_t>(r.u64());
  windows_batched_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t k = r.u64();
  if (k != streams_.size()) {
    throw std::runtime_error("StreamServer::recover: snapshot stream count mismatch");
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) down_[i] = r.boolean() ? 1 : 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) detached_[i] = r.boolean() ? 1 : 0;
  for (auto& ctx : streams_) ctx->load_state(r);
  // Re-arm the weather model that was serving when the snapshot was cut.
  // The audit counter was restored above; this switch is re-setup, not a
  // new event, so it must not re-count (and must not be journaled — the
  // journal is not open yet during recover()).
  engine_.try_on_scene_change(active);
}

void StreamServer::prepare_durability() {
  if (!durable()) return;
  const std::filesystem::path& dir = config_.durability.dir;
  std::filesystem::create_directories(dir);
  if (!recovered_) {
    std::error_code ec;
    const std::filesystem::path journal_path = dir / kJournalFile;
    const bool journal_present = std::filesystem::exists(journal_path, ec) &&
                                 std::filesystem::file_size(journal_path, ec) > 0;
    if (journal_present || SnapshotStore::load_newest_valid(dir).found) {
      throw std::runtime_error(
          "StreamServer: durability dir holds state from a previous run; "
          "call recover() first (or point at a fresh dir)");
    }
  }
  if (!snapshots_) {
    snapshots_ = std::make_unique<SnapshotStore>(dir, config_.durability.keep_snapshots);
  }
  journal_.open(dir / kJournalFile, config_.durability.journal, config_.durability.crash);
  // Close every dangling switch the killed run left: its Begin is durable
  // but no load ever landed, so the decision stream stayed fully on the
  // old model — exactly what an Abort records. Appending these first
  // keeps the per-switch_id exactly-once (one Begin, one terminal)
  // invariant auditable from the final journal alone.
  for (const DanglingSwitch& d : dangling_switches_) {
    journal_switch_phase(runtime::JournalRecordType::ModelSwitchAbort, d.switch_id,
                         d.weather, 0.0, /*reason=*/1);
  }
  dangling_switches_.clear();
}

void StreamServer::finish_durability() {
  if (!durable()) return;
  journal_.sync();
  journal_.close();
}

bool StreamServer::apply_replayed(const ReadyWindow& w) {
  if (!durable()) return false;
  auto& pend = pending_[w.stream];
  auto it = pend.find(w.seq);
  if (it == pend.end()) return false;
  const runtime::DecisionEntry& e = it->second;
  if (e.frame != w.frame || e.danger_truth != w.danger_truth) {
    // The journal is CRC-clean, so a mismatch here means the re-produced
    // stream diverged from the killed run — a determinism bug, not disk
    // corruption. Fail loudly; silently trusting either side would
    // corrupt the decision stream.
    throw std::runtime_error("StreamServer: journal replay diverged from re-produced window");
  }
  streams_[w.stream]->apply(w, e.predicted_class, e.prob_danger, e.warn,
                            static_cast<DecisionSource>(e.source), e.latency_ms);
  pend.erase(it);
  ++decisions_since_snapshot_;
  note_applied(e.latency_ms);
  return true;
}

void StreamServer::journal_decision(const ReadyWindow& w, const core::SafeCross::Decision& d,
                                    double latency_ms) {
  if (!journal_.is_open()) return;
  runtime::JournalRecord rec;
  rec.type = runtime::JournalRecordType::Decision;
  rec.decision.stream = static_cast<std::uint32_t>(w.stream);
  rec.decision.seq = w.seq;
  rec.decision.frame = w.frame;
  rec.decision.danger_truth = w.danger_truth;
  rec.decision.predicted_class = d.predicted_class;
  rec.decision.prob_danger = d.prob_danger;
  rec.decision.warn = d.warn;
  rec.decision.source = static_cast<std::uint8_t>(d.source);
  rec.decision.latency_ms = latency_ms;
  // Fencing: the epoch this incarnation owns the stream under. The fleet
  // audits journals post-run — a decision under a stale epoch is a
  // split-brain bug.
  rec.decision.owner_epoch = config_.streams[w.stream].owner_epoch;
  journal_.append(rec);
}

void StreamServer::journal_recalibrations(std::size_t i) {
  StreamContext& ctx = *streams_[i];
  if (ctx.recalibration() == nullptr) return;
  std::vector<runtime::RecalibrationEntry> done = ctx.take_recalibrations();
  for (runtime::RecalibrationEntry& e : done) {
    e.stream = static_cast<std::uint32_t>(i);
    auto& pend = pending_recalib_[i];
    auto it = pend.find(e.frame);
    if (it != pend.end()) {
      // The killed run already journaled this recalibration: the re-run
      // must have re-derived the identical one, or the calibration
      // lineage — and with it every later warp — has diverged.
      const runtime::RecalibrationEntry& j = it->second;
      bool same = j.attempts == e.attempts && j.residual_rms == e.residual_rms &&
                  j.drift_px == e.drift_px;
      for (std::size_t m = 0; same && m < e.image_to_grid.size(); ++m) {
        same = j.image_to_grid[m] == e.image_to_grid[m];
      }
      if (!same) {
        throw std::runtime_error(
            "StreamServer: journal replay diverged from re-derived recalibration");
      }
      pend.erase(it);
      continue;  // already durable: exactly-once
    }
    if (journal_.is_open()) {
      runtime::JournalRecord rec;
      rec.type = runtime::JournalRecordType::Recalibration;
      rec.recalibration = e;
      journal_.append(rec);
    }
  }
}

void StreamServer::write_snapshot_now() {
  snapshots_->write(snapshot_payload(), config_.durability.crash);
  decisions_since_snapshot_ = 0;
}

RecoveryReport StreamServer::recover() {
  if (!durable()) {
    throw std::logic_error("StreamServer::recover: durability is not configured");
  }
  if (ran_ || recovered_) {
    throw std::logic_error("StreamServer::recover: must be called once, before run");
  }
  const std::filesystem::path& dir = config_.durability.dir;
  RecoveryReport report;

  // 1. The journal's valid prefix — the ground truth of what was emitted.
  const std::filesystem::path journal_path = dir / kJournalFile;
  runtime::Journal::ReplayReport replay = runtime::Journal::replay(journal_path);
  report.journal_missing = replay.missing;
  report.journal_bad_header = replay.bad_header;
  report.journal_torn_tail = replay.torn_tail;
  report.journal_tail_error = replay.tail_error;
  report.journal_records = replay.records.size();
  report.journal_bytes_dropped = replay.file_bytes - replay.valid_bytes;

  // 2. Newest intact snapshot; corrupt generations fall back with reasons.
  SnapshotStore::Loaded snap = SnapshotStore::load_newest_valid(dir);
  report.snapshots_rejected = snap.rejected;
  if (snap.found) {
    load_snapshot_payload(snap.payload);  // throws only on config mismatch
    report.recovered_from_snapshot = true;
    report.snapshot_generation = snap.generation;
  }

  // 3. Decisions journaled after the snapshot was cut become the replay
  // set: when the deterministic re-run re-produces those windows, the
  // journaled verdict is applied instead of re-deciding (exactly-once).
  // Switch-phase records are audited alongside: a Begin with no terminal
  // is a mid-switch kill; prepare_durability() closes each with an Abort.
  std::map<std::uint64_t, std::uint8_t> open_switches;  // id -> weather
  for (const runtime::JournalRecord& rec : replay.records) {
    if (rec.type == runtime::JournalRecordType::Decision) {
      const std::size_t stream = rec.decision.stream;
      if (stream >= streams_.size()) continue;  // defensive: fingerprint pins K
      if (rec.decision.seq < streams_[stream]->windows_produced()) continue;  // in snapshot
      pending_[stream].insert_or_assign(rec.decision.seq, rec.decision);
    } else if (rec.type == runtime::JournalRecordType::Recalibration) {
      // Recalibrations already reflected in the snapshot (applied at a
      // frame the restored stream has lived through) need no replay; the
      // rest must be re-derived bit-identically by the resumed run.
      const std::size_t stream = rec.recalibration.stream;
      if (stream >= streams_.size()) continue;
      if (rec.recalibration.frame <= streams_[stream]->frames_run()) continue;
      pending_recalib_[stream].insert_or_assign(rec.recalibration.frame, rec.recalibration);
    } else if (rec.type == runtime::JournalRecordType::ModelSwitchBegin) {
      ++report.journal_switch_begins;
      open_switches[rec.switch_phase.switch_id] = rec.switch_phase.weather;
      if (rec.switch_phase.switch_id >= next_switch_id_) {
        next_switch_id_ = rec.switch_phase.switch_id + 1;
      }
    } else if (rec.type == runtime::JournalRecordType::ModelSwitchCommit) {
      ++report.journal_switch_commits;
      open_switches.erase(rec.switch_phase.switch_id);
    } else if (rec.type == runtime::JournalRecordType::ModelSwitchAbort) {
      ++report.journal_switch_aborts;
      open_switches.erase(rec.switch_phase.switch_id);
    }
  }
  for (const auto& [id, weather] : open_switches) {
    dangling_switches_.push_back({id, weather});
  }
  report.switches_aborted_on_recovery = dangling_switches_.size();
  for (const auto& pend : pending_) report.journal_pending += pend.size();
  for (const auto& pend : pending_recalib_) {
    report.journal_pending_recalibrations += pend.size();
  }

  // 4. Drop the torn tail so the re-appended records follow the valid
  // prefix directly. A journal with a damaged header never replayed any
  // record — reset it entirely and let open() write a fresh header.
  if (!replay.missing && (replay.torn_tail || replay.bad_header)) {
    common::truncate_file(journal_path, replay.bad_header ? 0 : replay.valid_bytes);
  }

  // 5. Producer crash schedules compare against the *next* frame ordinal;
  // skip entries the restored streams already lived through, or a stale
  // entry would block every later one from ever firing.
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& crashes = config_.streams[i].crash_frames;
    while (crash_pos_[i] < crashes.size() &&
           crashes[crash_pos_[i]] <= streams_[i]->frames_run()) {
      ++crash_pos_[i];
    }
  }

  snapshots_ = std::make_unique<SnapshotStore>(dir, config_.durability.keep_snapshots);
  recovered_ = true;
  recovery_ = report;
  return report;
}

StreamHandoff StreamServer::package_handoff(std::size_t i) {
  StreamHandoff h;
  h.config = config_.streams[i];
  common::StateWriter w;
  streams_[i]->save_state(w);
  h.state = w.take();
  h.down = down_[i] != 0;
  h.pending = std::move(pending_[i]);
  h.pending_recalib = std::move(pending_recalib_[i]);
  h.frames_run = streams_[i]->frames_run();
  h.windows_produced = streams_[i]->windows_produced();
  pending_[i].clear();
  pending_recalib_[i].clear();
  return h;
}

std::vector<StreamHandoff> StreamServer::drain_streams() {
  if (!recovered_) {
    throw std::logic_error("StreamServer::drain_streams: call recover() first");
  }
  if (ran_) {
    throw std::logic_error("StreamServer::drain_streams: server already ran (or drained)");
  }
  ran_ = true;  // consumed: the hand-off is this server's run
  std::vector<StreamHandoff> out;
  out.reserve(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    // A stream detached before the crash already moved to a peer through
    // the live drain; its state here is a stale duplicate — re-handing it
    // off would double-own the stream (the fleet's epoch filter is the
    // backstop, this is the front door).
    if (detached_[i]) continue;
    out.push_back(package_handoff(i));
  }
  return out;
}

void StreamServer::adopt_stream(std::size_t i, const StreamHandoff& h) {
  if (ran_) {
    throw std::logic_error("StreamServer::adopt_stream: must be called before run");
  }
  if (i >= streams_.size() || config_.streams[i].name != h.config.name) {
    throw std::logic_error(
        "StreamServer::adopt_stream: slot does not match the hand-off stream");
  }
  // Split-brain fence: this slot was configured by the controller with
  // the epoch it minted for the current placement. A hand-off stamped
  // with any other epoch is from a superseded placement (a duplicated or
  // reordered transfer) — adopting it would let two incarnations decide
  // the same stream.
  if (h.config.owner_epoch != config_.streams[i].owner_epoch) {
    throw std::logic_error(
        "StreamServer::adopt_stream: stale ownership epoch for '" + h.config.name +
        "' (hand-off " + std::to_string(h.config.owner_epoch) + ", owned " +
        std::to_string(config_.streams[i].owner_epoch) + ")");
  }
  common::StateReader r(h.state);
  streams_[i]->load_state(r);
  last_window_weather_[i] = streams_[i]->model_weather();
  down_[i] = h.down ? 1 : 0;
  pending_[i] = h.pending;
  pending_recalib_[i] = h.pending_recalib;
  // Producer crash schedules compare against the *next* frame ordinal;
  // skip entries the restored stream already lived through (same rule as
  // recover()).
  const auto& crashes = config_.streams[i].crash_frames;
  while (crash_pos_[i] < crashes.size() &&
         crashes[crash_pos_[i]] <= streams_[i]->frames_run()) {
    ++crash_pos_[i];
  }
}

// --- deciding paths ---

void StreamServer::decide_fail_safe(const ReadyWindow& w) {
  const auto d = core::SafeCross::fail_safe_decision(w.gate);
  const double latency =
      std::chrono::duration<double, std::milli>(Clock::now() - w.captured).count();
  journal_decision(w, d, latency);
  streams_[w.stream]->apply(w, d.predicted_class, d.prob_danger, d.warn, d.source, latency);
  ++decisions_since_snapshot_;
  note_applied(latency);
}

void StreamServer::decide_batch(Batch& batch) {
  if (config_.decide_delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.decide_delay_ms));
  }
  if (cache_ != nullptr) {
    ensure_resident_blocking(batch.weather);
    const std::string scene = scene_name(batch.weather);
    if (cache_->resident(scene)) {
      cache_->touch(scene);
      last_served_scene_ = scene;
    }
  }
  const std::optional<Weather> served = serve_weather(batch.weather);
  std::vector<const std::vector<vision::Image>*> windows;
  windows.reserve(batch.items.size());
  for (const ReadyWindow& item : batch.items) windows.push_back(&item.window);
  std::vector<core::SafeCross::Decision> decisions;
  if (served) decisions = engine_.classify_batch_as(*served, windows);

  const auto now = Clock::now();
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    const ReadyWindow& item = batch.items[i];
    core::SafeCross::Decision d =
        served ? decisions[i]
               : core::SafeCross::fail_safe_decision(DecisionSource::FailSafeSwitchInFlight);
    const double latency =
        std::chrono::duration<double, std::milli>(now - item.captured).count();
    StreamContext& ctx = *streams_[item.stream];
    // Deadline budget spans capture → verdict in batched mode (as in the
    // pipelined monitor); off by default so wall clocks never perturb
    // parity.
    if (d.source == DecisionSource::Model && ctx.health().deadline_blown(latency)) {
      d.warn = true;
      d.predicted_class = 0;
      d.source = DecisionSource::FailSafeDeadline;
    }
    // Write-ahead: the verdict is durable before it is applied. A kill
    // between the two re-applies it from the journal on recovery.
    journal_decision(item, d, latency);
    ctx.apply(item, d.predicted_class, d.prob_danger, d.warn, d.source, latency);
    ++decisions_since_snapshot_;
    note_applied(latency);
  }
  windows_batched_ += batch.items.size();
  batch_log_.push_back({batch.weather, batch.epoch, batch.items.size(), batch.max_wait_ms,
                        batch.fired_by_deadline});
}

void StreamServer::accept(MicroBatcher& batcher, ReadyWindow w) {
  // Live demand signal for the stale-load drop: the freshest window's
  // weather is what this stream wants *now* (deciding thread only).
  last_window_weather_[w.stream] = w.model_weather;
  if (apply_replayed(w)) return;
  if (w.gate != DecisionSource::Model) {
    decide_fail_safe(w);
    return;
  }
  if (cache_ != nullptr && config_.switch_mode == SwitchMode::Pipelined) {
    request_load(w.model_weather);
  }
  batcher.stage(std::move(w), Clock::now());
}

// --- serving-path switching ---

void StreamServer::setup_model_cache() {
  if (config_.switch_mode == SwitchMode::Legacy) return;
  switching::ModelCacheConfig mc = config_.model_cache;
  if (config_.switch_mode == SwitchMode::StopAndStart) mc.capacity_models = 1;
  cache_ = std::make_unique<switching::ModelCache>(mc);
  // Seed from the engine's switcher registry — the serving cache holds the
  // same per-weather models the discrete-event path accounts for. A
  // weather with no registered model stays out of the cache and degrades
  // through the daytime fallback exactly as before.
  const switching::ModelSwitcher& sw = engine_.switcher();
  for (const Weather weather : kCacheWeathers) {
    const std::string scene = scene_name(weather);
    const switching::ModelProfile* profile = sw.profile_for(scene);
    if (profile == nullptr) continue;
    const std::vector<int>* grouping = sw.grouping_for(scene);
    std::vector<int> groups = grouping == nullptr ? std::vector<int>{} : *grouping;
    if (groups.empty() && config_.switch_mode == SwitchMode::Pipelined) {
      // The engine may run the StopAndStart ablation policy (no grouping
      // computed); the serving pipeline still wants overlapped loads.
      groups = switching::optimal_grouping(*profile, switching::GpuModelConfig{});
    }
    cache_->register_model(scene, *profile, std::move(groups));
  }
  last_served_scene_ = scene_name(engine_.active_weather());
  // Boot prewarm (config.prewarm, typically ModelStore::warm_manifest):
  // fill the cold cache before the first window so it never pays the
  // servability holdback. Fill-only — never evicts, stops at the first
  // weather that does not fit. Runs before prepare_durability(), so
  // nothing is journaled and a recovered run re-warms deterministically;
  // these are not switches (switches_committed() stays 0).
  const auto no_evict = [](const std::string&) { return false; };
  for (const Weather weather : config_.prewarm) {
    const std::string scene = scene_name(weather);
    if (!cache_->registered(scene) || cache_->resident(scene)) continue;
    try {
      cache_->load_blocking(scene, config_.switch_mode == SwitchMode::Pipelined,
                            no_evict, {}, {});
      ++models_prewarmed_;
    } catch (const std::exception&) {
      break;  // cache full: the manifest is ordered most-valuable-first
    }
  }
}

void StreamServer::request_load(Weather weather) {
  const std::string scene = scene_name(weather);
  if (!cache_->registered(scene) || cache_->resident(scene)) return;
  if (load_ != nullptr && load_->weather == weather) return;
  for (const Weather w : want_) {
    if (w == weather) return;
  }
  want_.push_back(weather);
}

void StreamServer::journal_switch_phase(runtime::JournalRecordType type,
                                        std::uint64_t switch_id, std::uint8_t weather,
                                        double wall_ms, std::uint8_t reason) {
  if (!journal_.is_open()) return;
  runtime::JournalRecord rec;
  rec.type = type;
  rec.switch_phase.switch_id = switch_id;
  rec.switch_phase.weather = weather;
  rec.switch_phase.mode = static_cast<std::uint8_t>(config_.switch_mode);
  rec.switch_phase.reason = reason;
  rec.switch_phase.wall_ms = wall_ms;
  rec.switch_phase.at_decision = journal_.records_appended();
  journal_.append(rec);
}

void StreamServer::start_next_load(MicroBatcher& batcher) {
  runtime::CrashInjector* crash = config_.durability.crash;
  // Protect the scene that served the last batch (it may be mid-use as the
  // "old" model of this very switch) and any weather with a staged
  // backlog — evicting those would starve their groups behind a reload.
  const auto may_evict = [this, &batcher](const std::string& scene) {
    if (scene == last_served_scene_) return false;
    for (const Weather w : kCacheWeathers) {
      if (scene_name(w) == scene) return batcher.staged_for(w) == 0;
    }
    return true;
  };
  const auto on_evict = [crash](const std::string&) {
    if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::MidCacheEviction);
  };

  // A queued load is stale when nothing wants its weather anymore: no
  // staged window and no stream whose freshest window asked for it. An
  // A→B→A switch storm queues B while A's windows are still landing;
  // by the time B's load could start every stream is back on A, and
  // starting it would be pure wasted transfer (and an eviction risk for
  // a model that IS wanted).
  const auto demanded = [this, &batcher](Weather weather) {
    if (batcher.staged_for(weather) > 0) return true;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (!down_[i] && !detached_[i] && last_window_weather_[i] == weather) return true;
    }
    return false;
  };

  const std::size_t rounds = want_.size();
  for (std::size_t t = 0; t < rounds; ++t) {
    const Weather weather = want_.front();
    want_.pop_front();
    const std::string scene = scene_name(weather);
    if (cache_->resident(scene)) continue;  // landed via a blocking path
    if (!demanded(weather)) {
      // Dropped without a Begin: a switch that never starts is not a
      // switch, just a want that expired.
      ++loads_dropped_stale_;
      continue;
    }
    if (!cache_->can_prepare(scene, may_evict)) {
      // Un-evictable right now (its victims still have backlogs): rotate
      // to the back WITHOUT journaling — a Begin is only written for a
      // switch that actually starts loading.
      want_.push_back(weather);
      continue;
    }
    const std::uint64_t id = next_switch_id_++;
    journal_switch_phase(runtime::JournalRecordType::ModelSwitchBegin, id,
                         static_cast<std::uint8_t>(weather), 0.0);
    if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::AfterSwitchBegin);
    try {
      cache_->prepare(scene, may_evict, on_evict);
    } catch (const std::exception&) {
      // can_prepare raced a staged-backlog change, or fragmentation beat
      // the byte arithmetic: close the Begin and retry later.
      journal_switch_phase(runtime::JournalRecordType::ModelSwitchAbort, id,
                           static_cast<std::uint8_t>(weather), 0.0, /*reason=*/2);
      ++switches_aborted_;
      want_.push_back(weather);
      continue;
    }
    load_ = std::make_unique<LoadOp>();
    load_->weather = weather;
    load_->scene = scene;
    load_->switch_id = id;
    LoadOp* op = load_.get();
    op->worker = std::thread([this, op, crash] {
      try {
        op->result = cache_->transfer(
            op->scene, /*pipelined=*/true, [crash](std::size_t) {
              if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::MidModelLoad);
            });
      } catch (...) {
        op->error = std::current_exception();
      }
      op->done.store(true, std::memory_order_release);
    });
    return;
  }
}

void StreamServer::finish_load() {
  std::unique_ptr<LoadOp> op = std::move(load_);
  if (op->worker.joinable()) op->worker.join();
  if (op->error) {
    try {
      std::rethrow_exception(op->error);
    } catch (const std::exception&) {
      // Real load failure: roll back the reservation, close the Begin,
      // requeue — the old model keeps serving, no verdict is affected.
      cache_->abort_prepare();
      journal_switch_phase(runtime::JournalRecordType::ModelSwitchAbort, op->switch_id,
                           static_cast<std::uint8_t>(op->weather), 0.0, /*reason=*/2);
      ++switches_aborted_;
      want_.push_back(op->weather);
      return;
    }
    // CrashInjected (deliberately not a std::exception) falls through the
    // handler above and propagates: the simulated kill struck mid-load,
    // and run()'s unwind path presents recovery with a dangling Begin.
  }
  cache_->commit(op->scene, op->result.wall_ms);
  journal_switch_phase(runtime::JournalRecordType::ModelSwitchCommit, op->switch_id,
                       static_cast<std::uint8_t>(op->weather), op->result.wall_ms);
  ++switches_committed_;
}

void StreamServer::poll_load(MicroBatcher& batcher) {
  if (cache_ == nullptr || config_.switch_mode != SwitchMode::Pipelined) return;
  if (load_ != nullptr && load_->done.load(std::memory_order_acquire)) finish_load();
  if (load_ == nullptr && !want_.empty()) start_next_load(batcher);
}

void StreamServer::ensure_resident_blocking(Weather weather) {
  if (cache_ == nullptr) return;
  if (load_ != nullptr) {
    // Finalize the in-flight load first — it may be this very weather's,
    // and two concurrent transfers would share one executor.
    while (!load_->done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    finish_load();
  }
  const std::string scene = scene_name(weather);
  if (!cache_->registered(scene) || cache_->resident(scene)) return;

  runtime::CrashInjector* crash = config_.durability.crash;
  const std::uint64_t id = next_switch_id_++;
  journal_switch_phase(runtime::JournalRecordType::ModelSwitchBegin, id,
                       static_cast<std::uint8_t>(weather), 0.0);
  if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::AfterSwitchBegin);
  const bool pipelined = config_.switch_mode == SwitchMode::Pipelined;
  switching::ExecutorResult result;
  try {
    // Permissive eviction (anything but the incoming scene): this path
    // must make room or the batch in hand could never be served warm.
    result = cache_->load_blocking(
        scene, pipelined, /*may_evict=*/{},
        [crash](const std::string&) {
          if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::MidCacheEviction);
        },
        [crash](std::size_t) {
          if (crash != nullptr) crash->maybe_crash(runtime::CrashPoint::MidModelLoad);
        });
  } catch (const std::exception&) {
    // Load failure never blocks a verdict: journal the Abort and decide
    // the batch anyway — residency is a latency model, not correctness.
    journal_switch_phase(runtime::JournalRecordType::ModelSwitchAbort, id,
                         static_cast<std::uint8_t>(weather), 0.0, /*reason=*/2);
    ++switches_aborted_;
    return;
  }
  journal_switch_phase(runtime::JournalRecordType::ModelSwitchCommit, id,
                       static_cast<std::uint8_t>(weather), result.wall_ms);
  ++switches_committed_;
}

void StreamServer::produce(std::size_t i, runtime::BoundedQueue<ReadyWindow>& queue,
                           runtime::Supervisor& supervisor) {
  if (down_[i] || detached_[i]) return;  // gave up / already handed off
  StreamContext& ctx = *streams_[i];
  const auto push_timeout = to_ms(config_.push_timeout_ms);
  const std::vector<std::size_t>& crashes = ctx.config().crash_frames;
  while (ctx.frames_run() < config_.frames) {
    if (supervisor.stop_requested()) return;
    if (snapshot_gate_.load(std::memory_order_acquire)) {
      // Snapshot barrier: park between ticks so every produced window is
      // already pushed when the consumer cuts the snapshot.
      std::unique_lock<std::mutex> lk(park_mu_);
      parked_[i].store(1, std::memory_order_release);
      park_cv_.wait(lk, [&] {
        return !snapshot_gate_.load(std::memory_order_acquire) ||
               supervisor.stop_requested();
      });
      parked_[i].store(0, std::memory_order_release);
      continue;
    }
    // The consumer may have detached this stream (cooperative drain)
    // while the producer was parked: its state belongs to a peer now —
    // one more tick here would fork the stream.
    if (detached_[i]) return;
    // Injected crash *before* the frame is processed: the restarted
    // incarnation resumes at this exact frame, so within-budget crashes
    // are invisible to the verdict stream.
    const std::size_t next_frame = ctx.frames_run() + 1;
    if (crash_pos_[i] < crashes.size() && crashes[crash_pos_[i]] == next_frame) {
      ++crash_pos_[i];
      crashes_injected_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("injected producer crash: " + ctx.config().name);
    }
    std::optional<ReadyWindow> w = ctx.tick();
    if (!w) continue;
    w->stream = i;
    if (queue.push_ref(*w, push_timeout)) continue;
    if (config_.shed_on_overload) {
      queue.push_drop_oldest(std::move(*w));  // the queue counts the shed
    } else {
      while (!supervisor.stop_requested() && !queue.push_ref(*w, push_timeout)) {
      }
    }
  }
}

template <typename Fn>
void StreamServer::quiesce(
    std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
    MicroBatcher& batcher, Fn&& at_quiescence) {
  snapshot_gate_.store(true, std::memory_order_release);
  const std::size_t k = queues.size();
  for (;;) {
    // Keep draining while producers converge on the barrier — a producer
    // mid-push must not deadlock against a full queue.
    for (std::size_t i = 0; i < k; ++i) {
      while (std::optional<ReadyWindow> w = queues[i]->pop(std::chrono::milliseconds(0))) {
        accept(batcher, std::move(*w));
      }
    }
    bool all_quiet = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!parked_[i].load(std::memory_order_acquire) &&
          !finished_[i].load(std::memory_order_acquire)) {
        all_quiet = false;
        break;
      }
    }
    if (all_quiet) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Producers are parked (or done): one final drain catches windows
  // pushed just before parking, then the batcher flushes early — batch
  // composition never changes a verdict, so this is parity-safe.
  for (std::size_t i = 0; i < k; ++i) {
    while (std::optional<ReadyWindow> w = queues[i]->pop(std::chrono::milliseconds(0))) {
      accept(batcher, std::move(*w));
    }
  }
  while (std::optional<Batch> batch = batcher.flush()) decide_batch(*batch);
  at_quiescence();
  {
    std::lock_guard<std::mutex> lk(park_mu_);
    snapshot_gate_.store(false, std::memory_order_release);
  }
  park_cv_.notify_all();
}

void StreamServer::barrier_snapshot(
    std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
    MicroBatcher& batcher) {
  quiesce(queues, batcher, [this, &queues] {
    // Every recalibration the snapshot will bake in must already be
    // durable in the journal (the snapshot deliberately carries no
    // outbox state).
    for (std::size_t i = 0; i < queues.size(); ++i) journal_recalibrations(i);
    write_snapshot_now();
  });
}

void StreamServer::request_drain(std::vector<std::size_t> streams) {
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    for (std::size_t i : streams) {
      bool dup = false;
      for (std::size_t j : drain_set_) dup = dup || j == i;
      if (!dup && i < streams_.size()) drain_set_.push_back(i);
    }
  }
  drain_requested_.store(true, std::memory_order_release);
}

std::vector<StreamHandoff> StreamServer::take_drained() {
  std::lock_guard<std::mutex> lk(drain_mu_);
  drain_ready_.store(false, std::memory_order_release);
  return std::move(drained_out_);
}

std::size_t StreamServer::streams_detached() const {
  std::size_t n = 0;
  for (char d : detached_) n += d != 0;
  return n;
}

void StreamServer::cooperative_drain(
    std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>>& queues,
    MicroBatcher& batcher) {
  std::vector<std::size_t> wanted;
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    wanted = std::move(drain_set_);
    drain_set_.clear();
  }
  drain_requested_.store(false, std::memory_order_release);

  std::vector<StreamHandoff> out;
  quiesce(queues, batcher, [this, &queues, &wanted, &out] {
    // Quiescent: every produced window is decided, producers are parked
    // between ticks. Each wanted stream's state is a clean cut a peer can
    // adopt and continue bit-identically.
    for (std::size_t i = 0; i < queues.size(); ++i) journal_recalibrations(i);
    for (std::size_t i : wanted) {
      if (detached_[i]) continue;  // duplicated drain request
      StreamHandoff h = package_handoff(i);
      h.live_drain = true;
      out.push_back(std::move(h));
      detached_[i] = 1;  // producers see this after the gate lowers
    }
    // Make the detachment durable before publishing the hand-offs: once
    // a peer adopts, a crash+recovery here must not re-hand these
    // streams off (drain_streams skips detached).
    if (durable() && !out.empty()) write_snapshot_now();
  });

  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    for (StreamHandoff& h : out) drained_out_.push_back(std::move(h));
  }
  drain_ready_.store(true, std::memory_order_release);
}

void StreamServer::run() {
  if (ran_) throw std::logic_error("StreamServer: a server instance runs once");
  ran_ = true;
  setup_model_cache();
  prepare_durability();

  const std::size_t k = streams_.size();
  std::vector<std::unique_ptr<runtime::BoundedQueue<ReadyWindow>>> queues;
  queues.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    queues.push_back(std::make_unique<runtime::BoundedQueue<ReadyWindow>>(
        config_.queue_capacity));
  }

  runtime::Supervisor supervisor(config_.backoff, config_.supervisor_seed);
  for (std::size_t i = 0; i < k; ++i) {
    runtime::BoundedQueue<ReadyWindow>& q = *queues[i];
    supervisor.add_stage(
        streams_[i]->config().name,
        [this, i, &q, &supervisor] { produce(i, q, supervisor); },
        [this, i] {
          // Retry budget exhausted: the stream is down. Latch its health
          // monitor so any window still in flight gates fail-safe; the
          // other K-1 streams are unaffected.
          down_[i] = 1;
          streams_[i]->health().latch_fail_safe();
        },
        [this, i, &q] {
          finished_[i].store(1, std::memory_order_release);
          q.close();
        });
  }
  supervisor.start();

  BatcherConfig bcfg = config_.batcher;
  bcfg.max_batch = effective_max_batch();
  MicroBatcher batcher(bcfg);
  if (config_.switch_mode == SwitchMode::Pipelined) {
    // Hold back groups whose model is still loading; the other weathers
    // keep batching on their resident models meanwhile — the zero-downtime
    // property. Scenes outside the cache (no registered model) stay
    // servable: they degrade through the daytime fallback at serve time
    // and must never deadlock the batcher.
    batcher.set_servable([this](Weather w) {
      const std::string scene = scene_name(w);
      return !cache_->registered(scene) || cache_->resident(scene);
    });
  }

  try {
    std::size_t rr = 0;  // rotate which queue takes the idle block
    for (;;) {
      // Cooperative drain point: a slow-but-alive shard honors the
      // fleet's hand-off request here, between batches, with no crash
      // and no recovery pass.
      if (drain_requested_.load(std::memory_order_acquire)) {
        cooperative_drain(queues, batcher);
      }
      if (snapshot_due()) barrier_snapshot(queues, batcher);
      poll_load(batcher);

      bool all_drained = true;
      bool progressed = false;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t idx = (rr + j) % k;
        journal_recalibrations(idx);
        runtime::BoundedQueue<ReadyWindow>& q = *queues[idx];
        while (std::optional<ReadyWindow> w = q.pop(std::chrono::milliseconds(0))) {
          progressed = true;
          accept(batcher, std::move(*w));
        }
        if (!q.drained()) all_drained = false;
      }
      rr = (rr + 1) % k;
      // Live queue-depth watermark for fleet heartbeats: what is queued
      // right after a full drain pass is genuine backlog the consumer
      // could not keep ahead of.
      {
        std::size_t depth = 0;
        for (std::size_t i = 0; i < k; ++i) depth += queues[i]->size();
        if (depth > live_queue_depth_.load(std::memory_order_relaxed)) {
          live_queue_depth_.store(depth, std::memory_order_relaxed);
        }
      }

      const auto now = Clock::now();
      while (std::optional<Batch> batch = batcher.next_due(now)) {
        progressed = true;
        decide_batch(*batch);
        // Check cadence per batch, not only at the loop top: a snapshot
        // needs every produced window applied, and each window drained
        // into the batcher past this point pushes that consistent cut
        // further away. Firing here keeps the barrier's early flush (and
        // therefore the snapshot interval) as small as the backlog allows.
        if (snapshot_due()) barrier_snapshot(queues, batcher);
      }

      if (all_drained && batcher.empty()) break;
      if (!progressed) {
        // Nothing arrived and nothing fired: block briefly on one queue,
        // but never past the oldest staged window's batch deadline.
        double wait = config_.pop_timeout_ms;
        const double deadline = batcher.ms_until_deadline(Clock::now());
        if (deadline < wait) wait = deadline;
        if (std::optional<ReadyWindow> w = queues[rr]->pop(to_ms(wait))) {
          accept(batcher, std::move(*w));
        }
      }
    }
    // The loop only exits with the batcher empty; flush defends against a
    // future policy change leaving a remainder.
    while (std::optional<Batch> batch = batcher.flush()) decide_batch(*batch);
    // A load still in flight at the end (its windows were all served via
    // blocking paths) must land before the cache stats are read.
    if (load_ != nullptr) {
      while (!load_->done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      finish_load();
    }
  } catch (...) {
    // The simulated kill (or a real I/O failure) struck the consumer.
    // Lower the barrier so parked producers can observe the stop flag,
    // stop everything, and let the exception carry the crash out — the
    // on-disk journal/snapshot state is exactly what recovery must face.
    load_.reset();  // LoadOp's destructor joins the loader thread
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      snapshot_gate_.store(false, std::memory_order_release);
    }
    park_cv_.notify_all();
    supervisor.stop_and_join();
    throw;
  }

  supervisor.join();
  for (std::size_t i = 0; i < k; ++i) journal_recalibrations(i);
  for (std::size_t i = 0; i < k; ++i) {
    shed_[i] = queues[i]->shed();
    high_water_[i] = queues[i]->high_water();
  }
  stage_restarts_ = supervisor.total_restarts();
  streams_gave_up_ = supervisor.stages_gave_up();
  finish_durability();
}

void StreamServer::run_sequential() {
  if (ran_) throw std::logic_error("StreamServer: a server instance runs once");
  ran_ = true;
  prepare_durability();

  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamContext& ctx = *streams_[i];
    while (ctx.frames_run() < config_.frames) {
      std::optional<ReadyWindow> w = ctx.tick();
      journal_recalibrations(i);
      if (!w) continue;
      w->stream = i;
      if (apply_replayed(*w)) {
        if (snapshot_due()) write_snapshot_now();
        continue;
      }
      if (w->gate != DecisionSource::Model) {
        decide_fail_safe(*w);
        if (snapshot_due()) write_snapshot_now();
        continue;
      }
      const std::optional<Weather> served = serve_weather(w->model_weather);
      if (!served) {
        w->gate = DecisionSource::FailSafeSwitchInFlight;
        decide_fail_safe(*w);
        if (snapshot_due()) write_snapshot_now();
        continue;
      }
      Timer latency;
      core::SafeCross::Decision d = engine_.classify_as(*served, w->window);
      const double ms = latency.elapsed_ms();
      // Classifier-time deadline, as in the synchronous monitor; off by
      // default.
      if (ctx.health().deadline_blown(ms)) {
        d.warn = true;
        d.predicted_class = 0;
        d.source = DecisionSource::FailSafeDeadline;
      }
      journal_decision(*w, d, ms);
      ctx.apply(*w, d.predicted_class, d.prob_danger, d.warn, d.source, ms);
      ++decisions_since_snapshot_;
      note_applied(ms);
      if (snapshot_due()) write_snapshot_now();
    }
  }
  finish_durability();
}

}  // namespace safecross::serving
