#include "serving/stream.h"

#include "sim/weather.h"

namespace safecross::serving {

using runtime::DecisionSource;
using runtime::FrameFault;

StreamContext::StreamContext(StreamConfig config)
    : config_(std::move(config)),
      sim_(sim::weather_params(config_.weather), config_.sim_seed),
      camera_(sim_.intersection().geometry()),
      collector_(sim_, camera_, config_.vp, config_.collector_seed),
      health_(config_.health),
      injector_(config_.faults, config_.fault_seed),
      injector_active_(config_.faults.enabled()),
      model_weather_(config_.weather) {
  if (injector_active_) {
    collector_.set_frame_hook([this](vision::Image& frame) { injector_.perturb(frame); });
    if (config_.faults.geometry.enabled()) {
      injector_.set_frame_size(camera_.config().width, camera_.config().height);
      collector_.set_view_perturbation(&injector_.view_perturbation());
    }
  }
  if (config_.recalib.enabled) {
    config_.recalib.frame_width = camera_.config().width;
    config_.recalib.frame_height = camera_.config().height;
    estimator_ = std::make_unique<vision::CalibrationEstimator>(camera_.reference_view(sim_),
                                                                config_.recalib.estimator);
    recalib_ = std::make_unique<runtime::RecalibrationLoop>(
        config_.recalib, camera_.image_to_grid(config_.vp.grid_w, config_.vp.grid_h), &health_,
        [this](const vision::Homography& guess) {
          const vision::Homography* view =
              injector_.geometry_active() ? &injector_.view_perturbation() : nullptr;
          return estimator_->estimate(camera_.render_view(sim_, view), guess);
        },
        [this](const vision::Homography& h) { collector_.set_image_to_grid(h); });
  }
}

std::vector<runtime::RecalibrationEntry> StreamContext::take_recalibrations() {
  std::lock_guard<std::mutex> lk(recalib_mu_);
  std::vector<runtime::RecalibrationEntry> out;
  out.swap(recalib_outbox_);
  return out;
}

std::optional<ReadyWindow> StreamContext::tick() {
  ++frame_;

  // Scheduled model switches: from this frame on the stream's decisions
  // want the new weather's model; the stream-visible swap latency gates
  // decisions conservative through the health watchdog meanwhile.
  while (schedule_pos_ < config_.model_schedule.size() &&
         config_.model_schedule[schedule_pos_].at_frame <= frame_) {
    const ModelSwitchEvent& ev = config_.model_schedule[schedule_pos_++];
    if (ev.to != model_weather_) {
      model_weather_ = ev.to;
      ++switch_epoch_;
      if (ev.delay_ms > 0.0) health_.switch_started(ev.delay_ms);
    }
  }

  FrameFault fault = FrameFault::None;
  if (injector_active_) fault = injector_.next_frame_fault();
  core::apply_frame_fault(collector_, health_, fault);
  if (recalib_) {
    // The loop (and its estimate/apply callbacks) runs right here on the
    // producer thread, which owns the sim and collector. Completed
    // recalibrations cross to the consumer through the locked outbox.
    recalib_->on_frame(frame_);
    std::vector<runtime::RecalibrationEntry> done = recalib_->take_completed();
    if (!done.empty()) {
      std::lock_guard<std::mutex> lk(recalib_mu_);
      recalib_outbox_.insert(recalib_outbox_.end(), done.begin(), done.end());
    }
  }
  ++frames_since_decision_;

  const sim::Vehicle* subject = sim_.subject(config_.vp.approach);
  const bool subject_waiting =
      subject != nullptr && subject->state == sim::DriverState::HoldingAtStop;
  const bool warmed_up =
      collector_.frames_processed() >= static_cast<std::size_t>(config_.warmup_frames);
  if (!(subject_waiting && warmed_up && frames_since_decision_ >= config_.decision_stride)) {
    return std::nullopt;
  }

  scorecard_.count_opportunity();
  frames_since_decision_ = 0;

  ReadyWindow w;
  w.seq = produced_++;
  w.frame = frame_;
  w.danger_truth = sim_.dangerous_to_turn(config_.vp.approach);
  // Admission-control degrade wins over the health gates: the whole point
  // is to shed the model's compute, so the window copy below must not
  // happen either. The outcome (conservative warn) is what every health
  // gate would deliver anyway; only the tagged source differs.
  w.gate = (config_.fleet_degraded || live_degraded())
               ? DecisionSource::FleetDegraded
               : core::gate_reason(health_, collector_, config_.vp.frames_per_segment);
  w.model_weather = model_weather_;
  w.epoch = switch_epoch_;
  if (w.gate == DecisionSource::Model) {
    w.window.assign(collector_.window().begin(), collector_.window().end());
  }
  w.captured = std::chrono::steady_clock::now();
  return w;
}

void StreamContext::apply(const ReadyWindow& w, int predicted_class, float prob_danger,
                          bool warn, DecisionSource source, double latency_ms) {
  scorecard_.score(w.danger_truth, predicted_class, warn, source);
  scorecard_.record_latency(latency_ms);
  if (record_trace_) {
    if (trace_.size() <= w.seq) trace_.resize(w.seq + 1);
    trace_[w.seq] = {w.frame,       w.danger_truth, predicted_class, prob_danger,
                     warn,          source,         w.model_weather, w.epoch};
  }
}

void StreamContext::save_state(common::StateWriter& w) const {
  sim_.save_state(w);
  collector_.save_state(w);
  health_.save_state(w);
  w.boolean(injector_active_);
  if (injector_active_) injector_.save_state(w);
  // Snapshots are cut at quiescent points where the server has already
  // drained the recalibration outbox into the journal, so only the loop
  // itself is state here.
  w.boolean(recalib_ != nullptr);
  if (recalib_) recalib_->save_state(w);
  w.u8(static_cast<std::uint8_t>(model_weather_));
  w.u64(schedule_pos_);
  w.u32(switch_epoch_);
  w.u64(frame_);
  w.u64(produced_);
  w.i32(frames_since_decision_);
  scorecard_.save_state(w);
  w.boolean(record_trace_);
  w.u64(trace_.size());
  for (const DecisionRecord& d : trace_) {
    w.u64(d.frame);
    w.boolean(d.danger_truth);
    w.i32(d.predicted_class);
    w.f32(d.prob_danger);
    w.boolean(d.warn);
    w.u8(static_cast<std::uint8_t>(d.source));
    w.u8(static_cast<std::uint8_t>(d.model_weather));
    w.u32(d.epoch);
  }
}

void StreamContext::load_state(common::StateReader& r) {
  sim_.load_state(r);
  collector_.load_state(r);
  health_.load_state(r);
  const bool injector_was_active = r.boolean();
  if (injector_was_active != injector_active_) {
    throw common::StateError("stream: fault-plan mismatch between snapshot and config");
  }
  if (injector_active_) injector_.load_state(r);
  const bool recalib_was_on = r.boolean();
  if (recalib_was_on != (recalib_ != nullptr)) {
    throw common::StateError("stream: recalibration mismatch between snapshot and config");
  }
  if (recalib_) recalib_->load_state(r);
  model_weather_ = static_cast<Weather>(r.u8());
  schedule_pos_ = static_cast<std::size_t>(r.u64());
  switch_epoch_ = r.u32();
  frame_ = static_cast<std::size_t>(r.u64());
  produced_ = static_cast<std::size_t>(r.u64());
  frames_since_decision_ = r.i32();
  scorecard_.load_state(r);
  record_trace_ = r.boolean();
  const std::uint64_t n_trace = r.u64();
  trace_.clear();
  trace_.reserve(static_cast<std::size_t>(n_trace));
  for (std::uint64_t i = 0; i < n_trace; ++i) {
    DecisionRecord d;
    d.frame = static_cast<std::size_t>(r.u64());
    d.danger_truth = r.boolean();
    d.predicted_class = r.i32();
    d.prob_danger = r.f32();
    d.warn = r.boolean();
    d.source = static_cast<runtime::DecisionSource>(r.u8());
    d.model_weather = static_cast<Weather>(r.u8());
    d.epoch = r.u32();
    trace_.push_back(d);
  }
}

}  // namespace safecross::serving
