#pragma once
// One simulated intersection camera stream, packaged for the multi-stream
// server: its own TrafficSimulator, CameraModel, SegmentCollector,
// HealthMonitor, fault plan and model-switch schedule.
//
// A StreamContext is the producer half of the serving split. tick()
// advances exactly one frame slot — the same ingest ordering as
// RealtimeMonitor (schedule check, fault fate, collector step + health
// event, due check, gate resolution) — and, when a decision is due,
// emits a ReadyWindow carrying everything the inference side needs: the
// resolved fail-safe gate, the weather whose model must judge it, the
// ground truth to score against, and (only when the model may run) a
// copy of the 32-frame window. The inference side — the batcher thread
// in batched mode, the same thread in the sequential reference — calls
// apply() with the verdict.
//
// Determinism contract: all stream state (sim, collector noise, faults,
// switch schedule) is seeded and frame-indexed, never wall-clock-driven,
// so a stream replayed through the batched server and through the
// sequential reference produces bit-identical ReadyWindows in the same
// per-stream order — the foundation of the parity and golden-trace
// suites.
//
// Threading: tick() is called only by the stream's producer (or the
// sequential runner); apply() only by the inference side. They touch
// disjoint scorecard fields (tick counts opportunities, apply scores
// verdicts), so the pair is data-race-free without a lock.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/stream_policy.h"
#include "dataset/collector.h"
#include "runtime/fault_injector.h"
#include "runtime/health_monitor.h"
#include "runtime/recalibration.h"
#include "sim/camera.h"
#include "sim/traffic.h"
#include "vision/calibration.h"

namespace safecross::serving {

using dataset::Weather;

/// A scheduled mid-run model switch: from frame `at_frame` (1-based) on,
/// this stream's decisions want the `to` weather's model. `delay_ms` is
/// the stream-visible swap latency: the health watchdog treats
/// ceil(delay_ms / frame_interval_ms) frames as switch-in-flight, gating
/// decisions conservative exactly as RealtimeMonitor does during a live
/// swap. Frame-indexed and per-stream, so batched and sequential runs
/// see the identical gate sequence.
struct ModelSwitchEvent {
  std::size_t at_frame = 0;
  Weather to = Weather::Daytime;
  double delay_ms = 100.0;
};

struct StreamConfig {
  std::string name = "cam";
  Weather weather = Weather::Daytime;  // sim weather and the initial model
  std::uint64_t sim_seed = 1;
  std::uint64_t collector_seed = 2;
  dataset::CollectorConfig vp;
  int decision_stride = 8;   // frames between decisions while a subject waits
  int warmup_frames = 90;    // no decisions until the background model settles
  runtime::HealthConfig health;
  runtime::FaultPlan faults;            // per-stream frame-fault plan
  std::uint64_t fault_seed = 0xFA0117u;
  // Online self-healing calibration (see runtime/recalibration.h). Off by
  // default: no estimator is built and every frame runs the exact legacy
  // code path. Frame dims are taken from the stream's camera.
  runtime::RecalibrationConfig recalib;
  // Fleet admission control. `priority` is the stream's tier;
  // `fleet_degraded` is stamped by the fleet's AdmissionController when
  // the stream's shard is oversubscribed: every model-gated decision is
  // answered with a conservative warn (DecisionSource::FleetDegraded)
  // and the 32-frame window copy + inference are skipped entirely —
  // degrading compute before any window is dropped. Both fields are part
  // of the decision stream and of config_fingerprint(), and both ride
  // the hand-off config during failover, so a degraded stream stays
  // degraded (and bit-identical) wherever it lands.
  core::StreamPriority priority = core::StreamPriority::Standard;
  bool fleet_degraded = false;
  // Split-brain fencing (DESIGN.md §16). The fleet controller mints a
  // fresh epoch for every (re-)placement of a stream; a StreamServer
  // rejects adopt_stream() for an epoch at or below one it has already
  // seen for the name, and every journaled decision records the epoch it
  // was made under. Part of config_fingerprint() and the hand-off config.
  // 0 = standalone serving (no fleet, fencing inert).
  std::uint64_t owner_epoch = 0;
  std::vector<ModelSwitchEvent> model_schedule;  // ascending at_frame
  // Producer-crash schedule (1-based frame ordinals): the supervised
  // stream worker throws immediately *before* processing these frames.
  // The restarted incarnation resumes at the same frame, so crashes
  // within the retry budget never change a single verdict.
  std::vector<std::size_t> crash_frames;
};

/// A due decision leaving a stream: either a full 32-frame window bound
/// for the batcher (gate == Model) or an already-resolved fail-safe.
struct ReadyWindow {
  std::size_t stream = 0;  // index into the server's stream list
  std::size_t seq = 0;     // per-stream decision ordinal (0-based)
  std::size_t frame = 0;   // 1-based frame ordinal that produced it
  bool danger_truth = false;
  runtime::DecisionSource gate = runtime::DecisionSource::Model;
  Weather model_weather = Weather::Daytime;
  // Switch epoch: increments every time this stream's scheduled model
  // weather actually changes. The batcher keys groups on (weather, epoch)
  // so a batch never straddles a switch even when the stream flips
  // A→B→A — pre- and post-switch windows of the same weather must not
  // co-batch (they may be judged by different cache residencies).
  std::uint32_t epoch = 0;
  std::vector<vision::Image> window;  // populated only when gate == Model
  std::chrono::steady_clock::time_point captured;  // latency budget start
};

/// One scored verdict, recorded in per-stream seq order so traces from
/// the batched run (where weather groups may fire out of arrival order
/// across streams) line up 1:1 with the sequential reference.
struct DecisionRecord {
  std::size_t frame = 0;
  bool danger_truth = false;
  int predicted_class = 0;
  float prob_danger = 1.0f;
  bool warn = true;
  runtime::DecisionSource source = runtime::DecisionSource::Model;
  // Model lineage: which weather's model the decision wanted and the
  // stream's switch epoch at capture time. Part of the bit-identical
  // stream contract (the golden switch-storm trace pins both).
  Weather model_weather = Weather::Daytime;
  std::uint32_t epoch = 0;
};

class StreamContext {
 public:
  explicit StreamContext(StreamConfig config);

  StreamContext(const StreamContext&) = delete;
  StreamContext& operator=(const StreamContext&) = delete;

  const StreamConfig& config() const { return config_; }

  std::size_t frames_run() const { return frame_; }
  std::size_t windows_produced() const { return produced_; }
  Weather model_weather() const { return model_weather_; }
  std::uint32_t switch_epoch() const { return switch_epoch_; }

  /// Advance one frame slot; returns a ReadyWindow when a decision is
  /// due. Producer-side only — never called concurrently with itself.
  std::optional<ReadyWindow> tick();

  /// Score one verdict for one of this stream's windows. Inference-side
  /// only (batcher thread / sequential runner).
  void apply(const ReadyWindow& w, int predicted_class, float prob_danger, bool warn,
             runtime::DecisionSource source, double latency_ms);

  core::StreamScorecard& scorecard() { return scorecard_; }
  const core::StreamScorecard& scorecard() const { return scorecard_; }
  runtime::HealthMonitor& health() { return health_; }
  const runtime::HealthMonitor& health() const { return health_; }
  const dataset::SegmentCollector& collector() const { return collector_; }
  const runtime::FaultInjector* injector() const {
    return injector_active_ ? &injector_ : nullptr;
  }

  /// The self-healing calibration loop, or nullptr when recalib.enabled
  /// is false (counters, state, lineage — see runtime/recalibration.h).
  const runtime::RecalibrationLoop* recalibration() const { return recalib_.get(); }

  /// Recalibrations accepted by tick() since the last take, handed across
  /// the producer→consumer boundary for write-ahead journaling (the
  /// journal lives on the consumer thread). Mutex-guarded: tick() appends,
  /// the server's deciding thread drains. `stream` is left for the server
  /// to fill, like ReadyWindow::stream.
  std::vector<runtime::RecalibrationEntry> take_recalibrations();

  /// Per-seq verdict trace (empty unless enabled before the run).
  void set_record_trace(bool on) { record_trace_ = on; }
  const std::vector<DecisionRecord>& trace() const { return trace_; }

  /// Live (runtime-toggled) admission degrade, flipped by the fleet's
  /// watermark-driven DynamicAdmission while the stream is serving.
  /// Unlike config().fleet_degraded it reacts to *measured* load, so it
  /// is wall-clock-coupled and therefore NOT part of the deterministic
  /// stream contract — chaos parity runs keep it off. When set, every
  /// model-gated decision resolves FleetDegraded exactly as the static
  /// flag does.
  void set_live_degraded(bool on) { live_degraded_.store(on, std::memory_order_relaxed); }
  bool live_degraded() const { return live_degraded_.load(std::memory_order_relaxed); }

  // --- checkpoint serialization ---
  // The complete resumable state: sim + collector + health + fault RNG
  // streams, switch-schedule position, frame/seq counters, scorecard and
  // (when enabled) the verdict trace. A StreamContext rebuilt from the
  // same StreamConfig and then load_state()-ed continues tick-for-tick
  // bit-identically to the killed instance. Quiescent points only (no
  // produced-but-unapplied window in flight).
  void save_state(common::StateWriter& w) const;
  void load_state(common::StateReader& r);

 private:
  StreamConfig config_;
  sim::TrafficSimulator sim_;
  sim::CameraModel camera_;
  dataset::SegmentCollector collector_;
  runtime::HealthMonitor health_;
  runtime::FaultInjector injector_;  // no-op when the plan is all-zero
  bool injector_active_ = false;
  std::unique_ptr<vision::CalibrationEstimator> estimator_;
  std::unique_ptr<runtime::RecalibrationLoop> recalib_;
  std::mutex recalib_mu_;  // guards recalib_outbox_ (producer vs consumer)
  std::vector<runtime::RecalibrationEntry> recalib_outbox_;
  Weather model_weather_;
  std::uint32_t switch_epoch_ = 0;  // bumps on every realized weather change
  std::size_t schedule_pos_ = 0;
  std::size_t frame_ = 0;
  std::size_t produced_ = 0;
  int frames_since_decision_ = 0;
  core::StreamScorecard scorecard_;
  std::atomic<bool> live_degraded_{false};
  bool record_trace_ = false;
  std::vector<DecisionRecord> trace_;  // indexed by ReadyWindow::seq
};

}  // namespace safecross::serving
