// Pedestrian blind-spot support (paper §VI-B: "Is SafeCross suitable for
// blind spot pedestrian warning?").

#include <gtest/gtest.h>

#include "sim/camera.h"
#include "sim/traffic.h"

namespace safecross::sim {
namespace {

TrafficSimulator make_sim(double rate, std::uint64_t seed = 33) {
  TrafficConfig cfg;
  cfg.pedestrian_rate = rate;
  return TrafficSimulator(weather_params(Weather::Daytime), seed, {}, cfg);
}

TEST(Pedestrians, DisabledByDefault) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 1);
  for (int i = 0; i < 30 * 120; ++i) sim.step();
  EXPECT_TRUE(sim.pedestrians().empty());
  EXPECT_FALSE(sim.pedestrian_conflict(Approach::EastboundLeft));
}

TEST(Pedestrians, SpawnAndWalkAcross) {
  TrafficSimulator sim = make_sim(0.05);
  bool saw_any = false;
  for (int i = 0; i < 30 * 300; ++i) {
    sim.step();
    saw_any |= !sim.pedestrians().empty();
    for (const Pedestrian& p : sim.pedestrians()) {
      EXPECT_GE(p.progress, 0.0);
      EXPECT_GT(p.speed, 0.5);
      EXPECT_LT(p.speed, 2.5);
    }
  }
  EXPECT_TRUE(saw_any);
}

TEST(Pedestrians, PositionsStayOnTheirCrosswalk) {
  TrafficSimulator sim = make_sim(0.08);
  const auto& g = sim.intersection().geometry();
  for (int i = 0; i < 30 * 200; ++i) {
    sim.step();
    for (const Pedestrian& p : sim.pedestrians()) {
      const Point2 pos = sim.pedestrian_position(p);
      EXPECT_NEAR(pos.y, sim.crosswalk_y(p.crosswalk), 1e-9);
      EXPECT_GE(pos.x, g.center_x - 1.5 * g.lane_width - 1e-9);
      EXPECT_LE(pos.x, g.center_x + 1.5 * g.lane_width + 1e-9);
    }
  }
}

TEST(Pedestrians, CrosswalksFlankTheJunction) {
  TrafficSimulator sim = make_sim(0.01);
  const auto& g = sim.intersection().geometry();
  EXPECT_LT(sim.crosswalk_y(0), g.center_y - 2.0 * g.lane_width);  // north
  EXPECT_GT(sim.crosswalk_y(1), g.center_y + 2.0 * g.lane_width);  // south
}

TEST(Pedestrians, ConflictFlagFiresWhenWalkerInExitCorridor) {
  TrafficSimulator sim = make_sim(0.10);
  bool saw_conflict = false, saw_clear_with_peds = false;
  for (int i = 0; i < 30 * 600; ++i) {
    sim.step();
    const bool conflict = sim.pedestrian_conflict(Approach::EastboundLeft);
    if (conflict) {
      saw_conflict = true;
      // Verify against the geometry directly.
      bool verified = false;
      const double exit_x = sim.intersection().geometry().center_x +
                            0.5 * sim.intersection().geometry().lane_width;
      for (const Pedestrian& p : sim.pedestrians()) {
        if (p.crosswalk == 0 && std::abs(sim.pedestrian_position(p).x - exit_x) < 2.5) {
          verified = true;
        }
      }
      EXPECT_TRUE(verified);
    } else if (!sim.pedestrians().empty()) {
      saw_clear_with_peds = true;
    }
  }
  EXPECT_TRUE(saw_conflict);
  EXPECT_TRUE(saw_clear_with_peds);
}

TEST(Pedestrians, TurnersYieldToPedestrians) {
  // With heavy pedestrian flow, turners still complete turns (no deadlock)
  // and no turn keyframe fires while the walker owns the exit corridor.
  TrafficSimulator sim = make_sim(0.15, 44);
  std::uint64_t conflicted_keyframes = 0;
  for (int i = 0; i < 30 * 900; ++i) {
    sim.step();
    if (!sim.turn_keyframes(Approach::EastboundLeft).empty() &&
        sim.pedestrian_conflict(Approach::EastboundLeft)) {
      // The driver committed at most ~1.5 s ago; a walker may have entered
      // since. Count and bound, rather than forbid outright.
      ++conflicted_keyframes;
    }
  }
  EXPECT_GT(sim.completed_turns(Approach::EastboundLeft), 3u);
  EXPECT_LE(conflicted_keyframes, sim.completed_turns(Approach::EastboundLeft) / 3);
}

TEST(Pedestrians, AppearInTopdownOccupancy) {
  TrafficSimulator sim = make_sim(0.20, 55);
  const CameraModel cam(sim.intersection().geometry());
  std::size_t crosswalk_cells = 0;
  const int gw = 54, gh = 36;
  const auto& g = sim.intersection().geometry();
  const int north_row = static_cast<int>(sim.crosswalk_y(0) / g.world_height * gh);
  for (int i = 0; i < 30 * 300; ++i) {
    sim.step();
    if (sim.pedestrians().empty() || i % 10 != 0) continue;
    const vision::Image grid = cam.rasterize_topdown(sim, gw, gh);
    for (int x = 0; x < gw; ++x) {
      if (grid.at(x, north_row) > 0.5f || grid.at(x, north_row + 1) > 0.5f) ++crosswalk_cells;
    }
  }
  EXPECT_GT(crosswalk_cells, 0u);
}

TEST(Pedestrians, DeterministicReplayWithPedestrians) {
  TrafficSimulator a = make_sim(0.1, 66);
  TrafficSimulator b = make_sim(0.1, 66);
  for (int i = 0; i < 30 * 120; ++i) {
    a.step();
    b.step();
  }
  ASSERT_EQ(a.pedestrians().size(), b.pedestrians().size());
  for (std::size_t i = 0; i < a.pedestrians().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pedestrians()[i].progress, b.pedestrians()[i].progress);
  }
}

}  // namespace
}  // namespace safecross::sim
