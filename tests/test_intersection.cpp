#include "sim/intersection.h"

#include <cmath>

#include <gtest/gtest.h>

namespace safecross::sim {
namespace {

TEST(Path, LengthOfStraightLine) {
  Path p({{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(p.length(), 5.0);
}

TEST(Path, PositionInterpolatesByArcLength) {
  Path p({{0, 0}, {10, 0}, {10, 10}});
  const Point2 mid = p.position(10.0);
  EXPECT_NEAR(mid.x, 10.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
  const Point2 q = p.position(15.0);
  EXPECT_NEAR(q.x, 10.0, 1e-9);
  EXPECT_NEAR(q.y, 5.0, 1e-9);
}

TEST(Path, PositionClampsAtEnds) {
  Path p({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(p.position(-5).x, 0.0);
  EXPECT_DOUBLE_EQ(p.position(99).x, 10.0);
}

TEST(Path, TangentPointsAlongTravel) {
  Path p({{0, 0}, {10, 0}, {10, 10}});
  const Point2 t1 = p.tangent(3.0);
  EXPECT_NEAR(t1.x, 1.0, 1e-6);
  EXPECT_NEAR(t1.y, 0.0, 1e-6);
  const Point2 t2 = p.tangent(16.0);
  EXPECT_NEAR(t2.x, 0.0, 1e-6);
  EXPECT_NEAR(t2.y, 1.0, 1e-6);
}

TEST(Path, RejectsDegenerate) {
  EXPECT_THROW(Path({{1, 1}}), std::invalid_argument);
}

TEST(Intersection, RoutesExistAndHaveLength) {
  Intersection isec;
  for (int r = 0; r < kNumRoutes; ++r) {
    EXPECT_GT(isec.route(static_cast<RouteId>(r)).length(), 50.0) << route_name(static_cast<RouteId>(r));
  }
}

TEST(Intersection, StopLinesAreInsideRoutes) {
  Intersection isec;
  for (int r = 0; r < kNumRoutes; ++r) {
    const auto id = static_cast<RouteId>(r);
    EXPECT_GT(isec.stop_line_s(id), 0.0);
    EXPECT_LT(isec.stop_line_s(id), isec.route(id).length());
  }
}

TEST(Intersection, EastboundLeftStopsAtStopLine) {
  Intersection isec;
  const auto& g = isec.geometry();
  const Point2 p = isec.route(RouteId::EastboundLeft).position(isec.stop_line_s(RouteId::EastboundLeft));
  EXPECT_NEAR(p.x, g.eb_stop_x(), 1e-6);
  EXPECT_NEAR(p.y, g.eb_left_y(), 1e-6);
}

TEST(Intersection, EastboundLeftExitsNorth) {
  Intersection isec;
  const auto& route = isec.route(RouteId::EastboundLeft);
  const Point2 end = route.position(route.length());
  EXPECT_NEAR(end.y, 0.0, 1e-6);  // y = 0 is the north edge
}

TEST(Intersection, WestboundLeftExitsSouth) {
  Intersection isec;
  const auto& route = isec.route(RouteId::WestboundLeftWait);
  const Point2 end = route.position(route.length());
  EXPECT_NEAR(end.y, isec.geometry().world_height, 1e-6);
}

TEST(Intersection, OpposingLeftTurnLanesAreAdjacentToCenterline) {
  IntersectionGeometry g;
  EXPECT_LT(g.wb_left_y(), g.center_y);
  EXPECT_GT(g.eb_left_y(), g.center_y);
  EXPECT_NEAR(g.eb_left_y() - g.wb_left_y(), g.lane_width, 1e-9);
}

TEST(Intersection, ThroughLaneBehindBlockerIsTheDangerLane) {
  // The geometry that creates the paper's blind area: the wb through lane
  // (threat lane) lies beyond the wb left-wait lane from the subject's
  // viewpoint, so a waiting truck occludes it.
  IntersectionGeometry g;
  EXPECT_LT(g.wb_through_y(), g.wb_left_y());
}

}  // namespace
}  // namespace safecross::sim
