#include "switching/switcher.h"

#include <gtest/gtest.h>

namespace safecross::switching {
namespace {

TEST(Switcher, SwitchToUnregisteredThrows) {
  ModelSwitcher sw;
  EXPECT_THROW(sw.switch_to("nope"), std::invalid_argument);
}

TEST(Switcher, FirstSwitchPaysDelay) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  const double delay = sw.switch_to("day");
  EXPECT_GT(delay, 0.0);
  EXPECT_EQ(sw.active_scene(), "day");
  EXPECT_EQ(sw.switch_count(), 1u);
}

TEST(Switcher, RepeatSwitchIsFree) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  sw.switch_to("day");
  EXPECT_DOUBLE_EQ(sw.switch_to("day"), 0.0);
  EXPECT_EQ(sw.switch_count(), 1u);
}

TEST(Switcher, PipeSwitchPolicyIsMilliseconds) {
  ModelSwitcher sw({}, SwitchPolicy::PipeSwitch);
  sw.register_model("day", slowfast_r50_profile());
  sw.register_model("snow", slowfast_r50_profile());
  sw.switch_to("day");
  const double delay = sw.switch_to("snow");
  EXPECT_LT(delay, 10.0);
}

TEST(Switcher, StopAndStartPolicyIsSeconds) {
  ModelSwitcher sw({}, SwitchPolicy::StopAndStart);
  sw.register_model("day", slowfast_r50_profile());
  sw.register_model("snow", slowfast_r50_profile());
  sw.switch_to("day");
  const double delay = sw.switch_to("snow");
  EXPECT_GT(delay, 1000.0);
}

TEST(Switcher, AccumulatesTotals) {
  ModelSwitcher sw;
  sw.register_model("a", inception_v3_profile());
  sw.register_model("b", resnet152_profile());
  sw.switch_to("a");
  sw.switch_to("b");
  sw.switch_to("a");
  EXPECT_EQ(sw.switch_count(), 3u);
  EXPECT_GT(sw.total_delay_ms(), 0.0);
  ASSERT_TRUE(sw.last_switch().has_value());
  EXPECT_FALSE(sw.last_switch()->timeline.empty());
}

TEST(Switcher, ReRegisterReplacesProfile) {
  ModelSwitcher sw;
  sw.register_model("x", inception_v3_profile());
  sw.register_model("x", resnet152_profile());  // replace
  EXPECT_TRUE(sw.has_model("x"));
  sw.switch_to("x");
  SUCCEED();
}

TEST(Switcher, TrySwitchToUnregisteredReportsInsteadOfThrowing) {
  ModelSwitcher sw;
  const SwitchStatus status = sw.try_switch_to("nope");
  EXPECT_FALSE(status.ok);
  EXPECT_FALSE(status.error.empty());
  EXPECT_EQ(sw.failed_switches(), 1u);
}

TEST(Switcher, TrySwitchToSucceedsLikeSwitchTo) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  const SwitchStatus status = sw.try_switch_to("day");
  EXPECT_TRUE(status.ok);
  EXPECT_GT(status.delay_ms, 0.0);
  EXPECT_EQ(sw.active_scene(), "day");
  EXPECT_EQ(sw.failed_switches(), 0u);
}

TEST(Switcher, InjectedFailureLeavesActiveModelUntouched) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  sw.register_model("snow", slowfast_r50_profile());
  ASSERT_TRUE(sw.try_switch_to("day").ok);
  sw.set_failure_hook([](const std::string& scene) { return scene == "snow"; });
  const SwitchStatus status = sw.try_switch_to("snow");
  EXPECT_FALSE(status.ok);
  EXPECT_FALSE(status.error.empty());
  EXPECT_EQ(sw.active_scene(), "day") << "a failed swap must not evict the serving model";
  EXPECT_EQ(sw.failed_switches(), 1u);
  sw.set_failure_hook(nullptr);
  EXPECT_TRUE(sw.try_switch_to("snow").ok);
  EXPECT_EQ(sw.active_scene(), "snow");
}

TEST(Switcher, ThrowingSwitchToStillThrowsOnInjectedFailure) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  sw.set_failure_hook([](const std::string&) { return true; });
  EXPECT_THROW(sw.switch_to("day"), std::runtime_error);
}

TEST(Switcher, PolicyNames) {
  EXPECT_STREQ(policy_name(SwitchPolicy::PipeSwitch), "pipeswitch");
  EXPECT_STREQ(policy_name(SwitchPolicy::StopAndStart), "stop-and-start");
}

}  // namespace
}  // namespace safecross::switching
