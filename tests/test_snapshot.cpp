// SnapshotStore unit suite: atomic publish (temp + fsync + rename),
// monotonic generation sequencing across reopen, pruning, and the
// newest-valid fallback walk — including the on-disk states a kill at
// each snapshot crash point leaves behind.

#include "serving/snapshot.h"

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"

namespace safecross::serving {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir()
      : path(fs::temp_directory_path() /
             ("safecross_snap_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::vector<fs::path> snapshot_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool has_tmp_files(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

TEST(SnapshotStore, WriteThenLoadRoundTrips) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/2);
  EXPECT_EQ(store.write("payload one"), 1u);
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.payload, "payload one");
  EXPECT_TRUE(loaded.rejected.empty());
  EXPECT_FALSE(has_tmp_files(tmp.path));
}

TEST(SnapshotStore, NewestGenerationWinsAndOldOnesPrune) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/2);
  for (int i = 1; i <= 5; ++i) store.write("gen " + std::to_string(i));
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.generation, 5u);
  EXPECT_EQ(loaded.payload, "gen 5");
  // keep=2: only generations 4 and 5 survive the prunes.
  const auto files = snapshot_files(tmp.path);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], SnapshotStore::generation_path(tmp.path, 4));
  EXPECT_EQ(files[1], SnapshotStore::generation_path(tmp.path, 5));
}

TEST(SnapshotStore, SequencingContinuesAcrossReopen) {
  TempDir tmp;
  {
    SnapshotStore store(tmp.path, /*keep=*/4);
    store.write("a");
    store.write("b");
  }
  SnapshotStore reopened(tmp.path, /*keep=*/4);
  EXPECT_EQ(reopened.next_generation(), 3u);
  EXPECT_EQ(reopened.write("c"), 3u);
  EXPECT_EQ(SnapshotStore::load_newest_valid(tmp.path).payload, "c");
}

TEST(SnapshotStore, MissingOrEmptyDirIsNotFound) {
  TempDir tmp;
  EXPECT_FALSE(SnapshotStore::load_newest_valid(tmp.path / "never_made").found);
  fs::create_directories(tmp.path);
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  EXPECT_FALSE(loaded.found);
  EXPECT_TRUE(loaded.rejected.empty());
}

TEST(SnapshotStore, CorruptNewestFallsBackToPreviousGeneration) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/3);
  store.write("good old");
  store.write("doomed new");
  const fs::path newest = SnapshotStore::generation_path(tmp.path, 2);
  common::flip_byte(newest, fs::file_size(newest) / 2);
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.payload, "good old");
  ASSERT_EQ(loaded.rejected.size(), 1u);
  EXPECT_NE(loaded.rejected[0].find("checksum"), std::string::npos)
      << "got: " << loaded.rejected[0];
}

TEST(SnapshotStore, EveryGenerationCorruptIsNotFoundWithReasons) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/3);
  store.write("one");
  store.write("two");
  store.write("three");
  common::corrupt_magic(SnapshotStore::generation_path(tmp.path, 1));
  common::truncate_file(SnapshotStore::generation_path(tmp.path, 2), 6);
  common::write_garbage(SnapshotStore::generation_path(tmp.path, 3), 128, /*seed=*/9);
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  EXPECT_FALSE(loaded.found);
  ASSERT_EQ(loaded.rejected.size(), 3u);
  for (const std::string& reason : loaded.rejected) {
    EXPECT_NE(reason.find(": "), std::string::npos) << "reason lacks file tag: " << reason;
  }
}

TEST(SnapshotStore, GenerationNameMismatchRejected) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/3);
  store.write("honest");
  // An operator copying generation files around must not be able to make
  // an old snapshot impersonate a newer one: the embedded generation is
  // checked against the filename.
  fs::copy_file(SnapshotStore::generation_path(tmp.path, 1),
                SnapshotStore::generation_path(tmp.path, 7));
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.generation, 1u);
  ASSERT_EQ(loaded.rejected.size(), 1u);
  EXPECT_NE(loaded.rejected[0].find("generation"), std::string::npos);
}

TEST(SnapshotStore, MidWriteKillLeavesPreviousGenerationIntact) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/2);
  store.write("survivor");
  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::MidSnapshotWrite, 1);
  bool crashed = false;
  try {
    store.write("never lands", &injector);
  } catch (const runtime::CrashInjected& kill) {
    crashed = true;
    EXPECT_EQ(kill.point, runtime::CrashPoint::MidSnapshotWrite);
  }
  ASSERT_TRUE(crashed);
  // The half-written temp file is debris; generation 2 never published.
  EXPECT_TRUE(has_tmp_files(tmp.path));
  EXPECT_FALSE(fs::exists(SnapshotStore::generation_path(tmp.path, 2)));
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.payload, "survivor");
  EXPECT_TRUE(loaded.rejected.empty()) << "a .tmp must not count as a generation";
  // The next incarnation's store sweeps the debris and reuses the slot.
  SnapshotStore reopened(tmp.path, /*keep=*/2);
  EXPECT_FALSE(has_tmp_files(tmp.path));
  EXPECT_EQ(reopened.next_generation(), 2u);
}

TEST(SnapshotStore, KillBeforeRenameLeavesCompleteTmpUnpublished) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/2);
  store.write("survivor");
  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::BeforeSnapshotRename, 1);
  EXPECT_THROW(store.write("complete but unnamed", &injector), runtime::CrashInjected);
  EXPECT_TRUE(has_tmp_files(tmp.path));
  EXPECT_FALSE(fs::exists(SnapshotStore::generation_path(tmp.path, 2)));
  EXPECT_EQ(SnapshotStore::load_newest_valid(tmp.path).payload, "survivor");
}

TEST(SnapshotStore, KillAfterRenameHasPublishedTheGeneration) {
  TempDir tmp;
  SnapshotStore store(tmp.path, /*keep=*/1);
  store.write("old");
  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::AfterSnapshotRename, 1);
  EXPECT_THROW(store.write("landed", &injector), runtime::CrashInjected);
  // Rename happened, prune did not: both generations on disk, newest wins.
  const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.generation, 2u);
  EXPECT_EQ(loaded.payload, "landed");
  EXPECT_TRUE(fs::exists(SnapshotStore::generation_path(tmp.path, 1)))
      << "pruning must never run before the new generation is durable";
}

// The failover race: a fleet controller recovering one dead shard walks
// that shard's generations while other incarnations keep publishing (and
// pruning) their own snapshots — and, in the restart-in-place case, the
// very same dir can be re-written while an observability reader walks
// it. A reader overlapping prune must always come back with an intact
// generation and never a torn or partially pruned view.
TEST(SnapshotStore, PruneConcurrentWithReaderWalkAlwaysFindsIntactGeneration) {
  TempDir tmp;
  constexpr std::size_t kWrites = 40;
  // keep = 4: a generation a reader just scanned survives four more
  // fsynced publishes — far longer than one directory walk.
  SnapshotStore store(tmp.path, /*keep=*/4);
  store.write("gen payload 0");  // the walk never races an empty dir

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto loaded = SnapshotStore::load_newest_valid(tmp.path);
      ASSERT_TRUE(loaded.found) << "prune ran ahead of the reader's whole walk";
      // Whatever generation won the walk, it must be one this test
      // published, intact end to end — CRC already vouched for it, the
      // payload shape vouches for the read being complete.
      EXPECT_EQ(loaded.payload.rfind("gen payload ", 0), 0u);
      EXPECT_LE(loaded.payload.size(), sizeof("gen payload ") + 2);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 1; i <= kWrites; ++i) {
    store.write("gen payload " + std::to_string(i));
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u) << "the reader never overlapped the writer";
  const auto last = SnapshotStore::load_newest_valid(tmp.path);
  ASSERT_TRUE(last.found);
  EXPECT_EQ(last.payload, "gen payload " + std::to_string(kWrites));
}

}  // namespace
}  // namespace safecross::serving
