// Fleet failover chaos harness: the fleet layer's acceptance test.
//
// A fleet run with a seeded shard-kill plan must end with every stream's
// MERGED decision sequence — pre-crash decisions recovered from the dead
// shard's durable dir, post-crash decisions produced wherever the stream
// was re-placed — BIT-IDENTICAL to the same-config uninterrupted fleet:
// no lost decision, no duplicated decision, every verdict field equal.
// On top of parity the report must reconcile: zero windows shed
// (degrade-before-drop), every produced window decided, every recovery's
// damage counters surfaced.
//
// Scratch dirs live under chaos_scratch/ and are kept on failure so CI
// uploads the damaged fleet state (per-shard wave dirs) for post-mortem.

#include "fleet/controller.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace safecross::fleet {
namespace {

namespace fs = std::filesystem;

using dataset::Weather;
using runtime::CrashPoint;
using serving::StreamConfig;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "chaos_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    if (!::testing::Test::HasFailure()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

ShardSpec tiny_spec() {
  ShardSpec spec;
  spec.engine.model.slow_channels = 4;
  spec.engine.model.fast_channels = 2;
  spec.weathers = {Weather::Daytime, Weather::Rain};
  return spec;
}

/// K streams with mixed weathers, skewed strides and cycling priorities —
/// enough decisions per shard that journal-point kills always fire.
FleetConfig fleet_config(std::size_t k, std::size_t shards, std::uint64_t base) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.shard = tiny_spec();
  cfg.serving.frames = 1800;
  cfg.serving.queue_capacity = 2;
  cfg.serving.snapshot_every_decisions = 8;
  cfg.serving.heartbeat_interval_ms = 1.0;
  cfg.watch_interval_ms = 2.0;
  for (std::size_t i = 0; i < k; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i % 2 == 0 ? Weather::Daytime : Weather::Rain;
    s.sim_seed = base + 10 * i;
    s.collector_seed = base + 10 * i + 1;
    s.fault_seed = base + 10 * i + 2;
    s.decision_stride = i % 3 == 0 ? 4 : 8;
    s.priority = static_cast<core::StreamPriority>(i % 3);
    cfg.streams.push_back(s);
  }
  return cfg;
}

/// The uninterrupted same-config reference: no fault plan, no durability
/// (journaling never changes a verdict), identical placement/admission.
FleetReport reference_report(FleetConfig cfg) {
  cfg.fault = {};
  cfg.durability_root.clear();
  FleetController reference(cfg);
  reference.run();
  return reference.report();
}

/// The parity oracle: per-stream merged traces equal in every verdict
/// field, scorecards equal in every counter. Wall-clock observability
/// (failover timings, heartbeat counts) is deliberately not compared.
void expect_fleet_parity(const FleetReport& got, const FleetReport& want) {
  ASSERT_EQ(got.streams.size(), want.streams.size());
  for (std::size_t i = 0; i < got.streams.size(); ++i) {
    const StreamResult& g = got.streams[i];
    const StreamResult& w = want.streams[i];
    SCOPED_TRACE("stream " + g.name);
    ASSERT_EQ(g.name, w.name);
    EXPECT_EQ(g.frames_run, w.frames_run);
    EXPECT_EQ(g.windows_produced, w.windows_produced);
    ASSERT_EQ(g.trace.size(), w.trace.size()) << "a decision was lost or duplicated";
    for (std::size_t s = 0; s < g.trace.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(g.trace[s].frame, w.trace[s].frame);
      EXPECT_EQ(g.trace[s].danger_truth, w.trace[s].danger_truth);
      EXPECT_EQ(g.trace[s].predicted_class, w.trace[s].predicted_class);
      EXPECT_EQ(g.trace[s].prob_danger, w.trace[s].prob_danger)
          << "merged verdicts must be bit-identical";
      EXPECT_EQ(g.trace[s].warn, w.trace[s].warn);
      EXPECT_EQ(g.trace[s].source, w.trace[s].source);
    }
    EXPECT_EQ(g.decisions, w.decisions);
    EXPECT_EQ(g.warnings, w.warnings);
    EXPECT_EQ(g.correct, w.correct);
    EXPECT_EQ(g.model_decisions, w.model_decisions);
    EXPECT_EQ(g.fail_safe_decisions, w.fail_safe_decisions);
    EXPECT_EQ(g.opportunities, w.opportunities);
  }
}

/// The wave-0 launched slot of the shard whose reference run produced
/// the most decisions. Rain streams can decide (close to) never, so a
/// kill aimed at an arbitrary slot may sit on a shard whose journal
/// never reaches the armed ordinal — aim at the busiest shard instead.
std::size_t busiest_slot(const FleetConfig& cfg, const FleetReport& want) {
  Placer placer(cfg.placement);
  const auto assignment = placer.place_all(cfg.streams, cfg.shards);
  std::vector<std::size_t> decisions(cfg.shards, 0);
  std::vector<bool> hosts_streams(cfg.shards, false);
  for (std::size_t i = 0; i < cfg.streams.size(); ++i) {
    decisions[assignment[i]] += want.streams[i].decisions;
    hosts_streams[assignment[i]] = true;
  }
  std::size_t winner = 0;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    if (decisions[s] > decisions[winner]) winner = s;
  }
  std::size_t slot = 0;  // launched slots count shards with streams, in id order
  for (std::size_t s = 0; s < winner; ++s) {
    if (hosts_streams[s]) ++slot;
  }
  return slot;
}

void expect_chaos_invariants(const FleetController& fleet, std::size_t expected_kills) {
  const FleetReport& report = fleet.report();
  EXPECT_EQ(fleet.kills_fired(), expected_kills) << "an armed kill never fired";
  ASSERT_EQ(report.failovers.size(), expected_kills);
  EXPECT_EQ(report.damage.recoveries, expected_kills);
  EXPECT_EQ(report.uncaught_exceptions, 0u)
      << "only the scripted CrashInjected may kill a shard";
  EXPECT_TRUE(report.reconciled())
      << "failover lost or duplicated windows (degrade-before-drop violated)";
  EXPECT_EQ(report.windows_shed_total, 0u);
  std::size_t moved_total = 0;
  for (const FailoverEvent& ev : report.failovers) {
    EXPECT_GT(ev.streams_moved, 0u) << "a failover that moved nothing";
    EXPECT_GE(ev.detect_ms, 0.0);
    moved_total += ev.streams_moved;
  }
  std::size_t moves_seen = 0;
  for (const StreamResult& s : report.streams) moves_seen += s.moves;
  EXPECT_EQ(moves_seen, moved_total) << "per-stream move counts disagree with failovers";
}

/// One seed of the acceptance sweep: the seeded fault plan picks the
/// victim, the crash point and the hit ordinal; the run must fail over
/// and stay bit-identical to the uninterrupted reference.
void fleet_kill_sweep(std::uint64_t base, std::uint64_t fault_seed) {
  FleetConfig cfg = fleet_config(4, 2, base);
  const FleetReport want = reference_report(cfg);
  ASSERT_GE(want.decisions_total, 24u) << "weak scenario for seed " << base;

  ScratchDir scratch("fleet_seed_" + std::to_string(base) + "_" +
                     std::to_string(fault_seed));
  cfg.durability_root = scratch.path;
  cfg.fault.enabled = true;
  cfg.fault.seed = fault_seed;
  cfg.fault.kills = 1;
  FleetController fleet(cfg);
  fleet.run();
  expect_chaos_invariants(fleet, 1);
  expect_fleet_parity(fleet.report(), want);
}

// Randomized crash points across seeds (the ISSUE's acceptance floor):
// each fault seed derives its own (victim, crash point, ordinal) plan.
TEST(FleetChaos, SeededKillFailoverParitySeed61000) { fleet_kill_sweep(61000, 0xA1); }
TEST(FleetChaos, SeededKillFailoverParitySeed64000) { fleet_kill_sweep(64000, 0xB2); }
TEST(FleetChaos, SeededKillFailoverParitySeed67000) { fleet_kill_sweep(67000, 0xC3); }

// Targeted plans: a torn journal tail, a half-written snapshot temp, and
// a clean post-rename state — the three damage shapes — each must fail
// over bit-identically, and the torn tail must surface in the report's
// damage rollup (satellite: replay-damage counters in the aggregation).
TEST(FleetChaos, TargetedKillPointsFailOverBitIdentical) {
  struct Case {
    CrashPoint point;
    std::size_t nth;
    const char* tag;
  };
  const Case cases[] = {{CrashPoint::MidJournalAppend, 7, "torn_tail"},
                        {CrashPoint::MidSnapshotWrite, 1, "half_snapshot"},
                        {CrashPoint::AfterSnapshotRename, 1, "post_rename"}};
  FleetConfig base_cfg = fleet_config(4, 2, 71000);
  const FleetReport want = reference_report(base_cfg);
  ASSERT_GE(want.decisions_total, 24u);

  const std::size_t victim = busiest_slot(base_cfg, want);
  for (const Case& c : cases) {
    SCOPED_TRACE(c.tag);
    ScratchDir scratch(std::string("fleet_point_") + c.tag);
    FleetConfig cfg = base_cfg;
    cfg.durability_root = scratch.path;
    cfg.fault.enabled = true;
    FleetController fleet(cfg);
    fleet.fault().set_plan({ShardKill{.wave = 0, .victim = victim, .point = c.point, .nth = c.nth}});
    fleet.run();
    expect_chaos_invariants(fleet, 1);
    expect_fleet_parity(fleet.report(), want);
    if (c.point == CrashPoint::MidJournalAppend) {
      EXPECT_GE(fleet.report().damage.journal_torn_tails, 1u)
          << "the mid-append kill should have torn the tail";
      EXPECT_GT(fleet.report().damage.journal_bytes_dropped, 0u);
      EXPECT_GT(fleet.report().damage.journal_records, 0u);
    }
    // (A kill right after a snapshot rename can leave a freshly truncated
    // journal — zero replayed records is legitimate there.)
  }
}

// Kill the primary wave AND the failover wave: recovery must be
// re-entrant across shard generations, merging three partial runs into
// one bit-identical sequence per moved stream.
TEST(FleetChaos, DoubleFailoverStaysBitIdentical) {
  FleetConfig cfg = fleet_config(4, 2, 74000);
  const FleetReport want = reference_report(cfg);
  ASSERT_GE(want.decisions_total, 24u);

  ScratchDir scratch("fleet_double_failover");
  cfg.durability_root = scratch.path;
  cfg.fault.enabled = true;
  FleetController fleet(cfg);
  fleet.fault().set_plan(
      {ShardKill{.wave = 0, .victim = 0, .point = CrashPoint::MidJournalAppend, .nth = 5},
       ShardKill{.wave = 1, .victim = 0, .point = CrashPoint::MidJournalAppend, .nth = 3}});
  fleet.run();
  expect_chaos_invariants(fleet, 2);
  expect_fleet_parity(fleet.report(), want);
  bool some_stream_moved_twice = false;
  for (const StreamResult& s : fleet.report().streams) {
    some_stream_moved_twice |= s.moves >= 2;
  }
  // Not guaranteed for every placement, but the second kill must at
  // least have produced a second recovery.
  EXPECT_EQ(fleet.report().damage.recoveries, 2u);
  (void)some_stream_moved_twice;
}

// S = 1: no survivor exists, so the crashed shard restarts in place —
// the degenerate fleet must still fail over onto itself bit-identically.
TEST(FleetChaos, SingleShardRestartsInPlaceBitIdentical) {
  FleetConfig cfg = fleet_config(3, 1, 77000);
  const FleetReport want = reference_report(cfg);
  ASSERT_GE(want.decisions_total, 18u);

  ScratchDir scratch("fleet_single_shard");
  cfg.durability_root = scratch.path;
  cfg.fault.enabled = true;
  FleetController fleet(cfg);
  fleet.fault().set_plan(
      {ShardKill{.wave = 0, .victim = 0, .point = CrashPoint::MidJournalAppend, .nth = 6}});
  fleet.run();
  expect_chaos_invariants(fleet, 1);
  expect_fleet_parity(fleet.report(), want);
  for (const StreamResult& s : fleet.report().streams) {
    EXPECT_EQ(s.first_shard, 0u);
    EXPECT_EQ(s.final_shard, 0u);
    EXPECT_EQ(s.moves, 1u) << "restart-in-place is still a hand-off";
  }
}

// Degraded streams ride failover unchanged: admission is decided at
// placement time and the flag travels in the hand-off config, so the
// killed run's degrade set — and every FleetDegraded verdict — matches
// the reference exactly.
TEST(FleetChaos, DegradedStreamsSurviveFailoverBitIdentical) {
  FleetConfig cfg = fleet_config(4, 2, 79000);
  cfg.admission.shard_capacity = 1.0;
  const FleetReport want = reference_report(cfg);
  ASSERT_GT(want.streams_degraded, 0u) << "weak scenario: nothing degraded";
  ASSERT_GE(want.decisions_total, 24u);

  ScratchDir scratch("fleet_degraded_failover");
  cfg.durability_root = scratch.path;
  cfg.fault.enabled = true;
  FleetController fleet(cfg);
  fleet.fault().set_plan({ShardKill{.wave = 0,
                                    .victim = busiest_slot(cfg, want),
                                    .point = CrashPoint::MidJournalAppend,
                                    .nth = 2}});
  fleet.run();
  expect_chaos_invariants(fleet, 1);
  expect_fleet_parity(fleet.report(), want);
  EXPECT_EQ(fleet.report().streams_degraded, want.streams_degraded);
  EXPECT_EQ(fleet.report().degraded_decisions_total, want.degraded_decisions_total);
  EXPECT_GT(fleet.report().degraded_decisions_total, 0u);
}

}  // namespace
}  // namespace safecross::fleet
