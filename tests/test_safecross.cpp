#include "core/safecross.h"

#include <gtest/gtest.h>

#include "core/throughput.h"
#include "dataset/builder.h"

namespace safecross::core {
namespace {

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 3;
  cfg.fsl_train.epochs = 3;
  return cfg;
}

const std::vector<dataset::VideoSegment>& day_segments() {
  static const auto segs = [] {
    dataset::BuildRequest req;
    req.target_segments = 60;
    req.max_sim_hours = 2.0;
    req.seed = 111;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

const std::vector<dataset::VideoSegment>& rain_segments() {
  static const auto segs = [] {
    dataset::BuildRequest req;
    req.weather = Weather::Rain;
    req.target_segments = 20;
    req.max_sim_hours = 2.0;
    req.seed = 112;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

std::vector<const dataset::VideoSegment*> ptrs(const std::vector<dataset::VideoSegment>& v) {
  std::vector<const dataset::VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

// One trained framework shared across tests (training dominates runtime).
SafeCross& trained() {
  static SafeCross* instance = [] {
    auto* sc = new SafeCross(tiny_config());
    sc->train_basic(ptrs(day_segments()));
    sc->adapt_weather(Weather::Rain, ptrs(rain_segments()));
    return sc;
  }();
  return *instance;
}

TEST(SafeCross, RequiresBasicModelBeforeAdaptation) {
  SafeCross sc(tiny_config());
  EXPECT_THROW(sc.adapt_weather(Weather::Rain, ptrs(rain_segments())), std::logic_error);
}

TEST(SafeCross, RequiresActiveModelBeforeClassify) {
  SafeCross sc(tiny_config());
  EXPECT_THROW(sc.classify(day_segments()[0].frames), std::logic_error);
}

TEST(SafeCross, TrainBasicRegistersDaytimeModel) {
  EXPECT_TRUE(trained().has_model(Weather::Daytime));
  EXPECT_TRUE(trained().has_model(Weather::Rain));
  EXPECT_FALSE(trained().has_model(Weather::Snow));
}

TEST(SafeCross, ClassifyProducesCalibratedDecision) {
  trained().on_scene_change(Weather::Daytime);
  const auto d = trained().classify(day_segments()[0].frames);
  EXPECT_GE(d.prob_danger, 0.0f);
  EXPECT_LE(d.prob_danger, 1.0f);
  EXPECT_TRUE(d.predicted_class == 0 || d.predicted_class == 1);
  EXPECT_EQ(d.warn, d.prob_danger >= 0.5f);
}

TEST(SafeCross, SceneChangePaysSwitchDelayOnce) {
  trained().on_scene_change(Weather::Daytime);
  const double to_rain = trained().on_scene_change(Weather::Rain);
  EXPECT_GT(to_rain, 0.0);
  EXPECT_LT(to_rain, 10.0);  // PipeSwitch policy by default
  EXPECT_DOUBLE_EQ(trained().on_scene_change(Weather::Rain), 0.0);
  EXPECT_EQ(trained().active_weather(), Weather::Rain);
}

TEST(SafeCross, MetaTrainRequiresBasicModel) {
  SafeCross sc(tiny_config());
  fewshot::MamlConfig cfg;
  cfg.meta_iterations = 1;
  EXPECT_THROW(sc.meta_train({}, cfg), std::logic_error);
}

TEST(SafeCross, MetaTrainRefinesBasicModel) {
  fewshot::Task task;
  task.name = "daytime";
  task.pool = ptrs(day_segments());
  fewshot::MamlConfig cfg;
  cfg.meta_iterations = 1;
  cfg.inner_steps = 1;
  cfg.tasks_per_batch = 1;
  cfg.episode.k_shot = 2;
  cfg.episode.query_per_class = 2;
  const float before = trained().model_for(Weather::Daytime).params()[0]->value[0];
  const float loss = trained().meta_train({task}, cfg);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NE(trained().model_for(Weather::Daytime).params()[0]->value[0], before);
}

TEST(SafeCross, SceneChangeToMissingModelThrows) {
  EXPECT_THROW(trained().on_scene_change(Weather::Snow), std::invalid_argument);
}

TEST(SafeCross, BasicModelBeatsChanceOnTraining) {
  trained().on_scene_change(Weather::Daytime);
  std::size_t correct = 0;
  const auto& segs = day_segments();
  for (const auto& s : segs) {
    const auto d = trained().classify_as(Weather::Daytime, s.frames);
    if (d.predicted_class == s.binary_label()) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / segs.size(), 0.6);
}

TEST(Throughput, ReportAccountingAddsUp) {
  std::vector<const dataset::VideoSegment*> blind;
  for (const auto& s : day_segments()) {
    if (s.blind_area) blind.push_back(&s);
  }
  if (blind.empty()) GTEST_SKIP() << "no blind segments in tiny pool";
  const ThroughputReport r = throughput_experiment(trained(), blind);
  EXPECT_EQ(r.blind_segments, blind.size());
  EXPECT_EQ(r.class0 + r.class1, r.blind_segments);
  EXPECT_LE(r.judged_safe, r.blind_segments);
  EXPECT_LE(r.accuracy(), 1.0);
  EXPECT_GE(r.throughput_gain(), 0.0);
}

TEST(Throughput, SelectBlindTestSetHonorsCaps) {
  std::vector<dataset::VideoSegment> pool;
  for (int i = 0; i < 20; ++i) {
    dataset::VideoSegment s;
    s.blind_area = i % 2 == 0;
    s.turned = i % 4 < 2;
    pool.push_back(s);
  }
  const auto sel = select_blind_test_set(ptrs(pool), 3, 2);
  std::size_t c0 = 0, c1 = 0;
  for (const auto* s : sel) {
    EXPECT_TRUE(s->blind_area);
    (s->binary_label() == 0 ? c0 : c1)++;
  }
  EXPECT_LE(c0, 3u);
  EXPECT_LE(c1, 2u);
}

}  // namespace
}  // namespace safecross::core
