// End-to-end integration: simulate -> VP -> train -> adapt -> switch ->
// monitor live warnings — the full paper pipeline at miniature scale.

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/safecross.h"
#include "dataset/builder.h"
#include "fewshot/trainer.h"

namespace safecross {
namespace {

using core::SafeCross;
using core::SafeCrossConfig;
using dataset::VideoSegment;
using dataset::Weather;

std::vector<const VideoSegment*> ptrs(const std::vector<VideoSegment>& v) {
  std::vector<const VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

TEST(Integration, FullPipelineProducesUsefulLiveWarnings) {
  // 1) Build a daytime dataset.
  dataset::BuildRequest req;
  req.target_segments = 100;
  req.max_sim_hours = 2.0;
  req.seed = 2024;
  const auto day = dataset::build_dataset(req);
  ASSERT_GE(day.segments.size(), 60u);

  // 2) Train the basic model.
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 4;
  SafeCross sc(cfg);
  sc.train_basic(ptrs(day.segments));

  // 3) Deploy over a live (fresh-seed) simulation and score decisions.
  sim::TrafficSimulator live(sim::weather_params(Weather::Daytime), 555);
  const sim::CameraModel cam(live.intersection().geometry());
  core::MonitorConfig mon_cfg;
  core::RealtimeMonitor monitor(sc, live, cam, mon_cfg, 556);
  for (int i = 0; i < 30 * 60 * 10 && monitor.decisions() < 60; ++i) monitor.step();

  ASSERT_GE(monitor.decisions(), 20u) << "monitor produced too few decisions";
  EXPECT_GT(monitor.accuracy(), 0.6) << "live accuracy should beat chance";
}

TEST(Integration, WeatherAdaptationAndSwitchingRoundTrip) {
  dataset::BuildRequest day_req;
  day_req.target_segments = 60;
  day_req.max_sim_hours = 2.0;
  day_req.seed = 31;
  const auto day = dataset::build_dataset(day_req);

  dataset::BuildRequest snow_req = day_req;
  snow_req.weather = Weather::Snow;
  snow_req.target_segments = 40;
  snow_req.seed = 32;
  const auto snow = dataset::build_dataset(snow_req);

  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 3;
  cfg.fsl_train.epochs = 6;
  SafeCross sc(cfg);
  sc.train_basic(ptrs(day.segments));
  sc.adapt_weather(Weather::Snow, ptrs(snow.segments));

  // Scene change day -> snow -> day; every PipeSwitch delay < 10 ms.
  const double d1 = sc.on_scene_change(Weather::Daytime);
  const double d2 = sc.on_scene_change(Weather::Snow);
  const double d3 = sc.on_scene_change(Weather::Daytime);
  EXPECT_LT(d1, 10.0);
  EXPECT_LT(d2, 10.0);
  EXPECT_LT(d3, 10.0);
  EXPECT_EQ(sc.switcher().switch_count(), 3u);

  // The snow model still classifies snow segments sensibly.
  sc.on_scene_change(Weather::Snow);
  std::size_t correct = 0;
  for (const auto& s : snow.segments) {
    if (sc.classify(s.frames).predicted_class == s.binary_label()) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / snow.segments.size(), 0.55);
}

TEST(Integration, FullVPMatchesFastPathLabelsOnSameSim) {
  // Run the two VP paths over identical traffic and check they cut the
  // same number of segments with the same labels (frames differ — the
  // full path is noisier — but the cutting logic is label-driven).
  dataset::CollectorConfig fast_cfg;
  dataset::CollectorConfig full_cfg;
  full_cfg.mode = dataset::PipelineMode::FullVP;

  sim::TrafficSimulator sim_a(sim::weather_params(Weather::Daytime), 777);
  sim::TrafficSimulator sim_b(sim::weather_params(Weather::Daytime), 777);
  const sim::CameraModel cam_a(sim_a.intersection().geometry());
  const sim::CameraModel cam_b(sim_b.intersection().geometry());
  dataset::SegmentCollector fast(sim_a, cam_a, fast_cfg, 1);
  dataset::SegmentCollector full(sim_b, cam_b, full_cfg, 1);

  for (int i = 0; i < 30 * 240; ++i) {  // 4 sim-minutes
    fast.step();
    full.step();
  }
  ASSERT_EQ(fast.segments().size(), full.segments().size());
  for (std::size_t i = 0; i < fast.segments().size(); ++i) {
    EXPECT_EQ(fast.segments()[i].binary_label(), full.segments()[i].binary_label());
    EXPECT_EQ(fast.segments()[i].blind_area, full.segments()[i].blind_area);
  }
}

}  // namespace
}  // namespace safecross
